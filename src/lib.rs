//! # tamsim
//!
//! A full Rust reproduction of **Spertus & Dally, “Evaluating the Locality
//! Benefits of Active Messages” (PPOPP 1995)**: two implementations of the
//! Berkeley Threaded Abstract Machine (TAM) on a simulated MIT J-Machine
//! node, evaluated through a trace-driven cache simulator.
//!
//! This facade crate re-exports the public API of every subsystem:
//!
//! * [`trace`] — memory-access events, regions, counters, sinks.
//! * [`mdp`] — the Message-Driven Processor machine model and micro-ISA.
//! * [`tam`] — the TAM program model (codeblocks, inlets, threads) and builder.
//! * [`cache`] — the set-associative write-back split I/D cache simulator.
//! * [`core`] — the Active-Messages and Message-Driven runtime lowerings and
//!   the experiment driver (the paper's contribution).
//! * [`net`] — the multi-node extension: K MDP nodes on a dimension-order
//!   2D mesh with frame-placement policies and back-pressured links.
//! * [`programs`] — the six benchmark programs of the paper.
//! * [`metrics`] — granularity statistics, cycle ratios, and figure/table
//!   rendering.
//! * [`check`] — the differential correctness harness: TAM program
//!   fuzzing, machine invariant checking, and failure shrinking.
//!
//! ## Quickstart
//!
//! ```
//! use tamsim::core::{Implementation, Experiment};
//! use tamsim::programs;
//!
//! // Build one of the paper's benchmarks at a small size.
//! let program = programs::quicksort(16, 42);
//! // Run it under both runtime implementations.
//! let md = Experiment::new(Implementation::Md).run(&program);
//! let am = Experiment::new(Implementation::Am).run(&program);
//! // The MD implementation executes fewer instructions overall…
//! assert!(md.instructions < am.instructions);
//! // …and both compute the same answer.
//! assert_eq!(md.result, am.result);
//! ```

pub use tamsim_cache as cache;
pub use tamsim_check as check;
pub use tamsim_core as core;
pub use tamsim_mdp as mdp;
pub use tamsim_metrics as metrics;
pub use tamsim_net as net;
pub use tamsim_programs as programs;
pub use tamsim_tam as tam;
pub use tamsim_trace as trace;
