//! Static validation and the per-codeblock facts the runtime lowerings use
//! for the Section 2.3 optimizations.

use crate::ids::{CodeblockId, InletId, SlotId, ThreadId, VReg};
use crate::op::{TOp, TOperand};
use crate::program::{Codeblock, Program};

/// A structural error found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A fork/post/reset referenced a nonexistent thread.
    BadThread { cb: String, t: ThreadId },
    /// A reply/send referenced a nonexistent inlet.
    BadInlet { cb: String, i: InletId },
    /// A call referenced a nonexistent codeblock.
    BadCodeblock { cb: String, target: CodeblockId },
    /// A static slot reference was out of range.
    BadSlot { cb: String, slot: SlotId },
    /// A virtual register beyond [`VReg::LIMIT`].
    BadVReg { cb: String, r: VReg },
    /// An inlet-only op appeared in a thread (or vice versa).
    WrongContext { cb: String, what: &'static str },
    /// `Return` was not the final op of its thread.
    ReturnNotLast { cb: String, t: ThreadId },
    /// An entry count of zero.
    ZeroEntryCount { cb: String, t: ThreadId },
    /// A `Call` passed more arguments than the callee has argument inlets.
    ArityMismatch {
        cb: String,
        target: CodeblockId,
        args: usize,
        inlets: usize,
    },
    /// The program's `main` id is out of range.
    BadMain,
    /// A `Value::ArrayBase` referenced a nonexistent array.
    BadArray { cb: String, idx: usize },
    /// A message-payload index beyond the supported arity.
    BadMsgIndex { cb: String, idx: u8 },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ValidateError {}

/// Maximum message payload words addressable by `LdMsg`.
pub const MAX_MSG_PAYLOAD: u8 = 12;

fn check_vreg(cb: &str, r: VReg) -> Result<(), ValidateError> {
    if r.0 < VReg::LIMIT {
        Ok(())
    } else {
        Err(ValidateError::BadVReg { cb: cb.into(), r })
    }
}

fn check_op_regs(cb: &str, op: &TOp) -> Result<(), ValidateError> {
    let mut regs: Vec<VReg> = Vec::new();
    match op {
        TOp::MovI { d, .. } => regs.push(*d),
        TOp::Mov { d, s } => regs.extend([*d, *s]),
        TOp::Alu { d, a, b, .. } => {
            regs.extend([*d, *a]);
            if let TOperand::Reg(r) = b {
                regs.push(*r);
            }
        }
        TOp::FAlu { d, a, b, .. } => regs.extend([*d, *a, *b]),
        TOp::LdSlot { d, .. } | TOp::LdMsg { d, .. } => regs.push(*d),
        TOp::StSlot { s, .. } => regs.push(*s),
        TOp::LdSlotIdx { d, idx, .. } => regs.extend([*d, *idx]),
        TOp::StSlotIdx { idx, s, .. } => regs.extend([*idx, *s]),
        TOp::ForkIf { c, .. } | TOp::ForkIfElse { c, .. } | TOp::PostIf { c, .. } => regs.push(*c),
        TOp::Call { args, .. } => regs.extend(args.iter().copied()),
        TOp::Return { vals } => regs.extend(vals.iter().copied()),
        TOp::SendToInlet { frame, vals, .. } => {
            regs.push(*frame);
            regs.extend(vals.iter().copied());
        }
        TOp::HAlloc { d, words } => {
            regs.push(*d);
            if let TOperand::Reg(r) = words {
                regs.push(*r);
            }
        }
        TOp::IFetch { addr, tag, .. } => regs.extend([*addr, *tag]),
        TOp::IStore { addr, val } => regs.extend([*addr, *val]),
        TOp::MyFrame { d } => regs.push(*d),
        TOp::Fork { .. } | TOp::Post { .. } | TOp::ResetCount { .. } | TOp::Halt => {}
    }
    for r in regs {
        check_vreg(cb, r)?;
    }
    Ok(())
}

fn check_common(program: &Program, cb: &Codeblock, op: &TOp) -> Result<(), ValidateError> {
    let name = cb.name.as_str();
    check_op_regs(name, op)?;
    for t in op.targets() {
        if t.0 as usize >= cb.threads.len() {
            return Err(ValidateError::BadThread { cb: name.into(), t });
        }
    }
    match op {
        TOp::LdSlot { slot, .. }
        | TOp::StSlot { slot, .. }
        | TOp::LdSlotIdx { base: slot, .. }
        | TOp::StSlotIdx { base: slot, .. }
            if slot.0 >= cb.n_slots =>
        {
            return Err(ValidateError::BadSlot {
                cb: name.into(),
                slot: *slot,
            });
        }
        TOp::LdMsg { idx, .. } if *idx >= MAX_MSG_PAYLOAD => {
            return Err(ValidateError::BadMsgIndex {
                cb: name.into(),
                idx: *idx,
            });
        }
        TOp::MovI {
            v: crate::op::Value::ArrayBase(i),
            ..
        } if *i >= program.arrays.len() => {
            return Err(ValidateError::BadArray {
                cb: name.into(),
                idx: *i,
            });
        }
        TOp::Call {
            cb: target,
            args,
            reply,
        } => {
            let Some(callee) = program.codeblocks.get(target.0 as usize) else {
                return Err(ValidateError::BadCodeblock {
                    cb: name.into(),
                    target: *target,
                });
            };
            if args.len() > callee.inlets.len() {
                return Err(ValidateError::ArityMismatch {
                    cb: name.into(),
                    target: *target,
                    args: args.len(),
                    inlets: callee.inlets.len(),
                });
            }
            if reply.0 as usize >= cb.inlets.len() {
                return Err(ValidateError::BadInlet {
                    cb: name.into(),
                    i: *reply,
                });
            }
        }
        TOp::SendToInlet {
            cb: target, inlet, ..
        } => {
            let Some(callee) = program.codeblocks.get(target.0 as usize) else {
                return Err(ValidateError::BadCodeblock {
                    cb: name.into(),
                    target: *target,
                });
            };
            if inlet.0 as usize >= callee.inlets.len() {
                return Err(ValidateError::BadInlet {
                    cb: name.into(),
                    i: *inlet,
                });
            }
        }
        TOp::IFetch { reply, .. } if reply.0 as usize >= cb.inlets.len() => {
            return Err(ValidateError::BadInlet {
                cb: name.into(),
                i: *reply,
            });
        }
        _ => {}
    }
    Ok(())
}

/// Validate a program's structural invariants.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    if program.main.0 as usize >= program.codeblocks.len() {
        return Err(ValidateError::BadMain);
    }
    for cb in &program.codeblocks {
        let name = cb.name.as_str();
        for (ti, thread) in cb.threads.iter().enumerate() {
            if thread.entry_count == 0 {
                return Err(ValidateError::ZeroEntryCount {
                    cb: name.into(),
                    t: ThreadId(ti as u16),
                });
            }
            for (oi, op) in thread.ops.iter().enumerate() {
                if op.inlet_only() {
                    return Err(ValidateError::WrongContext {
                        cb: name.into(),
                        what: "inlet-only op in thread",
                    });
                }
                if matches!(op, TOp::Return { .. }) && oi + 1 != thread.ops.len() {
                    return Err(ValidateError::ReturnNotLast {
                        cb: name.into(),
                        t: ThreadId(ti as u16),
                    });
                }
                check_common(program, cb, op)?;
            }
        }
        for inlet in &cb.inlets {
            for op in &inlet.ops {
                if op.thread_only() {
                    return Err(ValidateError::WrongContext {
                        cb: name.into(),
                        what: "thread-only op in inlet",
                    });
                }
                check_common(program, cb, op)?;
            }
        }
    }
    Ok(())
}

/// Facts about one codeblock used by the lowering optimizations (§2.3).
#[derive(Debug, Clone)]
pub struct CbAnalysis {
    /// For each thread, the inlets that post it (with multiplicity).
    pub posted_by: Vec<Vec<InletId>>,
    /// For each thread, how many fork sites (in threads) target it.
    pub fork_sites: Vec<u32>,
    /// For each user slot, how many ops read it (dynamic-indexed reads
    /// poison every slot at or above their base).
    pub slot_reads: Vec<u32>,
    /// For each user slot, how many ops write it.
    pub slot_writes: Vec<u32>,
    /// Whether the codeblock uses dynamically-indexed slot access.
    pub has_dynamic_slots: bool,
}

impl CbAnalysis {
    /// Compute the analysis for `cb`.
    pub fn of(cb: &Codeblock) -> Self {
        let nt = cb.threads.len();
        let ns = cb.n_slots as usize;
        let mut a = CbAnalysis {
            posted_by: vec![Vec::new(); nt],
            fork_sites: vec![0; nt],
            slot_reads: vec![0; ns],
            slot_writes: vec![0; ns],
            has_dynamic_slots: false,
        };
        let scan = |op: &TOp, from_inlet: Option<InletId>, a: &mut CbAnalysis| match op {
            TOp::Post { t } => a.posted_by[t.0 as usize].push(from_inlet.unwrap()),
            // Conditional posts disqualify fall-through specialization:
            // record them twice so `sole_poster` never matches.
            TOp::PostIf { t, .. } => {
                a.posted_by[t.0 as usize].push(from_inlet.unwrap());
                a.posted_by[t.0 as usize].push(from_inlet.unwrap());
            }
            TOp::Fork { t } | TOp::ForkIf { t, .. } => a.fork_sites[t.0 as usize] += 1,
            TOp::ForkIfElse { t, f, .. } => {
                a.fork_sites[t.0 as usize] += 1;
                a.fork_sites[f.0 as usize] += 1;
            }
            TOp::LdSlot { slot, .. } => a.slot_reads[slot.0 as usize] += 1,
            TOp::StSlot { slot, .. } => a.slot_writes[slot.0 as usize] += 1,
            TOp::LdSlotIdx { base, .. } => {
                a.has_dynamic_slots = true;
                for s in (base.0 as usize)..ns {
                    a.slot_reads[s] += 1;
                }
            }
            TOp::StSlotIdx { base, .. } => {
                a.has_dynamic_slots = true;
                for s in (base.0 as usize)..ns {
                    a.slot_writes[s] += 1;
                }
            }
            _ => {}
        };
        for thread in &cb.threads {
            for op in &thread.ops {
                scan(op, None, &mut a);
            }
        }
        for (ii, inlet) in cb.inlets.iter().enumerate() {
            for op in &inlet.ops {
                scan(op, Some(InletId(ii as u16)), &mut a);
            }
        }
        a
    }

    /// Whether thread `t` is enabled from exactly one inlet post site and
    /// no fork sites — the precondition for the MD inline-specialization
    /// of Section 2.3 ("if thread 1 is non-synchronizing and if only inlet
    /// 0 posts or forks thread 1 …").
    pub fn sole_poster(&self, t: ThreadId) -> Option<InletId> {
        let posts = &self.posted_by[t.0 as usize];
        if posts.len() == 1 && self.fork_sites[t.0 as usize] == 0 {
            Some(posts[0])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::regs::*;
    use crate::op::ops::*;
    use crate::program::{Inlet, Thread};

    fn cb_with(threads: Vec<Thread>, inlets: Vec<Inlet>, n_slots: u16) -> Codeblock {
        Codeblock {
            name: "test".into(),
            n_slots,
            threads,
            inlets,
        }
    }

    fn prog(cb: Codeblock) -> Program {
        Program {
            name: "p".into(),
            codeblocks: vec![cb],
            main: CodeblockId(0),
            main_args: vec![],
            arrays: vec![],
        }
    }

    #[test]
    fn valid_minimal_program() {
        let cb = cb_with(
            vec![Thread::new(1, vec![movi(R0, 1)])],
            vec![Inlet {
                ops: vec![ldmsg(R0, 0), post(ThreadId(0))],
            }],
            0,
        );
        assert_eq!(prog(cb).validate(), Ok(()));
    }

    #[test]
    fn rejects_fork_of_missing_thread() {
        let cb = cb_with(vec![Thread::new(1, vec![fork(ThreadId(9))])], vec![], 0);
        assert!(matches!(
            prog(cb).validate(),
            Err(ValidateError::BadThread { .. })
        ));
    }

    #[test]
    fn rejects_inlet_op_in_thread() {
        let cb = cb_with(vec![Thread::new(1, vec![ldmsg(R0, 0)])], vec![], 0);
        assert!(matches!(
            prog(cb).validate(),
            Err(ValidateError::WrongContext { .. })
        ));
    }

    #[test]
    fn rejects_thread_op_in_inlet() {
        let cb = cb_with(
            vec![],
            vec![Inlet {
                ops: vec![halloc(R0, imm(4))],
            }],
            0,
        );
        assert!(matches!(
            prog(cb).validate(),
            Err(ValidateError::WrongContext { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_slot() {
        let cb = cb_with(vec![Thread::new(1, vec![ld(R0, SlotId(5))])], vec![], 2);
        assert!(matches!(
            prog(cb).validate(),
            Err(ValidateError::BadSlot { .. })
        ));
    }

    #[test]
    fn rejects_zero_entry_count() {
        let cb = cb_with(vec![Thread::new(0, vec![])], vec![], 0);
        assert!(matches!(
            prog(cb).validate(),
            Err(ValidateError::ZeroEntryCount { .. })
        ));
    }

    #[test]
    fn rejects_return_not_last() {
        let cb = cb_with(
            vec![Thread::new(1, vec![ret(vec![]), movi(R0, 1)])],
            vec![],
            0,
        );
        assert!(matches!(
            prog(cb).validate(),
            Err(ValidateError::ReturnNotLast { .. })
        ));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let callee = cb_with(vec![], vec![Inlet::default()], 0);
        let caller = cb_with(
            vec![Thread::new(
                1,
                vec![call(CodeblockId(1), vec![R0, R1], InletId(0))],
            )],
            vec![Inlet::default()],
            0,
        );
        let p = Program {
            name: "p".into(),
            codeblocks: vec![caller, callee],
            main: CodeblockId(0),
            main_args: vec![],
            arrays: vec![],
        };
        assert!(matches!(
            p.validate(),
            Err(ValidateError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn analysis_tracks_posters_and_forkers() {
        let cb = cb_with(
            vec![
                Thread::new(1, vec![fork(ThreadId(1))]),
                Thread::new(2, vec![]),
            ],
            vec![
                Inlet {
                    ops: vec![post(ThreadId(1))],
                },
                Inlet {
                    ops: vec![post(ThreadId(0))],
                },
            ],
            // wait: posting thread 0 which is also... fine
            0,
        );
        let a = CbAnalysis::of(&cb);
        assert_eq!(a.posted_by[1], vec![InletId(0)]);
        assert_eq!(a.fork_sites[1], 1);
        // Thread 1 is forked, so it has no sole poster.
        assert_eq!(a.sole_poster(ThreadId(1)), None);
        // Thread 0 is posted once and never forked.
        assert_eq!(a.sole_poster(ThreadId(0)), Some(InletId(1)));
    }

    #[test]
    fn analysis_slot_counts_and_dynamic_poisoning() {
        let cb = cb_with(
            vec![Thread::new(
                1,
                vec![ld(R0, SlotId(0)), st(SlotId(1), R0), ldx(R1, SlotId(1), R0)],
            )],
            vec![],
            3,
        );
        let a = CbAnalysis::of(&cb);
        assert_eq!(a.slot_reads[0], 1);
        assert_eq!(a.slot_writes[1], 1);
        assert!(a.has_dynamic_slots);
        // Dynamic read at base 1 poisons slots 1 and 2.
        assert_eq!(a.slot_reads[1], 1);
        assert_eq!(a.slot_reads[2], 1);
    }
}
