//! Builders for TAM programs.
//!
//! The benchmark sources in `tamsim-programs` use these to stay readable:
//! declare codeblocks first (so they can reference each other), then define
//! each one's slots, threads, and inlets.

use crate::ids::{CodeblockId, InletId, SlotId, ThreadId};
use crate::op::{TOp, Value};
use crate::program::{Codeblock, InitArray, Inlet, Program, Thread};

/// Builder for one codeblock.
#[derive(Debug, Clone)]
pub struct CodeblockBuilder {
    name: String,
    n_slots: u16,
    threads: Vec<Option<Thread>>,
    inlets: Vec<Option<Inlet>>,
}

impl CodeblockBuilder {
    /// Start a codeblock named `name`.
    pub fn new(name: &str) -> Self {
        CodeblockBuilder {
            name: name.into(),
            n_slots: 0,
            threads: Vec::new(),
            inlets: Vec::new(),
        }
    }

    /// Allocate one user frame slot.
    pub fn slot(&mut self) -> SlotId {
        let s = SlotId(self.n_slots);
        self.n_slots += 1;
        s
    }

    /// Allocate `n` contiguous slots; returns the first.
    pub fn slots(&mut self, n: u16) -> SlotId {
        let s = SlotId(self.n_slots);
        self.n_slots += n;
        s
    }

    /// Declare a thread (define its body later with
    /// [`CodeblockBuilder::def_thread`]).
    pub fn thread(&mut self) -> ThreadId {
        let t = ThreadId(self.threads.len() as u16);
        self.threads.push(None);
        t
    }

    /// Declare an inlet.
    pub fn inlet(&mut self) -> InletId {
        let i = InletId(self.inlets.len() as u16);
        self.inlets.push(None);
        i
    }

    /// Define a previously declared thread.
    ///
    /// # Panics
    /// Panics on double definition.
    pub fn def_thread(&mut self, t: ThreadId, entry_count: u32, ops: Vec<TOp>) {
        let slot = &mut self.threads[t.0 as usize];
        assert!(
            slot.is_none(),
            "thread {t:?} of {} defined twice",
            self.name
        );
        *slot = Some(Thread::new(entry_count, ops));
    }

    /// Define a thread that must execute atomically with respect to
    /// inlets (stall/kick gate protocols); see [`Thread::atomic`].
    pub fn def_thread_atomic(&mut self, t: ThreadId, entry_count: u32, ops: Vec<TOp>) {
        let slot = &mut self.threads[t.0 as usize];
        assert!(
            slot.is_none(),
            "thread {t:?} of {} defined twice",
            self.name
        );
        *slot = Some(Thread {
            entry_count,
            ops,
            atomic: true,
        });
    }

    /// Declare and define a thread in one step.
    pub fn add_thread(&mut self, entry_count: u32, ops: Vec<TOp>) -> ThreadId {
        let t = self.thread();
        self.def_thread(t, entry_count, ops);
        t
    }

    /// Define a previously declared inlet.
    ///
    /// # Panics
    /// Panics on double definition.
    pub fn def_inlet(&mut self, i: InletId, ops: Vec<TOp>) {
        let slot = &mut self.inlets[i.0 as usize];
        assert!(slot.is_none(), "inlet {i:?} of {} defined twice", self.name);
        *slot = Some(Inlet { ops });
    }

    /// Declare and define an inlet in one step.
    pub fn add_inlet(&mut self, ops: Vec<TOp>) -> InletId {
        let i = self.inlet();
        self.def_inlet(i, ops);
        i
    }

    /// Finish the codeblock.
    ///
    /// # Panics
    /// Panics if any declared thread or inlet was never defined.
    pub fn finish(self) -> Codeblock {
        let name = self.name;
        let threads = self
            .threads
            .into_iter()
            .enumerate()
            .map(|(i, t)| t.unwrap_or_else(|| panic!("thread {i} of {name} never defined")))
            .collect();
        let inlets = self
            .inlets
            .into_iter()
            .enumerate()
            .map(|(i, inl)| inl.unwrap_or_else(|| panic!("inlet {i} of {name} never defined")))
            .collect();
        Codeblock {
            name,
            n_slots: self.n_slots,
            threads,
            inlets,
        }
    }
}

/// Builder for a whole program.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    names: Vec<String>,
    codeblocks: Vec<Option<Codeblock>>,
    arrays: Vec<InitArray>,
    main: Option<(CodeblockId, Vec<Value>)>,
}

impl ProgramBuilder {
    /// Start a program named `name`.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.into(),
            names: Vec::new(),
            codeblocks: Vec::new(),
            arrays: Vec::new(),
            main: None,
        }
    }

    /// Declare a codeblock id (define it later); lets codeblocks reference
    /// each other regardless of definition order.
    pub fn declare(&mut self, name: &str) -> CodeblockId {
        let id = CodeblockId(self.codeblocks.len() as u16);
        self.names.push(name.into());
        self.codeblocks.push(None);
        id
    }

    /// Define a declared codeblock.
    ///
    /// # Panics
    /// Panics on double definition or name mismatch.
    pub fn define(&mut self, id: CodeblockId, cb: Codeblock) {
        assert_eq!(
            cb.name, self.names[id.0 as usize],
            "codeblock name mismatch"
        );
        let slot = &mut self.codeblocks[id.0 as usize];
        assert!(slot.is_none(), "codeblock {} defined twice", cb.name);
        *slot = Some(cb);
    }

    /// Add an initial heap array; returns its index for
    /// [`Value::ArrayBase`].
    pub fn array(&mut self, array: InitArray) -> usize {
        self.arrays.push(array);
        self.arrays.len() - 1
    }

    /// Set the boot codeblock and its arguments.
    pub fn main(&mut self, id: CodeblockId, args: Vec<Value>) {
        self.main = Some((id, args));
    }

    /// Assemble and validate the program.
    ///
    /// # Panics
    /// Panics if a codeblock was declared but never defined, no main was
    /// set, or validation fails (program sources are compiled into the
    /// binary, so failures are programming errors, not runtime inputs).
    pub fn build(self) -> Program {
        let (main, main_args) = self.main.expect("no main codeblock set");
        let codeblocks: Vec<Codeblock> = self
            .codeblocks
            .into_iter()
            .enumerate()
            .map(|(i, cb)| {
                let names = &self.names;
                cb.unwrap_or_else(|| panic!("codeblock {} never defined", names[i]))
            })
            .collect();
        let program = Program {
            name: self.name,
            codeblocks,
            main,
            main_args,
            arrays: self.arrays,
        };
        if let Err(e) = program.validate() {
            panic!("invalid program {}: {e}", program.name);
        }
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::regs::*;
    use crate::op::ops::*;

    #[test]
    fn builds_a_two_codeblock_program() {
        let mut pb = ProgramBuilder::new("demo");
        let main = pb.declare("main");
        let leaf = pb.declare("leaf");

        let mut cb = CodeblockBuilder::new("main");
        let x = cb.slot();
        let reply = cb.inlet();
        let t_go = cb.thread();
        let t_done = cb.thread();
        cb.def_thread(t_go, 1, vec![movi(R0, 5), call(leaf, vec![R0], reply)]);
        cb.def_inlet(reply, vec![ldmsg(R0, 0), st(x, R0), post(t_done)]);
        cb.def_thread(t_done, 1, vec![ld(R0, x), ret(vec![R0])]);
        // main's arg inlet 0 kicks off t_go — declared after reply, so ids differ.
        let arg0 = cb.add_inlet(vec![post(t_go)]);
        assert_eq!(arg0, InletId(1));
        pb.define(main, cb.finish());

        let mut cb = CodeblockBuilder::new("leaf");
        let v = cb.slot();
        let t = cb.thread();
        cb.add_inlet(vec![ldmsg(R0, 0), st(v, R0), post(t)]);
        cb.def_thread(t, 1, vec![ld(R1, v), ret(vec![R1])]);
        pb.define(leaf, cb.finish());

        pb.main(main, vec![Value::Int(0)]);
        let p = pb.build();
        assert_eq!(p.codeblocks.len(), 2);
        assert_eq!(p.codeblock(main).n_slots, 1);
    }

    #[test]
    #[should_panic(expected = "never defined")]
    fn undefined_codeblock_panics() {
        let mut pb = ProgramBuilder::new("x");
        let a = pb.declare("a");
        pb.main(a, vec![]);
        pb.build();
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn double_definition_panics() {
        let mut cb = CodeblockBuilder::new("c");
        let t = cb.thread();
        cb.def_thread(t, 1, vec![]);
        cb.def_thread(t, 1, vec![]);
    }

    #[test]
    fn slot_allocation_is_contiguous() {
        let mut cb = CodeblockBuilder::new("c");
        let a = cb.slot();
        let block = cb.slots(3);
        let b = cb.slot();
        assert_eq!(a, SlotId(0));
        assert_eq!(block, SlotId(1));
        assert_eq!(b, SlotId(4));
    }
}
