//! The Threaded Abstract Machine (TAM) program model.
//!
//! TAM (Culler et al., ASPLOS 1991) compiles implicitly-parallel programs
//! into *codeblocks*: sets of short message handlers (*inlets*) and
//! straight-line, entry-count-synchronized *threads* sharing a *frame* of
//! storage. This crate defines the program representation, a builder API,
//! validation, and the static analysis that the runtime lowerings in
//! `tamsim-core` use for the paper's Section 2.3 optimizations.
//!
//! Programs built here are implementation-agnostic: the same [`Program`]
//! lowers to both the Active-Messages and the Message-Driven back-ends.

pub mod analysis;
pub mod builder;
pub mod ids;
pub mod op;
pub mod program;
pub mod text;

pub use analysis::{validate, CbAnalysis, ValidateError, MAX_MSG_PAYLOAD};
pub use builder::{CodeblockBuilder, ProgramBuilder};
pub use ids::{regs, CodeblockId, InletId, SlotId, ThreadId, VReg};
pub use op::{ops, AluOp, FAluOp, TOp, TOperand, Value};
pub use program::{Codeblock, InitArray, Inlet, Program, Thread};
pub use text::{parse_program, program_to_text, ParseError};
