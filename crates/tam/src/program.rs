//! TAM programs: codeblocks, threads, inlets, and initial heap arrays.

use crate::analysis::{validate, ValidateError};
use crate::ids::{CodeblockId, ThreadId};
use crate::op::{TOp, Value};

/// A TAM thread: a straight-line instruction sequence guarded by an entry
/// count.
///
/// "Each thread has an entry count indicating the number of inlets and
/// threads in the same codeblock that must run before it." A
/// non-synchronizing thread has an implicit entry count of one (it is
/// enabled on the first post/fork).
#[derive(Debug, Clone, PartialEq)]
pub struct Thread {
    /// Initial entry count (≥ 1); 1 means non-synchronizing.
    pub entry_count: u32,
    /// The straight-line body.
    pub ops: Vec<TOp>,
    /// Atomic threads run with interrupts disabled even under the
    /// "enabled" AM variant of §2.4 — the paper's remedy for the §2.2
    /// inlet/thread atomicity problem ("interrupts are disabled during
    /// control operations in thread bodies"). Gate/stall protocol threads
    /// use this.
    pub atomic: bool,
}

impl Thread {
    /// A non-atomic thread (the common case).
    pub fn new(entry_count: u32, ops: Vec<TOp>) -> Self {
        Thread {
            entry_count,
            ops,
            atomic: false,
        }
    }

    /// Whether the thread synchronizes on more than one enabling event.
    pub fn is_synchronizing(&self) -> bool {
        self.entry_count > 1
    }
}

/// A TAM inlet: a short message handler that receives values from outside
/// the codeblock, typically storing them into the frame and posting a
/// dependent thread.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Inlet {
    /// The handler body.
    pub ops: Vec<TOp>,
}

/// A compiled codeblock: the unit of invocation, with a frame holding
/// arguments, locals, entry counts, and (in the AM implementation) the
/// ready-thread list.
#[derive(Debug, Clone, PartialEq)]
pub struct Codeblock {
    /// Human-readable name (diagnostics and reports).
    pub name: String,
    /// Number of user frame slots.
    pub n_slots: u16,
    /// Threads, indexed by [`ThreadId`].
    pub threads: Vec<Thread>,
    /// Inlets, indexed by [`crate::ids::InletId`]; inlet *i* receives
    /// argument *i* of a [`TOp::Call`].
    pub inlets: Vec<Inlet>,
}

impl Codeblock {
    /// The thread with the given id.
    pub fn thread(&self, t: ThreadId) -> &Thread {
        &self.threads[t.0 as usize]
    }

    /// Threads that synchronize (entry count > 1); these need count slots.
    pub fn synchronizing_threads(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_synchronizing())
            .map(|(i, _)| ThreadId(i as u16))
    }
}

/// An initial heap array, laid out as I-structure cells.
///
/// Each element occupies two heap words (`[state, value]`); `None` cells
/// start empty (readers defer until an [`TOp::IStore`]).
#[derive(Debug, Clone, PartialEq)]
pub struct InitArray {
    /// Name for diagnostics.
    pub name: String,
    /// Initial cells; `Some` = present, `None` = empty.
    pub cells: Vec<Option<Value>>,
}

impl InitArray {
    /// A fully-present array of the given values.
    pub fn present(name: &str, values: impl IntoIterator<Item = Value>) -> Self {
        InitArray {
            name: name.into(),
            cells: values.into_iter().map(Some).collect(),
        }
    }

    /// An all-empty array of `len` cells.
    pub fn empty(name: &str, len: usize) -> Self {
        InitArray {
            name: name.into(),
            cells: vec![None; len],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// A complete TAM program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (reports).
    pub name: String,
    /// All codeblocks, indexed by [`CodeblockId`].
    pub codeblocks: Vec<Codeblock>,
    /// The codeblock invoked at boot.
    pub main: CodeblockId,
    /// Arguments delivered to `main`'s argument inlets at boot.
    pub main_args: Vec<Value>,
    /// Initial heap arrays ([`Value::ArrayBase`] resolves to their load
    /// addresses).
    pub arrays: Vec<InitArray>,
}

impl Program {
    /// The codeblock with the given id.
    pub fn codeblock(&self, id: CodeblockId) -> &Codeblock {
        &self.codeblocks[id.0 as usize]
    }

    /// Validate structural invariants (see [`crate::analysis`]).
    pub fn validate(&self) -> Result<(), ValidateError> {
        validate(self)
    }

    /// Total TAM instructions across all codeblocks (size metric).
    pub fn static_ops(&self) -> usize {
        self.codeblocks
            .iter()
            .map(|cb| {
                cb.threads.iter().map(|t| t.ops.len()).sum::<usize>()
                    + cb.inlets.iter().map(|i| i.ops.len()).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronizing_threads_filter() {
        let cb = Codeblock {
            name: "t".into(),
            n_slots: 0,
            threads: vec![
                Thread::new(1, vec![]),
                Thread::new(3, vec![]),
                Thread::new(2, vec![]),
            ],
            inlets: vec![],
        };
        let sync: Vec<_> = cb.synchronizing_threads().collect();
        assert_eq!(sync, vec![ThreadId(1), ThreadId(2)]);
    }

    #[test]
    fn init_array_constructors() {
        let a = InitArray::present("a", [Value::Int(1), Value::Int(2)]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.cells[0], Some(Value::Int(1)));
        let b = InitArray::empty("b", 3);
        assert_eq!(b.len(), 3);
        assert!(b.cells.iter().all(|c| c.is_none()));
        assert!(!b.is_empty());
    }
}
