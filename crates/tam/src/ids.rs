//! Typed identifiers used throughout the TAM model.

/// Index of a codeblock within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CodeblockId(pub u16);

/// Index of a thread within a codeblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u16);

/// Index of an inlet within a codeblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InletId(pub u16);

/// Index of a user frame slot within a codeblock's frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u16);

/// A virtual register used by TAM instruction operands.
///
/// Virtual registers map one-to-one onto machine registers `r0..r10`;
/// `r11` is reserved for the MD implementation's LCV top pointer,
/// `r12`/`r13` are lowering scratch, `r14` is the link register, and `r15`
/// is the frame pointer. [`VReg::LIMIT`] bounds the usable range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u8);

impl VReg {
    /// Number of virtual registers available to TAM code.
    pub const LIMIT: u8 = 11;
}

/// Short aliases for the virtual registers, for readable program sources.
pub mod regs {
    use super::VReg;
    /// Virtual register 0.
    pub const R0: VReg = VReg(0);
    /// Virtual register 1.
    pub const R1: VReg = VReg(1);
    /// Virtual register 2.
    pub const R2: VReg = VReg(2);
    /// Virtual register 3.
    pub const R3: VReg = VReg(3);
    /// Virtual register 4.
    pub const R4: VReg = VReg(4);
    /// Virtual register 5.
    pub const R5: VReg = VReg(5);
    /// Virtual register 6.
    pub const R6: VReg = VReg(6);
    /// Virtual register 7.
    pub const R7: VReg = VReg(7);
    /// Virtual register 8.
    pub const R8: VReg = VReg(8);
    /// Virtual register 9.
    pub const R9: VReg = VReg(9);
    /// Virtual register 10.
    pub const R10: VReg = VReg(10);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vreg_aliases_are_in_range() {
        for r in [regs::R0, regs::R5, regs::R10] {
            assert!(r.0 < VReg::LIMIT, "{r:?}");
        }
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ThreadId(0) < ThreadId(3));
        assert!(SlotId(1) < SlotId(2));
    }
}
