//! A TL0-flavoured textual format for TAM programs.
//!
//! Berkeley TAM programs were written in TL0, a threaded assembly
//! language. This module provides a small line-oriented dialect so
//! programs can be authored, versioned, and run without writing Rust:
//! parse with [`parse_program`], render with [`program_to_text`], and run
//! via `tamsim run FILE`.
//!
//! ```text
//! program double
//! codeblock main
//!   slot x
//!   inlet arg
//!     ldmsg r0 0
//!     st x r0
//!     post go
//!   thread go
//!     ld r0 x
//!     add r1 r0 r0
//!     return r1
//! main main 21
//! ```
//!
//! Grammar notes: `#` starts a comment; indentation is ignored; a
//! `thread NAME [count N] [atomic]` or `inlet NAME` header opens a body
//! that runs until the next header/declaration; immediates are written
//! bare (`7`, `-3`, `2.5`), registers `r0`–`r10`, array bases `@name`.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ids::{CodeblockId, InletId, SlotId, ThreadId, VReg};
use crate::op::{AluOp, FAluOp, TOp, TOperand, Value};
use crate::program::{Codeblock, InitArray, Inlet, Program, Thread};

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn parse_reg(line: usize, tok: &str) -> Result<VReg, ParseError> {
    let Some(n) = tok.strip_prefix('r').and_then(|s| s.parse::<u8>().ok()) else {
        return err(line, format!("expected register, got `{tok}`"));
    };
    if n >= VReg::LIMIT {
        return err(
            line,
            format!("register {tok} out of range (r0..r{})", VReg::LIMIT - 1),
        );
    }
    Ok(VReg(n))
}

fn parse_int(line: usize, tok: &str) -> Result<i64, ParseError> {
    tok.parse::<i64>().map_err(|_| ParseError {
        line,
        message: format!("expected integer, got `{tok}`"),
    })
}

fn alu_op(tok: &str) -> Option<AluOp> {
    Some(match tok {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "eq" => AluOp::Eq,
        "ne" => AluOp::Ne,
        "lt" => AluOp::Lt,
        "le" => AluOp::Le,
        "gt" => AluOp::Gt,
        "ge" => AluOp::Ge,
        "min" => AluOp::Min,
        "max" => AluOp::Max,
        _ => return None,
    })
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Eq => "eq",
        AluOp::Ne => "ne",
        AluOp::Lt => "lt",
        AluOp::Le => "le",
        AluOp::Gt => "gt",
        AluOp::Ge => "ge",
        AluOp::Min => "min",
        AluOp::Max => "max",
    }
}

fn falu_op(tok: &str) -> Option<FAluOp> {
    Some(match tok {
        "fadd" => FAluOp::FAdd,
        "fsub" => FAluOp::FSub,
        "fmul" => FAluOp::FMul,
        "fdiv" => FAluOp::FDiv,
        "flt" => FAluOp::FLt,
        "fle" => FAluOp::FLe,
        "feq" => FAluOp::FEq,
        "itof" => FAluOp::ItoF,
        "ftoi" => FAluOp::FtoI,
        "fneg" => FAluOp::FNeg,
        "fabs" => FAluOp::FAbs,
        "fmin" => FAluOp::FMin,
        "fmax" => FAluOp::FMax,
        _ => return None,
    })
}

fn falu_name(op: FAluOp) -> &'static str {
    match op {
        FAluOp::FAdd => "fadd",
        FAluOp::FSub => "fsub",
        FAluOp::FMul => "fmul",
        FAluOp::FDiv => "fdiv",
        FAluOp::FLt => "flt",
        FAluOp::FLe => "fle",
        FAluOp::FEq => "feq",
        FAluOp::ItoF => "itof",
        FAluOp::FtoI => "ftoi",
        FAluOp::FNeg => "fneg",
        FAluOp::FAbs => "fabs",
        FAluOp::FMin => "fmin",
        FAluOp::FMax => "fmax",
    }
}

/// Symbol tables for one codeblock while parsing.
#[derive(Default)]
struct CbSyms {
    slots: HashMap<String, SlotId>,
    n_slots: u16,
    threads: HashMap<String, ThreadId>,
    inlets: HashMap<String, InletId>,
}

#[derive(Clone, Copy, PartialEq)]
enum BodyKind {
    Thread(ThreadId, u32, bool),
    Inlet(InletId),
}

/// Parse a program from its textual form.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    // Pass 1: collect declarations (program/codeblock/slot/thread/inlet
    // names and arrays) so bodies can forward-reference anything.
    let mut name = None::<String>;
    let mut cb_ids: HashMap<String, CodeblockId> = HashMap::new();
    let mut cb_order: Vec<String> = Vec::new();
    let mut syms: Vec<CbSyms> = Vec::new();
    let mut arrays: Vec<InitArray> = Vec::new();
    let mut array_ids: HashMap<String, usize> = HashMap::new();

    let lines: Vec<(usize, Vec<&str>)> = source
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let l = l.split('#').next().unwrap_or("");
            (i + 1, l.split_whitespace().collect::<Vec<_>>())
        })
        .filter(|(_, toks)| !toks.is_empty())
        .collect();

    let mut current: Option<usize> = None;
    for (ln, toks) in &lines {
        let ln = *ln;
        match toks[0] {
            "program" => {
                if toks.len() != 2 {
                    return err(ln, "usage: program NAME");
                }
                name = Some(toks[1].to_string());
            }
            "codeblock" => {
                if toks.len() != 2 {
                    return err(ln, "usage: codeblock NAME");
                }
                let n = toks[1].to_string();
                if cb_ids.contains_key(&n) {
                    return err(ln, format!("codeblock `{n}` redefined"));
                }
                cb_ids.insert(n.clone(), CodeblockId(cb_order.len() as u16));
                cb_order.push(n);
                syms.push(CbSyms::default());
                current = Some(syms.len() - 1);
            }
            "array" => {
                if toks.len() < 3 {
                    return err(ln, "usage: array NAME present v… | array NAME empty N");
                }
                let aname = toks[1].to_string();
                let arr = match toks[2] {
                    "present" => InitArray {
                        name: aname.clone(),
                        cells: toks[3..]
                            .iter()
                            .map(|t| parse_value_token(ln, t).map(Some))
                            .collect::<Result<_, _>>()?,
                    },
                    "empty" => {
                        let n = parse_int(ln, toks.get(3).copied().unwrap_or(""))?;
                        InitArray::empty(&aname, n as usize)
                    }
                    other => return err(ln, format!("array kind `{other}`")),
                };
                array_ids.insert(aname, arrays.len());
                arrays.push(arr);
            }
            "slot" | "slots" => {
                let Some(c) = current else {
                    return err(ln, "slot outside codeblock");
                };
                let s = &mut syms[c];
                let sname = toks.get(1).copied().unwrap_or("");
                if sname.is_empty() {
                    return err(ln, "usage: slot NAME | slots NAME N");
                }
                let count = if toks[0] == "slots" {
                    parse_int(ln, toks.get(2).copied().unwrap_or(""))? as u16
                } else {
                    1
                };
                s.slots.insert(sname.to_string(), SlotId(s.n_slots));
                s.n_slots += count;
            }
            "thread" => {
                let Some(c) = current else {
                    return err(ln, "thread outside codeblock");
                };
                let s = &mut syms[c];
                let t = ThreadId(s.threads.len() as u16);
                s.threads.insert(toks[1].to_string(), t);
            }
            "inlet" => {
                let Some(c) = current else {
                    return err(ln, "inlet outside codeblock");
                };
                let s = &mut syms[c];
                let i = InletId(s.inlets.len() as u16);
                s.inlets.insert(toks[1].to_string(), i);
            }
            _ => {}
        }
    }
    let name = name.ok_or(ParseError {
        line: 1,
        message: "missing `program NAME`".into(),
    })?;

    // Pass 2: parse bodies and main.
    let mut codeblocks: Vec<Codeblock> = cb_order
        .iter()
        .enumerate()
        .map(|(i, n)| Codeblock {
            name: n.clone(),
            n_slots: syms[i].n_slots,
            threads: vec![Thread::new(1, vec![]); syms[i].threads.len()],
            inlets: vec![Inlet::default(); syms[i].inlets.len()],
        })
        .collect();
    let mut main: Option<(CodeblockId, Vec<Value>)> = None;

    let mut current: Option<usize> = None;
    let mut body: Option<BodyKind> = None;
    let mut ops: Vec<TOp> = Vec::new();

    let flush = |codeblocks: &mut Vec<Codeblock>,
                 current: Option<usize>,
                 body: &mut Option<BodyKind>,
                 ops: &mut Vec<TOp>| {
        if let (Some(c), Some(kind)) = (current, body.take()) {
            let taken = std::mem::take(ops);
            match kind {
                BodyKind::Thread(t, count, atomic) => {
                    codeblocks[c].threads[t.0 as usize] = Thread {
                        entry_count: count,
                        ops: taken,
                        atomic,
                    };
                }
                BodyKind::Inlet(i) => codeblocks[c].inlets[i.0 as usize] = Inlet { ops: taken },
            }
        }
    };

    for (ln, toks) in &lines {
        let ln = *ln;
        match toks[0] {
            "program" => {}
            "codeblock" => {
                flush(&mut codeblocks, current, &mut body, &mut ops);
                current = Some(cb_ids[toks[1]].0 as usize);
            }
            "array" | "slot" | "slots" => {}
            "thread" => {
                flush(&mut codeblocks, current, &mut body, &mut ops);
                let c = current.unwrap();
                let t = syms[c].threads[toks[1]];
                let mut count = 1u32;
                let mut atomic = false;
                let mut k = 2;
                while k < toks.len() {
                    match toks[k] {
                        "count" => {
                            count = parse_int(ln, toks.get(k + 1).copied().unwrap_or(""))? as u32;
                            k += 2;
                        }
                        "atomic" => {
                            atomic = true;
                            k += 1;
                        }
                        other => return err(ln, format!("unexpected `{other}`")),
                    }
                }
                body = Some(BodyKind::Thread(t, count, atomic));
            }
            "inlet" => {
                flush(&mut codeblocks, current, &mut body, &mut ops);
                let c = current.unwrap();
                body = Some(BodyKind::Inlet(syms[c].inlets[toks[1]]));
            }
            "main" => {
                flush(&mut codeblocks, current, &mut body, &mut ops);
                current = None;
                let Some(&cb) = toks.get(1).and_then(|n| cb_ids.get(*n)) else {
                    return err(ln, "usage: main CODEBLOCK args…");
                };
                let args = toks[2..]
                    .iter()
                    .map(|t| {
                        if let Some(a) = t.strip_prefix('@') {
                            array_ids
                                .get(a)
                                .map(|i| Value::ArrayBase(*i))
                                .ok_or(ParseError {
                                    line: ln,
                                    message: format!("unknown array `{a}`"),
                                })
                        } else {
                            parse_value_token(ln, t)
                        }
                    })
                    .collect::<Result<_, _>>()?;
                main = Some((cb, args));
            }
            _ => {
                let Some(c) = current else {
                    return err(ln, format!("instruction `{}` outside a body", toks[0]));
                };
                if body.is_none() {
                    return err(ln, format!("instruction `{}` outside a body", toks[0]));
                }
                ops.push(parse_op(ln, toks, &syms[c], &cb_ids, &array_ids)?);
            }
        }
    }
    flush(&mut codeblocks, current, &mut body, &mut ops);

    let (main, main_args) = main.ok_or(ParseError {
        line: 1,
        message: "missing `main` declaration".into(),
    })?;
    let program = Program {
        name,
        codeblocks,
        main,
        main_args,
        arrays,
    };
    program.validate().map_err(|e| ParseError {
        line: 0,
        message: format!("validation: {e}"),
    })?;
    Ok(program)
}

fn parse_value_token(line: usize, tok: &str) -> Result<Value, ParseError> {
    if tok.contains('.') {
        tok.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| ParseError {
                line,
                message: format!("bad float `{tok}`"),
            })
    } else {
        parse_int(line, tok).map(Value::Int)
    }
}

fn operand(line: usize, tok: &str, _s: &CbSyms) -> Result<TOperand, ParseError> {
    if tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit()) {
        Ok(TOperand::Reg(parse_reg(line, tok)?))
    } else {
        Ok(TOperand::Imm(parse_int(line, tok)?))
    }
}

fn lookup<T: Copy>(
    line: usize,
    map: &HashMap<String, T>,
    tok: &str,
    what: &str,
) -> Result<T, ParseError> {
    map.get(tok).copied().ok_or(ParseError {
        line,
        message: format!("unknown {what} `{tok}`"),
    })
}

fn parse_op(
    ln: usize,
    toks: &[&str],
    s: &CbSyms,
    cbs: &HashMap<String, CodeblockId>,
    arrays: &HashMap<String, usize>,
) -> Result<TOp, ParseError> {
    let need = |n: usize| -> Result<(), ParseError> {
        if toks.len() == n {
            Ok(())
        } else {
            err(ln, format!("`{}` takes {} operands", toks[0], n - 1))
        }
    };
    let reg = |i: usize| parse_reg(ln, toks[i]);
    let slot = |i: usize| lookup(ln, &s.slots, toks[i], "slot");
    let thread = |i: usize| lookup(ln, &s.threads, toks[i], "thread");
    let inlet = |i: usize| lookup(ln, &s.inlets, toks[i], "inlet");

    if let Some(op) = alu_op(toks[0]) {
        need(4)?;
        return Ok(TOp::Alu {
            op,
            d: reg(1)?,
            a: reg(2)?,
            b: operand(ln, toks[3], s)?,
        });
    }
    if let Some(op) = falu_op(toks[0]) {
        need(4)?;
        return Ok(TOp::FAlu {
            op,
            d: reg(1)?,
            a: reg(2)?,
            b: reg(3)?,
        });
    }
    Ok(match toks[0] {
        "movi" => {
            need(3)?;
            TOp::MovI {
                d: reg(1)?,
                v: Value::Int(parse_int(ln, toks[2])?),
            }
        }
        "movf" => {
            need(3)?;
            let f = toks[2].parse::<f64>().map_err(|_| ParseError {
                line: ln,
                message: format!("bad float `{}`", toks[2]),
            })?;
            TOp::MovI {
                d: reg(1)?,
                v: Value::Float(f),
            }
        }
        "movarr" => {
            need(3)?;
            let a = toks[2].strip_prefix('@').unwrap_or(toks[2]);
            TOp::MovI {
                d: reg(1)?,
                v: Value::ArrayBase(lookup(ln, arrays, a, "array")?),
            }
        }
        "mov" => {
            need(3)?;
            TOp::Mov {
                d: reg(1)?,
                s: reg(2)?,
            }
        }
        "ld" => {
            need(3)?;
            TOp::LdSlot {
                d: reg(1)?,
                slot: slot(2)?,
            }
        }
        "st" => {
            need(3)?;
            TOp::StSlot {
                slot: slot(1)?,
                s: reg(2)?,
            }
        }
        "ldx" => {
            need(4)?;
            TOp::LdSlotIdx {
                d: reg(1)?,
                base: slot(2)?,
                idx: reg(3)?,
            }
        }
        "stx" => {
            need(4)?;
            TOp::StSlotIdx {
                base: slot(1)?,
                idx: reg(2)?,
                s: reg(3)?,
            }
        }
        "ldmsg" => {
            need(3)?;
            TOp::LdMsg {
                d: reg(1)?,
                idx: parse_int(ln, toks[2])? as u8,
            }
        }
        "fork" => {
            need(2)?;
            TOp::Fork { t: thread(1)? }
        }
        "forkif" => {
            need(3)?;
            TOp::ForkIf {
                c: reg(1)?,
                t: thread(2)?,
            }
        }
        "forkelse" => {
            need(4)?;
            TOp::ForkIfElse {
                c: reg(1)?,
                t: thread(2)?,
                f: thread(3)?,
            }
        }
        "post" => {
            need(2)?;
            TOp::Post { t: thread(1)? }
        }
        "postif" => {
            need(3)?;
            TOp::PostIf {
                c: reg(1)?,
                t: thread(2)?,
            }
        }
        "reset" => {
            need(2)?;
            TOp::ResetCount { t: thread(1)? }
        }
        "call" => {
            // call CB reply r1 r2 …
            if toks.len() < 3 {
                return err(ln, "usage: call CODEBLOCK REPLY_INLET args…");
            }
            let cb = lookup(ln, cbs, toks[1], "codeblock")?;
            let reply = inlet(2)?;
            let args = toks[3..]
                .iter()
                .map(|t| parse_reg(ln, t))
                .collect::<Result<_, _>>()?;
            TOp::Call { cb, args, reply }
        }
        "return" => TOp::Return {
            vals: toks[1..]
                .iter()
                .map(|t| parse_reg(ln, t))
                .collect::<Result<_, _>>()?,
        },
        "sendto" => {
            // sendto FRAME_REG CB INLET r1 r2 …
            if toks.len() < 4 {
                return err(ln, "usage: sendto FRAME CODEBLOCK INLET vals…");
            }
            let frame = reg(1)?;
            let cb = lookup(ln, cbs, toks[2], "codeblock")?;
            // Target inlet belongs to the target codeblock: resolve by
            // index only when numeric, else this codeblock's names can't
            // apply — require a numeric inlet index for cross-codeblock
            // sends.
            let inlet_idx = parse_int(ln, toks[3])? as u16;
            let vals = toks[4..]
                .iter()
                .map(|t| parse_reg(ln, t))
                .collect::<Result<_, _>>()?;
            TOp::SendToInlet {
                frame,
                cb,
                inlet: InletId(inlet_idx),
                vals,
            }
        }
        "halloc" => {
            need(3)?;
            TOp::HAlloc {
                d: reg(1)?,
                words: operand(ln, toks[2], s)?,
            }
        }
        "ifetch" => {
            need(4)?;
            TOp::IFetch {
                addr: reg(1)?,
                tag: reg(2)?,
                reply: inlet(3)?,
            }
        }
        "istore" => {
            need(3)?;
            TOp::IStore {
                addr: reg(1)?,
                val: reg(2)?,
            }
        }
        "myframe" => {
            need(2)?;
            TOp::MyFrame { d: reg(1)? }
        }
        "halt" => TOp::Halt,
        other => return err(ln, format!("unknown instruction `{other}`")),
    })
}

/// Render a program in the textual format (canonical names `sN`, `tN`,
/// `iN`); `parse_program(program_to_text(p))` is structurally identical
/// to `p`.
pub fn program_to_text(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", p.name);
    for a in &p.arrays {
        if a.cells.iter().all(|c| c.is_none()) {
            let _ = writeln!(out, "array {} empty {}", a.name, a.len());
        } else {
            let _ = write!(out, "array {} present", a.name);
            for c in &a.cells {
                match c {
                    Some(v) => {
                        let _ = write!(out, " {}", value_text(v));
                    }
                    None => {
                        // Mixed arrays are not expressible; emit zeros to
                        // stay parseable and note it.
                        let _ = write!(out, " 0");
                    }
                }
            }
            let _ = writeln!(out);
        }
    }
    for cb in &p.codeblocks {
        let _ = writeln!(out, "codeblock {}", cb.name);
        for sidx in 0..cb.n_slots {
            let _ = writeln!(out, "  slot s{sidx}");
        }
        for (i, inlet) in cb.inlets.iter().enumerate() {
            let _ = writeln!(out, "  inlet i{i}");
            for op in &inlet.ops {
                let _ = writeln!(out, "    {}", op_text(op, p, cb));
            }
        }
        for (t, thread) in cb.threads.iter().enumerate() {
            let _ = write!(out, "  thread t{t}");
            if thread.entry_count != 1 {
                let _ = write!(out, " count {}", thread.entry_count);
            }
            if thread.atomic {
                let _ = write!(out, " atomic");
            }
            let _ = writeln!(out);
            for op in &thread.ops {
                let _ = writeln!(out, "    {}", op_text(op, p, cb));
            }
        }
    }
    let _ = write!(out, "main {}", p.codeblock(p.main).name);
    for v in &p.main_args {
        match v {
            Value::ArrayBase(i) => {
                let _ = write!(out, " @{}", p.arrays[*i].name);
            }
            other => {
                let _ = write!(out, " {}", value_text(other));
            }
        }
    }
    let _ = writeln!(out);
    out
}

fn value_text(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            let s = format!("{f}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::ArrayBase(i) => format!("@{i}"),
    }
}

fn op_text(op: &TOp, p: &Program, _cb: &Codeblock) -> String {
    let r = |v: &VReg| format!("r{}", v.0);
    let sl = |s: &SlotId| format!("s{}", s.0);
    let th = |t: &ThreadId| format!("t{}", t.0);
    let il = |i: &InletId| format!("i{}", i.0);
    let od = |o: &TOperand| match o {
        TOperand::Reg(v) => r(v),
        TOperand::Imm(i) => i.to_string(),
    };
    match op {
        TOp::MovI { d, v } => match v {
            Value::Int(i) => format!("movi {} {i}", r(d)),
            Value::Float(f) => format!("movf {} {}", r(d), value_text(&Value::Float(*f))),
            Value::ArrayBase(i) => format!("movarr {} @{}", r(d), p.arrays[*i].name),
        },
        TOp::Mov { d, s } => format!("mov {} {}", r(d), r(s)),
        TOp::Alu { op, d, a, b } => format!("{} {} {} {}", alu_name(*op), r(d), r(a), od(b)),
        TOp::FAlu { op, d, a, b } => format!("{} {} {} {}", falu_name(*op), r(d), r(a), r(b)),
        TOp::LdSlot { d, slot } => format!("ld {} {}", r(d), sl(slot)),
        TOp::StSlot { slot, s } => format!("st {} {}", sl(slot), r(s)),
        TOp::LdSlotIdx { d, base, idx } => format!("ldx {} {} {}", r(d), sl(base), r(idx)),
        TOp::StSlotIdx { base, idx, s } => format!("stx {} {} {}", sl(base), r(idx), r(s)),
        TOp::LdMsg { d, idx } => format!("ldmsg {} {idx}", r(d)),
        TOp::Fork { t } => format!("fork {}", th(t)),
        TOp::ForkIf { c, t } => format!("forkif {} {}", r(c), th(t)),
        TOp::ForkIfElse { c, t, f } => format!("forkelse {} {} {}", r(c), th(t), th(f)),
        TOp::Post { t } => format!("post {}", th(t)),
        TOp::PostIf { c, t } => format!("postif {} {}", r(c), th(t)),
        TOp::ResetCount { t } => format!("reset {}", th(t)),
        TOp::Call { cb, args, reply } => {
            let mut s = format!("call {} {}", p.codeblock(*cb).name, il(reply));
            for a in args {
                s.push(' ');
                s.push_str(&r(a));
            }
            s
        }
        TOp::Return { vals } => {
            let mut s = "return".to_string();
            for v in vals {
                s.push(' ');
                s.push_str(&r(v));
            }
            s
        }
        TOp::SendToInlet {
            frame,
            cb,
            inlet,
            vals,
        } => {
            let mut s = format!("sendto {} {} {}", r(frame), p.codeblock(*cb).name, inlet.0);
            for v in vals {
                s.push(' ');
                s.push_str(&r(v));
            }
            s
        }
        TOp::HAlloc { d, words } => format!("halloc {} {}", r(d), od(words)),
        TOp::IFetch { addr, tag, reply } => {
            format!("ifetch {} {} {}", r(addr), r(tag), il(reply))
        }
        TOp::IStore { addr, val } => format!("istore {} {}", r(addr), r(val)),
        TOp::MyFrame { d } => format!("myframe {}", r(d)),
        TOp::Halt => "halt".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOUBLE: &str = "\
# doubles its argument
program double
codeblock main
  slot x
  inlet arg
    ldmsg r0 0
    st x r0
    post go
  thread go
    ld r0 x
    add r1 r0 r0
    return r1
main main 21
";

    #[test]
    fn parses_a_minimal_program() {
        let p = parse_program(DOUBLE).unwrap();
        assert_eq!(p.name, "double");
        assert_eq!(p.codeblocks.len(), 1);
        assert_eq!(p.codeblocks[0].threads.len(), 1);
        assert_eq!(p.codeblocks[0].inlets.len(), 1);
        assert_eq!(p.main_args, vec![Value::Int(21)]);
    }

    #[test]
    fn roundtrips_through_text() {
        let p = parse_program(DOUBLE).unwrap();
        let text = program_to_text(&p);
        let q = parse_program(&text).unwrap();
        assert_eq!(p.codeblocks, q.codeblocks);
        assert_eq!(p.main_args, q.main_args);
    }

    #[test]
    fn parses_arrays_and_array_args() {
        let src = "\
program arr
array data present 1 2 3
array out empty 3
codeblock main
  slot b
  inlet a
    ldmsg r0 0
    st b r0
    post t
  thread t
    movarr r0 @data
    return r0
main main @data
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.arrays.len(), 2);
        assert_eq!(p.arrays[0].cells[2], Some(Value::Int(3)));
        assert_eq!(p.main_args, vec![Value::ArrayBase(0)]);
        // Round-trip keeps the arrays.
        let q = parse_program(&program_to_text(&p)).unwrap();
        assert_eq!(p.arrays, q.arrays);
    }

    #[test]
    fn thread_attributes_parse() {
        let src = "\
program t
codeblock main
  inlet a
    post w
  inlet b
    post w
  thread w count 2 atomic
    movi r0 1
    halt
main main 0 0
";
        let p = parse_program(src).unwrap();
        let t = &p.codeblocks[0].threads[0];
        assert_eq!(t.entry_count, 2);
        assert!(t.atomic);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "program x\ncodeblock main\n  inlet a\n    bogus r0\nmain main 0\n";
        let e = parse_program(src).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unknown_names_are_rejected() {
        let src = "\
program x
codeblock main
  inlet a
    post nothere
main main 0
";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("unknown thread"), "{e}");
    }

    #[test]
    fn validation_failures_surface() {
        // LdMsg in a thread is a context violation caught by validate().
        let src = "\
program x
codeblock main
  inlet a
    post t
  thread t
    ldmsg r0 0
main main 0
";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("validation"), "{e}");
    }

    #[test]
    fn builder_programs_roundtrip() {
        use crate::builder::{CodeblockBuilder, ProgramBuilder};
        use crate::ids::regs::*;
        use crate::op::ops::*;
        let mut pb = ProgramBuilder::new("rt");
        let main = pb.declare("main");
        let mut cb = CodeblockBuilder::new("main");
        let x = cb.slot();
        let t = cb.thread();
        cb.add_inlet(vec![ldmsg(R0, 0), st(x, R0), post(t)]);
        cb.def_thread(t, 1, vec![ld(R0, x), fork_if(R0, t)]);
        pb.define(main, cb.finish());
        pb.main(main, vec![Value::Int(0)]);
        let p = pb.build();
        let q = parse_program(&program_to_text(&p)).unwrap();
        assert_eq!(p.codeblocks, q.codeblocks);
    }
}
