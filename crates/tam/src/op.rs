//! The TAM instruction set.
//!
//! TAM threads are *straight-line*: the only control transfer within a
//! codeblock is forking other threads (possibly conditionally), exactly as
//! in the Berkeley model, where "threads are sequences of code" and
//! "inlets and threads initiate threads through the post and fork
//! instructions". Operations of unbounded latency (heap reads) are
//! split-phased: [`TOp::IFetch`] issues the request and the reply is
//! delivered to an inlet.

use crate::ids::{CodeblockId, InletId, SlotId, ThreadId, VReg};
pub use tamsim_mdp::{AluOp, FAluOp};

/// A compile-time constant value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A floating-point constant.
    Float(f64),
    /// The load-time base address of the program's `arrays[i]`.
    ArrayBase(usize),
}

/// Second operand of an integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TOperand {
    /// A virtual register.
    Reg(VReg),
    /// An immediate integer.
    Imm(i64),
}

/// One TAM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum TOp {
    /// `d <- constant`.
    MovI { d: VReg, v: Value },
    /// `d <- s`.
    Mov { d: VReg, s: VReg },
    /// Integer ALU operation.
    Alu {
        op: AluOp,
        d: VReg,
        a: VReg,
        b: TOperand,
    },
    /// Floating-point operation (`b` ignored for unary ops).
    FAlu {
        op: FAluOp,
        d: VReg,
        a: VReg,
        b: VReg,
    },
    /// Load a frame slot: `d <- frame[slot]`.
    LdSlot { d: VReg, slot: SlotId },
    /// Store a frame slot: `frame[slot] <- s`.
    StSlot { slot: SlotId, s: VReg },
    /// Dynamically indexed frame load: `d <- frame[base + idx]`.
    ///
    /// Used by programs that keep arrays in frame memory (the paper's
    /// selection sort makes "only 3 procedure calls in its entire
    /// execution, leading to high locality for frame memory").
    LdSlotIdx { d: VReg, base: SlotId, idx: VReg },
    /// Dynamically indexed frame store: `frame[base + idx] <- s`.
    StSlotIdx { base: SlotId, idx: VReg, s: VReg },
    /// (Inlets only) load payload word `idx` of the current message;
    /// `idx` 0 is the first user value.
    LdMsg { d: VReg, idx: u8 },

    /// Fork a thread: decrement its entry count; enable it when zero.
    Fork { t: ThreadId },
    /// Fork `t` only if `c` is nonzero.
    ForkIf { c: VReg, t: ThreadId },
    /// Fork `t` if `c` is nonzero, else fork `f`.
    ForkIfElse { c: VReg, t: ThreadId, f: ThreadId },
    /// (Inlets only) post a thread — identical synchronization to `Fork`,
    /// but performed from message-handler context.
    Post { t: ThreadId },
    /// (Inlets only) post `t` only when `c` is nonzero (stall/kick
    /// protocols: resume a parked consumer without flooding the ready
    /// list).
    PostIf { c: VReg, t: ThreadId },
    /// Re-arm a synchronizing thread by *adding* its initial entry count
    /// to the counter (credit-based, for iterative codeblocks that reuse
    /// their threads). The additive form is immune to posts that race the
    /// re-arm — precisely the §2.2 atomicity hazard between inlets and
    /// threads.
    ResetCount { t: ThreadId },

    /// Split-phase codeblock invocation: allocate a frame for `cb`, deliver
    /// `args` to its argument inlets (arg *i* to inlet *i*), and arrange
    /// for the callee's [`TOp::Return`] values to arrive at this frame's
    /// `reply` inlet.
    Call {
        cb: CodeblockId,
        args: Vec<VReg>,
        reply: InletId,
    },
    /// Return `vals` to the caller's reply inlet and free this frame.
    /// Must be the last operation of its thread.
    Return { vals: Vec<VReg> },
    /// Send `vals` to inlet `inlet` of an existing activation of `cb`
    /// whose frame pointer is in `frame` (inter-activation dataflow, e.g.
    /// wavefront neighbours).
    SendToInlet {
        frame: VReg,
        cb: CodeblockId,
        inlet: InletId,
        vals: Vec<VReg>,
    },

    /// Allocate `words` words of heap: `d <- base address` (runtime
    /// library call; see DESIGN.md on why allocation is synchronous).
    HAlloc { d: VReg, words: TOperand },
    /// Split-phase I-structure fetch of the element at heap address
    /// `addr`; the reply (`[value, tag]`) is delivered to `reply`.
    IFetch {
        addr: VReg,
        tag: VReg,
        reply: InletId,
    },
    /// I-structure store of `val` to heap address `addr`; satisfies any
    /// deferred readers.
    IStore { addr: VReg, val: VReg },

    /// `d <- this activation's frame pointer` (for registering the frame
    /// with a peer so it can `SendToInlet` here).
    MyFrame { d: VReg },

    /// Stop the machine (only the synthetic completion codeblock).
    Halt,
}

impl TOp {
    /// Whether this op is only legal inside an inlet.
    pub fn inlet_only(&self) -> bool {
        matches!(
            self,
            TOp::LdMsg { .. } | TOp::Post { .. } | TOp::PostIf { .. }
        )
    }

    /// Whether this op is only legal inside a thread.
    pub fn thread_only(&self) -> bool {
        matches!(
            self,
            TOp::Fork { .. }
                | TOp::ForkIf { .. }
                | TOp::ForkIfElse { .. }
                | TOp::Call { .. }
                | TOp::Return { .. }
                | TOp::HAlloc { .. }
        )
    }

    /// The threads this op can enable (fork/post targets).
    pub fn targets(&self) -> Vec<ThreadId> {
        match self {
            TOp::Fork { t }
            | TOp::ForkIf { t, .. }
            | TOp::Post { t }
            | TOp::PostIf { t, .. }
            | TOp::ResetCount { t } => {
                vec![*t]
            }
            TOp::ForkIfElse { t, f, .. } => vec![*t, *f],
            _ => Vec::new(),
        }
    }
}

/// Constructor helpers for terse program sources.
pub mod ops {
    use super::*;

    /// Register operand.
    pub fn reg(r: VReg) -> TOperand {
        TOperand::Reg(r)
    }
    /// Immediate operand.
    pub fn imm(v: i64) -> TOperand {
        TOperand::Imm(v)
    }
    /// `d <- integer constant`.
    pub fn movi(d: VReg, v: i64) -> TOp {
        TOp::MovI {
            d,
            v: Value::Int(v),
        }
    }
    /// `d <- float constant`.
    pub fn movf(d: VReg, v: f64) -> TOp {
        TOp::MovI {
            d,
            v: Value::Float(v),
        }
    }
    /// `d <- base address of program array i`.
    pub fn movarr(d: VReg, i: usize) -> TOp {
        TOp::MovI {
            d,
            v: Value::ArrayBase(i),
        }
    }
    /// `d <- s`.
    pub fn mov(d: VReg, s: VReg) -> TOp {
        TOp::Mov { d, s }
    }
    /// Integer ALU.
    pub fn alu(op: AluOp, d: VReg, a: VReg, b: TOperand) -> TOp {
        TOp::Alu { op, d, a, b }
    }
    /// Float ALU.
    pub fn falu(op: FAluOp, d: VReg, a: VReg, b: VReg) -> TOp {
        TOp::FAlu { op, d, a, b }
    }
    /// Load frame slot.
    pub fn ld(d: VReg, slot: SlotId) -> TOp {
        TOp::LdSlot { d, slot }
    }
    /// Store frame slot.
    pub fn st(slot: SlotId, s: VReg) -> TOp {
        TOp::StSlot { slot, s }
    }
    /// Indexed frame load.
    pub fn ldx(d: VReg, base: SlotId, idx: VReg) -> TOp {
        TOp::LdSlotIdx { d, base, idx }
    }
    /// Indexed frame store.
    pub fn stx(base: SlotId, idx: VReg, s: VReg) -> TOp {
        TOp::StSlotIdx { base, idx, s }
    }
    /// Inlet message-payload load.
    pub fn ldmsg(d: VReg, idx: u8) -> TOp {
        TOp::LdMsg { d, idx }
    }
    /// Fork.
    pub fn fork(t: ThreadId) -> TOp {
        TOp::Fork { t }
    }
    /// Conditional fork.
    pub fn fork_if(c: VReg, t: ThreadId) -> TOp {
        TOp::ForkIf { c, t }
    }
    /// Two-way conditional fork.
    pub fn fork_if_else(c: VReg, t: ThreadId, f: ThreadId) -> TOp {
        TOp::ForkIfElse { c, t, f }
    }
    /// Post (inlets).
    pub fn post(t: ThreadId) -> TOp {
        TOp::Post { t }
    }
    /// Conditional post (inlets).
    pub fn post_if(c: VReg, t: ThreadId) -> TOp {
        TOp::PostIf { c, t }
    }
    /// Re-arm a synchronizing thread.
    pub fn reset_count(t: ThreadId) -> TOp {
        TOp::ResetCount { t }
    }
    /// Codeblock call.
    pub fn call(cb: CodeblockId, args: Vec<VReg>, reply: InletId) -> TOp {
        TOp::Call { cb, args, reply }
    }
    /// Return to caller.
    pub fn ret(vals: Vec<VReg>) -> TOp {
        TOp::Return { vals }
    }
    /// Send to an inlet of another activation.
    pub fn send_to(frame: VReg, cb: CodeblockId, inlet: InletId, vals: Vec<VReg>) -> TOp {
        TOp::SendToInlet {
            frame,
            cb,
            inlet,
            vals,
        }
    }
    /// Heap allocation.
    pub fn halloc(d: VReg, words: TOperand) -> TOp {
        TOp::HAlloc { d, words }
    }
    /// Split-phase I-structure fetch.
    pub fn ifetch(addr: VReg, tag: VReg, reply: InletId) -> TOp {
        TOp::IFetch { addr, tag, reply }
    }
    /// I-structure store.
    pub fn istore(addr: VReg, val: VReg) -> TOp {
        TOp::IStore { addr, val }
    }
    /// Load this activation's frame pointer.
    pub fn myframe(d: VReg) -> TOp {
        TOp::MyFrame { d }
    }
}

#[cfg(test)]
mod tests {
    use super::ops::*;
    use super::*;
    use crate::ids::regs::*;

    #[test]
    fn context_restrictions() {
        assert!(ldmsg(R0, 0).inlet_only());
        assert!(post(ThreadId(0)).inlet_only());
        assert!(fork(ThreadId(0)).thread_only());
        assert!(ret(vec![]).thread_only());
        assert!(!mov(R0, R1).inlet_only());
        assert!(!mov(R0, R1).thread_only());
    }

    #[test]
    fn fork_targets_are_reported() {
        assert_eq!(fork(ThreadId(2)).targets(), vec![ThreadId(2)]);
        assert_eq!(
            fork_if_else(R0, ThreadId(1), ThreadId(3)).targets(),
            vec![ThreadId(1), ThreadId(3)]
        );
        assert!(mov(R0, R1).targets().is_empty());
    }

    #[test]
    fn helper_constructors_build_expected_ops() {
        assert_eq!(
            movi(R1, 5),
            TOp::MovI {
                d: R1,
                v: Value::Int(5)
            }
        );
        assert_eq!(
            alu(AluOp::Add, R0, R1, imm(2)),
            TOp::Alu {
                op: AluOp::Add,
                d: R0,
                a: R1,
                b: TOperand::Imm(2)
            }
        );
        assert_eq!(
            ld(R3, SlotId(4)),
            TOp::LdSlot {
                d: R3,
                slot: SlotId(4)
            }
        );
    }
}
