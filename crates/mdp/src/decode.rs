//! Pre-decoded threaded code: the dense execution form of a [`CodeImage`].
//!
//! The baseline interpreter walks [`MOp`]s straight out of the two region
//! vectors, paying per instruction for the region test, the `Operand` enum
//! match, and branch-target translation. This module compiles a code image
//! once into a single flat [`DOp`] array in which:
//!
//! * operand registers are flat `u8` indices and the `Operand::Reg` /
//!   `Operand::Imm` ALU forms are split into distinct decoded ops,
//! * branch/call targets are pre-resolved to decoded indices (with the raw
//!   address retained for the trace and for wild-jump diagnostics),
//! * hot adjacent pairs are fused into superinstructions — compare+branch,
//!   load+ALU, and immediate-store ([`DOp::CmpBr`], [`DOp::LdAlu`],
//!   [`DOp::MovISt`]) — each retaining the exact two-instruction cost and
//!   event sequence of its parts,
//! * each region ends in a [`DOp::Wild`] guard slot so sequential
//!   fall-through off the end of a region panics with the same message the
//!   baseline's bounds check produces.
//!
//! Layout is slot-per-instruction: the op at code address `a` lives at one
//! decoded index regardless of fusion, and a fused op's *second* slot still
//! holds that instruction's own (possibly itself fused) decoding, so
//! branching into the middle of a fused pair executes exactly the baseline
//! sequence. Fusion never changes semantics — the executor applies the two
//! halves strictly in order over the register file — so the decoded and
//! baseline interpreters are bit-identical in results, statistics, and
//! event streams (`tamsim-check` enforces this differentially).

use crate::{AluOp, CodeImage, FAluOp, MOp, Mark, Operand, Priority, SendSrc, Word};

/// Sentinel decoded index for a branch target outside the code image.
/// Executing a jump to it reproduces the baseline's wild-jump panic.
pub const INVALID_TARGET: u32 = u32::MAX;

/// Pre-split second operand of a decoded ALU half (fused ops only; plain
/// ALU ops split into [`DOp::AluRR`] / [`DOp::AluRI`] instead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DOperand {
    /// A register index.
    Reg(u8),
    /// An immediate integer.
    Imm(i64),
}

/// One source word of a decoded `SEND`, with register indices flattened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DSendSrc {
    /// Send the contents of a register.
    Reg(u8),
    /// Send a constant word.
    Imm(Word),
}

/// One decoded operation.
///
/// Register fields are flat indices into the per-priority register file;
/// `ti` fields are pre-resolved decoded indices ([`INVALID_TARGET`] when
/// the target lies outside the image) and `t` fields keep the raw code
/// address for pc bookkeeping and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DOp {
    /// `d <- imm`.
    MovI { d: u8, v: Word },
    /// `d <- s`.
    Mov { d: u8, s: u8 },
    /// Integer ALU, register-register form.
    AluRR { op: AluOp, d: u8, a: u8, b: u8 },
    /// Integer ALU, register-immediate form.
    AluRI { op: AluOp, d: u8, a: u8, imm: i64 },
    /// Float ALU.
    FAlu { op: FAluOp, d: u8, a: u8, b: u8 },
    /// `d <- mem[base + off]`.
    Ld { d: u8, base: u8, off: i32 },
    /// `d <- mem[addr]`.
    LdA { d: u8, addr: u32 },
    /// `mem[base + off] <- s`.
    St { s: u8, base: u8, off: i32 },
    /// `mem[addr] <- s`.
    StA { s: u8, addr: u32 },
    /// `d <- queue[msg + idx]`.
    LdMsg { d: u8, idx: u8 },
    /// `d <- queue[msg + reg idx]`.
    LdMsgIdx { d: u8, idx: u8 },
    /// Unconditional branch.
    Br { ti: u32, t: u32 },
    /// Branch if `c` is zero.
    Bz { c: u8, ti: u32, t: u32 },
    /// Branch if `c` is nonzero.
    Bnz { c: u8, ti: u32, t: u32 },
    /// Indirect jump through a register.
    Jr { s: u8 },
    /// Call: `LINK <- pc + 4; pc <- t`.
    Call { ti: u32, t: u32 },
    /// Return through LINK.
    Ret,
    /// Send `sends[sid]` to the queue of priority `pri`.
    Send { pri: Priority, sid: u32 },
    /// End the current task.
    Suspend,
    /// Enable high-priority preemption.
    EnableInt,
    /// Disable high-priority preemption.
    DisableInt,
    /// Stop the machine.
    Halt,
    /// Zero-cost statistics marker.
    Mark(Mark),
    /// Fused compare+branch: `d <- a op b`, then branch to `t` if `d` is
    /// nonzero (`bnz`) or zero (`!bnz`). Two instructions' cost and events.
    CmpBr {
        op: AluOp,
        d: u8,
        a: u8,
        b: DOperand,
        bnz: bool,
        ti: u32,
        t: u32,
    },
    /// Fused load+ALU: `ld_d <- mem[base + off]`, then `d <- a op b` (the
    /// ALU half may consume `ld_d`; halves apply strictly in order).
    LdAlu {
        ld_d: u8,
        base: u8,
        off: i32,
        op: AluOp,
        d: u8,
        a: u8,
        b: DOperand,
    },
    /// Fused immediate-store: `d <- v`, then `mem[base + off] <- d`.
    MovISt { d: u8, v: Word, base: u8, off: i32 },
    /// Region-end guard: executing this slot is a wild jump to `addr`.
    Wild { addr: u32, user: bool },
}

impl DOp {
    /// Whether this decoded op is a fused two-instruction superinstruction.
    #[inline]
    pub fn is_fused(&self) -> bool {
        matches!(
            self,
            DOp::CmpBr { .. } | DOp::LdAlu { .. } | DOp::MovISt { .. }
        )
    }
}

/// A fully pre-decoded code image: every instruction of both regions in one
/// dense array, plus the side table of `SEND` operand lists.
///
/// Owned and self-contained (no borrows into the [`CodeImage`]), so linked
/// programs can carry one alongside the image and attach it to any number
/// of machines.
#[derive(Debug, Clone, Default)]
pub struct DecodedImage {
    sys_base: u32,
    user_base: u32,
    sys_len: u32,
    user_len: u32,
    /// `sys_len` system ops, a guard, `user_len` user ops, a guard.
    ops: Vec<DOp>,
    /// Send operand lists, indexed by `DOp::Send::sid`.
    sends: Vec<Vec<DSendSrc>>,
    /// Number of fused superinstructions produced (statistics).
    fused: u32,
}

impl DecodedImage {
    /// Pre-decode `code` into the dense executable form.
    pub fn decode(code: &CodeImage) -> Self {
        let sys_len = code.sys_len() as u32;
        let user_len = code.user_len() as u32;
        let mut img = DecodedImage {
            sys_base: code.sys_base(),
            user_base: code.user_base(),
            sys_len,
            user_len,
            ops: Vec::with_capacity((sys_len + user_len + 2) as usize),
            sends: Vec::new(),
            fused: 0,
        };
        img.decode_region(code.sys_ops());
        img.ops.push(DOp::Wild {
            addr: code.sys_base() + sys_len * 4,
            user: false,
        });
        img.decode_region(code.user_ops());
        img.ops.push(DOp::Wild {
            addr: code.user_base() + user_len * 4,
            user: true,
        });
        img
    }

    /// The decoded index of code address `addr`, or `None` for a wild jump.
    #[inline]
    pub fn try_idx(&self, addr: u32) -> Option<u32> {
        if addr >= self.user_base {
            let i = (addr - self.user_base) / 4;
            (i < self.user_len).then(|| self.sys_len + 1 + i)
        } else {
            // Mirrors `CodeImage::at`: an address below the system base
            // wraps to a huge index and fails the bounds check.
            let i = addr.wrapping_sub(self.sys_base) / 4;
            (i < self.sys_len).then_some(i)
        }
    }

    /// Panic with the baseline interpreter's wild-jump message for `addr`.
    #[cold]
    #[inline(never)]
    pub fn wild_jump(&self, addr: u32) -> ! {
        if addr >= self.user_base {
            panic!("wild jump to {addr:#x} (user code)")
        } else {
            panic!("wild jump to {addr:#x} (system code)")
        }
    }

    /// The decoded index of `addr`, panicking exactly like the baseline's
    /// [`CodeImage::at`] on a wild jump.
    #[inline]
    pub fn idx_of(&self, addr: u32) -> u32 {
        match self.try_idx(addr) {
            Some(i) => i,
            None => self.wild_jump(addr),
        }
    }

    /// The decoded op at index `idx` (from [`DecodedImage::idx_of`]).
    #[inline]
    pub fn op(&self, idx: u32) -> &DOp {
        &self.ops[idx as usize]
    }

    /// The send operand list with id `sid`.
    #[inline]
    pub fn send_srcs(&self, sid: u32) -> &[DSendSrc] {
        &self.sends[sid as usize]
    }

    /// Number of fused superinstructions in the image.
    pub fn fused_count(&self) -> u32 {
        self.fused
    }

    /// Base code address of the system region.
    pub fn sys_base(&self) -> u32 {
        self.sys_base
    }

    /// Base code address of the user region.
    pub fn user_base(&self) -> u32 {
        self.user_base
    }

    /// Number of system-region instructions.
    pub fn sys_len(&self) -> u32 {
        self.sys_len
    }

    /// Number of user-region instructions.
    pub fn user_len(&self) -> u32 {
        self.user_len
    }

    /// Total decoded slots, region guards included.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the image holds no instructions at all.
    pub fn is_empty(&self) -> bool {
        self.sys_len == 0 && self.user_len == 0
    }

    /// Resolve a raw branch target to its decoded index. The bases and
    /// lengths are set before any region is decoded, so resolution works
    /// while `ops` is still being filled.
    fn target(&self, t: u32) -> u32 {
        self.try_idx(t).unwrap_or(INVALID_TARGET)
    }

    fn decode_region(&mut self, ops: &[MOp]) {
        for i in 0..ops.len() {
            let dop = match (&ops[i], ops.get(i + 1)) {
                // compare+branch: the branch tests exactly the register the
                // ALU op wrote. Div/Rem are excluded so the fused executor
                // never has to flush a pending event batch before a
                // divide-by-zero panic.
                (MOp::Alu { op, d, a, b }, Some(MOp::Bz { c, t }))
                    if c == d && !matches!(op, AluOp::Div | AluOp::Rem) =>
                {
                    self.fused += 1;
                    DOp::CmpBr {
                        op: *op,
                        d: d.index() as u8,
                        a: a.index() as u8,
                        b: doperand(b),
                        bnz: false,
                        ti: self.target(*t),
                        t: *t,
                    }
                }
                (MOp::Alu { op, d, a, b }, Some(MOp::Bnz { c, t }))
                    if c == d && !matches!(op, AluOp::Div | AluOp::Rem) =>
                {
                    self.fused += 1;
                    DOp::CmpBr {
                        op: *op,
                        d: d.index() as u8,
                        a: a.index() as u8,
                        b: doperand(b),
                        bnz: true,
                        ti: self.target(*t),
                        t: *t,
                    }
                }
                (MOp::Ld { d, base, off }, Some(MOp::Alu { op, d: ad, a, b }))
                    if !matches!(op, AluOp::Div | AluOp::Rem) =>
                {
                    self.fused += 1;
                    DOp::LdAlu {
                        ld_d: d.index() as u8,
                        base: base.index() as u8,
                        off: *off,
                        op: *op,
                        d: ad.index() as u8,
                        a: a.index() as u8,
                        b: doperand(b),
                    }
                }
                (MOp::MovI { d, v }, Some(MOp::St { s, base, off })) if s == d => {
                    self.fused += 1;
                    DOp::MovISt {
                        d: d.index() as u8,
                        v: *v,
                        base: base.index() as u8,
                        off: *off,
                    }
                }
                (op, _) => self.decode_one(op),
            };
            self.ops.push(dop);
        }
    }

    fn decode_one(&mut self, op: &MOp) -> DOp {
        match op {
            MOp::MovI { d, v } => DOp::MovI {
                d: d.index() as u8,
                v: *v,
            },
            MOp::Mov { d, s } => DOp::Mov {
                d: d.index() as u8,
                s: s.index() as u8,
            },
            MOp::Alu { op, d, a, b } => match b {
                Operand::Reg(r) => DOp::AluRR {
                    op: *op,
                    d: d.index() as u8,
                    a: a.index() as u8,
                    b: r.index() as u8,
                },
                Operand::Imm(v) => DOp::AluRI {
                    op: *op,
                    d: d.index() as u8,
                    a: a.index() as u8,
                    imm: *v,
                },
            },
            MOp::FAlu { op, d, a, b } => DOp::FAlu {
                op: *op,
                d: d.index() as u8,
                a: a.index() as u8,
                b: b.index() as u8,
            },
            MOp::Ld { d, base, off } => DOp::Ld {
                d: d.index() as u8,
                base: base.index() as u8,
                off: *off,
            },
            MOp::LdA { d, addr } => DOp::LdA {
                d: d.index() as u8,
                addr: *addr,
            },
            MOp::St { s, base, off } => DOp::St {
                s: s.index() as u8,
                base: base.index() as u8,
                off: *off,
            },
            MOp::StA { s, addr } => DOp::StA {
                s: s.index() as u8,
                addr: *addr,
            },
            MOp::LdMsg { d, idx } => DOp::LdMsg {
                d: d.index() as u8,
                idx: *idx,
            },
            MOp::LdMsgIdx { d, idx } => DOp::LdMsgIdx {
                d: d.index() as u8,
                idx: idx.index() as u8,
            },
            MOp::Br { t } => DOp::Br {
                ti: self.target(*t),
                t: *t,
            },
            MOp::Bz { c, t } => DOp::Bz {
                c: c.index() as u8,
                ti: self.target(*t),
                t: *t,
            },
            MOp::Bnz { c, t } => DOp::Bnz {
                c: c.index() as u8,
                ti: self.target(*t),
                t: *t,
            },
            MOp::Jr { s } => DOp::Jr { s: s.index() as u8 },
            MOp::Call { t } => DOp::Call {
                ti: self.target(*t),
                t: *t,
            },
            MOp::Ret => DOp::Ret,
            MOp::Send { pri, srcs } => {
                let sid = self.sends.len() as u32;
                self.sends.push(
                    srcs.iter()
                        .map(|s| match s {
                            SendSrc::Reg(r) => DSendSrc::Reg(r.index() as u8),
                            SendSrc::Imm(w) => DSendSrc::Imm(*w),
                        })
                        .collect(),
                );
                DOp::Send { pri: *pri, sid }
            }
            MOp::Suspend => DOp::Suspend,
            MOp::EnableInt => DOp::EnableInt,
            MOp::DisableInt => DOp::DisableInt,
            MOp::Halt => DOp::Halt,
            MOp::Mark(m) => DOp::Mark(*m),
        }
    }
}

#[inline]
fn doperand(b: &Operand) -> DOperand {
    match b {
        Operand::Reg(r) => DOperand::Reg(r.index() as u8),
        Operand::Imm(v) => DOperand::Imm(*v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;
    use tamsim_trace::MemoryMap;

    fn map() -> MemoryMap {
        MemoryMap::default()
    }

    fn reg(n: u8) -> Reg {
        Reg(n)
    }

    #[test]
    fn layout_maps_every_address_and_guards_region_ends() {
        let mut img = CodeImage::new(&map());
        let s0 = img.push_sys(MOp::Suspend);
        let s1 = img.push_sys(MOp::Halt);
        let u0 = img.push_user(MOp::Ret);
        let dec = DecodedImage::decode(&img);
        assert_eq!(dec.len(), 5, "3 ops + 2 guards");
        assert_eq!(dec.op(dec.idx_of(s0)), &DOp::Suspend);
        assert_eq!(dec.op(dec.idx_of(s1)), &DOp::Halt);
        assert_eq!(dec.op(dec.idx_of(u0)), &DOp::Ret);
        // Guard slots sit one past each region's last op.
        assert_eq!(
            dec.op(dec.idx_of(s1) + 1),
            &DOp::Wild {
                addr: s1 + 4,
                user: false
            }
        );
        assert_eq!(
            dec.op(dec.idx_of(u0) + 1),
            &DOp::Wild {
                addr: u0 + 4,
                user: true
            }
        );
    }

    #[test]
    fn wild_addresses_resolve_to_none_and_panic_like_baseline() {
        let mut img = CodeImage::new(&map());
        img.push_user(MOp::Halt);
        let dec = DecodedImage::decode(&img);
        let wild = map().user_code_base + 400;
        assert_eq!(dec.try_idx(wild), None);
        let msg = std::panic::catch_unwind(|| dec.idx_of(wild))
            .unwrap_err()
            .downcast::<String>()
            .unwrap();
        assert_eq!(*msg, format!("wild jump to {wild:#x} (user code)"));
    }

    #[test]
    fn alu_operand_forms_split() {
        let mut img = CodeImage::new(&map());
        let a = img.push_user(MOp::Alu {
            op: AluOp::Add,
            d: reg(1),
            a: reg(2),
            b: Operand::Reg(reg(3)),
        });
        let b = img.push_user(MOp::Alu {
            op: AluOp::Sub,
            d: reg(1),
            a: reg(2),
            b: Operand::Imm(9),
        });
        let dec = DecodedImage::decode(&img);
        assert_eq!(
            dec.op(dec.idx_of(a)),
            &DOp::AluRR {
                op: AluOp::Add,
                d: 1,
                a: 2,
                b: 3
            }
        );
        assert_eq!(
            dec.op(dec.idx_of(b)),
            &DOp::AluRI {
                op: AluOp::Sub,
                d: 1,
                a: 2,
                imm: 9
            }
        );
    }

    #[test]
    fn cmp_branch_fuses_and_second_slot_stays_executable() {
        let mut img = CodeImage::new(&map());
        let target = img.push_user(MOp::Halt);
        let cmp = img.push_user(MOp::Alu {
            op: AluOp::Lt,
            d: reg(1),
            a: reg(2),
            b: Operand::Imm(10),
        });
        let br = img.push_user(MOp::Bnz {
            c: reg(1),
            t: target,
        });
        let dec = DecodedImage::decode(&img);
        assert_eq!(
            dec.op(dec.idx_of(cmp)),
            &DOp::CmpBr {
                op: AluOp::Lt,
                d: 1,
                a: 2,
                b: DOperand::Imm(10),
                bnz: true,
                ti: dec.idx_of(target),
                t: target
            }
        );
        // Branching straight to the Bnz still works: its slot holds the
        // plain decoded branch.
        assert_eq!(
            dec.op(dec.idx_of(br)),
            &DOp::Bnz {
                c: 1,
                ti: dec.idx_of(target),
                t: target
            }
        );
        assert_eq!(dec.fused_count(), 1);
    }

    #[test]
    fn branch_testing_a_different_register_does_not_fuse() {
        let mut img = CodeImage::new(&map());
        let t = img.push_user(MOp::Halt);
        let cmp = img.push_user(MOp::Alu {
            op: AluOp::Eq,
            d: reg(1),
            a: reg(2),
            b: Operand::Imm(0),
        });
        img.push_user(MOp::Bz { c: reg(5), t });
        let dec = DecodedImage::decode(&img);
        assert!(matches!(dec.op(dec.idx_of(cmp)), DOp::AluRI { .. }));
        assert_eq!(dec.fused_count(), 0);
    }

    #[test]
    fn div_never_fuses() {
        let mut img = CodeImage::new(&map());
        let t = img.push_user(MOp::Halt);
        let d = img.push_user(MOp::Alu {
            op: AluOp::Div,
            d: reg(1),
            a: reg(2),
            b: Operand::Reg(reg(3)),
        });
        img.push_user(MOp::Bnz { c: reg(1), t });
        let l = img.push_user(MOp::Ld {
            d: reg(4),
            base: reg(0),
            off: 0,
        });
        img.push_user(MOp::Alu {
            op: AluOp::Rem,
            d: reg(5),
            a: reg(4),
            b: Operand::Imm(3),
        });
        let dec = DecodedImage::decode(&img);
        assert!(matches!(dec.op(dec.idx_of(d)), DOp::AluRR { .. }));
        assert!(matches!(dec.op(dec.idx_of(l)), DOp::Ld { .. }));
        assert_eq!(dec.fused_count(), 0);
    }

    #[test]
    fn load_alu_and_movi_store_fuse() {
        let mut img = CodeImage::new(&map());
        let l = img.push_user(MOp::Ld {
            d: reg(1),
            base: reg(15),
            off: 8,
        });
        img.push_user(MOp::Alu {
            op: AluOp::Add,
            d: reg(2),
            a: reg(1),
            b: Operand::Reg(reg(1)),
        });
        let m = img.push_user(MOp::MovI {
            d: reg(3),
            v: Word::from_i64(7),
        });
        img.push_user(MOp::St {
            s: reg(3),
            base: reg(15),
            off: 16,
        });
        let dec = DecodedImage::decode(&img);
        assert_eq!(
            dec.op(dec.idx_of(l)),
            &DOp::LdAlu {
                ld_d: 1,
                base: 15,
                off: 8,
                op: AluOp::Add,
                d: 2,
                a: 1,
                b: DOperand::Reg(1)
            }
        );
        assert_eq!(
            dec.op(dec.idx_of(m)),
            &DOp::MovISt {
                d: 3,
                v: Word::from_i64(7),
                base: 15,
                off: 16
            }
        );
        assert_eq!(dec.fused_count(), 2);
    }

    #[test]
    fn movi_store_of_a_different_register_does_not_fuse() {
        let mut img = CodeImage::new(&map());
        let m = img.push_user(MOp::MovI {
            d: reg(3),
            v: Word::from_i64(7),
        });
        img.push_user(MOp::St {
            s: reg(4),
            base: reg(15),
            off: 0,
        });
        let dec = DecodedImage::decode(&img);
        assert!(matches!(dec.op(dec.idx_of(m)), DOp::MovI { .. }));
        assert_eq!(dec.fused_count(), 0);
    }

    #[test]
    fn out_of_image_branch_targets_decode_to_invalid() {
        let mut img = CodeImage::new(&map());
        let b = img.push_user(MOp::Br {
            t: map().user_code_base + 0x1000,
        });
        let dec = DecodedImage::decode(&img);
        match dec.op(dec.idx_of(b)) {
            DOp::Br { ti, t } => {
                assert_eq!(*ti, INVALID_TARGET);
                assert_eq!(*t, map().user_code_base + 0x1000);
            }
            other => panic!("expected Br, got {other:?}"),
        }
    }

    #[test]
    fn sends_land_in_the_side_table() {
        let mut img = CodeImage::new(&map());
        let s = img.push_user(MOp::Send {
            pri: Priority::High,
            srcs: vec![SendSrc::Reg(reg(2)), SendSrc::Imm(Word::from_i64(5))],
        });
        let dec = DecodedImage::decode(&img);
        match dec.op(dec.idx_of(s)) {
            DOp::Send { pri, sid } => {
                assert_eq!(*pri, Priority::High);
                assert_eq!(
                    dec.send_srcs(*sid),
                    &[DSendSrc::Reg(2), DSendSrc::Imm(Word::from_i64(5))]
                );
            }
            other => panic!("expected Send, got {other:?}"),
        }
    }

    #[test]
    fn fusion_does_not_cross_marks() {
        let mut img = CodeImage::new(&map());
        let a = img.push_user(MOp::Alu {
            op: AluOp::Eq,
            d: reg(1),
            a: reg(1),
            b: Operand::Imm(0),
        });
        img.push_user(MOp::Mark(Mark::ThreadEnd));
        img.push_user(MOp::Bz {
            c: reg(1),
            t: map().user_code_base,
        });
        let dec = DecodedImage::decode(&img);
        assert!(matches!(dec.op(dec.idx_of(a)), DOp::AluRI { .. }));
        assert_eq!(dec.fused_count(), 0);
    }

    #[test]
    fn overlapping_pairs_each_fuse_in_their_own_slot() {
        // ld ; alu ; bz — slot 0 fuses (ld,alu), slot 1 fuses (alu,bz).
        let mut img = CodeImage::new(&map());
        let t = img.push_user(MOp::Halt);
        let l = img.push_user(MOp::Ld {
            d: reg(1),
            base: reg(15),
            off: 0,
        });
        let a = img.push_user(MOp::Alu {
            op: AluOp::Eq,
            d: reg(2),
            a: reg(1),
            b: Operand::Imm(0),
        });
        img.push_user(MOp::Bz { c: reg(2), t });
        let dec = DecodedImage::decode(&img);
        assert!(matches!(dec.op(dec.idx_of(l)), DOp::LdAlu { .. }));
        assert!(matches!(dec.op(dec.idx_of(a)), DOp::CmpBr { .. }));
        assert_eq!(dec.fused_count(), 2);
    }
}
