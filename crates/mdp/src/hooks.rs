//! Observation hooks: how consumers watch a machine run.

use crate::{Mark, Priority};
use tamsim_trace::{Access, MarkSink, TraceSink};

/// Callbacks invoked by the machine during execution.
///
/// # Contract
///
/// For every executed instruction the machine delivers, in order, one
/// [`Hooks::access`] with the instruction fetch, one [`Hooks::instruction`]
/// tick, and then any data-access events the instruction performs. Marks
/// are zero-cost pseudo-ops: they emit **no** fetch and **no** instruction
/// tick, only one [`Hooks::queue_sample`] (queue occupancy in words per
/// priority) immediately followed by one [`Hooks::mark`]. Implementations
/// that forward the stream (adapters, tees, drivers) must forward *all
/// four* callbacks — dropping `instruction`/`mark` silently destroys the
/// granularity data the paper's analysis is built on, which is exactly the
/// bug [`SinkHooks`] used to have.
pub trait Hooks {
    /// One memory access (instruction fetch or data read/write).
    fn access(&mut self, access: Access);

    /// One instruction executed at `pri` with program counter `pc`.
    #[inline]
    fn instruction(&mut self, _pri: Priority, _pc: u32) {}

    /// `n` consecutive instructions fetched and executed at `pri`,
    /// starting at `start_pc` and walking up in 4-byte steps.
    ///
    /// The batched dispatch loop emits straight-line runs through this
    /// hook instead of one `access` + `instruction` pair per op. The
    /// default expansion reproduces the per-instruction contract exactly
    /// — one fetch then one tick per op, in address order — so any
    /// implementation that leaves it alone observes a stream identical to
    /// the baseline interpreter's. Implementations may override it to
    /// process the run in bulk, but only if their observable output stays
    /// equal to the default expansion's.
    #[inline]
    fn fetch_run(&mut self, pri: Priority, start_pc: u32, n: u32) {
        for k in 0..n {
            let pc = start_pc + k * 4;
            self.access(Access::fetch(pc));
            self.instruction(pri, pc);
        }
    }

    /// Queue occupancy in words per priority, sampled immediately before
    /// each mark.
    #[inline]
    fn queue_sample(&mut self, _used_words: [u32; 2]) {}

    /// A granularity marker, with the sampled frame pointer and the
    /// priority level it executed at.
    #[inline]
    fn mark(&mut self, _mark: Mark, _frame: u32, _pri: Priority) {}
}

/// Hooks that observe nothing (pure functional runs / result checks).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl Hooks for NoHooks {
    #[inline]
    fn access(&mut self, _access: Access) {}

    #[inline]
    fn fetch_run(&mut self, _pri: Priority, _start_pc: u32, _n: u32) {}
}

/// Adapt any [`TraceSink`] + [`MarkSink`] into [`Hooks`], forwarding the
/// complete event stream: accesses, instruction ticks, queue samples, and
/// marks.
///
/// Access-only sinks opt out of the granularity stream by relying on the
/// default no-op [`MarkSink`] methods; nothing is dropped silently by the
/// adapter itself. This keeps recorded runs (a
/// [`tamsim_trace::TraceLog`] sink) as informative as live ones.
#[derive(Debug, Default, Clone)]
pub struct SinkHooks<S>(pub S);

impl<S: TraceSink + MarkSink> Hooks for SinkHooks<S> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.0.access(access);
    }

    #[inline]
    fn instruction(&mut self, pri: Priority, pc: u32) {
        self.0.instruction(pri, pc);
    }

    #[inline]
    fn queue_sample(&mut self, used_words: [u32; 2]) {
        self.0.queue_sample(used_words);
    }

    #[inline]
    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        self.0.mark(mark, frame, pri);
    }
}

impl<H: Hooks + ?Sized> Hooks for &mut H {
    #[inline]
    fn access(&mut self, access: Access) {
        (**self).access(access)
    }

    #[inline]
    fn instruction(&mut self, pri: Priority, pc: u32) {
        (**self).instruction(pri, pc)
    }

    #[inline]
    fn fetch_run(&mut self, pri: Priority, start_pc: u32, n: u32) {
        (**self).fetch_run(pri, start_pc, n)
    }

    #[inline]
    fn queue_sample(&mut self, used_words: [u32; 2]) {
        (**self).queue_sample(used_words)
    }

    #[inline]
    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        (**self).mark(mark, frame, pri)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamsim_trace::{MarkLog, Tee, VecSink};

    #[test]
    fn sink_hooks_forwards_accesses() {
        let mut h = SinkHooks(VecSink::new());
        h.access(Access::read(8));
        h.instruction(Priority::Low, 0);
        h.mark(Mark::ThreadEnd, 0, Priority::Low);
        assert_eq!(h.0.events, vec![Access::read(8)]);
    }

    #[test]
    fn sink_hooks_forwards_the_granularity_stream() {
        // A Tee of an access recorder and a mark recorder sees both halves
        // of the stream through one adapter.
        let mut h = SinkHooks(Tee::new(VecSink::new(), MarkLog::new()));
        h.access(Access::fetch(0));
        h.instruction(Priority::Low, 0);
        h.queue_sample([7, 0]);
        h.mark(Mark::ThreadEnd, 0x40, Priority::Low);
        assert_eq!(h.0.a.events.len(), 1);
        assert_eq!(h.0.b.records.len(), 1);
        assert_eq!(h.0.b.records[0].queue_words, [7, 0]);
        assert_eq!(h.0.b.cycles, [1, 0]);
    }

    #[test]
    fn no_hooks_is_inert() {
        let mut h = NoHooks;
        h.access(Access::fetch(0));
        h.instruction(Priority::High, 4);
        h.queue_sample([0, 0]);
    }
}
