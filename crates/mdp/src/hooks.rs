//! Observation hooks: how consumers watch a machine run.

use crate::{Mark, Priority};
use tamsim_trace::{Access, TraceSink};

/// Callbacks invoked by the machine during execution.
///
/// [`Hooks::access`] receives the full memory-access stream (one fetch per
/// executed instruction plus all data reads/writes, in program order);
/// [`Hooks::instruction`] ticks once per executed instruction; and
/// [`Hooks::mark`] delivers the zero-cost granularity markers with the
/// current frame pointer sampled at runtime.
pub trait Hooks {
    /// One memory access (instruction fetch or data read/write).
    fn access(&mut self, access: Access);

    /// One instruction executed at `pri` with program counter `pc`.
    #[inline]
    fn instruction(&mut self, _pri: Priority, _pc: u32) {}

    /// A granularity marker, with the sampled frame pointer and the
    /// priority level it executed at.
    #[inline]
    fn mark(&mut self, _mark: Mark, _frame: u32, _pri: Priority) {}
}

/// Hooks that observe nothing (pure functional runs / result checks).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl Hooks for NoHooks {
    #[inline]
    fn access(&mut self, _access: Access) {}
}

/// Adapt any [`TraceSink`] into [`Hooks`] (marks and ticks discarded).
#[derive(Debug, Default, Clone)]
pub struct SinkHooks<S>(pub S);

impl<S: TraceSink> Hooks for SinkHooks<S> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.0.access(access);
    }
}

impl<H: Hooks + ?Sized> Hooks for &mut H {
    #[inline]
    fn access(&mut self, access: Access) {
        (**self).access(access)
    }

    #[inline]
    fn instruction(&mut self, pri: Priority, pc: u32) {
        (**self).instruction(pri, pc)
    }

    #[inline]
    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        (**self).mark(mark, frame, pri)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamsim_trace::VecSink;

    #[test]
    fn sink_hooks_forwards_accesses() {
        let mut h = SinkHooks(VecSink::new());
        h.access(Access::read(8));
        h.instruction(Priority::Low, 0);
        h.mark(Mark::ThreadEnd, 0, Priority::Low);
        assert_eq!(h.0.events, vec![Access::read(8)]);
    }

    #[test]
    fn no_hooks_is_inert() {
        let mut h = NoHooks;
        h.access(Access::fetch(0));
        h.instruction(Priority::High, 4);
    }
}
