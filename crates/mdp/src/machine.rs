//! The two-priority MDP machine executor.
//!
//! Semantics reproduced from the J-Machine (Section 1.1.2 of the paper):
//!
//! * Two complete priority levels, each with its own register set and
//!   message queue.
//! * "When a message arrives to the high-priority queue, low-priority
//!   computation is preempted" — here, at the next instruction boundary
//!   with interrupts enabled (the AM implementation's thread bodies run
//!   with interrupts disabled except at their tops, §2.2).
//! * "Message reception does not interrupt execution of a same-priority
//!   task; dispatch occurs when the task suspends."
//! * Hardware message buffering writes arriving words directly into queue
//!   memory (the top of the memory hierarchy).
//!
//! The machine halts explicitly (a completion inlet executes [`MOp::Halt`])
//! or quiesces when both queues are empty and the low-priority context has
//! suspended — on a uniprocessor no further work can ever arrive.

use crate::decode::{DOp, DOperand, DSendSrc, DecodedImage, INVALID_TARGET};
use crate::queue::{MessageQueue, MsgRef, DEFAULT_QUEUE_WORDS};
use crate::{AluOp, FAluOp};
use crate::{CodeImage, Hooks, MOp, Memory, Operand, Priority, Reg, SendSrc, Word};
use tamsim_trace::{Access, MemoryMap};

/// Addresses of the system-data structures derived from the configuration.
///
/// The runtime lowerings need these addresses at code-generation time, so
/// the layout is a pure function of the configuration rather than machine
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SysLayout {
    /// Base of the low-priority message queue.
    pub low_queue_base: u32,
    /// Base of the high-priority message queue.
    pub high_queue_base: u32,
    /// Base of OS globals (frame-queue head/tail, allocator bumps, the MD
    /// global LCV, scratch).
    pub globals_base: u32,
}

/// Machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// The address-space layout.
    pub map: MemoryMap,
    /// Queue capacities in words, indexed by [`Priority::index`].
    pub queue_words: [u32; 2],
    /// Maximum instructions to execute before aborting the run.
    pub fuel: u64,
    /// Mask applied to register-based load/store addresses before they
    /// reach memory and the trace. A single node uses the identity mask;
    /// a mesh node masks off the node-id bits of global frame and heap
    /// pointers (`tamsim-net` tags those addresses with their home node
    /// so the network interface can route on them, but each node's local
    /// memory is indexed by the untagged address).
    pub addr_mask: u32,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            map: MemoryMap::default(),
            queue_words: [DEFAULT_QUEUE_WORDS, DEFAULT_QUEUE_WORDS],
            fuel: 4_000_000_000,
            addr_mask: u32::MAX,
        }
    }
}

impl MachineConfig {
    /// Whether both queues (plus the globals word) fit inside the system
    /// data region. [`MachineConfig::sys_layout`] asserts this; queue
    /// auto-sizing drivers check it first so a gridlocked program aborts
    /// with a diagnosis instead of a layout panic.
    pub fn queues_fit(&self) -> bool {
        let words = self.queue_words[0] as u64 + self.queue_words[1] as u64;
        self.map.system_data_base as u64 + words * 4 < self.map.frame_base as u64
    }

    /// Compute the system-data layout implied by this configuration.
    pub fn sys_layout(&self) -> SysLayout {
        assert!(self.queues_fit(), "queues overflow system data region");
        let low = self.map.system_data_base;
        let high = low + self.queue_words[Priority::Low.index()] * 4;
        SysLayout {
            low_queue_base: low,
            high_queue_base: high,
            globals_base: high + self.queue_words[Priority::High.index()] * 4,
        }
    }
}

/// Why a run ended successfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// An explicit [`MOp::Halt`] was executed (normal completion).
    Explicit,
    /// Both queues drained and the low context suspended (quiescence; for a
    /// correct program this is also completion, for a buggy one deadlock).
    Quiescent,
}

/// Why a run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// A send found the target queue full; enlarge
    /// [`MachineConfig::queue_words`].
    QueueOverflow {
        /// Which queue overflowed.
        pri: Priority,
    },
    /// The instruction budget was exhausted (runaway program).
    FuelExhausted,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::QueueOverflow { pri } => {
                write!(f, "message queue overflow at priority {pri:?}")
            }
            RunError::FuelExhausted => write!(f, "instruction fuel exhausted"),
        }
    }
}

impl std::error::Error for RunError {}

/// The outcome of a single [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// One instruction executed.
    Ran,
    /// Nothing to do: both contexts suspended and both queues empty. On a
    /// uniprocessor this is quiescence; on a mesh, work may still arrive.
    Idle,
    /// A send found the network interface busy; nothing happened (no
    /// fetch, no counters, no pc change). Retry next cycle.
    Blocked,
    /// The machine executed [`MOp::Halt`] (or quiesced, for [`Machine::run`]).
    Halted(HaltReason),
}

/// When a machine can next make progress (see [`Machine::next_wake`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// A step can do work in the current cycle: a context holds a pc
    /// (running, or retrying a blocked `SEND`) or a queue holds a
    /// dispatchable message.
    Now,
    /// Only an external delivery can wake this machine: both contexts are
    /// suspended and both queues are empty. An event-driven driver may
    /// fast-forward over such a machine without changing its behaviour.
    OnDelivery,
}

/// Where a send's message went, as decided by a [`NetPort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The message targets this node: enqueue it locally, exactly as on a
    /// single-node machine.
    Local,
    /// The port accepted the message into the network; the machine counts
    /// the send but writes nothing into its own queue memory.
    Injected,
    /// The port cannot accept the message right now (network interface
    /// buffer full — back-pressure). The send stalls and retries.
    Busy,
}

/// A network interface the machine offers every `SEND` to.
///
/// The port sees the fully resolved message words *before* the machine
/// commits to the instruction: on [`RouteOutcome::Busy`] the send has no
/// side effects at all and will be re-offered next step.
pub trait NetPort {
    /// Route a `len`-word message sent at priority `pri`.
    fn route(&mut self, pri: Priority, words: &[Word]) -> RouteOutcome;
}

/// The single-node port: every message is local. [`Machine::run`] uses
/// this, making it bit-identical to the pre-mesh executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Loopback;

impl NetPort for Loopback {
    #[inline]
    fn route(&mut self, _pri: Priority, _words: &[Word]) -> RouteOutcome {
        RouteOutcome::Local
    }
}

/// Counters accumulated over one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Total instructions executed (also the base cycle count: the paper
    /// assumes one cycle per instruction before memory penalties).
    pub instructions: u64,
    /// Instructions by priority level.
    pub instructions_by_pri: [u64; 2],
    /// Message dispatches by priority level.
    pub dispatches: [u64; 2],
    /// Times high-priority work preempted running low-priority code.
    pub preemptions: u64,
    /// Send instructions executed.
    pub sends: u64,
    /// Total words sent.
    pub send_words: u64,
    /// Queue high-water marks in words, by priority.
    pub max_queue_words: [u32; 2],
    /// How the run ended.
    pub halt: HaltReason,
}

/// The machine: registers, memory, queues, and the execution loop.
pub struct Machine<'c> {
    cfg: MachineConfig,
    code: &'c CodeImage,
    /// Pre-decoded form of `code`; when attached, [`Machine::step`] and
    /// [`Machine::run`] use the threaded-code dispatch paths.
    decoded: Option<&'c DecodedImage>,
    /// Data memory (public so drivers can seed inputs and read results).
    pub mem: Memory,
    regs: [[Word; Reg::COUNT]; 2],
    queues: [MessageQueue; 2],
    cur_msg: [Option<MsgRef>; 2],
    high_pc: Option<u32>,
    low_pc: Option<u32>,
    ints_enabled: bool,
    /// Scratch for resolved send words (reused across sends so a stalled
    /// send costs no allocation per retry).
    send_buf: Vec<Word>,
    instructions: u64,
    instructions_by_pri: [u64; 2],
    dispatches: [u64; 2],
    preemptions: u64,
    sends: u64,
    send_words: u64,
}

impl<'c> Machine<'c> {
    /// A fresh machine over `code`.
    pub fn new(cfg: MachineConfig, code: &'c CodeImage) -> Self {
        let layout = cfg.sys_layout();
        Machine {
            mem: Memory::new(&cfg.map),
            regs: [[Word::ZERO; Reg::COUNT]; 2],
            queues: [
                MessageQueue::new(layout.low_queue_base, cfg.queue_words[0]),
                MessageQueue::new(layout.high_queue_base, cfg.queue_words[1]),
            ],
            cur_msg: [None, None],
            high_pc: None,
            low_pc: None,
            ints_enabled: true,
            send_buf: Vec::new(),
            instructions: 0,
            instructions_by_pri: [0, 0],
            dispatches: [0, 0],
            preemptions: 0,
            sends: 0,
            send_words: 0,
            cfg,
            code,
            decoded: None,
        }
    }

    /// Attach a pre-decoded image; subsequent [`Machine::step`] /
    /// [`Machine::run`] calls use the threaded-code dispatch paths
    /// (bit-identical to the baseline interpreter).
    ///
    /// # Panics
    /// Panics if `dec` was not decoded from a code image with the same
    /// region shape as this machine's.
    pub fn attach_decoded(&mut self, dec: &'c DecodedImage) {
        assert_eq!(
            dec.len(),
            self.code.sys_len() + self.code.user_len() + 2,
            "decoded image does not match the machine's code image"
        );
        self.decoded = Some(dec);
    }

    /// Whether a pre-decoded image is attached.
    pub fn is_decoded(&self) -> bool {
        self.decoded.is_some()
    }

    /// Read a register (tests and drivers).
    pub fn reg(&self, pri: Priority, r: Reg) -> Word {
        self.regs[pri.index()][r.index()]
    }

    /// Write a register (tests and drivers).
    pub fn set_reg(&mut self, pri: Priority, r: Reg, v: Word) {
        self.regs[pri.index()][r.index()] = v;
    }

    /// Inspect a queue (stats).
    pub fn queue(&self, pri: Priority) -> &MessageQueue {
        &self.queues[pri.index()]
    }

    /// Start the low-priority context at `addr` (the AM background
    /// scheduler); without this the low context boots suspended.
    pub fn start_low(&mut self, addr: u32) {
        self.low_pc = Some(addr);
    }

    /// Inject a boot message without generating trace events (machine
    /// setup, not program behaviour).
    pub fn inject(&mut self, pri: Priority, words: &[Word]) -> Result<(), RunError> {
        let q = &mut self.queues[pri.index()];
        let m = q
            .begin_enqueue(words.len() as u32)
            .ok_or(RunError::QueueOverflow { pri })?;
        for (i, w) in words.iter().enumerate() {
            let addr = q.addr_of(m.start, i as u32);
            self.mem.write(addr, *w);
        }
        Ok(())
    }

    fn dispatch<H: Hooks>(&mut self, pri: Priority, hooks: &mut H) {
        let q = &self.queues[pri.index()];
        let m = q.front().expect("dispatch from empty queue");
        let haddr = q.addr_of(m.start, 0);
        hooks.access(Access::read(haddr));
        let handler = self.mem.read(haddr).as_addr();
        self.cur_msg[pri.index()] = Some(m);
        self.dispatches[pri.index()] += 1;
        match pri {
            Priority::High => {
                if self.low_pc.is_some() {
                    self.preemptions += 1;
                }
                self.high_pc = Some(handler);
            }
            Priority::Low => self.low_pc = Some(handler),
        }
    }

    /// Write a message's words into queue memory, emitting one trace write
    /// per word (hardware buffering traffic; see the module docs).
    fn enqueue_words<H: Hooks>(
        &mut self,
        target: Priority,
        words: &[Word],
        hooks: &mut H,
    ) -> Result<(), RunError> {
        let m = self.queues[target.index()]
            .begin_enqueue(words.len() as u32)
            .ok_or(RunError::QueueOverflow { pri: target })?;
        for (i, w) in words.iter().enumerate() {
            let addr = self.queues[target.index()].addr_of(m.start, i as u32);
            self.mem.write(addr, *w);
            hooks.access(Access::write(addr));
        }
        Ok(())
    }

    /// Deliver an arriving network message into queue memory.
    ///
    /// Returns `false` without touching anything when the queue lacks
    /// space — the network interface holds the message and retries
    /// (back-pressure propagates to the sender; nothing is ever dropped).
    pub fn try_deliver<H: Hooks>(&mut self, pri: Priority, words: &[Word], hooks: &mut H) -> bool {
        self.enqueue_words(pri, words, hooks).is_ok()
    }

    /// The program counter of the `pri` context, or `None` when that
    /// context is suspended. External schedulers (mesh work stealing)
    /// inspect this to prove a machine is not mid-way through a system
    /// routine before mutating scheduler state behind its back.
    pub fn context_pc(&self, pri: Priority) -> Option<u32> {
        match pri {
            Priority::High => self.high_pc,
            Priority::Low => self.low_pc,
        }
    }

    /// Whether the low-priority context is suspended (no pc). A mesh
    /// network interface checks this on message arrival: a software
    /// scheduler that legitimately suspended when its run queue drained
    /// must be re-armed at its entry point, because new work from the
    /// network is invisible to the single-node quiescence rule.
    pub fn low_suspended(&self) -> bool {
        self.low_pc.is_none()
    }

    /// Whether both contexts are suspended and both queues empty: no step
    /// can make progress until a message arrives from outside.
    pub fn is_idle(&self) -> bool {
        self.high_pc.is_none()
            && self.low_pc.is_none()
            && self.queues[0].is_empty()
            && self.queues[1].is_empty()
    }

    /// The machine's next wake-up, for event-driven drivers.
    ///
    /// A machine has no internal timers: either a step can do something
    /// *this* cycle ([`Wake::Now`] — a context is live, a message is
    /// queued, or a blocked `SEND` must retry), or nothing short of an
    /// external delivery can ever wake it ([`Wake::OnDelivery`]). Note
    /// that a low-priority suspend is not a wake-up source by itself: the
    /// AM scheduler's re-arm condition is message arrival (the mesh NI
    /// checks [`Machine::low_suspended`] on delivery), so a driver may
    /// skip cycles for an idle machine without consulting the scheduler
    /// state.
    pub fn next_wake(&self) -> Wake {
        if self.is_idle() {
            Wake::OnDelivery
        } else {
            Wake::Now
        }
    }

    /// Message dispatches so far, by priority. A mesh driver snapshots
    /// this around a step to detect the free dispatch transition and
    /// attribute it to the message at the queue head (network tracing).
    pub fn dispatch_counts(&self) -> [u64; 2] {
        self.dispatches
    }

    /// Snapshot the run counters. [`Machine::run`] calls this internally;
    /// mesh drivers call it per node once the global clock stops.
    pub fn stats(&self, halt: HaltReason) -> RunStats {
        self.finish(halt)
    }

    fn finish(&self, halt: HaltReason) -> RunStats {
        RunStats {
            instructions: self.instructions,
            instructions_by_pri: self.instructions_by_pri,
            dispatches: self.dispatches,
            preemptions: self.preemptions,
            sends: self.sends,
            send_words: self.send_words,
            max_queue_words: [
                self.queues[0].max_used_words(),
                self.queues[1].max_used_words(),
            ],
            halt,
        }
    }

    /// Run until halt, quiescence, or error, streaming events into `hooks`.
    ///
    /// With a pre-decoded image attached this uses the batched
    /// threaded-code executor ([`Machine::run_decoded`]); otherwise it is
    /// exactly a [`Machine::step`] loop over the always-local [`Loopback`]
    /// port: on a single node every send loops straight back into the
    /// local queue, and idleness is quiescence (no further work can ever
    /// arrive). Both paths produce bit-identical results, statistics, and
    /// event streams.
    pub fn run<H: Hooks>(&mut self, hooks: &mut H) -> Result<RunStats, RunError> {
        match self.decoded {
            Some(dec) => self.run_decoded_inner(dec, hooks),
            None => self.run_baseline(hooks),
        }
    }

    /// The baseline (non-predecoded) run loop.
    pub fn run_baseline<H: Hooks>(&mut self, hooks: &mut H) -> Result<RunStats, RunError> {
        loop {
            match self.step_baseline(hooks, &mut Loopback)? {
                Step::Ran => {}
                Step::Idle => return Ok(self.finish(HaltReason::Quiescent)),
                Step::Halted(reason) => return Ok(self.finish(reason)),
                Step::Blocked => unreachable!("loopback port never blocks"),
            }
        }
    }

    /// Run the attached pre-decoded image to completion with batched
    /// straight-line dispatch.
    ///
    /// # Panics
    /// Panics if no decoded image is attached.
    pub fn run_decoded<H: Hooks>(&mut self, hooks: &mut H) -> Result<RunStats, RunError> {
        let dec = self
            .decoded
            .expect("run_decoded: no decoded image attached");
        self.run_decoded_inner(dec, hooks)
    }

    /// Execute one instruction, offering any `SEND` to `net` first.
    ///
    /// Free transitions — message dispatch and [`MOp::Mark`] — do not end
    /// the step: the machine keeps going until it executes one costed
    /// instruction ([`Step::Ran`]), runs out of work ([`Step::Idle`]),
    /// stalls on a busy network port ([`Step::Blocked`], zero side
    /// effects), or halts. One `Ran`/`Blocked` step is one machine cycle
    /// on the mesh's global clock.
    ///
    /// With a pre-decoded image attached this routes to
    /// [`Machine::step_decoded`], which preserves the
    /// one-costed-instruction-per-step contract exactly (fused
    /// superinstructions execute their first half only), so mesh drivers
    /// interleave decoded machines cycle-for-cycle like baseline ones.
    pub fn step<H: Hooks, N: NetPort>(
        &mut self,
        hooks: &mut H,
        net: &mut N,
    ) -> Result<Step, RunError> {
        match self.decoded {
            Some(dec) => self.step_decoded_inner(dec, hooks, net),
            None => self.step_baseline(hooks, net),
        }
    }

    /// One instruction through the pre-decoded dispatch path.
    ///
    /// # Panics
    /// Panics if no decoded image is attached.
    pub fn step_decoded<H: Hooks, N: NetPort>(
        &mut self,
        hooks: &mut H,
        net: &mut N,
    ) -> Result<Step, RunError> {
        let dec = self
            .decoded
            .expect("step_decoded: no decoded image attached");
        self.step_decoded_inner(dec, hooks, net)
    }

    /// One instruction through the baseline enum-walking interpreter.
    pub fn step_baseline<H: Hooks, N: NetPort>(
        &mut self,
        hooks: &mut H,
        net: &mut N,
    ) -> Result<Step, RunError> {
        loop {
            // Preemption / activation of high-priority work. High-priority
            // tasks are never preempted; low-priority tasks are preempted
            // only with interrupts enabled (or when suspended).
            if self.high_pc.is_none()
                && !self.queues[Priority::High.index()].is_empty()
                && (self.low_pc.is_none() || self.ints_enabled)
            {
                self.dispatch(Priority::High, hooks);
            }

            let (pri, pc) = match (self.high_pc, self.low_pc) {
                (Some(pc), _) => (Priority::High, pc),
                (None, Some(pc)) => (Priority::Low, pc),
                (None, None) => {
                    if !self.queues[Priority::Low.index()].is_empty() {
                        self.dispatch(Priority::Low, hooks);
                        continue;
                    }
                    return Ok(Step::Idle);
                }
            };

            let op = self.code.at(pc);
            let p = pri.index();

            if let MOp::Mark(m) = op {
                let frame = self.regs[p][Reg::FP.index()].bits() as u32;
                hooks.queue_sample([self.queues[0].used_words(), self.queues[1].used_words()]);
                hooks.mark(*m, frame, pri);
                self.set_pc(pri, pc + 4);
                continue;
            }

            // Sends resolve and route *before* the instruction is charged:
            // a busy port means the instruction has not happened yet — no
            // fetch, no counters, no pc change — and will retry verbatim.
            if let MOp::Send { pri: target, srcs } = op {
                let mut buf = std::mem::take(&mut self.send_buf);
                buf.clear();
                for s in srcs {
                    buf.push(match s {
                        SendSrc::Reg(r) => self.regs[p][r.index()],
                        SendSrc::Imm(w) => *w,
                    });
                }
                let outcome = net.route(*target, &buf);
                if outcome == RouteOutcome::Busy {
                    self.send_buf = buf;
                    return Ok(Step::Blocked);
                }
                hooks.access(Access::fetch(pc));
                hooks.instruction(pri, pc);
                self.instructions += 1;
                self.instructions_by_pri[p] += 1;
                if self.instructions > self.cfg.fuel {
                    self.send_buf = buf;
                    return Err(RunError::FuelExhausted);
                }
                if outcome == RouteOutcome::Local {
                    let res = self.enqueue_words(*target, &buf, hooks);
                    self.send_buf = buf;
                    res?;
                } else {
                    self.send_buf = buf;
                }
                self.sends += 1;
                self.send_words += srcs.len() as u64;
                self.set_pc(pri, pc + 4);
                return Ok(Step::Ran);
            }

            hooks.access(Access::fetch(pc));
            hooks.instruction(pri, pc);
            self.instructions += 1;
            self.instructions_by_pri[p] += 1;
            if self.instructions > self.cfg.fuel {
                return Err(RunError::FuelExhausted);
            }

            let mut next = pc + 4;
            match op {
                MOp::MovI { d, v } => self.regs[p][d.index()] = *v,
                MOp::Mov { d, s } => self.regs[p][d.index()] = self.regs[p][s.index()],
                MOp::Alu { op, d, a, b } => {
                    let a = self.regs[p][a.index()].as_i64();
                    let b = match b {
                        Operand::Reg(r) => self.regs[p][r.index()].as_i64(),
                        Operand::Imm(v) => *v,
                    };
                    self.regs[p][d.index()] = Word::from_i64(eval_alu(*op, a, b, pc));
                }
                MOp::FAlu { op, d, a, b } => {
                    let av = self.regs[p][a.index()];
                    let bv = self.regs[p][b.index()];
                    self.regs[p][d.index()] = eval_falu(*op, av, bv);
                }
                MOp::Ld { d, base, off } => {
                    let addr = offset_addr(self.regs[p][base.index()].as_addr(), *off)
                        & self.cfg.addr_mask;
                    hooks.access(Access::read(addr));
                    self.regs[p][d.index()] = self.mem.read(addr);
                }
                MOp::LdA { d, addr } => {
                    hooks.access(Access::read(*addr));
                    self.regs[p][d.index()] = self.mem.read(*addr);
                }
                MOp::St { s, base, off } => {
                    let addr = offset_addr(self.regs[p][base.index()].as_addr(), *off)
                        & self.cfg.addr_mask;
                    hooks.access(Access::write(addr));
                    self.mem.write(addr, self.regs[p][s.index()]);
                }
                MOp::StA { s, addr } => {
                    hooks.access(Access::write(*addr));
                    self.mem.write(*addr, self.regs[p][s.index()]);
                }
                MOp::LdMsg { d, idx } => {
                    let m = self.cur_msg[p].expect("LdMsg with no current message");
                    debug_assert!((*idx as u32) < m.len, "LdMsg index beyond message");
                    let addr = self.queues[p].addr_of(m.start, *idx as u32);
                    hooks.access(Access::read(addr));
                    self.regs[p][d.index()] = self.mem.read(addr);
                }
                MOp::LdMsgIdx { d, idx } => {
                    let m = self.cur_msg[p].expect("LdMsgIdx with no current message");
                    let i = self.regs[p][idx.index()].as_i64();
                    debug_assert!(
                        i >= 0 && (i as u32) < m.len,
                        "LdMsgIdx index beyond message"
                    );
                    let addr = self.queues[p].addr_of(m.start, i as u32);
                    hooks.access(Access::read(addr));
                    self.regs[p][d.index()] = self.mem.read(addr);
                }
                MOp::Br { t } => next = *t,
                MOp::Bz { c, t } => {
                    if !self.regs[p][c.index()].as_bool() {
                        next = *t;
                    }
                }
                MOp::Bnz { c, t } => {
                    if self.regs[p][c.index()].as_bool() {
                        next = *t;
                    }
                }
                MOp::Jr { s } => next = self.regs[p][s.index()].as_addr(),
                MOp::Call { t } => {
                    self.regs[p][Reg::LINK.index()] = Word::from_addr(pc + 4);
                    next = *t;
                }
                MOp::Ret => next = self.regs[p][Reg::LINK.index()].as_addr(),
                MOp::Suspend => {
                    if let Some(m) = self.cur_msg[p].take() {
                        self.queues[p].retire(m);
                    }
                    match pri {
                        Priority::High => self.high_pc = None,
                        Priority::Low => self.low_pc = None,
                    }
                    return Ok(Step::Ran);
                }
                MOp::EnableInt => self.ints_enabled = true,
                MOp::DisableInt => self.ints_enabled = false,
                MOp::Halt => return Ok(Step::Halted(HaltReason::Explicit)),
                MOp::Mark(_) | MOp::Send { .. } => unreachable!("handled above"),
            }
            self.set_pc(pri, next);
            return Ok(Step::Ran);
        }
    }

    /// One instruction through the decoded dispatch path.
    ///
    /// Mirrors [`Machine::step_baseline`] exactly — same preemption and
    /// dispatch rules, same hook order, same blocked-send rewind — but
    /// reads pre-decoded [`DOp`]s. Fused superinstructions execute their
    /// *first* half only (the second slot holds that instruction's own
    /// decoding), preserving the one-costed-instruction-per-step contract
    /// mesh drivers schedule by.
    fn step_decoded_inner<H: Hooks, N: NetPort>(
        &mut self,
        dec: &DecodedImage,
        hooks: &mut H,
        net: &mut N,
    ) -> Result<Step, RunError> {
        loop {
            if self.high_pc.is_none()
                && !self.queues[Priority::High.index()].is_empty()
                && (self.low_pc.is_none() || self.ints_enabled)
            {
                self.dispatch(Priority::High, hooks);
            }

            let (pri, pc) = match (self.high_pc, self.low_pc) {
                (Some(pc), _) => (Priority::High, pc),
                (None, Some(pc)) => (Priority::Low, pc),
                (None, None) => {
                    if !self.queues[Priority::Low.index()].is_empty() {
                        self.dispatch(Priority::Low, hooks);
                        continue;
                    }
                    return Ok(Step::Idle);
                }
            };

            let op = dec.op(dec.idx_of(pc));
            let p = pri.index();

            if let DOp::Wild { addr, .. } = op {
                // Sequential fall-through past a region end; the baseline
                // panics in `CodeImage::at` before emitting any event.
                dec.wild_jump(*addr);
            }

            if let DOp::Mark(m) = op {
                let frame = self.regs[p][Reg::FP.index()].bits() as u32;
                hooks.queue_sample([self.queues[0].used_words(), self.queues[1].used_words()]);
                hooks.mark(*m, frame, pri);
                self.set_pc(pri, pc + 4);
                continue;
            }

            if let DOp::Send { pri: target, sid } = op {
                let mut buf = std::mem::take(&mut self.send_buf);
                buf.clear();
                for s in dec.send_srcs(*sid) {
                    buf.push(match s {
                        DSendSrc::Reg(r) => self.regs[p][*r as usize & 15],
                        DSendSrc::Imm(w) => *w,
                    });
                }
                let outcome = net.route(*target, &buf);
                if outcome == RouteOutcome::Busy {
                    self.send_buf = buf;
                    return Ok(Step::Blocked);
                }
                hooks.access(Access::fetch(pc));
                hooks.instruction(pri, pc);
                self.instructions += 1;
                self.instructions_by_pri[p] += 1;
                if self.instructions > self.cfg.fuel {
                    self.send_buf = buf;
                    return Err(RunError::FuelExhausted);
                }
                let words = buf.len() as u64;
                if outcome == RouteOutcome::Local {
                    let res = self.enqueue_words(*target, &buf, hooks);
                    self.send_buf = buf;
                    res?;
                } else {
                    self.send_buf = buf;
                }
                self.sends += 1;
                self.send_words += words;
                self.set_pc(pri, pc + 4);
                return Ok(Step::Ran);
            }

            hooks.access(Access::fetch(pc));
            hooks.instruction(pri, pc);
            self.instructions += 1;
            self.instructions_by_pri[p] += 1;
            if self.instructions > self.cfg.fuel {
                return Err(RunError::FuelExhausted);
            }

            let mut next = pc + 4;
            match op {
                DOp::MovI { d, v } => self.regs[p][*d as usize & 15] = *v,
                DOp::Mov { d, s } => {
                    self.regs[p][*d as usize & 15] = self.regs[p][*s as usize & 15]
                }
                DOp::AluRR { op, d, a, b } => {
                    let av = self.regs[p][*a as usize & 15].as_i64();
                    let bv = self.regs[p][*b as usize & 15].as_i64();
                    self.regs[p][*d as usize & 15] = Word::from_i64(eval_alu(*op, av, bv, pc));
                }
                DOp::AluRI { op, d, a, imm } => {
                    let av = self.regs[p][*a as usize & 15].as_i64();
                    self.regs[p][*d as usize & 15] = Word::from_i64(eval_alu(*op, av, *imm, pc));
                }
                DOp::FAlu { op, d, a, b } => {
                    let av = self.regs[p][*a as usize & 15];
                    let bv = self.regs[p][*b as usize & 15];
                    self.regs[p][*d as usize & 15] = eval_falu(*op, av, bv);
                }
                DOp::Ld { d, base, off } => {
                    let addr = offset_addr(self.regs[p][*base as usize & 15].as_addr(), *off)
                        & self.cfg.addr_mask;
                    hooks.access(Access::read(addr));
                    self.regs[p][*d as usize & 15] = self.mem.read(addr);
                }
                DOp::LdA { d, addr } => {
                    hooks.access(Access::read(*addr));
                    self.regs[p][*d as usize & 15] = self.mem.read(*addr);
                }
                DOp::St { s, base, off } => {
                    let addr = offset_addr(self.regs[p][*base as usize & 15].as_addr(), *off)
                        & self.cfg.addr_mask;
                    hooks.access(Access::write(addr));
                    self.mem.write(addr, self.regs[p][*s as usize & 15]);
                }
                DOp::StA { s, addr } => {
                    hooks.access(Access::write(*addr));
                    self.mem.write(*addr, self.regs[p][*s as usize & 15]);
                }
                DOp::LdMsg { d, idx } => {
                    let m = self.cur_msg[p].expect("LdMsg with no current message");
                    debug_assert!((*idx as u32) < m.len, "LdMsg index beyond message");
                    let addr = self.queues[p].addr_of(m.start, *idx as u32);
                    hooks.access(Access::read(addr));
                    self.regs[p][*d as usize & 15] = self.mem.read(addr);
                }
                DOp::LdMsgIdx { d, idx } => {
                    let m = self.cur_msg[p].expect("LdMsgIdx with no current message");
                    let i = self.regs[p][*idx as usize & 15].as_i64();
                    debug_assert!(
                        i >= 0 && (i as u32) < m.len,
                        "LdMsgIdx index beyond message"
                    );
                    let addr = self.queues[p].addr_of(m.start, i as u32);
                    hooks.access(Access::read(addr));
                    self.regs[p][*d as usize & 15] = self.mem.read(addr);
                }
                DOp::Br { t, .. } => next = *t,
                DOp::Bz { c, t, .. } => {
                    if !self.regs[p][*c as usize & 15].as_bool() {
                        next = *t;
                    }
                }
                DOp::Bnz { c, t, .. } => {
                    if self.regs[p][*c as usize & 15].as_bool() {
                        next = *t;
                    }
                }
                DOp::Jr { s } => next = self.regs[p][*s as usize & 15].as_addr(),
                DOp::Call { t, .. } => {
                    self.regs[p][Reg::LINK.index()] = Word::from_addr(pc + 4);
                    next = *t;
                }
                DOp::Ret => next = self.regs[p][Reg::LINK.index()].as_addr(),
                DOp::Suspend => {
                    if let Some(m) = self.cur_msg[p].take() {
                        self.queues[p].retire(m);
                    }
                    match pri {
                        Priority::High => self.high_pc = None,
                        Priority::Low => self.low_pc = None,
                    }
                    return Ok(Step::Ran);
                }
                DOp::EnableInt => self.ints_enabled = true,
                DOp::DisableInt => self.ints_enabled = false,
                DOp::Halt => return Ok(Step::Halted(HaltReason::Explicit)),
                // Fused superinstructions: first half only in step mode.
                DOp::CmpBr { op, d, a, b, .. } => {
                    let av = self.regs[p][*a as usize & 15].as_i64();
                    let bv = match b {
                        DOperand::Reg(r) => self.regs[p][*r as usize & 15].as_i64(),
                        DOperand::Imm(v) => *v,
                    };
                    self.regs[p][*d as usize & 15] = Word::from_i64(eval_alu(*op, av, bv, pc));
                }
                DOp::LdAlu {
                    ld_d, base, off, ..
                } => {
                    let addr = offset_addr(self.regs[p][*base as usize & 15].as_addr(), *off)
                        & self.cfg.addr_mask;
                    hooks.access(Access::read(addr));
                    self.regs[p][*ld_d as usize & 15] = self.mem.read(addr);
                }
                DOp::MovISt { d, v, .. } => self.regs[p][*d as usize & 15] = *v,
                DOp::Mark(_) | DOp::Send { .. } | DOp::Wild { .. } => {
                    unreachable!("handled above")
                }
            }
            self.set_pc(pri, next);
            return Ok(Step::Ran);
        }
    }

    /// The batched decoded run loop (single node, always-local sends).
    ///
    /// Straight-line stretches execute without returning to the outer
    /// dispatch loop; their instruction fetches and ticks are emitted as
    /// one [`Hooks::fetch_run`] batch whose default expansion is exactly
    /// the per-instruction stream. The batch is flushed before anything
    /// the stream orders against — data accesses, marks, control
    /// transfers, suspension, errors — so every hook implementation
    /// observes the events of the baseline interpreter in the baseline
    /// order.
    ///
    /// Only `SEND` (high priority), `EnableInt`, `Suspend`, and `Halt` can
    /// change the outer loop's preemption/dispatch decision on a single
    /// node, so those are the only ops that end a batch early; everything
    /// else keeps streaming.
    fn run_decoded_inner<H: Hooks>(
        &mut self,
        dec: &DecodedImage,
        hooks: &mut H,
    ) -> Result<RunStats, RunError> {
        'outer: loop {
            if self.high_pc.is_none()
                && !self.queues[Priority::High.index()].is_empty()
                && (self.low_pc.is_none() || self.ints_enabled)
            {
                self.dispatch(Priority::High, hooks);
            }

            let (pri, pc) = match (self.high_pc, self.low_pc) {
                (Some(pc), _) => (Priority::High, pc),
                (None, Some(pc)) => (Priority::Low, pc),
                (None, None) => {
                    if !self.queues[Priority::Low.index()].is_empty() {
                        self.dispatch(Priority::Low, hooks);
                        continue;
                    }
                    return Ok(self.finish(HaltReason::Quiescent));
                }
            };

            let p = pri.index();
            let mut idx = dec.idx_of(pc);
            // `cur_pc` is the address of the op at `idx`; `pend` counts
            // already-executed ops whose fetch/tick events are still
            // pending. Batches are contiguous, so the pending run starts
            // at `cur_pc - pend * 4` (or includes `cur_pc` when flushed
            // via `flush_incl`).
            let mut cur_pc = pc;
            let mut pend: u32 = 0;

            // Charge one instruction at address `$at`; on fuel exhaustion
            // emit the failing op's fetch+tick (batched), park the pc on
            // it, and error with no effects applied — exactly baseline.
            macro_rules! charge {
                ($at:expr) => {
                    self.instructions += 1;
                    self.instructions_by_pri[p] += 1;
                    if self.instructions > self.cfg.fuel {
                        pend += 1;
                        hooks.fetch_run(pri, $at - (pend - 1) * 4, pend);
                        self.set_pc(pri, $at);
                        return Err(RunError::FuelExhausted);
                    }
                };
            }
            // Flush the pending batch *including* the op at `$at` (its
            // fetch/tick must precede whatever comes next: a data event,
            // a control transfer, or an error).
            macro_rules! flush_incl {
                ($at:expr) => {
                    pend += 1;
                    hooks.fetch_run(pri, $at - (pend - 1) * 4, pend);
                    #[allow(unused_assignments)]
                    {
                        pend = 0;
                    }
                };
            }
            // Flush the pending batch *excluding* the current op (marks
            // and guards emit no fetch of their own).
            macro_rules! flush_before {
                () => {
                    if pend > 0 {
                        hooks.fetch_run(pri, cur_pc - pend * 4, pend);
                        #[allow(unused_assignments)]
                        {
                            pend = 0;
                        }
                    }
                };
            }

            loop {
                match dec.op(idx) {
                    DOp::MovI { d, v } => {
                        charge!(cur_pc);
                        self.regs[p][*d as usize & 15] = *v;
                        pend += 1;
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::Mov { d, s } => {
                        charge!(cur_pc);
                        self.regs[p][*d as usize & 15] = self.regs[p][*s as usize & 15];
                        pend += 1;
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::AluRR { op, d, a, b } => {
                        charge!(cur_pc);
                        let av = self.regs[p][*a as usize & 15].as_i64();
                        let bv = self.regs[p][*b as usize & 15].as_i64();
                        if matches!(op, AluOp::Div | AluOp::Rem) {
                            // Flush first so a divide-by-zero panic leaves
                            // the delivered stream exactly as baseline.
                            flush_incl!(cur_pc);
                            self.set_pc(pri, cur_pc);
                            self.regs[p][*d as usize & 15] =
                                Word::from_i64(eval_alu(*op, av, bv, cur_pc));
                        } else {
                            self.regs[p][*d as usize & 15] =
                                Word::from_i64(eval_alu(*op, av, bv, cur_pc));
                            pend += 1;
                        }
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::AluRI { op, d, a, imm } => {
                        charge!(cur_pc);
                        let av = self.regs[p][*a as usize & 15].as_i64();
                        if matches!(op, AluOp::Div | AluOp::Rem) {
                            flush_incl!(cur_pc);
                            self.set_pc(pri, cur_pc);
                            self.regs[p][*d as usize & 15] =
                                Word::from_i64(eval_alu(*op, av, *imm, cur_pc));
                        } else {
                            self.regs[p][*d as usize & 15] =
                                Word::from_i64(eval_alu(*op, av, *imm, cur_pc));
                            pend += 1;
                        }
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::FAlu { op, d, a, b } => {
                        charge!(cur_pc);
                        let av = self.regs[p][*a as usize & 15];
                        let bv = self.regs[p][*b as usize & 15];
                        self.regs[p][*d as usize & 15] = eval_falu(*op, av, bv);
                        pend += 1;
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::Ld { d, base, off } => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        let addr = offset_addr(self.regs[p][*base as usize & 15].as_addr(), *off)
                            & self.cfg.addr_mask;
                        hooks.access(Access::read(addr));
                        self.regs[p][*d as usize & 15] = self.mem.read(addr);
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::LdA { d, addr } => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        hooks.access(Access::read(*addr));
                        self.regs[p][*d as usize & 15] = self.mem.read(*addr);
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::St { s, base, off } => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        let addr = offset_addr(self.regs[p][*base as usize & 15].as_addr(), *off)
                            & self.cfg.addr_mask;
                        hooks.access(Access::write(addr));
                        self.mem.write(addr, self.regs[p][*s as usize & 15]);
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::StA { s, addr } => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        hooks.access(Access::write(*addr));
                        self.mem.write(*addr, self.regs[p][*s as usize & 15]);
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::LdMsg { d, idx: wi } => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        let m = self.cur_msg[p].expect("LdMsg with no current message");
                        debug_assert!((*wi as u32) < m.len, "LdMsg index beyond message");
                        let addr = self.queues[p].addr_of(m.start, *wi as u32);
                        hooks.access(Access::read(addr));
                        self.regs[p][*d as usize & 15] = self.mem.read(addr);
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::LdMsgIdx { d, idx: wi } => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        let m = self.cur_msg[p].expect("LdMsgIdx with no current message");
                        let i = self.regs[p][*wi as usize & 15].as_i64();
                        debug_assert!(
                            i >= 0 && (i as u32) < m.len,
                            "LdMsgIdx index beyond message"
                        );
                        let addr = self.queues[p].addr_of(m.start, i as u32);
                        hooks.access(Access::read(addr));
                        self.regs[p][*d as usize & 15] = self.mem.read(addr);
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::Br { ti, t } => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        if *ti == INVALID_TARGET {
                            self.set_pc(pri, *t);
                            dec.wild_jump(*t);
                        }
                        idx = *ti;
                        cur_pc = *t;
                    }
                    DOp::Bz { c, ti, t } => {
                        charge!(cur_pc);
                        if !self.regs[p][*c as usize & 15].as_bool() {
                            flush_incl!(cur_pc);
                            if *ti == INVALID_TARGET {
                                self.set_pc(pri, *t);
                                dec.wild_jump(*t);
                            }
                            idx = *ti;
                            cur_pc = *t;
                        } else {
                            pend += 1;
                            idx += 1;
                            cur_pc += 4;
                        }
                    }
                    DOp::Bnz { c, ti, t } => {
                        charge!(cur_pc);
                        if self.regs[p][*c as usize & 15].as_bool() {
                            flush_incl!(cur_pc);
                            if *ti == INVALID_TARGET {
                                self.set_pc(pri, *t);
                                dec.wild_jump(*t);
                            }
                            idx = *ti;
                            cur_pc = *t;
                        } else {
                            pend += 1;
                            idx += 1;
                            cur_pc += 4;
                        }
                    }
                    DOp::Jr { s } => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        let t = self.regs[p][*s as usize & 15].as_addr();
                        match dec.try_idx(t) {
                            Some(i) => {
                                idx = i;
                                cur_pc = t;
                            }
                            None => {
                                self.set_pc(pri, t);
                                dec.wild_jump(t);
                            }
                        }
                    }
                    DOp::Call { ti, t } => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        self.regs[p][Reg::LINK.index()] = Word::from_addr(cur_pc + 4);
                        if *ti == INVALID_TARGET {
                            self.set_pc(pri, *t);
                            dec.wild_jump(*t);
                        }
                        idx = *ti;
                        cur_pc = *t;
                    }
                    DOp::Ret => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        let t = self.regs[p][Reg::LINK.index()].as_addr();
                        match dec.try_idx(t) {
                            Some(i) => {
                                idx = i;
                                cur_pc = t;
                            }
                            None => {
                                self.set_pc(pri, t);
                                dec.wild_jump(t);
                            }
                        }
                    }
                    DOp::Send { pri: target, sid } => {
                        // Single node: the loopback port routes every
                        // message locally, so no Busy rewind can occur.
                        let mut buf = std::mem::take(&mut self.send_buf);
                        buf.clear();
                        for s in dec.send_srcs(*sid) {
                            buf.push(match s {
                                DSendSrc::Reg(r) => self.regs[p][*r as usize & 15],
                                DSendSrc::Imm(w) => *w,
                            });
                        }
                        self.instructions += 1;
                        self.instructions_by_pri[p] += 1;
                        if self.instructions > self.cfg.fuel {
                            self.send_buf = buf;
                            pend += 1;
                            hooks.fetch_run(pri, cur_pc - (pend - 1) * 4, pend);
                            self.set_pc(pri, cur_pc);
                            return Err(RunError::FuelExhausted);
                        }
                        flush_incl!(cur_pc);
                        let res = self.enqueue_words(*target, &buf, hooks);
                        let words = buf.len() as u64;
                        self.send_buf = buf;
                        if let Err(e) = res {
                            self.set_pc(pri, cur_pc);
                            return Err(e);
                        }
                        self.sends += 1;
                        self.send_words += words;
                        self.set_pc(pri, cur_pc + 4);
                        if *target == Priority::High {
                            // New high-priority work: re-run the outer
                            // preemption/dispatch check.
                            continue 'outer;
                        }
                        // A low send cannot change the preemption decision
                        // while this context runs; keep streaming.
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::Suspend => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        if let Some(m) = self.cur_msg[p].take() {
                            self.queues[p].retire(m);
                        }
                        match pri {
                            Priority::High => self.high_pc = None,
                            Priority::Low => self.low_pc = None,
                        }
                        continue 'outer;
                    }
                    DOp::EnableInt => {
                        charge!(cur_pc);
                        self.ints_enabled = true;
                        pend += 1;
                        if self.high_pc.is_none() && !self.queues[Priority::High.index()].is_empty()
                        {
                            // Preemption just became possible.
                            hooks.fetch_run(pri, cur_pc - (pend - 1) * 4, pend);
                            self.set_pc(pri, cur_pc + 4);
                            continue 'outer;
                        }
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::DisableInt => {
                        charge!(cur_pc);
                        self.ints_enabled = false;
                        pend += 1;
                        idx += 1;
                        cur_pc += 4;
                    }
                    DOp::Halt => {
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        self.set_pc(pri, cur_pc);
                        return Ok(self.finish(HaltReason::Explicit));
                    }
                    DOp::Mark(m) => {
                        flush_before!();
                        let frame = self.regs[p][Reg::FP.index()].bits() as u32;
                        hooks.queue_sample([
                            self.queues[0].used_words(),
                            self.queues[1].used_words(),
                        ]);
                        hooks.mark(*m, frame, pri);
                        idx += 1;
                        cur_pc += 4;
                        // The pending run restarts after the mark; marks
                        // emit no fetch so the batch cannot span one.
                    }
                    DOp::CmpBr {
                        op,
                        d,
                        a,
                        b,
                        bnz,
                        ti,
                        t,
                    } => {
                        // ALU half.
                        charge!(cur_pc);
                        let av = self.regs[p][*a as usize & 15].as_i64();
                        let bv = match b {
                            DOperand::Reg(r) => self.regs[p][*r as usize & 15].as_i64(),
                            DOperand::Imm(v) => *v,
                        };
                        self.regs[p][*d as usize & 15] =
                            Word::from_i64(eval_alu(*op, av, bv, cur_pc));
                        pend += 1;
                        // Branch half at cur_pc + 4.
                        charge!(cur_pc + 4);
                        if self.regs[p][*d as usize & 15].as_bool() == *bnz {
                            pend += 1;
                            hooks.fetch_run(pri, (cur_pc + 4) - (pend - 1) * 4, pend);
                            pend = 0;
                            if *ti == INVALID_TARGET {
                                self.set_pc(pri, *t);
                                dec.wild_jump(*t);
                            }
                            idx = *ti;
                            cur_pc = *t;
                        } else {
                            pend += 1;
                            idx += 2;
                            cur_pc += 8;
                        }
                    }
                    DOp::LdAlu {
                        ld_d,
                        base,
                        off,
                        op,
                        d,
                        a,
                        b,
                    } => {
                        // Load half.
                        charge!(cur_pc);
                        flush_incl!(cur_pc);
                        let addr = offset_addr(self.regs[p][*base as usize & 15].as_addr(), *off)
                            & self.cfg.addr_mask;
                        hooks.access(Access::read(addr));
                        self.regs[p][*ld_d as usize & 15] = self.mem.read(addr);
                        // ALU half at cur_pc + 4 (never Div/Rem).
                        charge!(cur_pc + 4);
                        let av = self.regs[p][*a as usize & 15].as_i64();
                        let bv = match b {
                            DOperand::Reg(r) => self.regs[p][*r as usize & 15].as_i64(),
                            DOperand::Imm(v) => *v,
                        };
                        self.regs[p][*d as usize & 15] =
                            Word::from_i64(eval_alu(*op, av, bv, cur_pc + 4));
                        pend += 1;
                        idx += 2;
                        cur_pc += 8;
                    }
                    DOp::MovISt { d, v, base, off } => {
                        // MovI half.
                        charge!(cur_pc);
                        self.regs[p][*d as usize & 15] = *v;
                        pend += 1;
                        // Store half at cur_pc + 4.
                        charge!(cur_pc + 4);
                        flush_incl!(cur_pc + 4);
                        let addr = offset_addr(self.regs[p][*base as usize & 15].as_addr(), *off)
                            & self.cfg.addr_mask;
                        hooks.access(Access::write(addr));
                        self.mem.write(addr, self.regs[p][*d as usize & 15]);
                        idx += 2;
                        cur_pc += 8;
                    }
                    DOp::Wild { addr, .. } => {
                        flush_before!();
                        self.set_pc(pri, *addr);
                        dec.wild_jump(*addr);
                    }
                }
            }
        }
    }

    #[inline]
    fn set_pc(&mut self, pri: Priority, pc: u32) {
        match pri {
            Priority::High => self.high_pc = Some(pc),
            Priority::Low => self.low_pc = Some(pc),
        }
    }

    /// Whether the *next* [`Machine::step`] could possibly execute
    /// [`MOp::Halt`] (or panic on a wild pc).
    ///
    /// Within one step the only free transitions are message dispatch and
    /// [`MOp::Mark`], so the step halts iff the Mark-chain from the pc it
    /// ends up executing reaches a `Halt` — which [`HaltSet`] precomputes
    /// per code address. The pc is found by replaying the step loop's
    /// dispatch decision without side effects:
    ///
    /// 1. a running high context executes from `high_pc`;
    /// 2. otherwise a pending high message dispatches (when the low
    ///    context is suspended or interruptible) to the handler named by
    ///    the queue-head's first word;
    /// 3. otherwise a running low context executes from `low_pc`;
    /// 4. otherwise a pending low message dispatches likewise;
    /// 5. otherwise the step is `Idle` and cannot halt.
    ///
    /// Mark never changes queues or the interrupt flag, so the dispatch
    /// decision is stable across the chain and one lookup suffices. The
    /// answer may be a false positive (pc chains out of the image — real
    /// execution would panic; a concurrent driver must reproduce that
    /// panic deterministically too, so it treats "might halt" as "run
    /// this machine serially") but never a false negative. Identical for
    /// the baseline and pre-decoded interpreters: both read the same pc
    /// stream and neither fuses `Halt`.
    pub fn might_halt(&self, halts: &HaltSet) -> bool {
        if let Some(pc) = self.high_pc {
            return halts.reaches_halt(pc);
        }
        let high_q = &self.queues[Priority::High.index()];
        if !high_q.is_empty() && (self.low_pc.is_none() || self.ints_enabled) {
            let m = high_q.front().expect("non-empty queue has a front");
            let handler = self.mem.read(high_q.addr_of(m.start, 0)).as_addr();
            return halts.reaches_halt(handler);
        }
        if let Some(pc) = self.low_pc {
            return halts.reaches_halt(pc);
        }
        let low_q = &self.queues[Priority::Low.index()];
        if !low_q.is_empty() {
            let m = low_q.front().expect("non-empty queue has a front");
            let handler = self.mem.read(low_q.addr_of(m.start, 0)).as_addr();
            return halts.reaches_halt(handler);
        }
        false
    }
}

/// Per-address "can a step starting here halt?" bitmap over a
/// [`CodeImage`], for concurrent mesh drivers.
///
/// `reaches_halt(pc)` is true iff executing from `pc` can reach
/// [`MOp::Halt`] through free transitions alone — that is, the op at `pc`
/// is `Halt`, or it is [`MOp::Mark`] and the chain from `pc + 4` reaches
/// one (Mark does not end a step). Addresses outside the image are
/// conservatively true: real execution panics on the wild jump, and the
/// caller must funnel that machine onto the deterministic serial path so
/// the panic reproduces identically.
#[derive(Debug, Clone)]
pub struct HaltSet {
    sys_base: u32,
    user_base: u32,
    sys: Vec<bool>,
    user: Vec<bool>,
}

impl HaltSet {
    /// Precompute the halt-reachability bitmap for `code`.
    pub fn new(code: &CodeImage) -> Self {
        HaltSet {
            sys_base: code.sys_base(),
            user_base: code.user_base(),
            sys: Self::chain(code.sys_ops()),
            user: Self::chain(code.user_ops()),
        }
    }

    /// Reverse scan: `ha[i] = op[i] == Halt || (op[i] == Mark && ha[i+1])`,
    /// with a Mark falling off the region end conservatively true (real
    /// execution would wild-jump).
    fn chain(ops: &[MOp]) -> Vec<bool> {
        let mut ha = vec![false; ops.len()];
        for i in (0..ops.len()).rev() {
            ha[i] = match ops[i] {
                MOp::Halt => true,
                MOp::Mark(_) => i + 1 >= ops.len() || ha[i + 1],
                _ => false,
            };
        }
        ha
    }

    /// Whether a step starting at `pc` can execute `Halt` (conservatively
    /// true outside the image). Uses the same `(pc - base) / 4` index
    /// truncation as [`CodeImage::at`], so unaligned fuzz-generated pcs
    /// resolve to exactly the op real execution would run.
    #[inline]
    pub fn reaches_halt(&self, pc: u32) -> bool {
        let (base, region) = if pc >= self.user_base {
            (self.user_base, &self.user)
        } else if pc >= self.sys_base {
            (self.sys_base, &self.sys)
        } else {
            return true;
        };
        let i = ((pc - base) / 4) as usize;
        region.get(i).copied().unwrap_or(true)
    }
}

#[inline]
fn offset_addr(base: u32, off: i32) -> u32 {
    (base as i64 + off as i64) as u32
}

fn eval_alu(op: AluOp, a: i64, b: i64, pc: u32) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            assert!(b != 0, "division by zero at pc {pc:#x}");
            a.wrapping_div(b)
        }
        AluOp::Rem => {
            assert!(b != 0, "remainder by zero at pc {pc:#x}");
            a.wrapping_rem(b)
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32),
        AluOp::Shr => a.wrapping_shr(b as u32),
        AluOp::Eq => (a == b) as i64,
        AluOp::Ne => (a != b) as i64,
        AluOp::Lt => (a < b) as i64,
        AluOp::Le => (a <= b) as i64,
        AluOp::Gt => (a > b) as i64,
        AluOp::Ge => (a >= b) as i64,
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
    }
}

fn eval_falu(op: FAluOp, a: Word, b: Word) -> Word {
    match op {
        FAluOp::FAdd => Word::from_f64(a.as_f64() + b.as_f64()),
        FAluOp::FSub => Word::from_f64(a.as_f64() - b.as_f64()),
        FAluOp::FMul => Word::from_f64(a.as_f64() * b.as_f64()),
        FAluOp::FDiv => Word::from_f64(a.as_f64() / b.as_f64()),
        FAluOp::FLt => Word::from_bool(a.as_f64() < b.as_f64()),
        FAluOp::FLe => Word::from_bool(a.as_f64() <= b.as_f64()),
        FAluOp::FEq => Word::from_bool(a.as_f64() == b.as_f64()),
        FAluOp::ItoF => Word::from_f64(a.as_i64() as f64),
        FAluOp::FtoI => Word::from_i64(a.as_f64() as i64),
        FAluOp::FNeg => Word::from_f64(-a.as_f64()),
        FAluOp::FAbs => Word::from_f64(a.as_f64().abs()),
        FAluOp::FMin => Word::from_f64(a.as_f64().min(b.as_f64())),
        FAluOp::FMax => Word::from_f64(a.as_f64().max(b.as_f64())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{NoHooks, SinkHooks};
    use crate::Mark;
    use tamsim_trace::{AccessKind, VecSink};

    fn map() -> MemoryMap {
        MemoryMap::default()
    }

    /// Build a code image whose user code is `ops`, starting at user base.
    fn user_image(ops: Vec<MOp>) -> (CodeImage, u32) {
        let mut img = CodeImage::new(&map());
        let entry = img.next_user();
        for op in ops {
            img.push_user(op);
        }
        (img, entry)
    }

    fn run_user(ops: Vec<MOp>) -> (RunStats, Vec<tamsim_trace::Access>) {
        let (img, entry) = user_image(ops);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        let mut hooks = SinkHooks(VecSink::new());
        let stats = m.run(&mut hooks).expect("run failed");
        (stats, hooks.0.events)
    }

    #[test]
    fn straight_line_arithmetic_and_halt() {
        let (img, entry) = user_image(vec![
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(6),
            },
            MOp::MovI {
                d: Reg(1),
                v: Word::from_i64(7),
            },
            MOp::Alu {
                op: AluOp::Mul,
                d: Reg(2),
                a: Reg(0),
                b: Operand::Reg(Reg(1)),
            },
            MOp::Halt,
        ]);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        let stats = m.run(&mut NoHooks).unwrap();
        assert_eq!(stats.instructions, 4);
        assert_eq!(stats.halt, HaltReason::Explicit);
        assert_eq!(m.reg(Priority::Low, Reg(2)).as_i64(), 42);
    }

    #[test]
    fn every_instruction_emits_one_fetch() {
        let (_stats, events) = run_user(vec![
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(1),
            },
            MOp::Mov {
                d: Reg(1),
                s: Reg(0),
            },
            MOp::Halt,
        ]);
        let fetches: Vec<_> = events
            .iter()
            .filter(|a| a.kind == AccessKind::Fetch)
            .collect();
        assert_eq!(fetches.len(), 3);
        // Sequential addresses 4 bytes apart.
        assert_eq!(fetches[1].addr, fetches[0].addr + 4);
        assert_eq!(fetches[2].addr, fetches[1].addr + 4);
    }

    #[test]
    fn loads_and_stores_touch_memory_and_trace() {
        let fb = map().frame_base;
        let (stats, events) = run_user(vec![
            MOp::MovI {
                d: Reg(0),
                v: Word::from_addr(fb),
            },
            MOp::MovI {
                d: Reg(1),
                v: Word::from_i64(99),
            },
            MOp::St {
                s: Reg(1),
                base: Reg(0),
                off: 8,
            },
            MOp::Ld {
                d: Reg(2),
                base: Reg(0),
                off: 8,
            },
            MOp::Halt,
        ]);
        assert_eq!(stats.instructions, 5);
        assert!(events.contains(&Access::write(fb + 8)));
        assert!(events.contains(&Access::read(fb + 8)));
    }

    #[test]
    fn branches_and_loop() {
        // Sum 1..=5 with a loop.
        let ub = map().user_code_base;
        let (img, entry) = user_image(vec![
            /* 0 */
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(0),
            }, // acc
            /* 1 */
            MOp::MovI {
                d: Reg(1),
                v: Word::from_i64(5),
            }, // i
            /* 2 */
            MOp::Alu {
                op: AluOp::Add,
                d: Reg(0),
                a: Reg(0),
                b: Operand::Reg(Reg(1)),
            },
            /* 3 */
            MOp::Alu {
                op: AluOp::Sub,
                d: Reg(1),
                a: Reg(1),
                b: Operand::Imm(1),
            },
            /* 4 */
            MOp::Bnz {
                c: Reg(1),
                t: ub + 2 * 4,
            },
            /* 5 */ MOp::Halt,
        ]);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        m.run(&mut NoHooks).unwrap();
        assert_eq!(m.reg(Priority::Low, Reg(0)).as_i64(), 15);
    }

    #[test]
    fn call_and_ret_use_link_register() {
        let ub = map().user_code_base;
        let (img, entry) = user_image(vec![
            /* 0 */ MOp::Call { t: ub + 3 * 4 },
            /* 1 */
            MOp::MovI {
                d: Reg(1),
                v: Word::from_i64(2),
            },
            /* 2 */ MOp::Halt,
            /* 3: callee */
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(1),
            },
            /* 4 */ MOp::Ret,
        ]);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        let stats = m.run(&mut NoHooks).unwrap();
        assert_eq!(m.reg(Priority::Low, Reg(0)).as_i64(), 1);
        assert_eq!(m.reg(Priority::Low, Reg(1)).as_i64(), 2);
        assert_eq!(stats.instructions, 5);
    }

    #[test]
    fn dispatch_runs_handler_and_quiesces() {
        // Handler: read message arg, store to frame, suspend.
        let fb = map().frame_base;
        let mut img = CodeImage::new(&map());
        let handler = img.next_user();
        img.push_user(MOp::LdMsg { d: Reg(0), idx: 1 });
        img.push_user(MOp::MovI {
            d: Reg(1),
            v: Word::from_addr(fb),
        });
        img.push_user(MOp::St {
            s: Reg(0),
            base: Reg(1),
            off: 0,
        });
        img.push_user(MOp::Suspend);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.inject(
            Priority::Low,
            &[Word::from_addr(handler), Word::from_i64(17)],
        )
        .unwrap();
        let stats = m.run(&mut NoHooks).unwrap();
        assert_eq!(stats.halt, HaltReason::Quiescent);
        assert_eq!(stats.dispatches, [1, 0]);
        assert_eq!(m.mem.read(fb).as_i64(), 17);
    }

    #[test]
    fn send_enqueues_and_dispatches_chained_messages() {
        // Low task A sends a low message to handler B carrying 5; B doubles
        // it into frame memory and halts.
        let fb = map().frame_base;
        let mut img = CodeImage::new(&map());
        let a = img.next_user();
        img.push_user(MOp::MovI {
            d: Reg(2),
            v: Word::ZERO,
        }); // placeholder for B addr, patched below
        img.push_user(MOp::MovI {
            d: Reg(3),
            v: Word::from_i64(5),
        });
        img.push_user(MOp::Send {
            pri: Priority::Low,
            srcs: vec![SendSrc::Reg(Reg(2)), SendSrc::Reg(Reg(3))],
        });
        img.push_user(MOp::Suspend);
        let b = img.next_user();
        img.push_user(MOp::LdMsg { d: Reg(0), idx: 1 });
        img.push_user(MOp::Alu {
            op: AluOp::Add,
            d: Reg(0),
            a: Reg(0),
            b: Operand::Reg(Reg(0)),
        });
        img.push_user(MOp::MovI {
            d: Reg(1),
            v: Word::from_addr(fb),
        });
        img.push_user(MOp::St {
            s: Reg(0),
            base: Reg(1),
            off: 0,
        });
        img.push_user(MOp::Halt);
        img.patch(
            a,
            MOp::MovI {
                d: Reg(2),
                v: Word::from_addr(b),
            },
        );

        let mut m = Machine::new(MachineConfig::default(), &img);
        m.inject(Priority::Low, &[Word::from_addr(a)]).unwrap();
        let stats = m.run(&mut NoHooks).unwrap();
        assert_eq!(stats.halt, HaltReason::Explicit);
        assert_eq!(stats.sends, 1);
        assert_eq!(stats.send_words, 2);
        assert_eq!(stats.dispatches, [2, 0]);
        assert_eq!(m.mem.read(fb).as_i64(), 10);
    }

    #[test]
    fn send_words_are_written_to_queue_memory() {
        let mut img = CodeImage::new(&map());
        let entry = img.next_user();
        img.push_user(MOp::MovI {
            d: Reg(0),
            v: Word::from_i64(0xAB),
        });
        img.push_user(MOp::Send {
            pri: Priority::High,
            srcs: vec![SendSrc::Reg(Reg(0))],
        });
        img.push_user(MOp::Halt);
        // The high handler at 0xAB would be wild; halt before dispatch
        // happens only if interrupts disabled — so disable first.
        let mut img2 = CodeImage::new(&map());
        let entry2 = img2.next_user();
        img2.push_user(MOp::DisableInt);
        img2.push_user(MOp::MovI {
            d: Reg(0),
            v: Word::from_i64(0xAB),
        });
        img2.push_user(MOp::Send {
            pri: Priority::High,
            srcs: vec![SendSrc::Reg(Reg(0))],
        });
        img2.push_user(MOp::Halt);
        let _ = (img, entry);

        let cfg = MachineConfig::default();
        let hq_base = cfg.sys_layout().high_queue_base;
        let mut m = Machine::new(cfg, &img2);
        m.start_low(entry2);
        let mut hooks = SinkHooks(VecSink::new());
        m.run(&mut hooks).unwrap();
        assert!(hooks.0.events.contains(&Access::write(hq_base)));
        assert_eq!(m.mem.read(hq_base).as_i64(), 0xAB);
    }

    #[test]
    fn high_priority_preempts_enabled_low_code() {
        // Low code sends a high message, then (interrupts enabled) the
        // handler must run before the next low instruction writes the frame.
        let fb = map().frame_base;
        let mut img = CodeImage::new(&map());
        // High handler: write 1 to frame[0], suspend.
        let h = img.next_sys();
        img.push_sys(MOp::MovI {
            d: Reg(0),
            v: Word::from_addr(fb),
        });
        img.push_sys(MOp::MovI {
            d: Reg(1),
            v: Word::from_i64(1),
        });
        img.push_sys(MOp::St {
            s: Reg(1),
            base: Reg(0),
            off: 0,
        });
        img.push_sys(MOp::Suspend);
        // Low: send high, then read frame[0] into r5, halt.
        let entry = img.next_user();
        img.push_user(MOp::MovI {
            d: Reg(2),
            v: Word::from_addr(h),
        });
        img.push_user(MOp::Send {
            pri: Priority::High,
            srcs: vec![SendSrc::Reg(Reg(2))],
        });
        img.push_user(MOp::MovI {
            d: Reg(0),
            v: Word::from_addr(fb),
        });
        img.push_user(MOp::Ld {
            d: Reg(5),
            base: Reg(0),
            off: 0,
        });
        img.push_user(MOp::Halt);

        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        let stats = m.run(&mut NoHooks).unwrap();
        assert_eq!(stats.preemptions, 1);
        assert_eq!(
            m.reg(Priority::Low, Reg(5)).as_i64(),
            1,
            "handler ran before the load"
        );
    }

    #[test]
    fn disabled_interrupts_defer_high_priority_until_enable() {
        let fb = map().frame_base;
        let mut img = CodeImage::new(&map());
        let h = img.next_sys();
        img.push_sys(MOp::MovI {
            d: Reg(0),
            v: Word::from_addr(fb),
        });
        img.push_sys(MOp::MovI {
            d: Reg(1),
            v: Word::from_i64(1),
        });
        img.push_sys(MOp::St {
            s: Reg(1),
            base: Reg(0),
            off: 0,
        });
        img.push_sys(MOp::Suspend);
        let entry = img.next_user();
        img.push_user(MOp::DisableInt);
        img.push_user(MOp::MovI {
            d: Reg(2),
            v: Word::from_addr(h),
        });
        img.push_user(MOp::Send {
            pri: Priority::High,
            srcs: vec![SendSrc::Reg(Reg(2))],
        });
        img.push_user(MOp::MovI {
            d: Reg(0),
            v: Word::from_addr(fb),
        });
        // Handler has NOT run yet: frame[0] still 0.
        img.push_user(MOp::Ld {
            d: Reg(5),
            base: Reg(0),
            off: 0,
        });
        img.push_user(MOp::EnableInt);
        // Handler runs here, before the next low instruction.
        img.push_user(MOp::Ld {
            d: Reg(6),
            base: Reg(0),
            off: 0,
        });
        img.push_user(MOp::Halt);

        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        let stats = m.run(&mut NoHooks).unwrap();
        assert_eq!(
            m.reg(Priority::Low, Reg(5)).as_i64(),
            0,
            "deferred while disabled"
        );
        assert_eq!(
            m.reg(Priority::Low, Reg(6)).as_i64(),
            1,
            "ran at enable point"
        );
        assert_eq!(stats.preemptions, 1);
    }

    #[test]
    fn same_priority_messages_do_not_interrupt() {
        // A low task sends itself another low message; it must finish
        // before the second handler is dispatched.
        let fb = map().frame_base;
        let mut img = CodeImage::new(&map());
        let h2 = img.next_sys(); // handler 2 in sys code for address separation
        img.push_sys(MOp::MovI {
            d: Reg(0),
            v: Word::from_addr(fb),
        });
        img.push_sys(MOp::MovI {
            d: Reg(1),
            v: Word::from_i64(2),
        });
        img.push_sys(MOp::St {
            s: Reg(1),
            base: Reg(0),
            off: 0,
        });
        img.push_sys(MOp::Halt);
        let entry = img.next_user();
        img.push_user(MOp::MovI {
            d: Reg(2),
            v: Word::from_addr(h2),
        });
        img.push_user(MOp::Send {
            pri: Priority::Low,
            srcs: vec![SendSrc::Reg(Reg(2))],
        });
        img.push_user(MOp::MovI {
            d: Reg(0),
            v: Word::from_addr(fb),
        });
        img.push_user(MOp::MovI {
            d: Reg(1),
            v: Word::from_i64(1),
        });
        img.push_user(MOp::St {
            s: Reg(1),
            base: Reg(0),
            off: 0,
        });
        img.push_user(MOp::Suspend);

        let mut m = Machine::new(MachineConfig::default(), &img);
        m.inject(Priority::Low, &[Word::from_addr(entry)]).unwrap();
        m.run(&mut NoHooks).unwrap();
        // Handler 2 ran after the first task, overwriting 1 with 2.
        assert_eq!(m.mem.read(fb).as_i64(), 2);
    }

    #[test]
    fn queue_overflow_is_an_error() {
        let mut img = CodeImage::new(&map());
        let entry = img.next_user();
        img.push_user(MOp::DisableInt);
        img.push_user(MOp::MovI {
            d: Reg(0),
            v: Word::from_i64(1),
        });
        let loop_pc = img.next_user();
        img.push_user(MOp::Send {
            pri: Priority::High,
            srcs: vec![SendSrc::Reg(Reg(0))],
        });
        img.push_user(MOp::Br { t: loop_pc });
        let cfg = MachineConfig {
            queue_words: [8, 8],
            ..Default::default()
        };
        let mut m = Machine::new(cfg, &img);
        m.start_low(entry);
        assert_eq!(
            m.run(&mut NoHooks),
            Err(RunError::QueueOverflow {
                pri: Priority::High
            })
        );
    }

    #[test]
    fn fuel_exhaustion_is_an_error() {
        let mut img = CodeImage::new(&map());
        let entry = img.next_user();
        img.push_user(MOp::Br { t: entry });
        let cfg = MachineConfig {
            fuel: 100,
            ..Default::default()
        };
        let mut m = Machine::new(cfg, &img);
        m.start_low(entry);
        assert_eq!(m.run(&mut NoHooks), Err(RunError::FuelExhausted));
    }

    #[test]
    fn marks_cost_nothing_and_report_fp() {
        struct MarkHook {
            marks: Vec<(Mark, u32)>,
        }
        impl Hooks for MarkHook {
            fn access(&mut self, _a: Access) {}
            fn mark(&mut self, m: Mark, f: u32, _pri: Priority) {
                self.marks.push((m, f));
            }
        }
        let fb = map().frame_base;
        let mut img = CodeImage::new(&map());
        let entry = img.next_user();
        img.push_user(MOp::MovI {
            d: Reg::FP,
            v: Word::from_addr(fb + 64),
        });
        img.push_user(MOp::Mark(Mark::ThreadStart {
            codeblock: 3,
            thread: 1,
        }));
        img.push_user(MOp::Halt);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        let mut h = MarkHook { marks: vec![] };
        let stats = m.run(&mut h).unwrap();
        assert_eq!(stats.instructions, 2, "mark is free");
        assert_eq!(
            h.marks,
            vec![(
                Mark::ThreadStart {
                    codeblock: 3,
                    thread: 1
                },
                fb + 64
            )]
        );
    }

    #[test]
    fn high_queue_drains_completely_before_low_dispatch() {
        // Preload both rings before the machine starts. The low boot
        // message was injected first, but the dispatch loop must drain
        // every high-priority message before touching the low queue.
        let fb = map().frame_base;
        let mut img = CodeImage::new(&map());
        // High handler: frame[0] += 1, suspend.
        let h = img.next_sys();
        img.push_sys(MOp::MovI {
            d: Reg(0),
            v: Word::from_addr(fb),
        });
        img.push_sys(MOp::Ld {
            d: Reg(1),
            base: Reg(0),
            off: 0,
        });
        img.push_sys(MOp::Alu {
            op: AluOp::Add,
            d: Reg(1),
            a: Reg(1),
            b: Operand::Imm(1),
        });
        img.push_sys(MOp::St {
            s: Reg(1),
            base: Reg(0),
            off: 0,
        });
        img.push_sys(MOp::Suspend);
        // Low handler: snapshot the count it observes into frame[4], halt.
        let lo = img.next_user();
        img.push_user(MOp::MovI {
            d: Reg(0),
            v: Word::from_addr(fb),
        });
        img.push_user(MOp::Ld {
            d: Reg(1),
            base: Reg(0),
            off: 0,
        });
        img.push_user(MOp::St {
            s: Reg(1),
            base: Reg(0),
            off: 4,
        });
        img.push_user(MOp::Halt);

        let mut m = Machine::new(MachineConfig::default(), &img);
        m.inject(Priority::Low, &[Word::from_addr(lo)]).unwrap();
        m.inject(Priority::High, &[Word::from_addr(h)]).unwrap();
        m.inject(Priority::High, &[Word::from_addr(h)]).unwrap();
        let stats = m.run(&mut NoHooks).unwrap();
        assert_eq!(stats.dispatches, [1, 2]);
        assert_eq!(
            m.mem.read(fb + 4).as_i64(),
            2,
            "low handler saw both high handlers' effects"
        );
        // No running low code was ever interrupted — the low task only
        // started once the high ring was empty.
        assert_eq!(stats.preemptions, 0);
    }

    #[test]
    fn queue_capacities_are_independent_per_priority() {
        // The two hardware rings are separate memories: filling the high
        // ring exactly to capacity is legal, one more word overflows it,
        // and the low ring's occupancy never enters into either decision.
        let mut img = CodeImage::new(&map());
        let entry = img.next_user();
        img.push_user(MOp::DisableInt);
        img.push_user(MOp::MovI {
            d: Reg(0),
            v: Word::from_i64(9),
        });
        // 3-word low message: occupies the low ring only.
        img.push_user(MOp::Send {
            pri: Priority::Low,
            srcs: vec![
                SendSrc::Reg(Reg(0)),
                SendSrc::Reg(Reg(0)),
                SendSrc::Reg(Reg(0)),
            ],
        });
        // 8-word high message: fills the high ring exactly — legal.
        img.push_user(MOp::Send {
            pri: Priority::High,
            srcs: vec![SendSrc::Reg(Reg(0)); 8],
        });
        // One more high word cannot fit, despite 5 free low words.
        img.push_user(MOp::Send {
            pri: Priority::High,
            srcs: vec![SendSrc::Reg(Reg(0))],
        });
        img.push_user(MOp::Halt);
        let cfg = MachineConfig {
            queue_words: [8, 8],
            ..Default::default()
        };
        let mut m = Machine::new(cfg, &img);
        m.start_low(entry);
        assert_eq!(
            m.run(&mut NoHooks),
            Err(RunError::QueueOverflow {
                pri: Priority::High
            })
        );
        assert_eq!(m.queue(Priority::Low).used_words(), 3);
        assert_eq!(m.queue(Priority::High).used_words(), 8);
    }

    /// A port that refuses the first `busy` sends, then routes locally.
    struct FlakyPort {
        busy: u32,
        offered: Vec<Vec<Word>>,
    }
    impl NetPort for FlakyPort {
        fn route(&mut self, _pri: Priority, words: &[Word]) -> RouteOutcome {
            self.offered.push(words.to_vec());
            if self.busy > 0 {
                self.busy -= 1;
                RouteOutcome::Busy
            } else {
                RouteOutcome::Local
            }
        }
    }

    #[test]
    fn blocked_send_has_no_side_effects_and_retries_verbatim() {
        let (img, entry) = user_image(vec![
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(0x55),
            },
            MOp::Send {
                pri: Priority::Low,
                srcs: vec![SendSrc::Reg(Reg(0)), SendSrc::Imm(Word::from_i64(7))],
            },
            MOp::Halt,
        ]);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        let mut hooks = SinkHooks(VecSink::new());
        let mut port = FlakyPort {
            busy: 2,
            offered: vec![],
        };
        assert_eq!(m.step(&mut hooks, &mut port).unwrap(), Step::Ran); // MovI
        let events_before = hooks.0.events.len();
        // Two stalled attempts: nothing happens at all.
        assert_eq!(m.step(&mut hooks, &mut port).unwrap(), Step::Blocked);
        assert_eq!(m.step(&mut hooks, &mut port).unwrap(), Step::Blocked);
        assert_eq!(
            hooks.0.events.len(),
            events_before,
            "no events while blocked"
        );
        assert_eq!(m.stats(HaltReason::Quiescent).instructions, 1);
        assert_eq!(m.stats(HaltReason::Quiescent).sends, 0);
        // Third attempt goes through; the same words were offered each time.
        assert_eq!(m.step(&mut hooks, &mut port).unwrap(), Step::Ran);
        assert_eq!(port.offered.len(), 3);
        assert_eq!(port.offered[0], port.offered[2]);
        assert_eq!(port.offered[2][0].as_i64(), 0x55);
        assert_eq!(port.offered[2][1].as_i64(), 7);
        assert_eq!(m.stats(HaltReason::Quiescent).sends, 1);
        assert!(hooks.0.events.len() > events_before, "send now traced");
    }

    /// A port that injects everything into a fake network.
    struct InjectAll;
    impl NetPort for InjectAll {
        fn route(&mut self, _pri: Priority, _words: &[Word]) -> RouteOutcome {
            RouteOutcome::Injected
        }
    }

    #[test]
    fn injected_send_counts_but_writes_no_queue_memory() {
        let (img, entry) = user_image(vec![
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(3),
            },
            MOp::Send {
                pri: Priority::Low,
                srcs: vec![SendSrc::Reg(Reg(0))],
            },
            MOp::Halt,
        ]);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        let mut hooks = SinkHooks(VecSink::new());
        let mut port = InjectAll;
        while !matches!(m.step(&mut hooks, &mut port).unwrap(), Step::Halted(_)) {}
        let stats = m.stats(HaltReason::Explicit);
        assert_eq!(stats.sends, 1);
        assert_eq!(stats.send_words, 1);
        assert!(m.queue(Priority::Low).is_empty(), "message left the node");
        assert!(
            !hooks.0.events.iter().any(|a| a.kind == AccessKind::Write),
            "no local queue writes for an injected message"
        );
    }

    #[test]
    fn try_deliver_backpressures_at_exact_capacity_and_resumes() {
        // Mirrors queue.rs's exact-capacity tests at the machine level: a
        // remote arrival that does not fit leaves everything untouched and
        // succeeds verbatim once the front message retires.
        let mut img = CodeImage::new(&map());
        let handler = img.next_user();
        img.push_user(MOp::Suspend);
        let cfg = MachineConfig {
            queue_words: [8, 8],
            ..Default::default()
        };
        let mut m = Machine::new(cfg, &img);
        let msg = [Word::from_addr(handler), Word::ZERO, Word::ZERO, Word::ZERO];
        let mut hooks = SinkHooks(VecSink::new());
        assert!(m.try_deliver(Priority::Low, &msg, &mut hooks));
        assert!(m.try_deliver(Priority::Low, &msg, &mut hooks));
        assert_eq!(m.queue(Priority::Low).used_words(), 8);
        // Full to the word: the third delivery is refused, nothing changes.
        let events_before = hooks.0.events.len();
        assert!(!m.try_deliver(Priority::Low, &msg, &mut hooks));
        assert_eq!(m.queue(Priority::Low).used_words(), 8);
        assert_eq!(m.queue(Priority::Low).len(), 2);
        assert_eq!(hooks.0.events.len(), events_before);
        // Dispatch + suspend retires the front message; space reopens.
        assert_eq!(m.step(&mut hooks, &mut Loopback).unwrap(), Step::Ran);
        assert!(m.try_deliver(Priority::Low, &msg, &mut hooks));
        assert_eq!(m.queue(Priority::Low).used_words(), 8);
    }

    #[test]
    fn addr_mask_localizes_tagged_pointers() {
        let fb = map().frame_base;
        let tagged = (1u32 << 23) | fb;
        let (img, entry) = user_image(vec![
            MOp::MovI {
                d: Reg(0),
                v: Word::from_addr(tagged),
            },
            MOp::MovI {
                d: Reg(1),
                v: Word::from_i64(99),
            },
            MOp::St {
                s: Reg(1),
                base: Reg(0),
                off: 4,
            },
            MOp::Ld {
                d: Reg(2),
                base: Reg(0),
                off: 4,
            },
            MOp::Halt,
        ]);
        let cfg = MachineConfig {
            addr_mask: (1 << 23) - 1,
            ..Default::default()
        };
        let mut m = Machine::new(cfg, &img);
        m.start_low(entry);
        let mut hooks = SinkHooks(VecSink::new());
        m.run(&mut hooks).unwrap();
        assert_eq!(m.reg(Priority::Low, Reg(2)).as_i64(), 99);
        assert_eq!(m.mem.read(fb + 4).as_i64(), 99, "store landed untagged");
        assert!(
            hooks.0.events.contains(&Access::write(fb + 4)),
            "the trace sees the masked (local) address"
        );
    }

    #[test]
    fn high_handler_resumes_preempted_low_context_exactly() {
        let mut img = CodeImage::new(&map());
        let h = img.next_sys();
        img.push_sys(MOp::MovI {
            d: Reg(0),
            v: Word::from_i64(7),
        }); // high file
        img.push_sys(MOp::Suspend);
        let entry = img.next_user();
        img.push_user(MOp::MovI {
            d: Reg(0),
            v: Word::from_i64(1),
        }); // low file
        img.push_user(MOp::MovI {
            d: Reg(2),
            v: Word::from_addr(h),
        });
        img.push_user(MOp::Send {
            pri: Priority::High,
            srcs: vec![SendSrc::Reg(Reg(2))],
        });
        img.push_user(MOp::Alu {
            op: AluOp::Add,
            d: Reg(0),
            a: Reg(0),
            b: Operand::Imm(1),
        });
        img.push_user(MOp::Halt);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        m.run(&mut NoHooks).unwrap();
        // Separate register files: low r0 == 2, high r0 == 7.
        assert_eq!(m.reg(Priority::Low, Reg(0)).as_i64(), 2);
        assert_eq!(m.reg(Priority::High, Reg(0)).as_i64(), 7);
    }

    // ---- decoded dispatch equivalence -----------------------------------

    use crate::decode::DecodedImage;
    use tamsim_trace::{MarkLog, Tee};

    /// Run `img` twice — baseline and decoded — with identical setup and
    /// full-stream recording hooks, and assert the runs are bit-identical:
    /// stats, every access event in order, every mark record, and the
    /// per-priority cycle counters.
    fn assert_decoded_matches(
        img: &CodeImage,
        setup: impl Fn(&mut Machine),
    ) -> (RunStats, Vec<Access>) {
        let mut base = Machine::new(MachineConfig::default(), img);
        setup(&mut base);
        let mut bh = SinkHooks(Tee::new(VecSink::new(), MarkLog::new()));
        let bstats = base.run_baseline(&mut bh).expect("baseline run failed");

        let dec = DecodedImage::decode(img);
        let mut m = Machine::new(MachineConfig::default(), img);
        m.attach_decoded(&dec);
        setup(&mut m);
        let mut dh = SinkHooks(Tee::new(VecSink::new(), MarkLog::new()));
        let dstats = m.run(&mut dh).expect("decoded run failed");

        assert_eq!(dstats, bstats, "run stats diverge");
        assert_eq!(dh.0.a.events, bh.0.a.events, "access streams diverge");
        assert_eq!(dh.0.b.records, bh.0.b.records, "mark records diverge");
        assert_eq!(dh.0.b.cycles, bh.0.b.cycles, "cycle counters diverge");
        for p in [Priority::Low, Priority::High] {
            for r in 0..Reg::COUNT {
                assert_eq!(
                    m.reg(p, Reg(r as u8)),
                    base.reg(p, Reg(r as u8)),
                    "register {p:?}/r{r} diverges"
                );
            }
        }
        (dstats, dh.0.a.events)
    }

    #[test]
    fn decoded_run_matches_baseline_on_a_fusing_loop() {
        // Exercises every fusion rule: MovI+St, Ld+Alu, Alu+Bnz, plus a
        // mark inside the loop so batches break mid-stream.
        let fb = map().frame_base;
        let ub = map().user_code_base;
        let (img, entry) = user_image(vec![
            /* 0 */
            MOp::MovI {
                d: Reg(0),
                v: Word::from_addr(fb),
            },
            /* 1: MovI+St pair */
            MOp::MovI {
                d: Reg(1),
                v: Word::from_i64(40),
            },
            /* 2 */
            MOp::St {
                s: Reg(1),
                base: Reg(0),
                off: 0,
            },
            /* 3: loop head — Ld+Alu pair */
            MOp::Ld {
                d: Reg(2),
                base: Reg(0),
                off: 0,
            },
            /* 4 */
            MOp::Alu {
                op: AluOp::Sub,
                d: Reg(2),
                a: Reg(2),
                b: Operand::Imm(1),
            },
            /* 5 */
            MOp::St {
                s: Reg(2),
                base: Reg(0),
                off: 0,
            },
            /* 6 */ MOp::Mark(Mark::ThreadEnd),
            /* 7: Alu+Bnz pair */
            MOp::Alu {
                op: AluOp::Gt,
                d: Reg(3),
                a: Reg(2),
                b: Operand::Imm(0),
            },
            /* 8 */
            MOp::Bnz {
                c: Reg(3),
                t: ub + 3 * 4,
            },
            /* 9 */ MOp::Halt,
        ]);
        let (stats, _) = assert_decoded_matches(&img, |m| m.start_low(entry));
        assert_eq!(stats.halt, HaltReason::Explicit);
        assert!(stats.instructions > 100, "the loop actually looped");
    }

    #[test]
    fn decoded_run_matches_baseline_with_preemption_and_enable_int() {
        // DisableInt / high send / EnableInt: the decoded batch must break
        // exactly where the baseline re-checks preemption.
        let fb = map().frame_base;
        let mut img = CodeImage::new(&map());
        let h = img.next_sys();
        img.push_sys(MOp::MovI {
            d: Reg(0),
            v: Word::from_addr(fb),
        });
        img.push_sys(MOp::MovI {
            d: Reg(1),
            v: Word::from_i64(1),
        });
        img.push_sys(MOp::St {
            s: Reg(1),
            base: Reg(0),
            off: 0,
        });
        img.push_sys(MOp::Suspend);
        let entry = img.next_user();
        img.push_user(MOp::DisableInt);
        img.push_user(MOp::MovI {
            d: Reg(2),
            v: Word::from_addr(h),
        });
        img.push_user(MOp::Send {
            pri: Priority::High,
            srcs: vec![SendSrc::Reg(Reg(2))],
        });
        img.push_user(MOp::MovI {
            d: Reg(0),
            v: Word::from_addr(fb),
        });
        img.push_user(MOp::Ld {
            d: Reg(5),
            base: Reg(0),
            off: 0,
        });
        img.push_user(MOp::EnableInt);
        img.push_user(MOp::Ld {
            d: Reg(6),
            base: Reg(0),
            off: 0,
        });
        img.push_user(MOp::Halt);
        let (stats, _) = assert_decoded_matches(&img, |m| m.start_low(entry));
        assert_eq!(stats.preemptions, 1);
    }

    #[test]
    fn decoded_run_matches_baseline_on_message_chains() {
        // Send/dispatch/suspend chains and LdMsg queue reads.
        let fb = map().frame_base;
        let mut img = CodeImage::new(&map());
        let a = img.next_user();
        img.push_user(MOp::MovI {
            d: Reg(2),
            v: Word::ZERO,
        });
        img.push_user(MOp::MovI {
            d: Reg(3),
            v: Word::from_i64(5),
        });
        img.push_user(MOp::Send {
            pri: Priority::Low,
            srcs: vec![SendSrc::Reg(Reg(2)), SendSrc::Reg(Reg(3))],
        });
        img.push_user(MOp::Suspend);
        let b = img.next_user();
        img.push_user(MOp::LdMsg { d: Reg(0), idx: 1 });
        img.push_user(MOp::Alu {
            op: AluOp::Add,
            d: Reg(0),
            a: Reg(0),
            b: Operand::Reg(Reg(0)),
        });
        img.push_user(MOp::MovI {
            d: Reg(1),
            v: Word::from_addr(fb),
        });
        img.push_user(MOp::St {
            s: Reg(0),
            base: Reg(1),
            off: 0,
        });
        img.push_user(MOp::Halt);
        img.patch(
            a,
            MOp::MovI {
                d: Reg(2),
                v: Word::from_addr(b),
            },
        );
        let (stats, events) = assert_decoded_matches(&img, |m| {
            m.inject(Priority::Low, &[Word::from_addr(a)]).unwrap()
        });
        assert_eq!(stats.sends, 1);
        assert_eq!(stats.dispatches, [2, 0]);
        assert!(events.contains(&Access::write(fb)));
    }

    #[test]
    fn decoded_fuel_exhaustion_matches_baseline_mid_batch() {
        // An infinite straight-line loop; fuel runs out inside a batch.
        // The decoded path must emit the failing op's fetch, park the pc on
        // it, and report the same error at the same instruction count.
        let ub = map().user_code_base;
        let (img, entry) = user_image(vec![
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(1),
            },
            MOp::Alu {
                op: AluOp::Add,
                d: Reg(0),
                a: Reg(0),
                b: Operand::Imm(1),
            },
            MOp::Br { t: ub + 4 },
        ]);
        let cfg = MachineConfig {
            fuel: 100,
            ..Default::default()
        };

        let mut base = Machine::new(cfg, &img);
        base.start_low(entry);
        let mut bh = SinkHooks(VecSink::new());
        let berr = base.run_baseline(&mut bh).unwrap_err();

        let dec = DecodedImage::decode(&img);
        let mut m = Machine::new(cfg, &img);
        m.attach_decoded(&dec);
        m.start_low(entry);
        let mut dh = SinkHooks(VecSink::new());
        let derr = m.run(&mut dh).unwrap_err();

        assert_eq!(derr, berr);
        assert_eq!(dh.0.events, bh.0.events);
        assert_eq!(
            m.reg(Priority::Low, Reg(0)),
            base.reg(Priority::Low, Reg(0))
        );
    }

    #[test]
    fn decoded_step_blocked_send_rewinds_like_baseline() {
        let (img, entry) = user_image(vec![
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(0x55),
            },
            MOp::Send {
                pri: Priority::Low,
                srcs: vec![SendSrc::Reg(Reg(0)), SendSrc::Imm(Word::from_i64(7))],
            },
            MOp::Halt,
        ]);
        let dec = DecodedImage::decode(&img);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.attach_decoded(&dec);
        m.start_low(entry);
        let mut hooks = SinkHooks(VecSink::new());
        let mut port = FlakyPort {
            busy: 2,
            offered: vec![],
        };
        assert_eq!(m.step(&mut hooks, &mut port).unwrap(), Step::Ran);
        let events_before = hooks.0.events.len();
        assert_eq!(m.step(&mut hooks, &mut port).unwrap(), Step::Blocked);
        assert_eq!(m.step(&mut hooks, &mut port).unwrap(), Step::Blocked);
        assert_eq!(hooks.0.events.len(), events_before);
        assert_eq!(m.stats(HaltReason::Quiescent).sends, 0);
        assert_eq!(m.step(&mut hooks, &mut port).unwrap(), Step::Ran);
        assert_eq!(port.offered.len(), 3);
        assert_eq!(port.offered[0], port.offered[2]);
        assert_eq!(m.stats(HaltReason::Quiescent).sends, 1);
    }

    #[test]
    fn decoded_step_executes_fused_pairs_one_instruction_at_a_time() {
        // In step mode a fused cmp+branch costs two steps — the mesh's
        // global clock must see the same cycle count as baseline.
        let ub = map().user_code_base;
        let ops = vec![
            /* 0 */
            MOp::MovI {
                d: Reg(1),
                v: Word::from_i64(3),
            },
            /* 1: fuses with 2 */
            MOp::Alu {
                op: AluOp::Gt,
                d: Reg(0),
                a: Reg(1),
                b: Operand::Imm(0),
            },
            /* 2 */
            MOp::Bnz {
                c: Reg(0),
                t: ub + 4 * 4,
            },
            /* 3 */ MOp::Halt,
            /* 4 */ MOp::Halt,
        ];
        let (img, entry) = user_image(ops);
        let dec = DecodedImage::decode(&img);
        assert!(dec.fused_count() > 0, "the pair fused");
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.attach_decoded(&dec);
        m.start_low(entry);
        let mut hooks = SinkHooks(VecSink::new());
        assert_eq!(m.step(&mut hooks, &mut Loopback).unwrap(), Step::Ran); // MovI
        assert_eq!(m.step(&mut hooks, &mut Loopback).unwrap(), Step::Ran); // Alu half
        assert_eq!(m.reg(Priority::Low, Reg(0)).as_i64(), 1);
        assert_eq!(
            m.stats(HaltReason::Quiescent).instructions,
            2,
            "fused pair charges one instruction per step"
        );
        assert_eq!(m.step(&mut hooks, &mut Loopback).unwrap(), Step::Ran); // Bnz half
                                                                           // The branch target is slot 4 (the second halt).
        assert_eq!(
            m.step(&mut hooks, &mut Loopback).unwrap(),
            Step::Halted(HaltReason::Explicit)
        );
        let fetches: Vec<u32> = hooks
            .0
            .events
            .iter()
            .filter(|a| a.kind == AccessKind::Fetch)
            .map(|a| a.addr)
            .collect();
        assert_eq!(fetches, vec![ub, ub + 4, ub + 8, ub + 16]);
    }

    #[test]
    fn decoded_wild_jump_panics_with_baseline_message() {
        let (img, entry) = user_image(vec![MOp::Br {
            t: map().user_code_base + 0x400,
        }]);
        let dec = DecodedImage::decode(&img);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.attach_decoded(&dec);
        m.start_low(entry);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = m.run(&mut NoHooks);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("wild jump to") && msg.contains("(user code)"),
            "got: {msg}"
        );
    }

    #[test]
    fn halt_set_follows_mark_chains() {
        let (img, entry) = user_image(vec![
            /* 0 */ MOp::Mark(Mark::SysStart),
            /* 1 */ MOp::Mark(Mark::ThreadEnd),
            /* 2 */ MOp::Halt,
            /* 3 */
            MOp::MovI {
                d: Reg(0),
                v: Word::ZERO,
            },
            /* 4 */ MOp::Suspend,
            /* 5 */ MOp::Mark(Mark::SysStart), // chains off the region end
        ]);
        let halts = HaltSet::new(&img);
        // Mark, Mark, Halt: every chain position reaches the halt.
        assert!(halts.reaches_halt(entry));
        assert!(halts.reaches_halt(entry + 4));
        assert!(halts.reaches_halt(entry + 8));
        // A costed instruction ends the step before any halt.
        assert!(!halts.reaches_halt(entry + 12));
        assert!(!halts.reaches_halt(entry + 16));
        // Mark falling off the image end: conservatively true (wild jump).
        assert!(halts.reaches_halt(entry + 20));
        // Out-of-image pcs: conservatively true.
        assert!(halts.reaches_halt(entry + 0x400));
        assert!(halts.reaches_halt(map().system_code_base + 0x400));
    }

    #[test]
    fn might_halt_replays_the_dispatch_decision() {
        let (img, entry) = user_image(vec![
            /* 0: halting handler */ MOp::Mark(Mark::SysStart),
            /* 1 */ MOp::Halt,
            /* 2: benign handler */ MOp::Suspend,
        ]);
        let halts = HaltSet::new(&img);
        let halting = entry;
        let benign = entry + 8;

        // Idle machine: a step returns Idle, never Halted.
        let mut m = Machine::new(MachineConfig::default(), &img);
        assert!(!m.might_halt(&halts));

        // Running low context on a benign pc vs. a halting pc.
        m.start_low(benign);
        assert!(!m.might_halt(&halts));
        m.start_low(halting);
        assert!(m.might_halt(&halts));

        // A queued low message is consulted only when no context runs:
        // handler word decides.
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.inject(Priority::Low, &[Word::from_addr(benign)]).unwrap();
        assert!(!m.might_halt(&halts));
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.inject(Priority::Low, &[Word::from_addr(halting)])
            .unwrap();
        assert!(m.might_halt(&halts));

        // A pending high message preempts an interruptible low context.
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(benign);
        m.inject(Priority::High, &[Word::from_addr(halting)])
            .unwrap();
        assert!(m.might_halt(&halts));

        // Verdicts match actual execution.
        let mut yes = Machine::new(MachineConfig::default(), &img);
        yes.start_low(halting);
        assert!(matches!(
            yes.step(&mut NoHooks, &mut Loopback).unwrap(),
            Step::Halted(HaltReason::Explicit)
        ));
        let mut no = Machine::new(MachineConfig::default(), &img);
        no.start_low(benign);
        assert!(!matches!(
            no.step(&mut NoHooks, &mut Loopback).unwrap(),
            Step::Halted(_)
        ));
    }

    #[test]
    fn might_halt_respects_disabled_interrupts() {
        let (img, entry) = user_image(vec![
            /* 0: halting high handler */ MOp::Halt,
            /* 1: benign low code */ MOp::Suspend,
        ]);
        let halts = HaltSet::new(&img);
        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry + 4);
        m.inject(Priority::High, &[Word::from_addr(entry)]).unwrap();
        // Interrupts enabled: the high dispatch fires next step.
        assert!(m.might_halt(&halts));
        // Disabled: the low context runs instead.
        m.ints_enabled = false;
        assert!(!m.might_halt(&halts));
    }
}
