//! Data memory: segment-backed storage for system data, frames, and heap.
//!
//! Code is not stored here (the machine fetches decoded [`crate::MOp`]s from
//! a [`crate::CodeImage`]); this module only backs the three *data* regions
//! of the memory map. Segments grow on demand and read as zero when
//! untouched, which keeps multi-megabyte address spaces cheap.

use crate::Word;
use tamsim_trace::MemoryMap;

/// One growable, zero-initialized segment of the address space.
#[derive(Debug, Clone)]
struct Segment {
    base: u32,
    limit: u32,
    words: Vec<Word>,
}

impl Segment {
    fn new(base: u32, limit: u32) -> Self {
        assert!(
            base < limit && base.is_multiple_of(4),
            "malformed segment [{base:#x},{limit:#x})"
        );
        Segment {
            base,
            limit,
            words: Vec::new(),
        }
    }

    #[inline]
    fn contains(&self, addr: u32) -> bool {
        (self.base..self.limit).contains(&addr)
    }

    #[inline]
    fn index(&self, addr: u32) -> usize {
        debug_assert!(addr.is_multiple_of(4), "unaligned data address {addr:#x}");
        ((addr - self.base) / 4) as usize
    }

    #[inline]
    fn read(&self, addr: u32) -> Word {
        let i = self.index(addr);
        self.words.get(i).copied().unwrap_or(Word::ZERO)
    }

    #[inline]
    fn write(&mut self, addr: u32, v: Word) {
        let i = self.index(addr);
        if i >= self.words.len() {
            self.words.resize(i + 1, Word::ZERO);
        }
        self.words[i] = v;
    }
}

/// The machine's data memory: system data, frame, and heap segments.
#[derive(Debug, Clone)]
pub struct Memory {
    sysdata: Segment,
    frames: Segment,
    heap: Segment,
}

impl Memory {
    /// Create zeroed memory laid out according to `map`.
    pub fn new(map: &MemoryMap) -> Self {
        Memory {
            sysdata: Segment::new(map.system_data_base, map.frame_base),
            frames: Segment::new(map.frame_base, map.heap_base),
            heap: Segment::new(map.heap_base, map.top),
        }
    }

    #[inline]
    fn segment(&self, addr: u32) -> &Segment {
        if self.sysdata.contains(addr) {
            &self.sysdata
        } else if self.frames.contains(addr) {
            &self.frames
        } else if self.heap.contains(addr) {
            &self.heap
        } else {
            panic!("data access to non-data address {addr:#x}")
        }
    }

    #[inline]
    fn segment_mut(&mut self, addr: u32) -> &mut Segment {
        if self.sysdata.contains(addr) {
            &mut self.sysdata
        } else if self.frames.contains(addr) {
            &mut self.frames
        } else if self.heap.contains(addr) {
            &mut self.heap
        } else {
            panic!("data access to non-data address {addr:#x}")
        }
    }

    /// Read the word at `addr` (zero if never written).
    ///
    /// # Panics
    /// Panics if `addr` is not a word-aligned data address.
    #[inline]
    pub fn read(&self, addr: u32) -> Word {
        self.segment(addr).read(addr)
    }

    /// Write the word at `addr`.
    ///
    /// # Panics
    /// Panics if `addr` is not a word-aligned data address.
    #[inline]
    pub fn write(&mut self, addr: u32, v: Word) {
        self.segment_mut(addr).write(addr, v)
    }

    /// Total words currently backed by storage (for memory-usage stats).
    pub fn resident_words(&self) -> usize {
        self.sysdata.words.len() + self.frames.words.len() + self.heap.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> (Memory, MemoryMap) {
        let map = MemoryMap::default();
        (Memory::new(&map), map)
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let (m, map) = mem();
        assert_eq!(m.read(map.frame_base), Word::ZERO);
        assert_eq!(m.read(map.heap_base + 4096), Word::ZERO);
    }

    #[test]
    fn write_then_read_roundtrips_across_segments() {
        let (mut m, map) = mem();
        m.write(map.system_data_base + 8, Word::from_i64(7));
        m.write(map.frame_base + 16, Word::from_f64(2.5));
        m.write(map.heap_base, Word::from_addr(0x1234));
        assert_eq!(m.read(map.system_data_base + 8).as_i64(), 7);
        assert_eq!(m.read(map.frame_base + 16).as_f64(), 2.5);
        assert_eq!(m.read(map.heap_base).as_addr(), 0x1234);
    }

    #[test]
    fn writes_are_isolated_between_addresses() {
        let (mut m, map) = mem();
        m.write(map.frame_base + 4, Word::from_i64(1));
        assert_eq!(m.read(map.frame_base), Word::ZERO);
        assert_eq!(m.read(map.frame_base + 8), Word::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-data address")]
    fn code_addresses_are_not_data() {
        let (mut m, map) = mem();
        m.write(map.user_code_base, Word::ZERO);
    }

    #[test]
    fn resident_words_grows_with_high_water_mark() {
        let (mut m, map) = mem();
        assert_eq!(m.resident_words(), 0);
        m.write(map.frame_base + 4 * 99, Word::from_i64(1));
        assert_eq!(m.resident_words(), 100);
    }
}
