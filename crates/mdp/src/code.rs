//! The code image: decoded instructions at system and user code addresses.
//!
//! Instructions are stored pre-decoded (one [`MOp`] per 4-byte code
//! address); the machine emits an instruction-*fetch* access for every
//! executed operation so the instruction cache sees a faithful stream, but
//! never reads instruction bits from data memory.

use crate::MOp;
use tamsim_trace::MemoryMap;

/// A relocatable code image split into system and user code regions.
#[derive(Debug, Clone, Default)]
pub struct CodeImage {
    sys_base: u32,
    user_base: u32,
    sys: Vec<MOp>,
    user: Vec<MOp>,
}

impl CodeImage {
    /// An empty image with region bases taken from `map`.
    pub fn new(map: &MemoryMap) -> Self {
        CodeImage {
            sys_base: map.system_code_base,
            user_base: map.user_code_base,
            sys: Vec::new(),
            user: Vec::new(),
        }
    }

    /// Append an op to system code; returns its address.
    pub fn push_sys(&mut self, op: MOp) -> u32 {
        let addr = self.next_sys();
        self.sys.push(op);
        addr
    }

    /// Append an op to user code; returns its address.
    pub fn push_user(&mut self, op: MOp) -> u32 {
        let addr = self.next_user();
        self.user.push(op);
        addr
    }

    /// Address the next system-code op will get.
    pub fn next_sys(&self) -> u32 {
        self.sys_base + (self.sys.len() as u32) * 4
    }

    /// Address the next user-code op will get.
    pub fn next_user(&self) -> u32 {
        self.user_base + (self.user.len() as u32) * 4
    }

    /// Replace the op at `addr` (label fixups in the assembler).
    ///
    /// # Panics
    /// Panics if `addr` is not an existing code address.
    pub fn patch(&mut self, addr: u32, op: MOp) {
        *self.at_mut(addr) = op;
    }

    /// The op at code address `addr`.
    ///
    /// # Panics
    /// Panics if `addr` is not a valid code address (a wild jump).
    #[inline]
    pub fn at(&self, addr: u32) -> &MOp {
        if addr >= self.user_base {
            let i = ((addr - self.user_base) / 4) as usize;
            self.user
                .get(i)
                .unwrap_or_else(|| panic!("wild jump to {addr:#x} (user code)"))
        } else {
            debug_assert!(addr >= self.sys_base);
            let i = ((addr - self.sys_base) / 4) as usize;
            self.sys
                .get(i)
                .unwrap_or_else(|| panic!("wild jump to {addr:#x} (system code)"))
        }
    }

    fn at_mut(&mut self, addr: u32) -> &mut MOp {
        if addr >= self.user_base {
            let i = ((addr - self.user_base) / 4) as usize;
            self.user
                .get_mut(i)
                .unwrap_or_else(|| panic!("patch of invalid address {addr:#x}"))
        } else {
            let i = ((addr - self.sys_base) / 4) as usize;
            self.sys
                .get_mut(i)
                .unwrap_or_else(|| panic!("patch of invalid address {addr:#x}"))
        }
    }

    /// Number of system-code ops.
    pub fn sys_len(&self) -> usize {
        self.sys.len()
    }

    /// Number of user-code ops.
    pub fn user_len(&self) -> usize {
        self.user.len()
    }

    /// Base address of system code.
    pub fn sys_base(&self) -> u32 {
        self.sys_base
    }

    /// Base address of user code.
    pub fn user_base(&self) -> u32 {
        self.user_base
    }

    /// The system-code ops in address order (the pre-decoder walks these).
    pub fn sys_ops(&self) -> &[MOp] {
        &self.sys
    }

    /// The user-code ops in address order.
    pub fn user_ops(&self) -> &[MOp] {
        &self.user
    }

    /// Whether `addr` lies in user code.
    pub fn is_user(&self, addr: u32) -> bool {
        addr >= self.user_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MOp, Reg, Word};

    fn img() -> CodeImage {
        CodeImage::new(&MemoryMap::default())
    }

    #[test]
    fn push_assigns_sequential_addresses() {
        let mut c = img();
        let a0 = c.push_sys(MOp::Suspend);
        let a1 = c.push_sys(MOp::Halt);
        assert_eq!(a1, a0 + 4);
        let u0 = c.push_user(MOp::Ret);
        assert_eq!(u0, MemoryMap::default().user_code_base);
    }

    #[test]
    fn at_retrieves_pushed_ops() {
        let mut c = img();
        let a = c.push_sys(MOp::Halt);
        let u = c.push_user(MOp::Suspend);
        assert_eq!(c.at(a), &MOp::Halt);
        assert_eq!(c.at(u), &MOp::Suspend);
    }

    #[test]
    fn patch_replaces_op() {
        let mut c = img();
        let a = c.push_user(MOp::Halt);
        c.patch(
            a,
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(3),
            },
        );
        assert_eq!(
            c.at(a),
            &MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(3)
            }
        );
    }

    #[test]
    #[should_panic(expected = "wild jump")]
    fn wild_jump_panics() {
        let c = img();
        let _ = c.at(MemoryMap::default().user_code_base + 400);
    }

    #[test]
    fn is_user_distinguishes_regions() {
        let mut c = img();
        let s = c.push_sys(MOp::Halt);
        let u = c.push_user(MOp::Halt);
        assert!(!c.is_user(s));
        assert!(c.is_user(u));
    }
}
