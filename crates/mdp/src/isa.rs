//! The MDP micro-ISA executed by the machine model.
//!
//! The two TAM runtime implementations (`tamsim-core`) lower TAM programs to
//! sequences of these operations. The ISA is deliberately close to the real
//! MDP's repertoire — register moves, loads/stores, ALU/FPU operations,
//! branches, `SEND`, `SUSPEND`, and interrupt masking — plus zero-cost
//! [`Mark`] pseudo-operations that feed the granularity statistics (threads
//! per quantum etc.) without perturbing instruction or access counts.

use crate::Word;

// The event vocabulary shared with every trace consumer lives in the
// narrow-waist crate; re-exported here so machine-level code keeps using
// `tamsim_mdp::{Mark, Priority}`.
pub use tamsim_trace::{Mark, Priority};

/// A general-purpose register index.
///
/// Each priority level has its own file of [`Reg::COUNT`] registers
/// (the J-Machine provided a full register set per priority level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of registers per priority level.
    pub const COUNT: usize = 16;
    /// Conventional frame-pointer register (used by `Mark` resolution).
    pub const FP: Reg = Reg(15);
    /// Conventional link register written by [`MOp::Call`].
    pub const LINK: Reg = Reg(14);

    /// Index into a register file.
    #[inline]
    pub fn index(self) -> usize {
        debug_assert!(
            (self.0 as usize) < Reg::COUNT,
            "register r{} out of range",
            self.0
        );
        self.0 as usize
    }
}

/// Second operand of an integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An immediate integer.
    Imm(i64),
}

/// One source word of a [`MOp::Send`].
///
/// The MDP's `SEND` instructions accepted register and constant operands;
/// allowing immediates here keeps message-construction instruction counts
/// from being dominated by constant loads that real code would hoist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SendSrc {
    /// Send the contents of a register.
    Reg(Reg),
    /// Send a constant word (handler addresses, codeblock ids, arities).
    Imm(Word),
}

/// Integer ALU operations. Comparison operations produce 0/1 words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    /// Quotient; division by zero halts the machine with an error.
    Div,
    /// Remainder; division by zero halts the machine with an error.
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Min,
    Max,
}

/// Floating-point operations (operands viewed as `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FAluOp {
    FAdd,
    FSub,
    FMul,
    FDiv,
    /// Comparison producing an integer 0/1 word.
    FLt,
    /// Comparison producing an integer 0/1 word.
    FLe,
    /// Comparison producing an integer 0/1 word.
    FEq,
    /// Unary: convert integer `a` to float (`b` ignored).
    ItoF,
    /// Unary: truncate float `a` to integer (`b` ignored).
    FtoI,
    /// Unary: float negation of `a` (`b` ignored).
    FNeg,
    /// Unary: float absolute value of `a` (`b` ignored).
    FAbs,
    /// Float minimum.
    FMin,
    /// Float maximum.
    FMax,
}

impl FAluOp {
    /// Whether the operation ignores its second operand.
    pub fn is_unary(self) -> bool {
        matches!(
            self,
            FAluOp::ItoF | FAluOp::FtoI | FAluOp::FNeg | FAluOp::FAbs
        )
    }
}

/// One micro-instruction.
///
/// Unless stated otherwise every operation costs one cycle and one
/// instruction fetch, per the paper's uniform-cost assumption
/// ("instructions were assumed to uniformly take one cycle, not counting
/// memory access time").
#[derive(Debug, Clone, PartialEq)]
pub enum MOp {
    /// `d <- imm`.
    MovI { d: Reg, v: Word },
    /// `d <- s`.
    Mov { d: Reg, s: Reg },
    /// Integer ALU: `d <- a op b`.
    Alu {
        op: AluOp,
        d: Reg,
        a: Reg,
        b: Operand,
    },
    /// Float ALU: `d <- a op b` (`b` ignored for unary ops).
    FAlu { op: FAluOp, d: Reg, a: Reg, b: Reg },
    /// Data load: `d <- mem[base + off]` (byte offset, word aligned).
    Ld { d: Reg, base: Reg, off: i32 },
    /// Data load from an absolute address (OS globals).
    LdA { d: Reg, addr: u32 },
    /// Data store: `mem[base + off] <- s`.
    St { s: Reg, base: Reg, off: i32 },
    /// Data store to an absolute address (OS globals).
    StA { s: Reg, addr: u32 },
    /// Load word `idx` of the current message: `d <- queue[msg + idx]`.
    ///
    /// This is how inlets address incoming data; in the MD implementation
    /// data may be consumed directly from the queue without ever being
    /// stored to the frame (a key §3.1 saving).
    LdMsg { d: Reg, idx: u8 },
    /// Load a message word at a dynamic index: `d <- queue[msg + idx_reg]`
    /// (used by the frame-allocation handler's argument loop).
    LdMsgIdx { d: Reg, idx: Reg },
    /// Unconditional branch to an absolute code address.
    Br { t: u32 },
    /// Branch if `c` is zero.
    Bz { c: Reg, t: u32 },
    /// Branch if `c` is nonzero.
    Bnz { c: Reg, t: u32 },
    /// Indirect jump to the code address in `s` (LCV dispatch).
    Jr { s: Reg },
    /// Call: `LINK <- return address; pc <- t`.
    Call { t: u32 },
    /// Return: `pc <- LINK`.
    Ret,
    /// Send a message of `srcs` words to the queue of priority `pri`.
    ///
    /// The hardware buffers each word into queue memory (data writes in
    /// system data space, costing no processor cycles beyond the
    /// instruction itself — see the paper's footnote on hardware
    /// buffering).
    Send { pri: Priority, srcs: Vec<SendSrc> },
    /// End the current task; hardware dispatches the next message.
    Suspend,
    /// Enable high-priority preemption of low-priority execution.
    EnableInt,
    /// Disable high-priority preemption (AM atomicity windows, §2.2).
    DisableInt,
    /// Stop the machine (executed by the top-level completion inlet).
    Halt,
    /// Statistics marker: zero cycles, no fetch.
    Mark(Mark),
}

impl MOp {
    /// Whether this operation is a zero-cost pseudo-op.
    #[inline]
    pub fn is_pseudo(&self) -> bool {
        matches!(self, MOp::Mark(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_are_ordered() {
        assert!(Priority::Low < Priority::High);
        assert_eq!(Priority::Low.index(), 0);
        assert_eq!(Priority::High.index(), 1);
    }

    #[test]
    fn register_conventions_fit_the_file() {
        assert!(Reg::FP.index() < Reg::COUNT);
        assert!(Reg::LINK.index() < Reg::COUNT);
        assert_ne!(Reg::FP, Reg::LINK);
    }

    #[test]
    fn unary_falu_ops() {
        assert!(FAluOp::ItoF.is_unary());
        assert!(FAluOp::FtoI.is_unary());
        assert!(FAluOp::FNeg.is_unary());
        assert!(!FAluOp::FAdd.is_unary());
    }

    #[test]
    fn marks_are_pseudo() {
        assert!(MOp::Mark(Mark::ThreadEnd).is_pseudo());
        assert!(!MOp::Suspend.is_pseudo());
    }
}
