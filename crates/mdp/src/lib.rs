//! A Message-Driven Processor (J-Machine node) model.
//!
//! This crate is the instruction-simulator substrate of the reproduction:
//! a two-priority processor with per-priority register files and hardware
//! message queues, executing a small micro-ISA and streaming every
//! instruction fetch and data access to observation [`Hooks`].
//!
//! The TAM runtime lowerings in `tamsim-core` generate [`CodeImage`]s; the
//! cache simulator in `tamsim-cache` consumes the access stream.

pub mod code;
pub mod decode;
pub mod disasm;
pub mod hooks;
pub mod isa;
pub mod machine;
pub mod memory;
pub mod queue;
pub mod word;

pub use code::CodeImage;
pub use decode::{DOp, DOperand, DSendSrc, DecodedImage};
pub use disasm::{disasm_op, disasm_region};
pub use hooks::{Hooks, NoHooks, SinkHooks};
pub use isa::{AluOp, FAluOp, MOp, Mark, Operand, Priority, Reg, SendSrc};
pub use machine::{
    HaltReason, HaltSet, Loopback, Machine, MachineConfig, NetPort, RouteOutcome, RunError,
    RunStats, Step, SysLayout, Wake,
};
pub use memory::Memory;
pub use queue::{MessageQueue, MsgRef, DEFAULT_QUEUE_WORDS};
pub use word::Word;
