//! The machine word.
//!
//! The real MDP used 36-bit tagged words. For this reproduction, values are
//! 64-bit (so benchmark arithmetic — including the floating-point matrices
//! of MMT and DTW — is exact and convenient) while *addresses* remain 32-bit
//! and word-aligned to 4 bytes for cache-geometry purposes. The separation
//! is harmless: the paper's evaluation depends on access *streams*, not on
//! value widths.

/// A machine word: an untyped 64-bit pattern with integer and float views.
///
/// Integer operations view the pattern as `i64`; floating-point operations
/// view it as `f64` bits. Code addresses are stored as integers.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Word(u64);

impl Word {
    /// The zero word (also the value of uninitialized memory).
    pub const ZERO: Word = Word(0);

    /// Build a word from an integer.
    #[inline]
    pub fn from_i64(v: i64) -> Self {
        Word(v as u64)
    }

    /// Build a word from a float.
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        Word(v.to_bits())
    }

    /// Build a word from a 32-bit address.
    #[inline]
    pub fn from_addr(a: u32) -> Self {
        Word(a as u64)
    }

    /// Raw bit pattern.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Integer view.
    #[inline]
    pub fn as_i64(self) -> i64 {
        self.0 as i64
    }

    /// Float view.
    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// Address view (truncates to 32 bits).
    ///
    /// # Panics
    /// Panics in debug builds if the value does not fit an address; a
    /// truncated address indicates a lowering bug.
    #[inline]
    pub fn as_addr(self) -> u32 {
        debug_assert!(
            self.0 <= u32::MAX as u64,
            "word {:#x} is not an address",
            self.0
        );
        self.0 as u32
    }

    /// Boolean view: any nonzero pattern is true.
    #[inline]
    pub fn as_bool(self) -> bool {
        self.0 != 0
    }

    /// The canonical true/false words (1 / 0).
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        Word(b as u64)
    }
}

impl std::fmt::Debug for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Word({:#x} = {})", self.0, self.as_i64())
    }
}

impl From<i64> for Word {
    fn from(v: i64) -> Self {
        Word::from_i64(v)
    }
}

impl From<f64> for Word {
    fn from(v: f64) -> Self {
        Word::from_f64(v)
    }
}

impl From<u32> for Word {
    fn from(v: u32) -> Self {
        Word::from_addr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_roundtrip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(Word::from_i64(v).as_i64(), v);
        }
    }

    #[test]
    fn f64_roundtrip() {
        for v in [0.0f64, -0.0, 1.5, -3.25, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(Word::from_f64(v).as_f64(), v);
        }
        assert!(Word::from_f64(f64::NAN).as_f64().is_nan());
    }

    #[test]
    fn addr_roundtrip() {
        for a in [0u32, 4, 0x0010_0000, u32::MAX] {
            assert_eq!(Word::from_addr(a).as_addr(), a);
        }
    }

    #[test]
    fn bool_semantics() {
        assert!(Word::from_i64(1).as_bool());
        assert!(Word::from_i64(-7).as_bool());
        assert!(!Word::ZERO.as_bool());
        assert_eq!(Word::from_bool(true).as_i64(), 1);
        assert_eq!(Word::from_bool(false).as_i64(), 0);
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(Word::default(), Word::ZERO);
    }
}
