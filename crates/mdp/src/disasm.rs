//! Disassembly: human-readable listings of code images.
//!
//! Used by `tamsim disasm`, by tests that assert on generated code shapes,
//! and for debugging lowering changes.

use crate::{CodeImage, MOp, Mark, Operand, SendSrc};

fn reg(r: crate::Reg) -> String {
    match r.0 {
        14 => "link".to_string(),
        15 => "fp".to_string(),
        n => format!("r{n}"),
    }
}

fn operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => reg(*r),
        Operand::Imm(i) => format!("#{i}"),
    }
}

fn send_src(s: &SendSrc) -> String {
    match s {
        SendSrc::Reg(r) => reg(*r),
        SendSrc::Imm(w) => format!("#{:#x}", w.bits()),
    }
}

/// Render one operation as assembly-like text.
pub fn disasm_op(op: &MOp) -> String {
    match op {
        MOp::MovI { d, v } => format!("movi  {}, #{:#x}", reg(*d), v.bits()),
        MOp::Mov { d, s } => format!("mov   {}, {}", reg(*d), reg(*s)),
        MOp::Alu { op, d, a, b } => {
            format!(
                "{:<5} {}, {}, {}",
                format!("{op:?}").to_lowercase(),
                reg(*d),
                reg(*a),
                operand(b)
            )
        }
        MOp::FAlu { op, d, a, b } => {
            format!(
                "{:<5} {}, {}, {}",
                format!("{op:?}").to_lowercase(),
                reg(*d),
                reg(*a),
                reg(*b)
            )
        }
        MOp::Ld { d, base, off } => format!("ld    {}, [{}{off:+}]", reg(*d), reg(*base)),
        MOp::LdA { d, addr } => format!("ld    {}, [{addr:#x}]", reg(*d)),
        MOp::St { s, base, off } => format!("st    {}, [{}{off:+}]", reg(*s), reg(*base)),
        MOp::StA { s, addr } => format!("st    {}, [{addr:#x}]", reg(*s)),
        MOp::LdMsg { d, idx } => format!("ldmsg {}, msg[{idx}]", reg(*d)),
        MOp::LdMsgIdx { d, idx } => format!("ldmsg {}, msg[{}]", reg(*d), reg(*idx)),
        MOp::Br { t } => format!("br    {t:#x}"),
        MOp::Bz { c, t } => format!("bz    {}, {t:#x}", reg(*c)),
        MOp::Bnz { c, t } => format!("bnz   {}, {t:#x}", reg(*c)),
        MOp::Jr { s } => format!("jr    {}", reg(*s)),
        MOp::Call { t } => format!("call  {t:#x}"),
        MOp::Ret => "ret".to_string(),
        MOp::Send { pri, srcs } => {
            let words: Vec<String> = srcs.iter().map(send_src).collect();
            format!(
                "send.{} [{}]",
                if *pri == crate::Priority::High {
                    "hi"
                } else {
                    "lo"
                },
                words.join(", ")
            )
        }
        MOp::Suspend => "suspend".to_string(),
        MOp::EnableInt => "eint".to_string(),
        MOp::DisableInt => "dint".to_string(),
        MOp::Halt => "halt".to_string(),
        MOp::Mark(m) => match m {
            Mark::ThreadStart { codeblock, thread } => {
                format!(";; thread start cb{codeblock} t{thread}")
            }
            Mark::ThreadEnd => ";; thread end".to_string(),
            Mark::InletStart { codeblock, inlet } => {
                format!(";; inlet start cb{codeblock} i{inlet}")
            }
            Mark::InletEnd => ";; inlet end".to_string(),
            Mark::FrameActivated => ";; frame activated".to_string(),
            Mark::SysStart => ";; sys start".to_string(),
            Mark::SysEnd => ";; sys end".to_string(),
        },
    }
}

/// Render a full listing of an image region.
///
/// `user` selects the user-code region; otherwise system code is listed.
pub fn disasm_region(img: &CodeImage, base: u32, len: usize) -> String {
    let mut out = String::new();
    for i in 0..len {
        let addr = base + (i as u32) * 4;
        out.push_str(&format!("{addr:#08x}: {}\n", disasm_op(img.at(addr))));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Priority, Reg, Word};
    use tamsim_trace::MemoryMap;

    #[test]
    fn ops_render_distinctly() {
        let samples = [
            MOp::MovI {
                d: Reg(1),
                v: Word::from_i64(5),
            },
            MOp::Alu {
                op: AluOp::Add,
                d: Reg(2),
                a: Reg(3),
                b: Operand::Imm(7),
            },
            MOp::Ld {
                d: Reg(0),
                base: Reg::FP,
                off: -8,
            },
            MOp::Send {
                pri: Priority::High,
                srcs: vec![SendSrc::Reg(Reg(4))],
            },
            MOp::Mark(Mark::ThreadEnd),
        ];
        let rendered: Vec<String> = samples.iter().map(disasm_op).collect();
        assert!(rendered[0].contains("movi"));
        assert!(rendered[1].contains("add") && rendered[1].contains("#7"));
        assert!(rendered[2].contains("[fp-8]"));
        assert!(rendered[3].contains("send.hi"));
        assert!(rendered[4].starts_with(";;"));
        let unique: std::collections::HashSet<_> = rendered.iter().collect();
        assert_eq!(unique.len(), samples.len());
    }

    #[test]
    fn region_listing_has_one_line_per_op() {
        let map = MemoryMap::default();
        let mut img = CodeImage::new(&map);
        img.push_user(MOp::Suspend);
        img.push_user(MOp::Halt);
        let listing = disasm_region(&img, map.user_code_base, 2);
        assert_eq!(listing.lines().count(), 2);
        assert!(listing.contains("suspend"));
        assert!(listing.contains("halt"));
    }
}
