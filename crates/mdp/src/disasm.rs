//! Disassembly: human-readable listings of code images.
//!
//! Used by `tamsim disasm`, by tests that assert on generated code shapes,
//! and for debugging lowering changes.

use crate::decode::{DOp, DOperand, DSendSrc, DecodedImage, INVALID_TARGET};
use crate::{CodeImage, MOp, Mark, Operand, SendSrc};

fn reg(r: crate::Reg) -> String {
    match r.0 {
        14 => "link".to_string(),
        15 => "fp".to_string(),
        n => format!("r{n}"),
    }
}

/// Register rendering for decoded ops, whose register fields are already
/// flat indices.
fn dreg(n: u8) -> String {
    match n {
        14 => "link".to_string(),
        15 => "fp".to_string(),
        n => format!("r{n}"),
    }
}

fn doperand(o: &DOperand) -> String {
    match o {
        DOperand::Reg(n) => dreg(*n),
        DOperand::Imm(i) => format!("#{i}"),
    }
}

fn dsend_src(s: &DSendSrc) -> String {
    match s {
        DSendSrc::Reg(n) => dreg(*n),
        DSendSrc::Imm(w) => format!("#{:#x}", w.bits()),
    }
}

fn mark_text(m: &Mark) -> String {
    match m {
        Mark::ThreadStart { codeblock, thread } => {
            format!(";; thread start cb{codeblock} t{thread}")
        }
        Mark::ThreadEnd => ";; thread end".to_string(),
        Mark::InletStart { codeblock, inlet } => {
            format!(";; inlet start cb{codeblock} i{inlet}")
        }
        Mark::InletEnd => ";; inlet end".to_string(),
        Mark::FrameActivated => ";; frame activated".to_string(),
        Mark::SysStart => ";; sys start".to_string(),
        Mark::SysEnd => ";; sys end".to_string(),
    }
}

fn operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => reg(*r),
        Operand::Imm(i) => format!("#{i}"),
    }
}

fn send_src(s: &SendSrc) -> String {
    match s {
        SendSrc::Reg(r) => reg(*r),
        SendSrc::Imm(w) => format!("#{:#x}", w.bits()),
    }
}

/// Render one operation as assembly-like text.
pub fn disasm_op(op: &MOp) -> String {
    match op {
        MOp::MovI { d, v } => format!("movi  {}, #{:#x}", reg(*d), v.bits()),
        MOp::Mov { d, s } => format!("mov   {}, {}", reg(*d), reg(*s)),
        MOp::Alu { op, d, a, b } => {
            format!(
                "{:<5} {}, {}, {}",
                format!("{op:?}").to_lowercase(),
                reg(*d),
                reg(*a),
                operand(b)
            )
        }
        MOp::FAlu { op, d, a, b } => {
            format!(
                "{:<5} {}, {}, {}",
                format!("{op:?}").to_lowercase(),
                reg(*d),
                reg(*a),
                reg(*b)
            )
        }
        MOp::Ld { d, base, off } => format!("ld    {}, [{}{off:+}]", reg(*d), reg(*base)),
        MOp::LdA { d, addr } => format!("ld    {}, [{addr:#x}]", reg(*d)),
        MOp::St { s, base, off } => format!("st    {}, [{}{off:+}]", reg(*s), reg(*base)),
        MOp::StA { s, addr } => format!("st    {}, [{addr:#x}]", reg(*s)),
        MOp::LdMsg { d, idx } => format!("ldmsg {}, msg[{idx}]", reg(*d)),
        MOp::LdMsgIdx { d, idx } => format!("ldmsg {}, msg[{}]", reg(*d), reg(*idx)),
        MOp::Br { t } => format!("br    {t:#x}"),
        MOp::Bz { c, t } => format!("bz    {}, {t:#x}", reg(*c)),
        MOp::Bnz { c, t } => format!("bnz   {}, {t:#x}", reg(*c)),
        MOp::Jr { s } => format!("jr    {}", reg(*s)),
        MOp::Call { t } => format!("call  {t:#x}"),
        MOp::Ret => "ret".to_string(),
        MOp::Send { pri, srcs } => {
            let words: Vec<String> = srcs.iter().map(send_src).collect();
            format!(
                "send.{} [{}]",
                if *pri == crate::Priority::High {
                    "hi"
                } else {
                    "lo"
                },
                words.join(", ")
            )
        }
        MOp::Suspend => "suspend".to_string(),
        MOp::EnableInt => "eint".to_string(),
        MOp::DisableInt => "dint".to_string(),
        MOp::Halt => "halt".to_string(),
        MOp::Mark(m) => mark_text(m),
    }
}

/// Branch-target suffix: decoded index plus the raw code address, or a
/// wild-jump annotation when the target lies outside the image.
fn dtarget(ti: u32, t: u32) -> String {
    if ti == INVALID_TARGET {
        format!("{t:#x} <wild>")
    } else {
        format!("{t:#x}")
    }
}

/// Render one decoded operation as assembly-like text.
///
/// Fused superinstructions render as a single `a+b`-mnemonic line so
/// shrinker reproducers and fuzz failure bundles stay readable. The image
/// is needed to resolve `SEND` operand side-tables.
pub fn disasm_decoded_op(dec: &DecodedImage, op: &DOp) -> String {
    match op {
        DOp::MovI { d, v } => format!("movi  {}, #{:#x}", dreg(*d), v.bits()),
        DOp::Mov { d, s } => format!("mov   {}, {}", dreg(*d), dreg(*s)),
        DOp::AluRR { op, d, a, b } => format!(
            "{:<5} {}, {}, {}",
            format!("{op:?}").to_lowercase(),
            dreg(*d),
            dreg(*a),
            dreg(*b)
        ),
        DOp::AluRI { op, d, a, imm } => format!(
            "{:<5} {}, {}, #{imm}",
            format!("{op:?}").to_lowercase(),
            dreg(*d),
            dreg(*a)
        ),
        DOp::FAlu { op, d, a, b } => format!(
            "{:<5} {}, {}, {}",
            format!("{op:?}").to_lowercase(),
            dreg(*d),
            dreg(*a),
            dreg(*b)
        ),
        DOp::Ld { d, base, off } => format!("ld    {}, [{}{off:+}]", dreg(*d), dreg(*base)),
        DOp::LdA { d, addr } => format!("ld    {}, [{addr:#x}]", dreg(*d)),
        DOp::St { s, base, off } => format!("st    {}, [{}{off:+}]", dreg(*s), dreg(*base)),
        DOp::StA { s, addr } => format!("st    {}, [{addr:#x}]", dreg(*s)),
        DOp::LdMsg { d, idx } => format!("ldmsg {}, msg[{idx}]", dreg(*d)),
        DOp::LdMsgIdx { d, idx } => format!("ldmsg {}, msg[{}]", dreg(*d), dreg(*idx)),
        DOp::Br { ti, t } => format!("br    {}", dtarget(*ti, *t)),
        DOp::Bz { c, ti, t } => format!("bz    {}, {}", dreg(*c), dtarget(*ti, *t)),
        DOp::Bnz { c, ti, t } => format!("bnz   {}, {}", dreg(*c), dtarget(*ti, *t)),
        DOp::Jr { s } => format!("jr    {}", dreg(*s)),
        DOp::Call { ti, t } => format!("call  {}", dtarget(*ti, *t)),
        DOp::Ret => "ret".to_string(),
        DOp::Send { pri, sid } => {
            let words: Vec<String> = dec.send_srcs(*sid).iter().map(dsend_src).collect();
            format!(
                "send.{} [{}]",
                if *pri == crate::Priority::High {
                    "hi"
                } else {
                    "lo"
                },
                words.join(", ")
            )
        }
        DOp::Suspend => "suspend".to_string(),
        DOp::EnableInt => "eint".to_string(),
        DOp::DisableInt => "dint".to_string(),
        DOp::Halt => "halt".to_string(),
        DOp::Mark(m) => mark_text(m),
        DOp::CmpBr {
            op,
            d,
            a,
            b,
            bnz,
            ti,
            t,
        } => format!(
            "{}+{} {}, {}, {}, {}",
            format!("{op:?}").to_lowercase(),
            if *bnz { "bnz" } else { "bz" },
            dreg(*d),
            dreg(*a),
            doperand(b),
            dtarget(*ti, *t)
        ),
        DOp::LdAlu {
            ld_d,
            base,
            off,
            op,
            d,
            a,
            b,
        } => format!(
            "ld+{} {}, [{}{off:+}]; {}, {}, {}",
            format!("{op:?}").to_lowercase(),
            dreg(*ld_d),
            dreg(*base),
            dreg(*d),
            dreg(*a),
            doperand(b)
        ),
        DOp::MovISt { d, v, base, off } => format!(
            "movi+st {}, #{:#x} -> [{}{off:+}]",
            dreg(*d),
            v.bits(),
            dreg(*base)
        ),
        DOp::Wild { addr, user } => format!(
            ";; <region guard: wild jump @ {addr:#x} ({})>",
            if *user { "user" } else { "system" }
        ),
    }
}

/// Render a full listing of an image region.
///
/// `user` selects the user-code region; otherwise system code is listed.
pub fn disasm_region(img: &CodeImage, base: u32, len: usize) -> String {
    let mut out = String::new();
    for i in 0..len {
        let addr = base + (i as u32) * 4;
        out.push_str(&format!("{addr:#08x}: {}\n", disasm_op(img.at(addr))));
    }
    out
}

/// Render a full listing of one region of a pre-decoded image.
///
/// A fused superinstruction prints as one line at the pair's first
/// address; the shadowed second slot (kept in the image so mid-pair
/// branch targets still work) is folded into it rather than listed.
///
/// `user` selects the user-code region; otherwise system code is listed.
pub fn disasm_decoded_region(dec: &DecodedImage, user: bool) -> String {
    let (base, len) = if user {
        (dec.user_base(), dec.user_len())
    } else {
        (dec.sys_base(), dec.sys_len())
    };
    let mut out = String::new();
    let mut i = 0;
    while i < len {
        let addr = base + i * 4;
        let op = dec.op(dec.idx_of(addr));
        out.push_str(&format!("{addr:#08x}: {}\n", disasm_decoded_op(dec, op)));
        i += if op.is_fused() { 2 } else { 1 };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Priority, Reg, Word};
    use tamsim_trace::MemoryMap;

    #[test]
    fn ops_render_distinctly() {
        let samples = [
            MOp::MovI {
                d: Reg(1),
                v: Word::from_i64(5),
            },
            MOp::Alu {
                op: AluOp::Add,
                d: Reg(2),
                a: Reg(3),
                b: Operand::Imm(7),
            },
            MOp::Ld {
                d: Reg(0),
                base: Reg::FP,
                off: -8,
            },
            MOp::Send {
                pri: Priority::High,
                srcs: vec![SendSrc::Reg(Reg(4))],
            },
            MOp::Mark(Mark::ThreadEnd),
        ];
        let rendered: Vec<String> = samples.iter().map(disasm_op).collect();
        assert!(rendered[0].contains("movi"));
        assert!(rendered[1].contains("add") && rendered[1].contains("#7"));
        assert!(rendered[2].contains("[fp-8]"));
        assert!(rendered[3].contains("send.hi"));
        assert!(rendered[4].starts_with(";;"));
        let unique: std::collections::HashSet<_> = rendered.iter().collect();
        assert_eq!(unique.len(), samples.len());
    }

    #[test]
    fn region_listing_has_one_line_per_op() {
        let map = MemoryMap::default();
        let mut img = CodeImage::new(&map);
        img.push_user(MOp::Suspend);
        img.push_user(MOp::Halt);
        let listing = disasm_region(&img, map.user_code_base, 2);
        assert_eq!(listing.lines().count(), 2);
        assert!(listing.contains("suspend"));
        assert!(listing.contains("halt"));
    }

    #[test]
    fn decoded_listing_renders_fused_pairs_as_one_line() {
        let map = MemoryMap::default();
        let mut img = CodeImage::new(&map);
        let target = map.user_code_base;
        // A compare+branch pair, a load+ALU pair, and a movi+store pair:
        // six baseline ops that must list as three fused lines plus a halt.
        img.push_user(MOp::Alu {
            op: AluOp::Lt,
            d: Reg(3),
            a: Reg(2),
            b: Operand::Imm(10),
        });
        img.push_user(MOp::Bnz {
            c: Reg(3),
            t: target,
        });
        img.push_user(MOp::Ld {
            d: Reg(1),
            base: Reg::FP,
            off: -8,
        });
        img.push_user(MOp::Alu {
            op: AluOp::Add,
            d: Reg(2),
            a: Reg(1),
            b: Operand::Reg(Reg(2)),
        });
        img.push_user(MOp::MovI {
            d: Reg(4),
            v: Word::from_i64(7),
        });
        img.push_user(MOp::St {
            s: Reg(4),
            base: Reg::FP,
            off: 16,
        });
        img.push_user(MOp::Halt);

        let dec = DecodedImage::decode(&img);
        assert_eq!(dec.fused_count(), 3);

        let listing = disasm_decoded_region(&dec, true);
        // 7 baseline ops collapse to 3 fused lines + halt.
        assert_eq!(listing.lines().count(), 4);
        assert!(listing.contains("lt+bnz r3, r2, #10"), "{listing}");
        assert!(
            listing.contains("ld+add r1, [fp-8]; r2, r1, r2"),
            "{listing}"
        );
        assert!(listing.contains("movi+st r4, #0x7 -> [fp+16]"), "{listing}");
        assert!(listing.contains("halt"), "{listing}");
    }

    #[test]
    fn decoded_ops_render_targets_sends_and_guards() {
        let map = MemoryMap::default();
        let mut img = CodeImage::new(&map);
        img.push_user(MOp::Send {
            pri: Priority::High,
            srcs: vec![SendSrc::Reg(Reg(4)), SendSrc::Imm(Word::from_i64(3))],
        });
        // Branch target past the end of the region: resolves to a wild
        // sentinel and must render with the <wild> annotation.
        img.push_user(MOp::Br {
            t: map.user_code_base + 0x1000,
        });
        let dec = DecodedImage::decode(&img);

        let send = disasm_decoded_op(&dec, dec.op(dec.idx_of(map.user_code_base)));
        assert!(send.contains("send.hi [r4, #0x3]"), "{send}");

        let br = disasm_decoded_op(&dec, dec.op(dec.idx_of(map.user_code_base + 4)));
        assert!(br.contains("<wild>"), "{br}");

        // The user-region guard slot sits one past the last user op.
        let guard = disasm_decoded_op(&dec, dec.op(dec.idx_of(map.user_code_base + 4) + 1));
        assert!(guard.contains("region guard"), "{guard}");
        assert!(guard.contains("user"), "{guard}");
    }
}
