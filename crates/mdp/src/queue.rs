//! Hardware message queues.
//!
//! The J-Machine provides one large (4 Kbyte) message queue per priority
//! level; arriving messages are buffered directly into the top level of the
//! memory hierarchy by the processor's control FSM. This module does the
//! ring bookkeeping and address arithmetic; the machine performs the actual
//! memory writes so that the buffering traffic appears in the trace (the
//! paper's footnote: buffering consumes on-chip SRAM space and bandwidth).
//!
//! Queue capacity is configurable. The paper only ran programs that fit in
//! the hardware queue; [`MessageQueue::max_used_words`] lets the harness
//! verify the same property.

use std::collections::VecDeque;

/// Default queue capacity in words: 4 KB, as on the J-Machine.
pub const DEFAULT_QUEUE_WORDS: u32 = 1024;

/// A reference to a live message in a queue: ring start offset and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgRef {
    /// Word offset (pre-wrap) of the first word of the message.
    pub start: u32,
    /// Message length in words (header included).
    pub len: u32,
}

/// One priority level's message queue.
#[derive(Debug, Clone)]
pub struct MessageQueue {
    base: u32,
    cap_words: u32,
    /// Ring offset of the first live word.
    head: u32,
    /// Live words currently buffered.
    used: u32,
    msgs: VecDeque<MsgRef>,
    max_used: u32,
}

impl MessageQueue {
    /// A queue occupying `cap_words` words of memory at byte address `base`.
    pub fn new(base: u32, cap_words: u32) -> Self {
        assert!(cap_words > 0 && base.is_multiple_of(4));
        MessageQueue {
            base,
            cap_words,
            head: 0,
            used: 0,
            msgs: VecDeque::new(),
            max_used: 0,
        }
    }

    /// Byte address of word `idx` of the message starting at ring offset
    /// `start`.
    #[inline]
    pub fn addr_of(&self, start: u32, idx: u32) -> u32 {
        self.base + ((start + idx) % self.cap_words) * 4
    }

    /// Reserve space for a `len`-word message at the tail.
    ///
    /// Returns `None` when the queue is full (the caller surfaces this as a
    /// run error; see Section 2.3 of the paper — queue overflow is the MD
    /// implementation's first hazard, which the paper sidesteps by sizing
    /// workloads to fit).
    pub fn begin_enqueue(&mut self, len: u32) -> Option<MsgRef> {
        debug_assert!(len > 0);
        if self.used + len > self.cap_words {
            return None;
        }
        let start = (self.head + self.used) % self.cap_words;
        self.used += len;
        self.max_used = self.max_used.max(self.used);
        let m = MsgRef { start, len };
        self.msgs.push_back(m);
        Some(m)
    }

    /// The message at the front of the queue, if any (not yet retired).
    pub fn front(&self) -> Option<MsgRef> {
        self.msgs.front().copied()
    }

    /// All buffered messages in FIFO order (front first). Read-only:
    /// external schedulers scan queued words (via [`MessageQueue::addr_of`]
    /// and the machine's memory) without perturbing the ring.
    pub fn iter(&self) -> impl Iterator<Item = MsgRef> + '_ {
        self.msgs.iter().copied()
    }

    /// Retire the front message, releasing its buffer space.
    ///
    /// # Panics
    /// Panics if the queue is empty or `m` is not the front message
    /// (messages are strictly FIFO).
    pub fn retire(&mut self, m: MsgRef) {
        let front = self.msgs.pop_front().expect("retire from empty queue");
        assert_eq!(front, m, "messages must be retired in FIFO order");
        self.head = (self.head + m.len) % self.cap_words;
        self.used -= m.len;
    }

    /// Whether no messages are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Live words currently buffered.
    pub fn used_words(&self) -> u32 {
        self.used
    }

    /// High-water mark of buffered words over the whole run.
    pub fn max_used_words(&self) -> u32 {
        self.max_used
    }

    /// The queue's capacity in words.
    pub fn capacity_words(&self) -> u32 {
        self.cap_words
    }

    /// The queue's base byte address.
    pub fn base(&self) -> u32 {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> MessageQueue {
        MessageQueue::new(0x0020_0000, 8)
    }

    #[test]
    fn enqueue_pop_retire_fifo() {
        let mut q = q();
        let a = q.begin_enqueue(3).unwrap();
        let b = q.begin_enqueue(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.front(), Some(a));
        q.retire(a);
        assert_eq!(q.front(), Some(b));
        q.retire(b);
        assert!(q.is_empty());
    }

    #[test]
    fn addresses_wrap_around_the_ring() {
        let mut q = q();
        let a = q.begin_enqueue(6).unwrap();
        q.retire(a);
        // Next message starts at offset 6 and wraps: words 6,7,0,1.
        let b = q.begin_enqueue(4).unwrap();
        assert_eq!(b.start, 6);
        assert_eq!(q.addr_of(b.start, 0), 0x0020_0000 + 6 * 4);
        assert_eq!(q.addr_of(b.start, 1), 0x0020_0000 + 7 * 4);
        assert_eq!(q.addr_of(b.start, 2), 0x0020_0000);
        assert_eq!(q.addr_of(b.start, 3), 0x0020_0000 + 4);
    }

    #[test]
    fn overflow_returns_none() {
        let mut q = q();
        assert!(q.begin_enqueue(8).is_some());
        assert!(q.begin_enqueue(1).is_none());
    }

    #[test]
    fn high_water_mark_tracks_peak() {
        let mut q = q();
        let a = q.begin_enqueue(4).unwrap();
        let _b = q.begin_enqueue(3).unwrap();
        assert_eq!(q.max_used_words(), 7);
        q.retire(a);
        assert_eq!(q.used_words(), 3);
        assert_eq!(q.max_used_words(), 7);
    }

    #[test]
    #[should_panic(expected = "FIFO")]
    fn out_of_order_retire_panics() {
        let mut q = q();
        let _a = q.begin_enqueue(2).unwrap();
        let b = q.begin_enqueue(2).unwrap();
        q.retire(b);
    }

    #[test]
    fn ring_survives_many_laps() {
        // Steady-state traffic totalling many times the capacity: start
        // offsets keep wrapping but the accounting stays exact.
        let mut q = q();
        let mut expect_start = 0u32;
        for lap in 0..100u32 {
            let len = 1 + (lap % 5);
            let m = q.begin_enqueue(len).unwrap();
            assert_eq!(m.start, expect_start);
            assert_eq!(q.used_words(), len);
            for i in 0..len {
                let a = q.addr_of(m.start, i);
                assert!(a >= q.base() && a < q.base() + q.capacity_words() * 4);
                assert!(a.is_multiple_of(4));
            }
            q.retire(m);
            assert!(q.is_empty());
            assert_eq!(q.used_words(), 0);
            expect_start = (expect_start + len) % q.capacity_words();
        }
        assert_eq!(q.max_used_words(), 5);
    }

    #[test]
    fn exact_capacity_fill_succeeds_and_next_word_overflows() {
        let mut q = q();
        let a = q.begin_enqueue(5).unwrap();
        let b = q.begin_enqueue(3).unwrap();
        assert_eq!(q.used_words(), q.capacity_words());
        assert!(q.begin_enqueue(1).is_none());
        // The failed enqueue left the queue untouched.
        assert_eq!(q.len(), 2);
        assert_eq!(q.used_words(), 8);
        assert_eq!(q.front(), Some(a));
        q.retire(a);
        q.retire(b);
        assert!(q.is_empty());
        assert_eq!(q.max_used_words(), 8);
    }

    #[test]
    fn retire_reopens_space_and_new_message_wraps() {
        let mut q = q();
        let a = q.begin_enqueue(6).unwrap();
        // Only 2 of 8 words free: a 3-word message does not fit...
        assert!(q.begin_enqueue(3).is_none());
        q.retire(a);
        // ...but the freed space is immediately reusable, and the new
        // message's body wraps past the end of the ring.
        let b = q.begin_enqueue(7).unwrap();
        assert_eq!(b.start, 6);
        assert_eq!(q.used_words(), 7);
        assert_eq!(q.addr_of(b.start, 0), q.base() + 6 * 4);
        assert_eq!(q.addr_of(b.start, 2), q.base());
    }

    #[test]
    fn interleaved_traffic_with_a_standing_message() {
        // One message pinned at the front (a dispatched-but-unretired
        // handler) while later messages come and go behind it.
        let mut q = q();
        let standing = q.begin_enqueue(2).unwrap();
        let mut behind = std::collections::VecDeque::new();
        for _ in 0..20 {
            behind.push_back(q.begin_enqueue(3).unwrap());
            if q.used_words() + 3 > q.capacity_words() {
                // Ring is tight: the standing message blocks FIFO retire
                // of anything behind it, so drain front-to-back.
                q.retire(standing);
                while let Some(m) = behind.pop_front() {
                    q.retire(m);
                }
                assert!(q.is_empty());
                return;
            }
        }
        unreachable!("an 8-word ring must fill within a few 3-word messages");
    }
}
