//! The fast-forward gate: the event-horizon driver must be bit-identical
//! to the lockstep driver in every observable — cycle counts, results,
//! heap arrays, per-node machine counters and access counts, NI stall
//! cycles, run-length activity timelines, fabric statistics, queue
//! auto-sizing, and recorded access traces. Any gap means the
//! fast-forward skipped a cycle that was not actually a no-op.

use tamsim_core::Implementation;
use tamsim_net::{MeshExperiment, MeshRunResult, NetConfig, PlacementPolicy};
use tamsim_programs as programs;
use tamsim_tam::Program;

const IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

fn assert_bit_identical(lock: &MeshRunResult, fast: &MeshRunResult, ctx: &str) {
    assert_eq!(fast.cycles, lock.cycles, "cycle count differs: {ctx}");
    assert_eq!(fast.halt, lock.halt, "halt reason differs: {ctx}");
    assert_eq!(fast.result, lock.result, "result words differ: {ctx}");
    assert_eq!(fast.arrays, lock.arrays, "heap arrays differ: {ctx}");
    assert_eq!(
        fast.instructions, lock.instructions,
        "instruction counts differ: {ctx}"
    );
    assert_eq!(fast.stats, lock.stats, "machine counters differ: {ctx}");
    assert_eq!(fast.counts, lock.counts, "access counts differ: {ctx}");
    assert_eq!(
        fast.stall_cycles, lock.stall_cycles,
        "NI stall cycles differ: {ctx}"
    );
    assert_eq!(fast.net, lock.net, "fabric statistics differ: {ctx}");
    assert_eq!(
        fast.queue_words, lock.queue_words,
        "queue auto-sizing diverged: {ctx}"
    );
    assert_eq!(
        fast.live_frames, lock.live_frames,
        "live-frame census differs: {ctx}"
    );
    assert_eq!(
        fast.watchdog_trips, lock.watchdog_trips,
        "watchdog trips differ: {ctx}"
    );
    assert_eq!(
        fast.backstop_rearms, lock.backstop_rearms,
        "backstop re-arms differ: {ctx}"
    );
    for (n, (f, l)) in fast.activity.iter().zip(&lock.activity).enumerate() {
        assert_eq!(
            f.spans, l.spans,
            "activity timeline differs on node {n}: {ctx}"
        );
    }
}

fn assert_differential(program: &Program, nodes: &[u32], net: NetConfig) {
    for impl_ in IMPLS {
        for &n in nodes {
            for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::LocalityAware] {
                let exp = MeshExperiment::new(impl_, n)
                    .with_placement(policy)
                    .with_net(net);
                let lock = exp.lockstep().run(program);
                let fast = exp.run(program);
                let ctx = format!(
                    "{} under {:?} on {} nodes ({:?}, {net:?})",
                    program.name, impl_, n, policy
                );
                assert_bit_identical(&lock, &fast, &ctx);
            }
        }
    }
}

#[test]
fn fib_fast_forward_is_bit_identical() {
    assert_differential(&programs::fib(12), &[1, 2, 4, 8], NetConfig::default());
}

#[test]
fn quicksort_fast_forward_is_bit_identical() {
    assert_differential(
        &programs::quicksort(24, 0xC0FFEE),
        &[2, 4],
        NetConfig::default(),
    );
}

#[test]
fn small_suite_fast_forward_is_bit_identical() {
    for bench in programs::small_suite() {
        assert_differential(&bench.program, &[4], NetConfig::default());
    }
}

/// Extreme fabric timings shift every event edge the fast-forward has to
/// honour: long hop latencies produce the deep pure-wait stretches the
/// horizon jumps over, and wide/narrow links move the serialization
/// release times.
#[test]
fn fast_forward_is_bit_identical_under_skewed_fabric_timing() {
    let fib = programs::fib(10);
    for net in [
        NetConfig {
            hop_latency: 17,
            ..NetConfig::default()
        },
        NetConfig {
            link_bandwidth: 4,
            ..NetConfig::default()
        },
        NetConfig {
            hop_latency: 1,
            link_bandwidth: 1,
            link_capacity: 16,
            inject_capacity: 16,
            recv_capacity: 16,
        },
    ] {
        assert_differential(&fib, &[2, 4], net);
    }
}

/// Tiny buffers force ready heads to sit stuck behind back-pressure — the
/// case where the horizon query must refuse to jump and the driver must
/// reproduce lockstep's stall accounting cycle by cycle.
#[test]
fn fast_forward_is_bit_identical_under_congestion() {
    let net = NetConfig {
        link_capacity: 8,
        inject_capacity: 8,
        recv_capacity: 8,
        ..NetConfig::default()
    };
    assert_differential(&programs::fib(11), &[4], net);
}

/// Recording must not perturb the run, and the recorded per-node traces
/// must be identical under both drivers.
#[test]
fn recorded_traces_are_bit_identical() {
    let program = programs::fib(11);
    for impl_ in [Implementation::Am, Implementation::Md] {
        let exp = MeshExperiment::new(impl_, 4);
        let lock = exp.lockstep().run_recorded(&program);
        let fast = exp.run_recorded(&program);
        let ctx = format!("fib(11) under {impl_:?} on 4 nodes");
        assert_bit_identical(&lock.run, &fast.run, &ctx);
        assert_eq!(lock.logs.len(), fast.logs.len());
        for (n, (l, f)) in lock.logs.iter().zip(&fast.logs).enumerate() {
            assert_eq!(l.len(), f.len(), "node {n} trace length differs: {ctx}");
            assert!(l.iter().eq(f.iter()), "node {n} trace events differ: {ctx}");
        }
    }
}
