//! The fast-forward gate: the event-horizon driver must be bit-identical
//! to the lockstep driver in every observable — cycle counts, results,
//! heap arrays, per-node machine counters and access counts, NI stall
//! cycles, run-length activity timelines, fabric statistics, queue
//! auto-sizing, and recorded access traces. Any gap means the
//! fast-forward skipped a cycle that was not actually a no-op.

use tamsim_core::Implementation;
use tamsim_net::{MeshExperiment, MeshRunResult, NetConfig, NetTraceMode, PlacementPolicy};
use tamsim_programs as programs;
use tamsim_tam::Program;

const IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

fn assert_bit_identical(lock: &MeshRunResult, fast: &MeshRunResult, ctx: &str) {
    assert_eq!(fast.cycles, lock.cycles, "cycle count differs: {ctx}");
    assert_eq!(fast.halt, lock.halt, "halt reason differs: {ctx}");
    assert_eq!(fast.result, lock.result, "result words differ: {ctx}");
    assert_eq!(fast.arrays, lock.arrays, "heap arrays differ: {ctx}");
    assert_eq!(
        fast.instructions, lock.instructions,
        "instruction counts differ: {ctx}"
    );
    assert_eq!(fast.stats, lock.stats, "machine counters differ: {ctx}");
    assert_eq!(fast.counts, lock.counts, "access counts differ: {ctx}");
    assert_eq!(
        fast.stall_cycles, lock.stall_cycles,
        "NI stall cycles differ: {ctx}"
    );
    assert_eq!(fast.net, lock.net, "fabric statistics differ: {ctx}");
    assert_eq!(
        fast.deliver_stalls, lock.deliver_stalls,
        "per-node deliver stalls differ: {ctx}"
    );
    assert_eq!(
        fast.link_stats, lock.link_stats,
        "per-link telemetry differs: {ctx}"
    );
    assert_eq!(
        fast.queue_words, lock.queue_words,
        "queue auto-sizing diverged: {ctx}"
    );
    assert_eq!(
        fast.live_frames, lock.live_frames,
        "live-frame census differs: {ctx}"
    );
    assert_eq!(
        fast.watchdog_trips, lock.watchdog_trips,
        "watchdog trips differ: {ctx}"
    );
    assert_eq!(
        fast.backstop_rearms, lock.backstop_rearms,
        "backstop re-arms differ: {ctx}"
    );
    for (n, (f, l)) in fast.activity.iter().zip(&lock.activity).enumerate() {
        assert_eq!(
            f.spans, l.spans,
            "activity timeline differs on node {n}: {ctx}"
        );
    }
}

fn assert_differential(program: &Program, nodes: &[u32], net: NetConfig) {
    for impl_ in IMPLS {
        for &n in nodes {
            for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::LocalityAware] {
                let exp = MeshExperiment::new(impl_, n)
                    .with_placement(policy)
                    .with_net(net);
                let lock = exp.lockstep().run(program);
                let fast = exp.run(program);
                let ctx = format!(
                    "{} under {:?} on {} nodes ({:?}, {net:?})",
                    program.name, impl_, n, policy
                );
                assert_bit_identical(&lock, &fast, &ctx);
            }
        }
    }
}

#[test]
fn fib_fast_forward_is_bit_identical() {
    assert_differential(&programs::fib(12), &[1, 2, 4, 8], NetConfig::default());
}

#[test]
fn quicksort_fast_forward_is_bit_identical() {
    assert_differential(
        &programs::quicksort(24, 0xC0FFEE),
        &[2, 4],
        NetConfig::default(),
    );
}

#[test]
fn small_suite_fast_forward_is_bit_identical() {
    for bench in programs::small_suite() {
        assert_differential(&bench.program, &[4], NetConfig::default());
    }
}

/// Extreme fabric timings shift every event edge the fast-forward has to
/// honour: long hop latencies produce the deep pure-wait stretches the
/// horizon jumps over, and wide/narrow links move the serialization
/// release times.
#[test]
fn fast_forward_is_bit_identical_under_skewed_fabric_timing() {
    let fib = programs::fib(10);
    for net in [
        NetConfig {
            hop_latency: 17,
            ..NetConfig::default()
        },
        NetConfig {
            link_bandwidth: 4,
            ..NetConfig::default()
        },
        NetConfig {
            hop_latency: 1,
            link_bandwidth: 1,
            link_capacity: 16,
            inject_capacity: 16,
            recv_capacity: 16,
        },
    ] {
        assert_differential(&fib, &[2, 4], net);
    }
}

/// Tiny buffers force ready heads to sit stuck behind back-pressure — the
/// case where the horizon query must refuse to jump and the driver must
/// reproduce lockstep's stall accounting cycle by cycle.
#[test]
fn fast_forward_is_bit_identical_under_congestion() {
    let net = NetConfig {
        link_capacity: 8,
        inject_capacity: 8,
        recv_capacity: 8,
        ..NetConfig::default()
    };
    assert_differential(&programs::fib(11), &[4], net);
}

/// Network tracing must be invisible: a `--trace-net` run must be
/// bit-identical to an untraced one in every observable, on all six
/// small-suite programs, under all three implementations, and under both
/// drivers. The trace itself must be internally consistent — one record
/// per injected message, causally ordered lifecycle cycles, FIFO dispatch
/// matching that never underflows, and per-link words conservation.
#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    for bench in programs::small_suite() {
        for impl_ in IMPLS {
            let exp = MeshExperiment::new(impl_, 4);
            for (label, e) in [("fast-forward", exp), ("lockstep", exp.lockstep())] {
                let plain = e.run(&bench.program);
                let traced = e.traced(NetTraceMode::Full).run(&bench.program);
                let ctx = format!(
                    "{} under {impl_:?} on 4 nodes ({label} driver, traced)",
                    bench.program.name
                );
                assert_bit_identical(&plain, &traced, &ctx);

                let trace = traced.net_trace.as_ref().expect("traced run has a trace");
                assert_eq!(trace.dropped, 0, "full mode must retain everything: {ctx}");
                assert_eq!(
                    trace.records.len() as u64,
                    plain.net.injected_msgs,
                    "one record per injected message: {ctx}"
                );
                assert_eq!(
                    trace.unmatched_dispatches, 0,
                    "dispatch matcher underflowed: {ctx}"
                );
                assert_eq!(
                    trace
                        .records
                        .iter()
                        .filter(|r| r.deliver_cycle.is_some())
                        .count() as u64,
                    plain.net.delivered_msgs,
                    "delivered-record count differs from fabric stats: {ctx}"
                );
                for r in &trace.records {
                    let mut prev = r.inject_cycle;
                    for h in &r.hops {
                        assert!(h.cycle >= prev, "hop before inject on msg {}: {ctx}", r.id);
                        prev = h.cycle;
                    }
                    if let Some(eject) = r.eject_cycle {
                        assert!(eject >= prev, "eject precedes last hop: {ctx}");
                        prev = eject;
                    }
                    if let Some(deliver) = r.deliver_cycle {
                        assert!(deliver >= prev, "deliver precedes eject: {ctx}");
                        if let Some(dispatch) = r.dispatch_cycle {
                            assert!(dispatch >= deliver, "dispatch precedes deliver: {ctx}");
                        }
                    }
                }
                assert!(
                    trace.dispatched().next().is_some(),
                    "no message reached its handler: {ctx}"
                );
                // Quiescent fabric at the end of the run: every link row
                // conserves words with nothing left queued.
                for row in &traced.link_stats {
                    assert_eq!(
                        row.words_in_total(),
                        row.words_out + row.queued_words as u64,
                        "link words not conserved on node {} ({}): {ctx}",
                        row.node,
                        row.kind.label()
                    );
                    assert_eq!(row.queued_words, 0, "message stranded in a buffer: {ctx}");
                }
            }
        }
    }
}

/// Recording must not perturb the run, and the recorded per-node traces
/// must be identical under both drivers.
#[test]
fn recorded_traces_are_bit_identical() {
    let program = programs::fib(11);
    for impl_ in [Implementation::Am, Implementation::Md] {
        let exp = MeshExperiment::new(impl_, 4);
        let lock = exp.lockstep().run_recorded(&program);
        let fast = exp.run_recorded(&program);
        let ctx = format!("fib(11) under {impl_:?} on 4 nodes");
        assert_bit_identical(&lock.run, &fast.run, &ctx);
        assert_eq!(lock.logs.len(), fast.logs.len());
        for (n, (l, f)) in lock.logs.iter().zip(&fast.logs).enumerate() {
            assert_eq!(l.len(), f.len(), "node {n} trace length differs: {ctx}");
            assert!(l.iter().eq(f.iter()), "node {n} trace events differ: {ctx}");
        }
    }
}
