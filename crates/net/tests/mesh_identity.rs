//! The anchor invariant: a 1×1 mesh is bit-identical to the single-node
//! experiment driver — same result words, same heap arrays, same
//! instruction counts and machine stats, same per-region access counts —
//! for every implementation. The mesh path reuses `Machine::step` but
//! drives it through `NodePort`, the masked address path, and the global
//! cycle loop, so this pins all of that machinery to the original
//! executor.

use tamsim_core::{Experiment, Implementation};
use tamsim_net::MeshExperiment;
use tamsim_programs as programs;
use tamsim_tam::Program;

const IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

fn assert_identical(program: &Program) {
    for impl_ in IMPLS {
        let single = Experiment::new(impl_).run(program);
        let mesh = MeshExperiment::new(impl_, 1).run(program);
        let ctx = format!("{} under {:?}", program.name, impl_);
        assert_eq!(mesh.result, single.result, "result words differ: {ctx}");
        assert_eq!(mesh.arrays, single.arrays, "heap arrays differ: {ctx}");
        assert_eq!(
            mesh.instructions, single.instructions,
            "instruction counts differ: {ctx}"
        );
        assert_eq!(mesh.stats.len(), 1);
        assert_eq!(mesh.stats[0], single.stats, "machine stats differ: {ctx}");
        assert_eq!(mesh.counts.len(), 1);
        assert_eq!(mesh.counts[0], single.counts, "access counts differ: {ctx}");
        assert_eq!(
            mesh.queue_words, single.queue_words,
            "queue auto-sizing diverged: {ctx}"
        );
        // And the fabric really was never used.
        assert_eq!(
            mesh.net.injected_msgs, 0,
            "1×1 mesh injected into the fabric: {ctx}"
        );
        assert_eq!(mesh.total_stall_cycles(), 0, "1×1 mesh stalled: {ctx}");
    }
}

#[test]
fn fib_is_bit_identical_on_a_1x1_mesh() {
    assert_identical(&programs::fib(12));
}

#[test]
fn small_suite_is_bit_identical_on_a_1x1_mesh() {
    for bench in programs::small_suite() {
        assert_identical(&bench.program);
    }
}
