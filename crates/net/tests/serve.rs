//! The serve-mode gate: open-loop request serving must produce
//! byte-identical completion records across lockstep, fast-forward, and
//! the parallel driver at every thread count, for every back-end and
//! placement policy — plus conservation under saturation (every injected
//! request completes before the run quiesces) and end-to-end result
//! correctness (each request's reply carries exactly the batch answer).

use tamsim_core::Implementation;
use tamsim_net::{
    ArrivalKind, MeshExperiment, NetConfig, PlacementPolicy, ServeConfig, ServeRunResult,
};
use tamsim_programs as programs;
use tamsim_tam::Program;

const IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

const POLICIES: [PlacementPolicy; 3] = PlacementPolicy::ALL;

/// Every request-visible and mesh-visible observable except
/// `thread_stats` (worker attribution is a function of the thread count)
/// and `net_trace` (serve runs are untraced).
fn assert_serve_identical(a: &ServeRunResult, b: &ServeRunResult, ctx: &str) {
    assert_eq!(a.records, b.records, "completion records differ: {ctx}");
    assert_eq!(a.cfg, b.cfg, "scenario differs: {ctx}");
    assert_eq!(a.mesh.cycles, b.mesh.cycles, "cycle count differs: {ctx}");
    assert_eq!(a.mesh.halt, b.mesh.halt, "halt reason differs: {ctx}");
    assert_eq!(
        a.mesh.instructions, b.mesh.instructions,
        "instruction counts differ: {ctx}"
    );
    assert_eq!(a.mesh.stats, b.mesh.stats, "machine counters differ: {ctx}");
    assert_eq!(a.mesh.counts, b.mesh.counts, "access counts differ: {ctx}");
    assert_eq!(
        a.mesh.stall_cycles, b.mesh.stall_cycles,
        "NI stall cycles differ: {ctx}"
    );
    assert_eq!(a.mesh.net, b.mesh.net, "fabric statistics differ: {ctx}");
    assert_eq!(
        a.mesh.link_stats, b.mesh.link_stats,
        "per-link telemetry differs: {ctx}"
    );
    assert_eq!(
        a.mesh.queue_words, b.mesh.queue_words,
        "queue auto-sizing diverged: {ctx}"
    );
    assert_eq!(
        a.mesh.live_frames, b.mesh.live_frames,
        "live-frame census differs: {ctx}"
    );
    assert_eq!(a.mesh.steals, b.mesh.steals, "steal counts differ: {ctx}");
    assert_eq!(
        a.mesh.watchdog_trips, b.mesh.watchdog_trips,
        "watchdog trips differ: {ctx}"
    );
    for (n, (p, q)) in a.mesh.activity.iter().zip(&b.mesh.activity).enumerate() {
        assert_eq!(
            p.spans, q.spans,
            "activity timeline differs on node {n}: {ctx}"
        );
    }
}

/// Per-request lifecycle invariants plus end-to-end answer correctness:
/// every reply must carry exactly the words the batch run returns.
fn assert_serve_sane(r: &ServeRunResult, program: &Program, ctx: &str) {
    assert_eq!(
        r.records.len(),
        r.cfg.requests as usize,
        "conservation: every request must complete: {ctx}"
    );
    let batch = MeshExperiment::new(r.mesh.implementation, 1).run(program);
    let expect: Vec<i64> = batch.result.iter().map(|w| w.as_i64()).collect();
    assert!(!expect.is_empty(), "batch run must return words: {ctx}");
    for rec in &r.records {
        assert!(rec.node < r.mesh.nodes, "origin outside the mesh: {ctx}");
        assert!(
            rec.injected >= rec.arrival,
            "request {} injected before it arrived: {ctx}",
            rec.id
        );
        assert!(
            rec.completed > rec.injected,
            "request {} completed before it ran: {ctx}",
            rec.id
        );
        assert_eq!(
            rec.result, expect,
            "request {} returned the wrong answer: {ctx}",
            rec.id
        );
    }
    assert!(r.achieved_ppm() > 0, "zero throughput: {ctx}");
}

/// The tentpole wall: seed × drivers × thread counts × policies ×
/// back-ends — byte-identical completion records everywhere, correct
/// answers everywhere.
#[test]
fn serve_wall_is_bit_identical_across_drivers_policies_and_threads() {
    let program = programs::fib(8);
    let cfg = ServeConfig::new(20_000, 24, 0xA11CE);
    for impl_ in IMPLS {
        for policy in POLICIES {
            let exp = MeshExperiment::new(impl_, 4).with_placement(policy);
            let lock = exp.lockstep().serve(&program, &cfg);
            let fast = exp.serve(&program, &cfg);
            let ctx = format!("fib(8) under {impl_:?} ({policy:?})");
            assert_serve_identical(&lock, &fast, &format!("{ctx}, fast-forward vs lockstep"));
            for t in [2, 4] {
                let par = exp.with_threads(t).serve(&program, &cfg);
                assert_serve_identical(&lock, &par, &format!("{ctx}, {t} threads vs lockstep"));
            }
            assert_serve_sane(&lock, &program, &ctx);
        }
    }
}

/// Different seeds must produce different schedules and different
/// completion records; the same seed must reproduce them exactly.
#[test]
fn serve_records_are_seed_deterministic() {
    let program = programs::fib(8);
    let exp = MeshExperiment::new(Implementation::Md, 4);
    let a = exp.serve(&program, &ServeConfig::new(30_000, 16, 1));
    let b = exp.serve(&program, &ServeConfig::new(30_000, 16, 1));
    let c = exp.serve(&program, &ServeConfig::new(30_000, 16, 2));
    assert_eq!(a.records, b.records, "same seed must reproduce exactly");
    assert_ne!(a.records, c.records, "different seeds must differ");
}

/// Fixed-rate arrivals ride the same machinery: the wall holds for
/// [`ArrivalKind::Fixed`] too, and the spacing shows up in the records.
#[test]
fn fixed_rate_serving_is_bit_identical_and_evenly_spaced() {
    let program = programs::fib(8);
    let cfg = ServeConfig {
        kind: ArrivalKind::Fixed,
        ..ServeConfig::new(5_000, 12, 9)
    };
    let exp = MeshExperiment::new(Implementation::Am, 4);
    let lock = exp.lockstep().serve(&program, &cfg);
    let fast = exp.serve(&program, &cfg);
    let par = exp.with_threads(4).serve(&program, &cfg);
    assert_serve_identical(&lock, &fast, "fixed-rate, fast-forward vs lockstep");
    assert_serve_identical(&lock, &par, "fixed-rate, 4 threads vs lockstep");
    for rec in &lock.records {
        assert_eq!(rec.arrival, rec.id as u64 * 200, "5000 ppm = every 200");
    }
    assert_serve_sane(&lock, &program, "fixed-rate");
}

/// A single-node mesh serves too (every request originates and completes
/// on node 0; the reply is still ejected off-mesh, never dispatched).
#[test]
fn single_node_mesh_serves_requests() {
    let program = programs::fib(8);
    let cfg = ServeConfig::new(10_000, 8, 3);
    for impl_ in IMPLS {
        let exp = MeshExperiment::new(impl_, 1);
        let lock = exp.lockstep().serve(&program, &cfg);
        let fast = exp.serve(&program, &cfg);
        let ctx = format!("1x1 mesh under {impl_:?}");
        assert_serve_identical(&lock, &fast, &ctx);
        assert_serve_sane(&lock, &program, &ctx);
        assert!(lock.records.iter().all(|r| r.node == 0));
    }
}

/// Saturation regression: offered load far beyond service capacity on
/// a congested fabric with small entry queues. Open-loop back-pressure
/// holds arrivals (nothing dropped), conservation still holds at halt,
/// and the tail visibly stretches beyond the best case.
#[test]
fn saturation_holds_arrivals_and_conserves_requests() {
    let program = programs::fib(8);
    // One request per 2 cycles against a service time of hundreds of
    // cycles per request: a deep backlog on every node.
    let cfg = ServeConfig::new(500_000, 48, 7);
    let net = NetConfig {
        link_capacity: 8,
        inject_capacity: 8,
        recv_capacity: 8,
        ..NetConfig::default()
    };
    let mut exp = MeshExperiment::new(Implementation::Md, 4).with_net(net);
    exp.queue_words = [256, 256];
    let lock = exp.lockstep().serve(&program, &cfg);
    let fast = exp.serve(&program, &cfg);
    let par = exp.with_threads(4).serve(&program, &cfg);
    assert_serve_identical(&lock, &fast, "saturated, fast-forward vs lockstep");
    assert_serve_identical(&lock, &par, "saturated, 4 threads vs lockstep");
    assert_serve_sane(&lock, &program, "saturated");
    // A lone request on the same mesh measures the unloaded service
    // time; under saturation every request's latency must sit far above
    // it (the machine interleaves all outstanding call DAGs, so even the
    // "first" request finishes late).
    let lone = exp.serve(&program, &ServeConfig::new(500_000, 1, 7));
    let unloaded = lone.records[0].latency();
    let min = lock.records.iter().map(|r| r.latency()).min().unwrap();
    assert!(
        min > 4 * unloaded,
        "saturation must stretch latencies well past the unloaded \
         service time (unloaded {unloaded}, saturated min {min})"
    );
    // The backlog came from genuine queueing, visible per link.
    assert!(!lock.mesh.link_stats.is_empty());
}

/// Queue auto-sizing still guards serve mode: entry queues too small for
/// the offered concurrency overflow, the attempt restarts with doubled
/// queues — replaying the same arrival schedule from a fresh link — and
/// every request still completes, identically on every driver.
#[test]
fn undersized_serve_runs_recover_by_queue_doubling() {
    let program = programs::fib(10);
    let cfg = ServeConfig::new(100_000, 12, 5);
    let mut exp = MeshExperiment::new(Implementation::Md, 4);
    exp.queue_words = [48, 48];
    let lock = exp.lockstep().serve(&program, &cfg);
    let fast = exp.serve(&program, &cfg);
    let par = exp.with_threads(4).serve(&program, &cfg);
    assert_serve_identical(&lock, &fast, "queue-recovery, fast-forward vs lockstep");
    assert_serve_identical(&lock, &par, "queue-recovery, 4 threads vs lockstep");
    assert_serve_sane(&lock, &program, "queue-recovery");
    assert!(
        lock.mesh.queue_words.iter().any(|&w| w > 48),
        "12 concurrent call DAGs must not fit 48-word queues (got {:?})",
        lock.mesh.queue_words
    );
}

/// An arrival gap longer than the watchdog window must not be mistaken
/// for gridlock: a glacial offered load (one request per 50k cycles with
/// a 10k-cycle watchdog) completes without a single trip, identically in
/// both serial drivers.
#[test]
fn arrival_gaps_longer_than_the_watchdog_window_do_not_trip_it() {
    let program = programs::fib(8);
    let cfg = ServeConfig {
        kind: ArrivalKind::Fixed,
        ..ServeConfig::new(20, 4, 13)
    };
    let mut exp = MeshExperiment::new(Implementation::Am, 4);
    exp.watchdog_cycles = 10_000;
    let lock = exp.lockstep().serve(&program, &cfg);
    let fast = exp.serve(&program, &cfg);
    assert_serve_identical(&lock, &fast, "glacial load, fast-forward vs lockstep");
    assert_eq!(
        lock.mesh.watchdog_trips, 0,
        "an arrival gap is not gridlock"
    );
    assert_serve_sane(&lock, &program, "glacial load");
    // The run really did span the whole schedule.
    assert!(lock.mesh.cycles >= 150_000, "three 50k-cycle gaps");
}
