//! Work-stealing placement gate. The `steal` policy migrates enabled
//! frames at run time, so its determinism story is strictly harder than
//! the static policies': steal decisions, migration messages, forwarding
//! rewrites, and home-slot reclamation all happen in the drivers' serial
//! window, and the three drivers must agree bit-for-bit on every
//! observable — including the per-node steal counts themselves.

use tamsim_core::Implementation;
use tamsim_mdp::Word;
use tamsim_net::{
    MeshExperiment, MeshRunResult, NetConfig, OriginDist, PlacementPolicy, ServeConfig,
};
use tamsim_programs as programs;

fn assert_bit_identical(a: &MeshRunResult, b: &MeshRunResult, ctx: &str) {
    assert_eq!(b.cycles, a.cycles, "cycle count differs: {ctx}");
    assert_eq!(b.halt, a.halt, "halt reason differs: {ctx}");
    assert_eq!(b.result, a.result, "result words differ: {ctx}");
    assert_eq!(b.arrays, a.arrays, "heap arrays differ: {ctx}");
    assert_eq!(b.instructions, a.instructions, "instructions differ: {ctx}");
    assert_eq!(b.stats, a.stats, "machine counters differ: {ctx}");
    assert_eq!(b.counts, a.counts, "access counts differ: {ctx}");
    assert_eq!(b.stall_cycles, a.stall_cycles, "NI stalls differ: {ctx}");
    assert_eq!(b.net, a.net, "fabric statistics differ: {ctx}");
    assert_eq!(
        b.deliver_stalls, a.deliver_stalls,
        "deliver stalls differ: {ctx}"
    );
    assert_eq!(b.link_stats, a.link_stats, "link telemetry differs: {ctx}");
    assert_eq!(b.queue_words, a.queue_words, "queue sizing differs: {ctx}");
    assert_eq!(b.live_frames, a.live_frames, "frame census differs: {ctx}");
    assert_eq!(b.steals, a.steals, "steal counts differ: {ctx}");
    assert_eq!(
        b.watchdog_trips, a.watchdog_trips,
        "watchdog trips differ: {ctx}"
    );
    for (n, (x, y)) in b.activity.iter().zip(&a.activity).enumerate() {
        assert_eq!(x.spans, y.spans, "activity differs on node {n}: {ctx}");
    }
}

/// The heart of the gate: lockstep, fast-forward, and the parallel
/// driver at several thread counts must produce identical runs under
/// `--policy steal`, and the run must contain actual migrations (a
/// vacuous pass — zero steals — would gate nothing).
#[test]
fn steal_is_bit_identical_across_drivers() {
    let program = programs::fib(12);
    for impl_ in [Implementation::Am, Implementation::AmEnabled] {
        for nodes in [4, 8] {
            let exp =
                MeshExperiment::new(impl_, nodes).with_placement(PlacementPolicy::WorkStealing);
            let lock = exp.lockstep().run(&program);
            let fast = exp.run(&program);
            let ctx = format!("fib(12) under {impl_:?} on {nodes} nodes");
            assert_bit_identical(&lock, &fast, &format!("{ctx}, fast-forward"));
            for threads in [2, 3, 4] {
                let par = exp.with_threads(threads).run(&program);
                assert_bit_identical(&lock, &par, &format!("{ctx}, {threads} threads"));
            }
            assert!(
                lock.steals.iter().sum::<u64>() > 0,
                "no frames were migrated: {ctx}"
            );
        }
    }
}

/// Migration must be invisible to the program: the steal run computes
/// the same answer (result words and heap arrays) as both static
/// policies, on every program in the small suite.
#[test]
fn steal_preserves_program_semantics() {
    for bench in programs::small_suite() {
        let steal = MeshExperiment::new(Implementation::Am, 4)
            .with_placement(PlacementPolicy::WorkStealing)
            .run(&bench.program);
        for fixed in [PlacementPolicy::RoundRobin, PlacementPolicy::LocalityAware] {
            let base = MeshExperiment::new(Implementation::Am, 4)
                .with_placement(fixed)
                .run(&bench.program);
            let ctx = format!("{} (steal vs {fixed:?})", bench.program.name);
            assert_eq!(steal.result, base.result, "result differs: {ctx}");
            assert_eq!(steal.arrays, base.arrays, "arrays differ: {ctx}");
            assert_eq!(steal.halt, base.halt, "halt reason differs: {ctx}");
        }
    }
}

/// Congestion narrows the inject window: migrations are refused and
/// retried, forwarded messages stall, and the three drivers must still
/// agree. This is the adversarial path for the Busy-retry discipline
/// (a steal aborted by a full buffer must leave no side effects).
#[test]
fn steal_is_bit_identical_under_congestion() {
    let net = NetConfig {
        link_capacity: 8,
        inject_capacity: 8,
        recv_capacity: 8,
        ..NetConfig::default()
    };
    let program = programs::fib(11);
    let exp = MeshExperiment::new(Implementation::Am, 4)
        .with_placement(PlacementPolicy::WorkStealing)
        .with_net(net);
    let lock = exp.lockstep().run(&program);
    let fast = exp.run(&program);
    assert_bit_identical(&lock, &fast, "congested fib(11), fast-forward");
    for threads in [2, 4] {
        let par = exp.with_threads(threads).run(&program);
        assert_bit_identical(
            &lock,
            &par,
            &format!("congested fib(11), {threads} threads"),
        );
    }
}

/// Every frame a steal moves must eventually be freed on its *new* home
/// and its orphaned home slot reclaimed: after a run to completion the
/// live-frame census is zero everywhere, exactly as under the static
/// policies. A census leak here means a double-counted or lost `ffree`
/// on the forwarding path. Corner-skewed serve load is the pressure
/// source — every request lands on node 0, so frames migrate off it
/// throughout the run.
#[test]
fn steal_census_drains_to_zero() {
    for nodes in [4, 9, 16] {
        let cfg = ServeConfig {
            origins: OriginDist::Corner,
            ..ServeConfig::new(20_000, 24, 5)
        };
        let r = MeshExperiment::new(Implementation::Am, nodes)
            .with_placement(PlacementPolicy::WorkStealing)
            .serve(&programs::fib(9), &cfg);
        assert!(
            r.mesh.steals.iter().sum::<u64>() > 0,
            "no migrations on {nodes} nodes"
        );
        for (n, &live) in r.mesh.live_frames.iter().enumerate() {
            assert_eq!(live, 0, "node {n} leaked frames on {nodes} nodes");
        }
    }
}

/// The static policies must be bit-for-bit unaffected by the steal
/// machinery existing: their `steals` vector is all zero and their runs
/// byte-match the pre-steal goldens (covered by the golden gate); here
/// we pin the zero vector.
#[test]
fn static_policies_report_zero_steals() {
    for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::LocalityAware] {
        let run = MeshExperiment::new(Implementation::Am, 4)
            .with_placement(policy)
            .run(&programs::fib(10));
        assert_eq!(run.steals, vec![0; 4], "{policy:?} must never steal");
    }
}

/// MD has no frame queue for the engine to scan — under `--policy
/// steal` the migration half never fires (zero steals) and the policy
/// degenerates to its birth half, which is exactly the
/// `LocalityAware` census shed. The whole run must therefore be
/// cycle-identical to `--policy local`.
#[test]
fn md_under_steal_degenerates_to_locality_placement() {
    let steal = MeshExperiment::new(Implementation::Md, 4)
        .with_placement(PlacementPolicy::WorkStealing)
        .run(&programs::fib(11));
    assert_eq!(steal.steals, vec![0; 4], "MD must never migrate");
    let local = MeshExperiment::new(Implementation::Md, 4)
        .with_placement(PlacementPolicy::LocalityAware)
        .run(&programs::fib(11));
    assert_eq!(steal.result, local.result, "MD steal computes fib(11)");
    assert_eq!(steal.halt, local.halt);
    assert_eq!(steal.cycles, local.cycles, "identical birth placement");
    assert_eq!(steal.instructions, local.instructions);
    assert_eq!(steal.live_frames, vec![0; 4], "census must drain");
}

/// One node has nothing to steal from and nobody to give work to: the
/// policy must be a no-op and the run must match the single-node anchor
/// exactly (same invariant the static policies obey).
#[test]
fn single_node_steal_matches_rr() {
    let program = programs::fib(10);
    let steal = MeshExperiment::new(Implementation::Am, 1)
        .with_placement(PlacementPolicy::WorkStealing)
        .run(&program);
    let rr = MeshExperiment::new(Implementation::Am, 1)
        .with_placement(PlacementPolicy::RoundRobin)
        .run(&program);
    assert_eq!(steal.result, rr.result);
    assert_eq!(steal.cycles, rr.cycles);
    assert_eq!(steal.instructions, rr.instructions);
    assert_eq!(steal.steals, vec![0]);
}

/// The forwarding round-trip under fire: every request of a corner-
/// skewed serve run arrives at node 0, so frames migrate off it
/// constantly while parents keep sending to the old addresses — sends
/// race migrations, land via the forwarding path, and every request
/// must still complete **exactly once** with the right answer, with
/// identical completion records across all three drivers.
#[test]
fn corner_skew_forwarding_round_trip_is_exactly_once() {
    let program = programs::fib(9);
    let cfg = ServeConfig {
        origins: OriginDist::Corner,
        ..ServeConfig::new(30_000, 24, 0xA11CE)
    };
    let exp =
        MeshExperiment::new(Implementation::Am, 4).with_placement(PlacementPolicy::WorkStealing);
    let lock = exp.lockstep().serve(&program, &cfg);
    let fast = exp.serve(&program, &cfg);
    assert_eq!(lock.records, fast.records, "fast-forward records differ");
    assert_eq!(lock.mesh.cycles, fast.mesh.cycles);
    assert_eq!(lock.mesh.steals, fast.mesh.steals);
    for threads in [2, 4] {
        let par = exp.with_threads(threads).serve(&program, &cfg);
        assert_eq!(lock.records, par.records, "{threads}-thread records differ");
        assert_eq!(lock.mesh.steals, par.mesh.steals);
    }
    // Exactly once: 24 in, 24 out, each id once, each the right answer.
    assert_eq!(lock.records.len(), 24, "conservation under skew");
    let batch = MeshExperiment::new(Implementation::Am, 1).run(&program);
    let expect: Vec<i64> = batch.result.iter().map(|w| w.as_i64()).collect();
    for (i, rec) in lock.records.iter().enumerate() {
        assert_eq!(rec.id as usize, i, "duplicate or lost completion");
        assert_eq!(rec.node, 0, "corner arrivals originate at node 0");
        assert_eq!(rec.result, expect, "request {i} answered wrongly");
    }
    assert!(
        lock.mesh.steals.iter().sum::<u64>() > 0,
        "skewed load must actually migrate frames"
    );
    // And the migrations must genuinely drain the corner: stolen frames
    // ran elsewhere, so other nodes executed real work.
    let busy: Vec<u64> = lock.mesh.stats.iter().map(|s| s.instructions).collect();
    assert!(
        busy[1..].iter().any(|&i| i > 0),
        "no work ever left the corner: {busy:?}"
    );
}

/// Steal counts are conserved: `fib(12)` allocates a known number of
/// frames, and every migration is of a frame that was later freed —
/// so total steals can never exceed total frames allocated (census
/// commits) on the victim nodes.
#[test]
fn steal_counts_are_sane() {
    let run = MeshExperiment::new(Implementation::Am, 4)
        .with_placement(PlacementPolicy::WorkStealing)
        .run(&programs::fib(12));
    let total: u64 = run.steals.iter().sum();
    assert!(total > 0, "expected migrations");
    // fib(12) spawns ~465 activations; each can migrate at most once
    // per enabling, bounded far below the message total.
    assert!(
        total <= run.net.delivered_msgs,
        "more steals ({total}) than delivered messages ({})",
        run.net.delivered_msgs
    );
    let _ = Word::from_i64(0); // keep the mdp dev-dependency honest
}
