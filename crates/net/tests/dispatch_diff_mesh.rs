//! Mesh half of the dispatch-differential wall: a multi-node mesh run
//! must be bit-identical with predecode on and off, under both the
//! lockstep driver and the event-horizon fast-forward. The decoded
//! interpreter preserves the one-costed-instruction-per-step contract
//! (fused superinstructions execute one half per step), so the global
//! clock interleaving cannot shift by a single cycle.

use tamsim_core::{Implementation, LoweringOptions};
use tamsim_net::MeshExperiment;

const IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

fn opts(predecode: bool) -> LoweringOptions {
    LoweringOptions {
        predecode,
        ..LoweringOptions::default()
    }
}

#[test]
fn mesh_runs_are_bit_identical_with_and_without_predecode() {
    // Two programs with real traffic keep this test affordable; the fuzz
    // wall's dispatch cross-check covers the space.
    let benches: Vec<_> = tamsim_programs::small_suite()
        .into_iter()
        .filter(|b| b.name == "MMT" || b.name == "SS")
        .collect();
    assert_eq!(benches.len(), 2);

    for bench in &benches {
        for impl_ in IMPLS {
            for lockstep in [false, true] {
                let ctx = format!(
                    "{} under {impl_:?} ({})",
                    bench.name,
                    if lockstep { "lockstep" } else { "fast-forward" }
                );
                let run_with = |predecode: bool| {
                    let mut exp = MeshExperiment::new(impl_, 4);
                    exp.opts = opts(predecode);
                    if lockstep {
                        exp.lockstep().run(&bench.program)
                    } else {
                        exp.run(&bench.program)
                    }
                };
                let base = run_with(false);
                let dec = run_with(true);

                assert_eq!(dec.cycles, base.cycles, "{ctx}: global cycles");
                assert_eq!(dec.halt, base.halt, "{ctx}: halt reason");
                assert_eq!(dec.result, base.result, "{ctx}: result words");
                assert_eq!(dec.arrays, base.arrays, "{ctx}: final arrays");
                assert_eq!(dec.stats, base.stats, "{ctx}: per-node counters");
                assert_eq!(dec.counts, base.counts, "{ctx}: per-node access counts");
                assert_eq!(dec.net, base.net, "{ctx}: fabric statistics");
                assert_eq!(
                    dec.stall_cycles, base.stall_cycles,
                    "{ctx}: NI stall cycles"
                );
                assert_eq!(dec.queue_words, base.queue_words, "{ctx}: queue sizing");
            }
        }
    }
}
