//! Multi-node correctness: the mesh must compute exactly what the
//! single-node machine computes — same result words, same final heap
//! arrays — for every node count, implementation, and placement policy,
//! and do so deterministically (same run twice → same everything).

use tamsim_core::{Experiment, Implementation};
use tamsim_net::{MeshExperiment, PlacementPolicy};
use tamsim_programs as programs;
use tamsim_tam::Program;

const IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

fn assert_correct_everywhere(program: &Program, nodes: &[u32]) {
    for impl_ in IMPLS {
        let single = Experiment::new(impl_).run(program);
        for &n in nodes {
            for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::LocalityAware] {
                let mesh = MeshExperiment::new(impl_, n)
                    .with_placement(policy)
                    .run(program);
                let ctx = format!(
                    "{} under {:?} on {} nodes ({:?})",
                    program.name, impl_, n, policy
                );
                assert_eq!(mesh.result, single.result, "result differs: {ctx}");
                assert_eq!(mesh.arrays, single.arrays, "arrays differ: {ctx}");
                assert_eq!(
                    mesh.instructions,
                    mesh.stats.iter().map(|s| s.instructions).sum::<u64>(),
                    "instruction total inconsistent: {ctx}"
                );
                // Message conservation end-to-end: everything injected
                // was delivered (the run finished, so nothing is still in
                // flight).
                assert_eq!(
                    mesh.net.injected_msgs, mesh.net.delivered_msgs,
                    "messages lost or stuck: {ctx}"
                );
                assert_eq!(
                    mesh.net.injected_words, mesh.net.delivered_words,
                    "words lost or stuck: {ctx}"
                );
            }
        }
    }
}

#[test]
fn fib_is_correct_on_every_mesh() {
    assert_correct_everywhere(&programs::fib(12), &[2, 3, 4, 8]);
}

#[test]
fn quicksort_is_correct_on_every_mesh() {
    assert_correct_everywhere(&programs::quicksort(24, 0xC0FFEE), &[2, 4]);
}

#[test]
fn small_suite_is_correct_on_four_nodes() {
    for bench in programs::small_suite() {
        assert_correct_everywhere(&bench.program, &[4]);
    }
}

#[test]
fn mesh_runs_are_deterministic() {
    let program = programs::fib(10);
    let run = |_: u32| {
        MeshExperiment::new(Implementation::Md, 4)
            .with_placement(PlacementPolicy::RoundRobin)
            .run(&program)
    };
    let a = run(0);
    let b = run(1);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.result, b.result);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.net, b.net);
    assert_eq!(a.stall_cycles, b.stall_cycles);
}

#[test]
fn multinode_runs_actually_use_the_network() {
    let mesh = MeshExperiment::new(Implementation::Md, 4).run(&programs::fib(12));
    assert!(mesh.net.injected_msgs > 0, "no cross-node traffic at all");
    assert!(mesh.net.hop_traversals > 0, "messages never crossed a link");
    // Round-robin placement spreads work: every node executes something.
    for (n, s) in mesh.stats.iter().enumerate() {
        assert!(s.instructions > 0, "node {n} never ran");
    }
}
