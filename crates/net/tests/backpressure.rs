//! NI back-pressure regression test (the mesh analogue of the queue
//! wrap-around tests in `tamsim-mdp`): fill a remote node's low-priority
//! queue to *exact* capacity, keep the traffic coming until the whole
//! path — receive queue, link buffer, inject queue — is full and the
//! sender's `SEND` stalls; assert nothing is dropped and nothing panics,
//! then let the receiver retire messages and assert the sender resumes
//! and every message arrives in order.

use tamsim_core::NetInfo;
use tamsim_mdp::{CodeImage, MOp, Machine, MachineConfig, NoHooks, Priority, SendSrc, Step, Word};
use tamsim_net::{
    node_tag, Fabric, MeshTopology, NetConfig, NoNetHooks, NodePort, Placement, PlacementPolicy,
};
use tamsim_trace::MemoryMap;

const MSG_WORDS: usize = 4;
const SENDS: usize = 12;
/// Receiver low-queue capacity: exactly two messages.
const RECV_QUEUE_WORDS: u32 = (2 * MSG_WORDS) as u32;

/// Routing facts with handler addresses no test message uses, so every
/// message routes by its locus word.
fn net_info() -> NetInfo {
    NetInfo {
        falloc_addr: 1,
        ffree_addr: 2,
        done_addr: 3,
        q_head: 0,
        q_tail: 0,
        frame_bump: 0,
        heap_bump: 0,
        heap_bump_init: 0,
        freelist_base: 0,
        desc_ptrs: 0,
    }
}

struct Rig {
    img: CodeImage,
    sender_entry: u32,
}

/// One image shared by both nodes: a receive handler that immediately
/// retires its message, and a sender program of `SENDS` back-to-back
/// low-priority sends to node 1, each tagged with its sequence number.
fn build_rig() -> Rig {
    let map = MemoryMap::default();
    let mut img = CodeImage::new(&map);
    let handler = img.next_user();
    img.push_user(MOp::Suspend);
    let sender_entry = img.next_user();
    let locus = node_tag(1) | map.frame_base;
    for seq in 0..SENDS {
        img.push_user(MOp::Send {
            pri: Priority::Low,
            srcs: vec![
                SendSrc::Imm(Word::from_addr(handler)),
                SendSrc::Imm(Word::from_addr(locus)),
                SendSrc::Imm(Word::from_i64(seq as i64)),
                SendSrc::Imm(Word::from_i64(0x5E17)),
            ],
        });
    }
    img.push_user(MOp::Halt);
    Rig { img, sender_entry }
}

#[test]
fn remote_queue_backpressure_stalls_sender_and_resumes() {
    let rig = build_rig();
    let topo = MeshTopology {
        width: 2,
        height: 1,
    };
    // Tiny fabric buffers so the stall chain is short and exact.
    let cfg = NetConfig {
        hop_latency: 1,
        link_bandwidth: 4,
        link_capacity: MSG_WORDS as u32,
        inject_capacity: MSG_WORDS as u32,
        recv_capacity: MSG_WORDS as u32,
    };
    let mut fabric = Fabric::new(topo, cfg);
    let mut placement = Placement::new(PlacementPolicy::RoundRobin, 2);
    let info = net_info();

    let mut sender = Machine::new(MachineConfig::default(), &rig.img);
    sender.start_low(rig.sender_entry);
    let mut receiver = Machine::new(
        MachineConfig {
            queue_words: [RECV_QUEUE_WORDS, RECV_QUEUE_WORDS],
            ..MachineConfig::default()
        },
        &rig.img,
    );

    // ---- Phase 1: the receiver never runs. Drive the sender (retrying
    // blocked sends every cycle, as the machine does) until the path
    // reaches steady state: remote queue full, fabric full, sender
    // stalled. ----
    let mut nh = NoNetHooks;
    let mut sender_done = false;
    let mut last_outcome = Step::Idle;
    for _ in 0..100u64 {
        if !sender_done {
            let mut port = NodePort {
                node: 0,
                info,
                fabric: &mut fabric,
                placement: &mut placement,
                hooks: &mut nh,
                serve: None,
                steal: None,
            };
            last_outcome = sender.step(&mut NoHooks, &mut port).expect("sender failed");
            if matches!(last_outcome, Step::Halted(_)) {
                sender_done = true;
            }
        }
        fabric.tick();
        if let Some(msg) = fabric.ready_recv(1) {
            let pri = msg.pri;
            let words = msg.words.clone();
            if receiver.try_deliver(pri, &words, &mut NoHooks) {
                fabric.pop_recv(1);
            } else {
                fabric.note_deliver_stall(1);
            }
        }
    }
    assert_eq!(
        last_outcome,
        Step::Blocked,
        "sender should be stalled at steady state"
    );
    assert!(!sender_done, "sender finished before the path could fill");

    // The remote low queue is full to *exact* capacity — begin_enqueue
    // refused the next delivery without dropping it.
    let q = receiver.queue(Priority::Low);
    assert_eq!(q.used_words(), RECV_QUEUE_WORDS);
    assert!(
        fabric.stats().deliver_stalls > 0,
        "NI never held a delivery"
    );
    let sends_before = sender.stats(tamsim_mdp::HaltReason::Quiescent).sends;

    // A blocked send has no side effects: re-stepping while the path is
    // still full stays Blocked and counts nothing.
    for _ in 0..5 {
        let mut port = NodePort {
            node: 0,
            info,
            fabric: &mut fabric,
            placement: &mut placement,
            hooks: &mut nh,
            serve: None,
            steal: None,
        };
        assert_eq!(sender.step(&mut NoHooks, &mut port).unwrap(), Step::Blocked);
    }
    assert_eq!(
        sender.stats(tamsim_mdp::HaltReason::Quiescent).sends,
        sends_before,
        "blocked sends must not count"
    );

    // Message conservation while stalled: everything injected is either
    // delivered into the remote queue or still buffered in the fabric.
    let st = fabric.stats();
    assert_eq!(
        st.injected_msgs,
        st.delivered_msgs + fabric.in_flight_msgs(),
        "messages lost under back-pressure"
    );

    // ---- Phase 2: the receiver starts retiring messages; the sender
    // must resume and every message must arrive, in order. ----
    let mut received = 0u64;
    let mut resumed = false;
    for _ in 0..2000u64 {
        {
            let mut port = NodePort {
                node: 0,
                info,
                fabric: &mut fabric,
                placement: &mut placement,
                hooks: &mut nh,
                serve: None,
                steal: None,
            };
            match sender.step(&mut NoHooks, &mut port).expect("sender failed") {
                Step::Ran => resumed = true,
                Step::Halted(_) => sender_done = true,
                Step::Blocked | Step::Idle => {}
            }
        }
        {
            // The receiver dispatches one message and suspends, retiring
            // it and reopening queue space — the wake-up the NI stall was
            // waiting for.
            let mut port = NodePort {
                node: 1,
                info,
                fabric: &mut fabric,
                placement: &mut placement,
                hooks: &mut nh,
                serve: None,
                steal: None,
            };
            if receiver
                .step(&mut NoHooks, &mut port)
                .expect("receiver failed")
                == Step::Ran
            {
                received += 1;
            }
        }
        fabric.tick();
        if let Some(msg) = fabric.ready_recv(1) {
            let pri = msg.pri;
            let words = msg.words.clone();
            if receiver.try_deliver(pri, &words, &mut NoHooks) {
                fabric.pop_recv(1);
            } else {
                fabric.note_deliver_stall(1);
            }
        }
        if sender_done && received == SENDS as u64 && fabric.is_empty() {
            break;
        }
    }
    assert!(resumed, "sender never resumed after the receiver drained");
    assert!(sender_done, "sender never finished");
    assert_eq!(
        received, SENDS as u64,
        "messages dropped under back-pressure"
    );
    assert!(fabric.is_empty());
    let st = fabric.stats();
    assert_eq!(st.injected_msgs, st.delivered_msgs);
    assert_eq!(
        sender.stats(tamsim_mdp::HaltReason::Explicit).sends,
        SENDS as u64
    );
    // Every dispatch on the receiver retired one message in FIFO order;
    // dispatches happened exactly SENDS times.
    assert_eq!(
        receiver.stats(tamsim_mdp::HaltReason::Quiescent).dispatches[Priority::Low.index()],
        SENDS as u64
    );
}

/// Regression: deliver stalls must be attributed to the *destination*
/// node, not counted globally. Replays the exact-capacity stall above
/// (node 0 sends, node 1's queue fills) and pins every stall on node 1.
#[test]
fn deliver_stalls_are_attributed_to_the_destination_node() {
    let rig = build_rig();
    let topo = MeshTopology {
        width: 2,
        height: 1,
    };
    let cfg = NetConfig {
        hop_latency: 1,
        link_bandwidth: 4,
        link_capacity: MSG_WORDS as u32,
        inject_capacity: MSG_WORDS as u32,
        recv_capacity: MSG_WORDS as u32,
    };
    let mut fabric = Fabric::new(topo, cfg);
    let mut placement = Placement::new(PlacementPolicy::RoundRobin, 2);
    let info = net_info();
    let mut nh = NoNetHooks;

    let mut sender = Machine::new(MachineConfig::default(), &rig.img);
    sender.start_low(rig.sender_entry);
    let mut receiver = Machine::new(
        MachineConfig {
            queue_words: [RECV_QUEUE_WORDS, RECV_QUEUE_WORDS],
            ..MachineConfig::default()
        },
        &rig.img,
    );

    // Drive to steady state: receiver never runs, its queue fills to
    // exact capacity, the NI holds deliveries under back-pressure.
    let mut sender_done = false;
    for _ in 0..100u64 {
        if !sender_done {
            let mut port = NodePort {
                node: 0,
                info,
                fabric: &mut fabric,
                placement: &mut placement,
                hooks: &mut nh,
                serve: None,
                steal: None,
            };
            if matches!(
                sender.step(&mut NoHooks, &mut port).expect("sender failed"),
                Step::Halted(_)
            ) {
                sender_done = true;
            }
        }
        fabric.tick();
        if let Some(msg) = fabric.ready_recv(1) {
            let pri = msg.pri;
            let words = msg.words.clone();
            if receiver.try_deliver(pri, &words, &mut NoHooks) {
                fabric.pop_recv(1);
            } else {
                fabric.note_deliver_stall(1);
            }
        }
    }
    assert_eq!(receiver.queue(Priority::Low).used_words(), RECV_QUEUE_WORDS);

    let total = fabric.stats().deliver_stalls;
    assert!(total > 0, "NI never held a delivery");
    let by_node = fabric.deliver_stalls_by_node();
    assert_eq!(by_node.len(), 2);
    assert_eq!(
        by_node[0], 0,
        "sender node charged with the receiver's stalls"
    );
    assert_eq!(by_node[1], total, "per-node stall column must be truthful");
}
