//! The parallel-driver gate: `--threads N` must be bit-identical to both
//! serial drivers (lockstep and fast-forward) in every observable, for
//! every thread count, on every program — same cycle counts, results,
//! heap arrays, per-node machine counters and access counts, NI stall
//! cycles, activity timelines, fabric statistics, per-link telemetry,
//! queue auto-sizing, placement census, and recorded access traces. Any
//! gap means an epoch barrier leaked an ordering the serial cycle
//! guarantees.

use tamsim_core::Implementation;
use tamsim_net::{MeshExperiment, MeshRunResult, NetConfig, PlacementPolicy};
use tamsim_programs as programs;
use tamsim_tam::Program;

const IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

/// Every field except `thread_stats` (worker-attribution is by design a
/// function of the thread count) and `net_trace` (parallel runs are
/// untraced).
fn assert_bit_identical(serial: &MeshRunResult, par: &MeshRunResult, ctx: &str) {
    assert_eq!(par.cycles, serial.cycles, "cycle count differs: {ctx}");
    assert_eq!(par.halt, serial.halt, "halt reason differs: {ctx}");
    assert_eq!(par.result, serial.result, "result words differ: {ctx}");
    assert_eq!(par.arrays, serial.arrays, "heap arrays differ: {ctx}");
    assert_eq!(
        par.instructions, serial.instructions,
        "instruction counts differ: {ctx}"
    );
    assert_eq!(par.stats, serial.stats, "machine counters differ: {ctx}");
    assert_eq!(par.counts, serial.counts, "access counts differ: {ctx}");
    assert_eq!(
        par.stall_cycles, serial.stall_cycles,
        "NI stall cycles differ: {ctx}"
    );
    assert_eq!(par.net, serial.net, "fabric statistics differ: {ctx}");
    assert_eq!(
        par.deliver_stalls, serial.deliver_stalls,
        "per-node deliver stalls differ: {ctx}"
    );
    assert_eq!(
        par.link_stats, serial.link_stats,
        "per-link telemetry differs: {ctx}"
    );
    assert_eq!(
        par.queue_words, serial.queue_words,
        "queue auto-sizing diverged: {ctx}"
    );
    assert_eq!(
        par.live_frames, serial.live_frames,
        "live-frame census differs: {ctx}"
    );
    assert_eq!(par.steals, serial.steals, "steal counts differ: {ctx}");
    assert_eq!(
        par.watchdog_trips, serial.watchdog_trips,
        "watchdog trips differ: {ctx}"
    );
    assert_eq!(
        par.backstop_rearms, serial.backstop_rearms,
        "backstop re-arms differ: {ctx}"
    );
    for (n, (p, s)) in par.activity.iter().zip(&serial.activity).enumerate() {
        assert_eq!(
            p.spans, s.spans,
            "activity timeline differs on node {n}: {ctx}"
        );
    }
}

/// The parallel run's worker attribution must partition the mesh and
/// conserve the global totals.
fn assert_thread_stats_consistent(par: &MeshRunResult, threads: u32, ctx: &str) {
    let ts = par
        .thread_stats
        .as_ref()
        .expect("parallel run reports per-thread stats");
    assert_eq!(
        ts.len() as u32,
        threads.min(par.nodes),
        "one entry per worker: {ctx}"
    );
    let mut next = 0u32;
    for t in ts {
        assert_eq!(t.first_node, next, "chunks must tile the mesh: {ctx}");
        assert!(t.nodes > 0, "empty worker chunk: {ctx}");
        next += t.nodes;
    }
    assert_eq!(next, par.nodes, "chunks must cover every node: {ctx}");
    assert_eq!(
        ts.iter().map(|t| t.steps).sum::<u64>(),
        par.instructions,
        "per-thread steps must sum to the instruction total: {ctx}"
    );
    assert_eq!(
        ts.iter().map(|t| t.deliveries).sum::<u64>(),
        par.net.delivered_msgs,
        "per-thread deliveries must sum to the fabric total: {ctx}"
    );
}

fn assert_differential(program: &Program, nodes: &[u32], threads: &[u32], net: NetConfig) {
    for impl_ in IMPLS {
        for &n in nodes {
            for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::LocalityAware] {
                let exp = MeshExperiment::new(impl_, n)
                    .with_placement(policy)
                    .with_net(net);
                let lock = exp.lockstep().run(program);
                let fast = exp.run(program);
                for &t in threads {
                    let par = exp.with_threads(t).run(program);
                    let ctx = format!(
                        "{} under {:?} on {} nodes ({:?}, {} threads)",
                        program.name, impl_, n, policy, t
                    );
                    assert_bit_identical(&lock, &par, &format!("{ctx} vs lockstep"));
                    assert_bit_identical(&fast, &par, &format!("{ctx} vs fast-forward"));
                    assert_thread_stats_consistent(&par, t, &ctx);
                }
            }
        }
    }
}

#[test]
fn fib_parallel_is_bit_identical() {
    assert_differential(
        &programs::fib(12),
        &[2, 4, 8],
        &[2, 3, 4],
        NetConfig::default(),
    );
}

#[test]
fn quicksort_parallel_is_bit_identical() {
    assert_differential(
        &programs::quicksort(24, 0xC0FFEE),
        &[4],
        &[2, 4],
        NetConfig::default(),
    );
}

#[test]
fn small_suite_parallel_is_bit_identical() {
    for bench in programs::small_suite() {
        assert_differential(&bench.program, &[4], &[2, 4], NetConfig::default());
    }
}

/// Congested fabrics exercise `Busy` send retries and deliver stalls —
/// the paths where a worker's view of its own buffers must match the
/// serial interleaving exactly.
#[test]
fn parallel_is_bit_identical_under_congestion() {
    let net = NetConfig {
        link_capacity: 8,
        inject_capacity: 8,
        recv_capacity: 8,
        ..NetConfig::default()
    };
    assert_differential(&programs::fib(11), &[4], &[2, 4], net);
}

/// Past 16 nodes the pre-widening node tag would have overflowed into the
/// sign bit; a 40-node run exercises `falloc`/`ffree` round-trips through
/// tags 17..39 under both placement policies, and the live-frame census
/// must drain back to the serial fixpoint.
#[test]
fn forty_node_falloc_ffree_round_trip() {
    let program = programs::fib(13);
    for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::LocalityAware] {
        let exp = MeshExperiment::new(Implementation::Md, 40).with_placement(policy);
        let serial = exp.run(&program);
        let par = exp.with_threads(4).run(&program);
        let ctx = format!("fib(13) on 40 nodes ({policy:?})");
        assert_bit_identical(&serial, &par, &ctx);
        // Frames were genuinely spread past node 16 and freed again.
        assert!(
            serial.net.delivered_msgs > 0,
            "no cross-node traffic: {ctx}"
        );
        assert!(
            serial.live_frames.len() == 40,
            "census must cover all 40 nodes: {ctx}"
        );
    }
}

/// Large-mesh smoke: the widened tag must carry 64- and 256-node runs,
/// and the parallel driver must agree at the far end of the scale.
#[test]
fn large_mesh_parallel_smoke() {
    let program = programs::fib(12);
    for nodes in [64, 256] {
        let exp = MeshExperiment::new(Implementation::Md, nodes);
        let serial = exp.run(&program);
        let par = exp.with_threads(4).run(&program);
        let ctx = format!("fib(12) on {nodes} nodes");
        assert_bit_identical(&serial, &par, &ctx);
        assert_thread_stats_consistent(&par, 4, &ctx);
    }
}

/// Thread counts above the node count clamp to one worker per node.
#[test]
fn oversubscribed_threads_clamp_to_node_count() {
    let program = programs::fib(10);
    let exp = MeshExperiment::new(Implementation::Am, 2);
    let serial = exp.run(&program);
    let par = exp.with_threads(16).run(&program);
    assert_bit_identical(&serial, &par, "fib(10) on 2 nodes, 16 threads");
    assert_eq!(
        par.thread_stats.as_ref().map(Vec::len),
        Some(2),
        "worker count must clamp to the node count"
    );
}

/// Recording must not perturb the parallel run, and each node's recorded
/// access trace must be identical to the serial drivers' — workers own
/// their nodes' logs outright, so even event order within a node must
/// survive.
#[test]
fn recorded_traces_are_bit_identical_across_thread_counts() {
    let program = programs::fib(11);
    for impl_ in [Implementation::Am, Implementation::Md] {
        let exp = MeshExperiment::new(impl_, 4);
        let serial = exp.run_recorded(&program);
        let par = exp.with_threads(2).run_recorded(&program);
        let ctx = format!("fib(11) under {impl_:?} on 4 nodes, 2 threads");
        assert_bit_identical(&serial.run, &par.run, &ctx);
        assert_eq!(serial.logs.len(), par.logs.len());
        for (n, (s, p)) in serial.logs.iter().zip(&par.logs).enumerate() {
            assert_eq!(s.len(), p.len(), "node {n} trace length differs: {ctx}");
            assert!(s.iter().eq(p.iter()), "node {n} trace events differ: {ctx}");
        }
    }
}
