//! Router property tests: randomized (src, dst, payload) message sets
//! driven through the raw fabric, with fixed seeds only.
//!
//! Properties:
//! * every injected message is delivered, to the right node, intact;
//! * its hop count equals the Manhattan distance of (src, dst) — the
//!   dimension-order route never wanders;
//! * per-(src, dst) pair, messages arrive in injection order (the links
//!   and NI queues are FIFO);
//! * message conservation under saturating contention: at every cycle,
//!   injected = delivered + in-flight, and nothing is ever dropped.

use tamsim_mdp::{Priority, Word};
use tamsim_net::{Fabric, MeshTopology, NetConfig};

/// SplitMix64 — tiny deterministic PRNG for the property inputs (kept
/// inline to avoid a dev-dependency cycle with the fuzz harness).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone)]
struct Sent {
    src: u32,
    dst: u32,
    /// Injection order, embedded in the payload for FIFO checking.
    seq: u64,
    words: Vec<Word>,
}

fn payload(rng: &mut Rng, src: u32, dst: u32, seq: u64) -> Vec<Word> {
    let len = 2 + rng.below(5) as usize; // 2..=6 words
    let mut words = vec![
        Word::from_i64(((src as i64) << 32) | dst as i64),
        Word::from_i64(seq as i64),
    ];
    words.extend((2..len).map(|_| Word::from_i64(rng.next() as i64)));
    words
}

/// Drive `pending` through `fabric`, draining receive queues every
/// cycle; returns deliveries in arrival order per node. Asserts
/// conservation on every cycle.
fn drive(fabric: &mut Fabric, mut pending: Vec<Sent>) -> Vec<Vec<(Sent, u32)>> {
    let nodes = fabric.nodes();
    let mut delivered: Vec<Vec<(Sent, u32)>> = (0..nodes).map(|_| Vec::new()).collect();
    let total = pending.len() as u64;
    let mut injected = 0u64;
    let mut popped = 0u64;
    let mut idle_cycles = 0;
    while popped < total {
        // Offer as many pending messages as the inject queues take this
        // cycle. A node stops offering for the cycle at its first refusal
        // — like a real sender, it stalls rather than sending a later
        // message first (otherwise the harness itself would reorder).
        let mut blocked = vec![false; nodes as usize];
        let mut i = 0;
        while i < pending.len() {
            let m = &pending[i];
            if !blocked[m.src as usize] && fabric.try_inject(m.src, m.dst, Priority::Low, &m.words)
            {
                injected += 1;
                pending.remove(i);
            } else {
                blocked[m.src as usize] = true;
                i += 1;
            }
        }
        fabric.tick();
        for n in 0..nodes {
            while fabric.ready_recv(n).is_some() {
                let msg = fabric.pop_recv(n);
                popped += 1;
                let sd = msg.words[0].as_i64();
                let sent = Sent {
                    src: (sd >> 32) as u32,
                    dst: (sd & 0xFFFF_FFFF) as u32,
                    seq: msg.words[1].as_i64() as u64,
                    words: msg.words.clone(),
                };
                assert_eq!(msg.dest, n, "delivered to the wrong node");
                assert_eq!(sent.dst, n, "payload/destination mismatch");
                delivered[n as usize].push((sent, msg.hops));
            }
        }
        // Conservation: injected = delivered + in-flight, every cycle.
        assert_eq!(
            injected,
            popped + fabric.in_flight_msgs(),
            "messages lost or duplicated in flight"
        );
        assert_eq!(fabric.stats().injected_msgs, injected);
        assert_eq!(fabric.stats().delivered_msgs, popped);
        idle_cycles += 1;
        assert!(
            idle_cycles < 200_000,
            "fabric failed to drain: {popped}/{total} delivered"
        );
    }
    assert!(fabric.is_empty(), "stragglers after all deliveries");
    delivered
}

fn random_messages(rng: &mut Rng, topo: MeshTopology, count: usize) -> Vec<Sent> {
    (0..count)
        .map(|seq| {
            let src = rng.below(topo.nodes() as u64) as u32;
            let dst = rng.below(topo.nodes() as u64) as u32;
            let words = payload(rng, src, dst, seq as u64);
            Sent {
                src,
                dst,
                seq: seq as u64,
                words,
            }
        })
        .collect()
}

fn check_properties(topo: MeshTopology, cfg: NetConfig, seed: u64, count: usize) {
    let mut rng = Rng(seed);
    let sent = random_messages(&mut rng, topo, count);
    let by_pair_sent: Vec<Sent> = sent.clone();
    let mut fabric = Fabric::new(topo, cfg);
    let delivered = drive(&mut fabric, sent);

    let mut seen = 0usize;
    for (node, arrivals) in delivered.iter().enumerate() {
        let mut last_seq_per_src: Vec<Option<u64>> = vec![None; topo.nodes() as usize];
        for (msg, hops) in arrivals {
            seen += 1;
            // Hop count == Manhattan distance: dimension-order routes
            // never wander or detour.
            assert_eq!(
                *hops,
                topo.manhattan(msg.src, node as u32),
                "hop count ≠ Manhattan distance for {} → {}",
                msg.src,
                node
            );
            // Payload integrity: what arrived is exactly what was sent.
            assert_eq!(
                msg.words, by_pair_sent[msg.seq as usize].words,
                "payload corrupted in flight"
            );
            // FIFO per (src, dst): injection order preserved.
            if let Some(prev) = last_seq_per_src[msg.src as usize] {
                assert!(
                    prev < msg.seq,
                    "reordering on pair ({}, {}): {} after {}",
                    msg.src,
                    node,
                    msg.seq,
                    prev
                );
            }
            last_seq_per_src[msg.src as usize] = Some(msg.seq);
        }
    }
    assert_eq!(seen, count, "delivery count mismatch");
}

#[test]
fn random_traffic_on_a_4x2_mesh() {
    check_properties(
        MeshTopology::for_nodes(8),
        NetConfig::default(),
        0xDEADBEEF,
        400,
    );
}

#[test]
fn random_traffic_on_a_4x4_mesh() {
    check_properties(
        MeshTopology::for_nodes(16),
        NetConfig::default(),
        0x5EED,
        600,
    );
}

#[test]
fn random_traffic_on_a_line() {
    // Degenerate 1D mesh: all routing is X-only.
    check_properties(MeshTopology::for_nodes(7), NetConfig::default(), 7, 250);
}

#[test]
fn saturating_contention_with_tiny_buffers() {
    // Tiny buffers and slow links force every form of back-pressure:
    // refused injections, blocked forwards, and ejections waiting on a
    // full receive queue. Conservation is asserted every cycle inside
    // `drive`.
    let cfg = NetConfig {
        hop_latency: 3,
        link_bandwidth: 1,
        link_capacity: 8,
        inject_capacity: 8,
        recv_capacity: 8,
    };
    check_properties(MeshTopology::for_nodes(8), cfg, 0xC0FFEE, 500);
}

/// Per-link telemetry conservation: at *every* cycle, each buffer row —
/// mesh link, inject queue, or recv queue — satisfies
/// `words_in == words_out + queued_words`, and once the fabric drains
/// every row is empty. Driven over the two nastiest schedules (saturating
/// random traffic on tiny buffers, all-to-one hotspot) with fixed seeds.
#[test]
fn per_link_words_are_conserved_under_saturation_and_hotspot() {
    let topo = MeshTopology::for_nodes(8);
    let saturating = NetConfig {
        hop_latency: 3,
        link_bandwidth: 1,
        link_capacity: 8,
        inject_capacity: 8,
        recv_capacity: 8,
    };
    let hotspot_cfg = NetConfig {
        link_capacity: 12,
        inject_capacity: 12,
        recv_capacity: 12,
        ..NetConfig::default()
    };
    let mut rng = Rng(0xC0FFEE);
    let saturating_msgs = random_messages(&mut rng, topo, 400);
    let mut rng = Rng(99);
    let hotspot_msgs: Vec<Sent> = (0..300)
        .map(|seq| {
            let src = rng.below(topo.nodes() as u64) as u32;
            let words = payload(&mut rng, src, 0, seq as u64);
            Sent {
                src,
                dst: 0,
                seq: seq as u64,
                words,
            }
        })
        .collect();

    for (label, cfg, mut pending) in [
        ("saturating", saturating, saturating_msgs),
        ("hotspot", hotspot_cfg, hotspot_msgs),
    ] {
        let mut fabric = Fabric::new(topo, cfg);
        let total = pending.len();
        let mut popped = 0usize;
        let mut cycles = 0u64;
        while popped < total {
            let mut blocked = vec![false; topo.nodes() as usize];
            let mut i = 0;
            while i < pending.len() {
                let m = &pending[i];
                if !blocked[m.src as usize]
                    && fabric.try_inject(m.src, m.dst, Priority::Low, &m.words)
                {
                    pending.remove(i);
                } else {
                    blocked[m.src as usize] = true;
                    i += 1;
                }
            }
            fabric.tick();
            for n in 0..topo.nodes() {
                while fabric.ready_recv(n).is_some() {
                    fabric.pop_recv(n);
                    popped += 1;
                }
            }
            for row in fabric.link_stats() {
                assert_eq!(
                    row.words_in_total(),
                    row.words_out + row.queued_words as u64,
                    "{label}: words leaked on node {} ({}) at cycle {cycles}",
                    row.node,
                    row.kind.label()
                );
            }
            cycles += 1;
            assert!(cycles < 200_000, "{label}: fabric failed to drain");
        }
        assert!(fabric.is_empty());
        for row in fabric.link_stats() {
            assert_eq!(row.queued_words, 0, "{label}: words stranded after drain");
            assert_eq!(row.queued_msgs, 0, "{label}: message stranded after drain");
        }
        // The schedules really exercised the whole mesh: some forwarding
        // link (not just inject/recv endpoints) carried words.
        assert!(
            fabric
                .link_stats()
                .iter()
                .any(|r| matches!(r.kind, tamsim_net::BufKind::Link(_)) && r.words_out > 0),
            "{label}: no mesh link carried traffic"
        );
    }
}

#[test]
fn all_to_one_hotspot_drains() {
    // Every node hammers node 0 — the worst contention pattern; FIFO and
    // conservation must still hold.
    let topo = MeshTopology::for_nodes(8);
    let mut rng = Rng(99);
    let sent: Vec<Sent> = (0..300)
        .map(|seq| {
            let src = rng.below(topo.nodes() as u64) as u32;
            let words = payload(&mut rng, src, 0, seq as u64);
            Sent {
                src,
                dst: 0,
                seq: seq as u64,
                words,
            }
        })
        .collect();
    let cfg = NetConfig {
        link_capacity: 12,
        inject_capacity: 12,
        recv_capacity: 12,
        ..NetConfig::default()
    };
    let mut fabric = Fabric::new(topo, cfg);
    let delivered = drive(&mut fabric, sent);
    assert_eq!(delivered[0].len(), 300);
    assert!(delivered[1..].iter().all(|d| d.is_empty()));
    assert!(
        fabric.stats().inject_stalls > 0,
        "hotspot never back-pressured"
    );
}
