//! # tamsim-net
//!
//! The multi-node extension of the simulator: `K` MDP nodes — each with
//! its own memory, queues, and caches — connected by a dimension-order-
//! routed 2D mesh with configurable hop latency, link bandwidth, and
//! bounded, back-pressured buffers (a full path stalls the sender's
//! `SEND`; nothing is ever dropped).
//!
//! ## Global addresses
//!
//! The single-node address space tops out at `MemoryMap::top`
//! (`0x0080_0000 = 1 << 23`), so a 32-bit word has eight spare high bits
//! below the sign bit: a *global* address is `node << 23 | local`, which
//! fits meshes up to 256 nodes. Frames and heap cells
//! allocated on node `n` carry `n`'s tag; the tag rides through ALU
//! arithmetic untouched (addresses are ordinary integers to the program)
//! and is masked off by the machine's `addr_mask` when a register-based
//! load or store reaches local memory. The network interface routes every
//! runtime message by the tag of its locus word — see [`port::NodePort`] —
//! so split-phase calls, I-structure requests, frame frees, and replies
//! all become genuine cross-node messages exactly when their locus lives
//! elsewhere.
//!
//! ## The anchor invariant
//!
//! A `1×1` mesh is **bit-identical** to the single-node
//! `tamsim_core::Experiment` run: same result words, same heap arrays,
//! same instruction count, same per-region access counts. With one node
//! every locus is local, so [`port::NodePort`] degenerates to
//! `tamsim_mdp::Loopback`, the `addr_mask` is the identity on every valid
//! single-node address, and `MeshExperiment`'s cycle loop replays
//! `Machine::run`'s step loop exactly. The integration tests and the fuzz
//! harness (`tamsim fuzz --mesh`) both enforce this.

pub mod driver;
pub mod fabric;
pub mod hooks;
pub mod par;
pub mod place;
pub mod port;
pub mod serve;
pub mod steal;
pub mod topology;
pub mod trace;

pub use driver::{
    ActivityTrack, MeshExperiment, MeshRecordedRun, MeshRunResult, NodeState, ThreadStats,
    WATCHDOG_CYCLES,
};
pub use fabric::{Fabric, LinkStat, Message, NetConfig, NetStats};
pub use hooks::{BufKind, NetHooks, NoNetHooks};
pub use place::{Placement, PlacementPolicy};
pub use port::NodePort;
pub use serve::{
    arrival_schedule, Arrival, ArrivalKind, OriginDist, ReqCell, RequestRecord, ServeConfig,
    ServePlan, ServeRunResult,
};
pub use steal::{ForwardEntry, ForwardState, StealEngine, MIGRATE_TAG};
pub use topology::{Dir, MeshTopology};
pub use trace::{
    HistEntry, HopRecord, LatencyHist, MsgRecord, NetTrace, NetTraceMode, NetTraceRecorder,
    OccupancySample,
};

/// Bit position of the node tag in a global address: the single-node
/// address space ends at `1 << 23` (`MemoryMap::top`), so the tag sits
/// just above it.
pub const NODE_SHIFT: u32 = 23;

/// Mask selecting the node-local part of a global address.
pub const LOCAL_MASK: u32 = (1 << NODE_SHIFT) - 1;

/// Largest supported mesh: 8 tag bits, and bit 31 must stay clear so
/// tagged addresses remain valid non-negative `i64` words.
pub const MAX_NODES: u32 = 1 << (31 - NODE_SHIFT);

/// The node-tag bits for `node`.
#[inline]
pub fn node_tag(node: u32) -> u32 {
    debug_assert!(node < MAX_NODES);
    node << NODE_SHIFT
}

/// The home node encoded in a global address (0 for untagged single-node
/// addresses).
#[inline]
pub fn node_of(addr: u32) -> u32 {
    addr >> NODE_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagging_round_trips_and_is_identity_on_node_zero() {
        for n in [0, 1, 5, 17, 100, MAX_NODES - 1] {
            let a = node_tag(n) | 0x12_3460;
            assert_eq!(node_of(a), n);
            assert_eq!(a & LOCAL_MASK, 0x12_3460);
        }
        assert_eq!(node_tag(0), 0);
        // Tagged addresses never set bit 31 (words stay non-negative).
        assert!(node_tag(MAX_NODES - 1) | LOCAL_MASK <= i32::MAX as u32);
    }

    #[test]
    fn node_shift_matches_the_memory_map() {
        assert_eq!(tamsim_trace::MemoryMap::default().top, 1 << NODE_SHIFT);
    }

    #[test]
    fn at_least_256_nodes_fit() {
        assert_eq!(NODE_SHIFT, 23);
        assert_eq!(MAX_NODES, 256);
    }

    #[test]
    fn boundary_addresses_at_the_shift_edges() {
        // The top local address carries no tag; one past it is node 1's
        // address zero. Same check at the pre-widening shift position
        // (bit 27): that bit is now an ordinary node-tag bit, so an
        // address with it set belongs to node 16, not node 1.
        assert_eq!(node_of(LOCAL_MASK), 0);
        assert_eq!(node_of(1 << NODE_SHIFT), 1);
        assert_eq!(node_of(1 << 27), 16);
        assert_eq!((1u32 << 27) & LOCAL_MASK, 0);
        // Highest tagged address overall: node 255, top local word.
        let top = node_tag(MAX_NODES - 1) | LOCAL_MASK;
        assert_eq!(top, i32::MAX as u32);
        assert_eq!(node_of(top), MAX_NODES - 1);
    }

    #[test]
    fn local_mask_is_identity_on_untagged_addresses() {
        let map = tamsim_trace::MemoryMap::default();
        for addr in [
            0,
            map.user_code_base,
            map.system_data_base,
            map.frame_base,
            map.heap_base,
            map.top - 4,
        ] {
            assert_eq!(addr & LOCAL_MASK, addr);
            assert_eq!(node_of(addr), 0);
        }
    }
}
