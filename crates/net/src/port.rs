//! The per-node network interface: decides where each `SEND` goes.
//!
//! Every runtime message is `[handler, locus, ...]` (see
//! `tamsim_core::NetInfo`): the second word is a frame or heap-cell
//! address whose node-tag bits name the home node. Two handlers get
//! special treatment:
//!
//! * **`falloc`** — the locus is a codeblock id, not an address; the
//!   destination is chosen by the frame-[`Placement`] policy. The chosen
//!   node allocates the frame from *its own* arena, so the frame's
//!   address carries that node's tag and every later message about it
//!   routes home by the uniform rule.
//! * **`ffree`** — routed by the frame's tag like everything else, but
//!   also reported to the placement census so locality-aware placement
//!   sees frees.
//!
//! Words that cannot be an address (fuzzed programs can send anything)
//! fall back to local delivery: a lone node must behave exactly like a
//! single-node machine, and garbage never escapes the sender.

use crate::fabric::Fabric;
use crate::hooks::{NetHooks, NoNetHooks};
use crate::node_of;
use crate::place::Placement;
use crate::serve::ServeTap;
use crate::steal::StealView;
use tamsim_core::NetInfo;
use tamsim_mdp::{NetPort, Priority, RouteOutcome, Word};

/// One node's view of the fabric, constructed fresh for each
/// [`tamsim_mdp::Machine::step`] call (it borrows the shared fabric and
/// placement state mutably). Generic over the net observation hooks so a
/// traced port sees injections, refused injections, and — crucial for
/// dispatch attribution — local enqueues that bypass the fabric.
pub struct NodePort<'a, H: NetHooks = NoNetHooks> {
    /// This node's id.
    pub node: u32,
    /// Link-time routing facts.
    pub info: NetInfo,
    /// The shared interconnect.
    pub fabric: &'a mut Fabric,
    /// The shared frame-placement state.
    pub placement: &'a mut Placement,
    /// Net observation hooks ([`NoNetHooks`] on un-traced runs).
    pub hooks: &'a mut H,
    /// Serve-mode completion tap (`None` on batch runs): done replies
    /// are ejected off-mesh to the external client instead of routed.
    pub serve: Option<ServeTap<'a>>,
    /// Work-stealing forwarding directory (`None` unless the run uses
    /// `--policy steal`): loci of migrated frames are rewritten to the
    /// frame's current home at route time.
    pub steal: Option<StealView<'a>>,
}

impl<H: NetHooks> NodePort<'_, H> {
    /// The destination node of `words`, or `None` when the message must
    /// stay local (malformed locus — only fuzzers produce these).
    fn destination(&self, words: &[Word]) -> Option<u32> {
        if words.len() < 2 {
            return None;
        }
        if words[0].bits() == self.info.falloc_addr as u64 {
            return Some(self.placement.peek(self.node));
        }
        let locus = words[1].bits();
        if locus > u32::MAX as u64 {
            return None;
        }
        let node = node_of(locus as u32);
        (node < self.fabric.nodes()).then_some(node)
    }
}

impl<H: NetHooks> NetPort for NodePort<'_, H> {
    fn route(&mut self, pri: Priority, words: &[Word]) -> RouteOutcome {
        // Serve mode: a done reply is a request completion addressed to
        // the external client — record it and report it sent. This comes
        // before every routing rule (even a reply whose origin is the
        // sending node itself leaves the mesh, not the local queue).
        if let Some(tap) = self.serve.as_mut() {
            if tap.intercept(words) {
                return RouteOutcome::Injected;
            }
        }
        // Work stealing: rewrite the locus of a message addressed to a
        // migrated frame so it flies straight to the frame's current
        // home. `falloc` is exempt (its second word is a codeblock id,
        // not an address). A *Pending* entry — migration still in
        // flight — is chased only when this node is the entry's home:
        // from here the rewritten message shares the migration's own
        // fabric path, and FIFO links guarantee it lands second; from
        // anywhere else it routes to the home node unchanged and is
        // forwarded on arrival, behind the same ordering fence.
        let mut rewritten: Option<Vec<Word>> = None;
        if let Some(sv) = &self.steal {
            if sv.engine.has_entries()
                && words.len() >= 2
                && words[0].bits() != self.info.falloc_addr as u64
                && words[1].bits() <= u32::MAX as u64
            {
                let locus = words[1].bits() as u32;
                let mut target = sv.engine.resolve(locus);
                if let Some(e) = sv.engine.forward_of(target) {
                    // Only a Pending entry survives `resolve`; chase it
                    // from its home node (see above). While Pending, the
                    // new address cannot have been re-stolen, so one
                    // step reaches the frame.
                    if node_of(target) == self.node {
                        target = e.new;
                    }
                }
                if target != locus {
                    let mut w = words.to_vec();
                    w[1] = Word::from_addr(target);
                    rewritten = Some(w);
                }
            }
        }
        let words: &[Word] = rewritten.as_deref().unwrap_or(words);
        let dest = self.destination(words).unwrap_or(self.node);
        // A rewritten message must carry its new locus even when the
        // frame migrated *to this node*: `RouteOutcome::Local` makes the
        // machine enqueue its own (un-rewritten) copy, so a rewritten
        // self-send goes through the fabric's zero-hop path instead.
        let outcome = if dest == self.node && rewritten.is_none() {
            // The message goes straight into this node's machine queue:
            // it occupies a slot ahead of later fabric deliveries, which
            // the dispatch matcher must see.
            self.hooks.local_enqueue(self.node, pri, self.fabric.now());
            RouteOutcome::Local
        } else if self
            .fabric
            .try_inject_traced(self.node, dest, pri, words, self.hooks)
        {
            RouteOutcome::Injected
        } else {
            return RouteOutcome::Busy; // nothing committed; retried verbatim
        };
        // The message is definitely on its way: update the census.
        let handler = words[0].bits();
        if handler == self.info.falloc_addr as u64 {
            self.placement.commit(dest);
        } else if handler == self.info.ffree_addr as u64 && words.len() >= 2 {
            let frame = words[1].bits();
            if frame <= u32::MAX as u64 {
                self.placement
                    .freed(node_of(frame as u32).min(self.fabric.nodes() - 1));
                // A free of a migrated frame retires its forwarding
                // chain and reclaims the orphaned home slot — report it
                // to the driver's serial phase.
                if let Some(sv) = self.steal.as_mut() {
                    if sv.engine.frees_new(frame as u32) {
                        sv.frees.push(frame as u32);
                    }
                }
            }
        }
        outcome
    }
}
