//! The mesh experiment driver: K machines on a global cycle clock.
//!
//! Each global cycle is (1) every node executes at most one instruction —
//! a node whose `SEND` finds its network interface full burns the cycle
//! stalled; (2) the fabric moves messages one hop; (3) every node's NI
//! tries to retire one arrived message into the machine's hardware queue,
//! holding it under back-pressure when the queue is full. All iteration
//! is in fixed node order, so runs are bit-deterministic.
//!
//! With one node this degenerates to exactly `Machine::run`'s step loop
//! (the port is always-local, the fabric stays empty), which is the
//! anchor invariant the differential tests enforce.
//!
//! **Fast-forward.** By default the driver is event-driven where that is
//! invisible: whenever no machine is runnable ([`tamsim_mdp::Wake`] —
//! every node can only be woken by a delivery) it computes the **event
//! horizon**, the fabric's next move/delivery edge
//! ([`Fabric::next_horizon`]), and jumps the global clock there in one
//! step instead of ticking cycle-by-cycle. The skipped iterations are
//! provably no-ops — idle machines step to `Idle` with zero side effects,
//! and a fabric with no ready head moves nothing — so cycle counts,
//! stats, activity timelines, and access streams are bit-identical to the
//! lockstep driver ([`MeshExperiment::lockstep`] keeps the original loop
//! for the differential tests and `tamsim perf --mesh`). Whenever any
//! machine is runnable, or a ready message is merely stuck behind
//! back-pressure, the driver falls back to lockstep stepping.

use crate::fabric::{Fabric, LinkStat, NetConfig, NetStats};
use crate::hooks::{NetHooks, NoNetHooks};
use crate::place::{Placement, PlacementPolicy};
use crate::port::NodePort;
use crate::serve::{ReqCell, ServePlan, ServeState};
use crate::steal::{StealEngine, StealView};
use crate::topology::MeshTopology;
use crate::trace::{NetTrace, NetTraceMode, NetTraceRecorder};
use crate::{node_tag, LOCAL_MASK, MAX_NODES, NODE_SHIFT};
use tamsim_core::{link, Implementation, Linked, LoweringOptions};
use tamsim_mdp::{
    HaltReason, Hooks, Machine, MachineConfig, Priority, RunError, RunStats, Step, Wake, Word,
};
use tamsim_tam::Program;
use tamsim_trace::{Access, AccessCounts, CountingSink, Mark, MarkSink, TraceLog, TraceSink};

/// Default cycles without any instruction, fabric movement, or delivery
/// before the driver concludes the mesh is gridlocked on queue space and
/// restarts with bigger queues (see [`MeshExperiment::watchdog_cycles`]).
pub const WATCHDOG_CYCLES: u64 = 100_000;

/// What a node did in one global cycle (for the per-node timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Executed an instruction.
    Run,
    /// Stalled on a full network interface (blocked `SEND`).
    Stall,
    /// Nothing to do.
    Idle,
}

/// One run-length-encoded span of a node's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What the node was doing.
    pub state: NodeState,
    /// First global cycle of the span.
    pub start: u64,
    /// Span length in cycles.
    pub cycles: u64,
}

/// A node's full timeline, run-length encoded (feeds the Perfetto
/// export's one-track-per-node view).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActivityTrack {
    /// Maximal spans, in time order.
    pub spans: Vec<Span>,
}

impl ActivityTrack {
    pub(crate) fn record(&mut self, cycle: u64, state: NodeState) {
        self.record_span(cycle, state, 1);
    }

    /// Record `n` consecutive cycles of `state` starting at `cycle` —
    /// exactly what `n` single-cycle records would produce (the spans are
    /// maximal either way), so the fast-forward driver's bulk idle spans
    /// are bit-identical to lockstep's cycle-by-cycle ones.
    pub(crate) fn record_span(&mut self, cycle: u64, state: NodeState, n: u64) {
        if let Some(last) = self.spans.last_mut() {
            if last.state == state && last.start + last.cycles == cycle {
                last.cycles += n;
                return;
            }
        }
        self.spans.push(Span {
            state,
            start: cycle,
            cycles: n,
        });
    }

    /// Total cycles spent in `state`.
    pub fn cycles_in(&self, state: NodeState) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.state == state)
            .map(|s| s.cycles)
            .sum()
    }
}

/// Per-node observation hooks: region/kind access counters plus an
/// optional recorded trace for cache replay.
pub(crate) struct NodeHooks {
    pub(crate) counts: CountingSink,
    pub(crate) log: Option<TraceLog>,
}

impl Hooks for NodeHooks {
    #[inline]
    fn access(&mut self, access: Access) {
        self.counts.access(access);
        if let Some(log) = &mut self.log {
            log.access(access);
        }
    }

    #[inline]
    fn instruction(&mut self, pri: Priority, pc: u32) {
        if let Some(log) = &mut self.log {
            MarkSink::instruction(log, pri, pc);
        }
    }

    #[inline]
    fn queue_sample(&mut self, used_words: [u32; 2]) {
        if let Some(log) = &mut self.log {
            MarkSink::queue_sample(log, used_words);
        }
    }

    #[inline]
    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        if let Some(log) = &mut self.log {
            MarkSink::mark(log, mark, frame, pri);
        }
    }
}

/// Everything measured in one mesh run.
#[derive(Debug, Clone)]
pub struct MeshRunResult {
    /// Which implementation ran.
    pub implementation: Implementation,
    /// Frame-placement policy used.
    pub policy: PlacementPolicy,
    /// Node count.
    pub nodes: u32,
    /// Mesh X extent.
    pub width: u32,
    /// Mesh Y extent.
    pub height: u32,
    /// Global cycles until completion.
    pub cycles: u64,
    /// How the run ended (`Explicit` = some node executed the done
    /// handler's `HALT`; `Quiescent` = everything drained).
    pub halt: HaltReason,
    /// The words `main` returned (read from node 0).
    pub result: Vec<Word>,
    /// Final contents of the initial arrays (node 0's heap).
    pub arrays: Vec<Vec<Option<Word>>>,
    /// Instructions summed over all nodes.
    pub instructions: u64,
    /// Per-node machine counters.
    pub stats: Vec<RunStats>,
    /// Per-node region/kind access counts.
    pub counts: Vec<AccessCounts>,
    /// Per-node cycles burned on a full network interface.
    pub stall_cycles: Vec<u64>,
    /// Fabric counters.
    pub net: NetStats,
    /// Per-node deliver-stall cycles (fabric had a ready message but the
    /// destination machine's queue was full) — sums to `net.deliver_stalls`.
    pub deliver_stalls: Vec<u64>,
    /// Always-on per-buffer telemetry: one row per mesh link (edge
    /// buffers excluded), inject queue, and recv queue.
    pub link_stats: Vec<LinkStat>,
    /// Causal message trace when the run was [`MeshExperiment::traced`];
    /// `None` otherwise. Deliberately excluded from the bit-identity
    /// differentials — tracing must never perturb the run itself.
    pub net_trace: Option<NetTrace>,
    /// Queue capacities the run used (auto-doubled on overflow or
    /// gridlock, like the single-node driver).
    pub queue_words: [u32; 2],
    /// Per-node run-length timelines.
    pub activity: Vec<ActivityTrack>,
    /// Per-node live-frame census at the end of the run.
    pub live_frames: Vec<u64>,
    /// Frames migrated *off* each node by work stealing (all zero under
    /// the static policies); sums to the run's total steal count.
    pub steals: Vec<u64>,
    /// Gridlock-watchdog trips over the whole run (each one doubled every
    /// queue and restarted the attempt).
    pub watchdog_trips: u32,
    /// Times the quiescence-time backstop re-armed an AM scheduler that
    /// suspended with posted frames (the arrival/suspend race), summed
    /// over all attempts.
    pub backstop_rearms: u64,
    /// Per-node recorded access traces (when recording was requested);
    /// replay each into its own `CacheBank` for per-node locality.
    pub logs: Option<Vec<TraceLog>>,
    /// Per-worker counters when the parallel driver ran (`None` on the
    /// serial drivers). Everything here is a deterministic function of
    /// the program and the `(nodes, threads)` partition — node ranges and
    /// work counts, never wall-clock — so two runs at the same thread
    /// count produce identical values. Deliberately excluded from the
    /// cross-driver bit-identity differentials (thread counts differ).
    pub thread_stats: Option<Vec<ThreadStats>>,
}

/// One parallel-driver worker's deterministic utilization counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadStats {
    /// First node of this worker's contiguous partition.
    pub first_node: u32,
    /// Number of nodes in the partition.
    pub nodes: u32,
    /// Instructions executed by this worker's nodes (including cycles the
    /// driver ran serially for halt-exactness, attributed to the owner).
    pub steps: u64,
    /// Messages this worker's nodes retired from the fabric.
    pub deliveries: u64,
}

impl MeshRunResult {
    /// Total NI-stall cycles across nodes.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }
}

/// A mesh run plus its per-node access traces
/// (see [`MeshExperiment::run_recorded`]).
#[derive(Debug, Clone)]
pub struct MeshRecordedRun {
    /// The run itself (`logs` moved out).
    pub run: MeshRunResult,
    /// One recorded trace per node, in node order.
    pub logs: Vec<TraceLog>,
}

impl MeshRecordedRun {
    /// Total recorded access events across all nodes.
    pub fn events(&self) -> u64 {
        self.logs.iter().map(|l| l.len() as u64).sum()
    }
}

/// High-level mesh driver: one implementation + placement policy + fabric
/// configuration, reusable across programs (the mesh analogue of
/// `tamsim_core::Experiment`).
#[derive(Debug, Clone, Copy)]
pub struct MeshExperiment {
    /// The back-end to lower to.
    pub implementation: Implementation,
    /// Lowering optimization switches.
    pub opts: LoweringOptions,
    /// Instruction budget per node.
    pub fuel: u64,
    /// Initial queue capacities (words); doubled automatically on
    /// overflow or gridlock.
    pub queue_words: [u32; 2],
    /// Node count (factored into a near-square mesh).
    pub nodes: u32,
    /// Fabric timing and buffering.
    pub net: NetConfig,
    /// Frame-placement policy.
    pub placement: PlacementPolicy,
    /// Record per-node access traces for cache replay.
    pub record: bool,
    /// Event-horizon fast-forwarding (on by default; results are
    /// bit-identical either way). [`MeshExperiment::lockstep`] disables it
    /// for differential tests and driver benchmarking.
    pub fast_forward: bool,
    /// Cycles without any instruction, fabric movement, or delivery
    /// before the gridlock watchdog doubles the queues and restarts
    /// (default [`WATCHDOG_CYCLES`]; tests lower it to trip quickly).
    pub watchdog_cycles: u64,
    /// Causal network tracing (default [`NetTraceMode::Off`]: the run
    /// loop monomorphizes over [`NoNetHooks`] and pays nothing).
    pub net_trace: NetTraceMode,
    /// Host worker threads for the parallel driver (default 1: serial).
    /// With more than one thread (and more than one node, untraced), the
    /// run fans machine stepping and message retirement out across a
    /// fixed pool between deterministic epoch barriers — results stay
    /// bit-identical to the serial drivers (see `par.rs`).
    pub threads: u32,
}

impl MeshExperiment {
    /// A mesh experiment with the single-node driver's defaults.
    ///
    /// # Panics
    /// Panics when `nodes` is zero or exceeds [`MAX_NODES`].
    pub fn new(implementation: Implementation, nodes: u32) -> Self {
        assert!(
            (1..=MAX_NODES).contains(&nodes),
            "node count must be in 1..={MAX_NODES}"
        );
        MeshExperiment {
            implementation,
            opts: LoweringOptions::default(),
            fuel: 2_000_000_000,
            queue_words: [1024, 1024],
            nodes,
            net: NetConfig::default(),
            placement: PlacementPolicy::default(),
            record: false,
            fast_forward: true,
            watchdog_cycles: WATCHDOG_CYCLES,
            net_trace: NetTraceMode::Off,
            threads: 1,
        }
    }

    /// Set the host worker-thread count for the parallel driver. Values
    /// above the node count are clamped; 0 or 1 selects the serial
    /// drivers. Results are bit-identical at every thread count.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Override the lowering options.
    pub fn with_opts(mut self, opts: LoweringOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Override the fabric configuration.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Override the frame-placement policy.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Enable per-node trace recording.
    pub fn recorded(mut self) -> Self {
        self.record = true;
        self
    }

    /// Enable causal network tracing: the result's
    /// [`MeshRunResult::net_trace`] carries per-message lifecycle records
    /// and latency histograms. The traced loop is a separate
    /// monomorphization, and the fuzz cross-check pins its results
    /// bit-identical to the untraced one.
    pub fn traced(mut self, mode: NetTraceMode) -> Self {
        self.net_trace = mode;
        self
    }

    /// Disable event-horizon fast-forwarding: tick every global cycle the
    /// way PR 4's driver did. Results are bit-identical to the default
    /// fast-forward driver — this exists so the differential tests and
    /// `tamsim perf --mesh` have the original loop to compare against.
    pub fn lockstep(mut self) -> Self {
        self.fast_forward = false;
        self
    }

    pub(crate) fn config(&self, queue_words: [u32; 2]) -> MachineConfig {
        MachineConfig {
            queue_words,
            fuel: self.fuel,
            // Identity on every valid single-node address (all are below
            // `map.top = 1 << NODE_SHIFT`), so node 0 of a 1×1 mesh is
            // bit-identical to an unmasked machine.
            addr_mask: LOCAL_MASK,
            ..MachineConfig::default()
        }
    }

    /// Double every queue after a gridlock-watchdog trip. Remote
    /// deliveries never overflow (they hold), so more queue space
    /// everywhere is the only cure; a program whose demand outgrows the
    /// system data region is diagnosed as gridlocked rather than left to
    /// trip the machine's layout assert at the next boot.
    pub(crate) fn double_queues_for_gridlock(&self, queue_words: &mut [u32; 2]) {
        for w in queue_words.iter_mut() {
            *w *= 2;
        }
        assert!(
            self.config(*queue_words).queues_fit(),
            "queue demand implausibly large; gridlocked program?"
        );
    }

    /// Run `program` on the mesh to completion.
    ///
    /// With [`MeshExperiment::threads`] > 1 (and more than one node,
    /// untraced) this uses the parallel driver; traced, single-node, and
    /// single-thread runs use the serial loop. All paths are bit-identical.
    pub fn run(&self, program: &Program) -> MeshRunResult {
        match self.net_trace {
            NetTraceMode::Off if self.threads > 1 && self.nodes > 1 => self.run_parallel(program),
            NetTraceMode::Off => self.run_with(program, &mut NoNetHooks),
            mode => {
                let mut rec = NetTraceRecorder::new(mode, self.nodes);
                let mut run = self.run_with(program, &mut rec);
                run.net_trace = Some(rec.finish());
                run
            }
        }
    }

    /// The run loop, monomorphized over the net observation hooks: with
    /// [`NoNetHooks`] (`H::ENABLED == false`) every hook call and every
    /// dispatch-detection snapshot compiles away, so the untraced driver
    /// is exactly the pre-tracing one.
    fn run_with<H: NetHooks>(&self, program: &Program, net_hooks: &mut H) -> MeshRunResult {
        self.run_serve_with(program, net_hooks, None).0
    }

    /// The serial run loop, optionally in serve mode: with a
    /// [`ServePlan`] the batch boot is suppressed and the arrival pump
    /// injects scheduled requests instead (see `serve.rs`); the second
    /// return value carries the per-request cells.
    pub(crate) fn run_serve_with<H: NetHooks>(
        &self,
        program: &Program,
        net_hooks: &mut H,
        plan: Option<&ServePlan>,
    ) -> (MeshRunResult, Option<Vec<ReqCell>>) {
        let topo = MeshTopology::for_nodes(self.nodes);
        let k = self.nodes as usize;
        let mut queue_words = self.queue_words;
        let mut watchdog_trips: u32 = 0;
        let mut backstop_rearms: u64 = 0;

        'attempt: loop {
            // Queue-doubling restarts replay the whole run; drop any
            // partial trace so the recorder only describes the attempt
            // that completed.
            net_hooks.reset(self.nodes);
            let linked = link(
                program,
                self.implementation,
                self.opts,
                self.config(queue_words),
            );
            assert_eq!(
                linked.cfg.map.top,
                1 << NODE_SHIFT,
                "node tag would collide with the local address space"
            );
            let mut machines = self.boot_nodes(&linked, plan.is_none());
            let mut serve = plan.map(|p| ServeState::new(p, &linked, k));
            if H::ENABLED && plan.is_none() {
                // The boot message goes straight onto node 0's high queue
                // without touching the fabric; the dispatch matcher needs
                // to see it occupy the slot ahead of later deliveries.
                net_hooks.local_enqueue(0, Priority::High, 0);
            }
            let mut hooks: Vec<NodeHooks> = (0..k)
                .map(|_| NodeHooks {
                    counts: CountingSink::new(linked.cfg.map),
                    log: self.record.then(TraceLog::new),
                })
                .collect();
            let mut fabric = Fabric::new(topo, self.net);
            let mut placement = Placement::new(self.placement, self.nodes);
            if plan.is_none() {
                // The boot message allocates main's frame on node 0.
                placement.commit(0);
            }
            // Work stealing needs a software frame queue to steal from
            // (AM only — MD's task queue is the hardware queue) and a
            // second node to steal to; otherwise the policy degenerates
            // to locality with zero steals and no directory overhead.
            let mut steal = (self.placement == PlacementPolicy::WorkStealing
                && self.implementation.is_am()
                && self.nodes > 1)
                .then(|| StealEngine::new(&linked, topo, self.net.inject_capacity));
            let mut steal_installed: Vec<u32> = Vec::new();
            let mut steal_freed: Vec<u32> = Vec::new();

            let mut cycle: u64 = 0;
            let mut last_progress: u64 = 0;
            let mut prev_moves: u64 = 0;
            let mut stall_cycles = vec![0u64; k];
            let mut activity = vec![ActivityTrack::default(); k];
            let mut halted_node: Option<usize> = None;

            let halt = loop {
                // Serve mode: the arrival pump runs at the top of every
                // global cycle, before the wake scan — a machine whose
                // queue just accepted a request is runnable this cycle.
                if let Some(sv) = serve.as_mut() {
                    sv.pump(
                        cycle,
                        &mut machines,
                        &mut hooks,
                        &mut placement,
                        &mut *net_hooks,
                        linked.start_low,
                        self.implementation.is_am(),
                    );
                }

                // One wake scan serves both the quiescence check and the
                // fast-forward decision (`Wake::OnDelivery` is exactly
                // "idle"); the lockstep path keeps PR 4's order — fabric
                // occupancy scan first — so its cost profile is untouched.
                let all_waiting = if self.fast_forward {
                    machines.iter().all(|m| m.next_wake() == Wake::OnDelivery)
                } else {
                    fabric.is_empty() && machines.iter().all(Machine::is_idle)
                };
                let fabric_empty = all_waiting && (!self.fast_forward || fabric.msg_count() == 0);
                if fabric_empty {
                    // Backstop for the arrival/suspend race: a message can
                    // land between the AM scheduler's final frame-queue
                    // check and its suspend, leaving posted frames with no
                    // scheduler. Re-arm any such node instead of wrongly
                    // quiescing. (Never fires at K = 1: the fabric is
                    // unused, and the single-node scheduler's
                    // check-enable-recheck sequence makes the race
                    // impossible without deliveries — which also keeps
                    // the 1×1 run bit-identical.)
                    let mut rearmed = false;
                    if self.nodes > 1 && self.implementation.is_am() {
                        for m in &mut machines {
                            if m.mem.read(linked.net.q_head).bits() != 0 {
                                m.start_low(linked.start_low);
                                rearmed = true;
                                backstop_rearms += 1;
                            }
                        }
                    }
                    if !rearmed {
                        match serve.as_ref() {
                            Some(sv) if !sv.drained() => {
                                // The mesh drained but the schedule did
                                // not: requests are still to come. (An
                                // injected-but-uncompleted request keeps
                                // some queue non-empty, so reaching here
                                // means the cursor is mid-schedule.)
                                // Neither driver lets the watchdog trip
                                // on an arrival gap.
                                let target = sv
                                    .next_arrival_cycle()
                                    .expect("idle serve run with requests unaccounted for");
                                debug_assert!(target > cycle);
                                if self.fast_forward {
                                    let delta = target - cycle;
                                    for a in &mut activity {
                                        a.record_span(cycle, NodeState::Idle, delta);
                                    }
                                    fabric.skip_to(target);
                                    cycle = target;
                                    last_progress = target;
                                    continue;
                                }
                                last_progress = cycle;
                            }
                            _ => break HaltReason::Quiescent,
                        }
                    }
                }

                // Event-horizon fast-forward: when no machine is runnable
                // the only possible events are the fabric's, and its next
                // move/delivery edge is already scheduled. Jump straight
                // there; every skipped iteration would have stepped K idle
                // machines to `Idle` and ticked a fabric with no ready
                // head — pure no-ops. Falls back to lockstep whenever any
                // machine is runnable or a ready head is stuck behind
                // back-pressure (`next_horizon` returns `None`).
                // (`!fabric_empty` also skips the jump after a backstop
                // re-arm, whose `start_low` made `all_waiting` stale.)
                if self.fast_forward && all_waiting && !fabric_empty {
                    if let Some(horizon) = fabric.next_horizon() {
                        debug_assert!(horizon > cycle);
                        // Serve mode clamps the jump to the next arrival:
                        // a request landing before the fabric's next edge
                        // wakes its origin machine, exactly as lockstep
                        // would see it.
                        let target = serve
                            .as_ref()
                            .and_then(|s| s.next_arrival_cycle())
                            .map_or(horizon, |a| horizon.min(a.max(cycle + 1)));
                        // The skipped stretch makes no progress; if the
                        // lockstep watchdog would have tripped inside it
                        // (after the iteration at `last_progress +
                        // watchdog_cycles`), trip identically.
                        if target > last_progress + self.watchdog_cycles {
                            watchdog_trips += 1;
                            self.double_queues_for_gridlock(&mut queue_words);
                            continue 'attempt;
                        }
                        let delta = target - cycle;
                        for a in &mut activity {
                            a.record_span(cycle, NodeState::Idle, delta);
                        }
                        fabric.skip_to(target);
                        cycle = target;
                        // Arrivals due exactly at `target` inject now —
                        // the loop-top pump this jump skipped over. (No
                        // arrival exists strictly between the old cycle
                        // and `target`, so the stretch stays a no-op.)
                        if let Some(sv) = serve.as_mut() {
                            sv.pump(
                                cycle,
                                &mut machines,
                                &mut hooks,
                                &mut placement,
                                &mut *net_hooks,
                                linked.start_low,
                                self.implementation.is_am(),
                            );
                        }
                    }
                }

                // Work stealing runs entirely in this serial window:
                // first settle the previous cycle's bookkeeping
                // (activate installed frames, retire freed ones, reclaim
                // orphaned home slots), then scan for new steals. The
                // scan is gated on a runnable machine — a node with
                // stealable backlog always has a live scheduler context
                // — so every iteration a fast-forward jump skips is
                // provably a steal no-op too, keeping the two serial
                // drivers bit-identical.
                if let Some(eng) = steal.as_mut() {
                    eng.settle(&steal_installed, &steal_freed, &mut machines);
                    steal_installed.clear();
                    steal_freed.clear();
                    if machines.iter().any(|m| m.next_wake() == Wake::Now) {
                        eng.scan(&mut machines, &mut fabric, &mut placement, &mut *net_hooks);
                    }
                }

                // (1) Every node executes at most one instruction.
                let mut progress = false;
                for n in 0..k {
                    if self.fast_forward && machines[n].is_idle() {
                        // An idle machine's step is a guaranteed no-op
                        // (no hooks, no state change), and nothing in
                        // this phase can wake it — deliveries happen in
                        // phase (3) — so skip the call.
                        activity[n].record(cycle, NodeState::Idle);
                        continue;
                    }
                    // Dispatch is a free transition inside the machine, so
                    // the driver attributes it by counter delta: whatever
                    // the step dispatched came from the head of that
                    // priority's queue, which the trace recorder mirrors.
                    let before = if H::ENABLED {
                        machines[n].dispatch_counts()
                    } else {
                        [0, 0]
                    };
                    let stepped = {
                        let mut port = NodePort {
                            node: n as u32,
                            info: linked.net,
                            fabric: &mut fabric,
                            placement: &mut placement,
                            hooks: &mut *net_hooks,
                            serve: serve.as_mut().map(|s| s.tap(cycle)),
                            steal: steal.as_ref().map(|engine| StealView {
                                engine,
                                frees: &mut steal_freed,
                            }),
                        };
                        machines[n].step(&mut hooks[n], &mut port)
                    };
                    if H::ENABLED {
                        let after = machines[n].dispatch_counts();
                        for pri in [Priority::Low, Priority::High] {
                            let i = pri.index();
                            for _ in before[i]..after[i] {
                                net_hooks.dispatch(n as u32, pri, cycle);
                            }
                        }
                    }
                    match stepped {
                        Ok(Step::Ran) => {
                            progress = true;
                            activity[n].record(cycle, NodeState::Run);
                        }
                        Ok(Step::Idle) => activity[n].record(cycle, NodeState::Idle),
                        Ok(Step::Blocked) => {
                            stall_cycles[n] += 1;
                            activity[n].record(cycle, NodeState::Stall);
                        }
                        Ok(Step::Halted(_)) => {
                            activity[n].record(cycle, NodeState::Run);
                            halted_node = Some(n);
                            cycle += 1;
                            // The done handler ran: the answer is in node
                            // 0's result words; stop the whole mesh.
                            break;
                        }
                        Err(RunError::QueueOverflow { pri }) => {
                            let i = pri.index();
                            assert!(
                                queue_words[i] < 1 << 22,
                                "queue demand implausibly large; runaway program?"
                            );
                            queue_words[i] *= 2;
                            continue 'attempt;
                        }
                        Err(e) => panic!(
                            "program {} failed on node {n} under {:?}: {e}",
                            program.name, self.implementation
                        ),
                    }
                }
                if halted_node.is_some() {
                    break HaltReason::Explicit;
                }

                // (2) The fabric moves messages one hop. On an empty
                // fabric a tick only advances the clock; the fast path
                // skips the buffer scan (and the delivery scan below).
                if self.fast_forward && fabric.msg_count() == 0 {
                    fabric.skip_to(cycle + 1);
                    cycle += 1;
                    if progress {
                        last_progress = cycle;
                    } else if cycle - last_progress > self.watchdog_cycles {
                        // Unreachable in practice (an empty fabric with a
                        // runnable machine always progresses or overflows
                        // first), but keep the lockstep watchdog exact.
                        watchdog_trips += 1;
                        self.double_queues_for_gridlock(&mut queue_words);
                        continue 'attempt;
                    }
                    continue;
                }
                fabric.tick_traced(&mut *net_hooks);

                // (3) Each NI retires at most one arrived message.
                for n in 0..k {
                    // Work stealing intercepts two message shapes before
                    // ordinary delivery: a migration installs its frame
                    // into this node, and a message addressed to a
                    // frame that migrated *away* is forwarded to the
                    // frame's new home (FIFO links put the migration
                    // itself ahead of it on the same path, so a forward
                    // can never outrun the install).
                    if let Some(eng) = steal.as_ref() {
                        if let Some(head) = fabric.ready_recv(n as u32) {
                            if StealEngine::is_migration(&head.words) {
                                let words = head.words.clone();
                                let old = words[2].bits() as u32;
                                if eng.try_install(&mut machines[n], &words, linked.start_low) {
                                    fabric.pop_recv_traced(n as u32, &mut *net_hooks);
                                    progress = true;
                                    steal_installed.push(old);
                                } else {
                                    // Target mid-system-code: hold the
                                    // install under back-pressure.
                                    fabric.note_deliver_stall_traced(n as u32, &mut *net_hooks);
                                }
                                continue;
                            }
                            if eng.has_entries()
                                && head.words.len() >= 2
                                && head.words[1].bits() <= u32::MAX as u64
                            {
                                if let Some(e) = eng.forward_of(head.words[1].bits() as u32) {
                                    let mut words = head.words.clone();
                                    words[1] = Word::from_addr(e.new);
                                    let pri = head.pri;
                                    let is_free = words[0].bits() == linked.net.ffree_addr as u64;
                                    let dest = crate::node_of(e.new);
                                    if fabric.try_inject_traced(
                                        n as u32,
                                        dest,
                                        pri,
                                        &words,
                                        &mut *net_hooks,
                                    ) {
                                        if is_free && eng.frees_new(e.new) {
                                            steal_freed.push(e.new);
                                        }
                                        fabric.pop_recv_traced(n as u32, &mut *net_hooks);
                                        progress = true;
                                    } else {
                                        // Inject queue full: the forward
                                        // waits its turn next cycle.
                                        fabric.note_deliver_stall_traced(n as u32, &mut *net_hooks);
                                    }
                                    continue;
                                }
                            }
                        }
                    }
                    let delivered = match fabric.ready_recv(n as u32) {
                        Some(msg) => machines[n].try_deliver(msg.pri, &msg.words, &mut hooks[n]),
                        None => continue,
                    };
                    if delivered {
                        fabric.pop_recv_traced(n as u32, &mut *net_hooks);
                        progress = true;
                        // AM's background scheduler suspends for good once
                        // its frame queue drains — on a single node that
                        // is provably terminal, but here the delivered
                        // message may post fresh frames. Message arrival
                        // re-arms a suspended scheduler at its entry
                        // point; if it finds nothing it just re-suspends.
                        // (MD needs no re-arm: its task queue is the
                        // hardware queue, and dispatch wakes it.)
                        if self.implementation.is_am() && machines[n].low_suspended() {
                            machines[n].start_low(linked.start_low);
                        }
                    } else {
                        fabric.note_deliver_stall_traced(n as u32, &mut *net_hooks);
                    }
                }

                cycle += 1;
                if progress || fabric.moves() != prev_moves {
                    prev_moves = fabric.moves();
                    last_progress = cycle;
                } else if cycle - last_progress > self.watchdog_cycles {
                    // Gridlock: every queue full, nothing moving.
                    watchdog_trips += 1;
                    self.double_queues_for_gridlock(&mut queue_words);
                    continue 'attempt;
                }
            };

            let stats: Vec<RunStats> = machines
                .iter()
                .enumerate()
                .map(|(n, m)| {
                    m.stats(if halted_node == Some(n) {
                        halt
                    } else {
                        HaltReason::Quiescent
                    })
                })
                .collect();
            let run = MeshRunResult {
                implementation: self.implementation,
                policy: self.placement,
                nodes: self.nodes,
                width: topo.width,
                height: topo.height,
                cycles: cycle,
                halt,
                result: linked.read_result(&machines[0]),
                arrays: linked.read_arrays(&machines[0]),
                instructions: stats.iter().map(|s| s.instructions).sum(),
                stats,
                counts: hooks.iter().map(|h| h.counts.counts).collect(),
                stall_cycles,
                net: fabric.stats(),
                deliver_stalls: fabric.deliver_stalls_by_node().to_vec(),
                link_stats: fabric.link_stats(),
                net_trace: None,
                queue_words,
                activity,
                live_frames: placement.live().to_vec(),
                steals: steal
                    .as_ref()
                    .map_or_else(|| vec![0; k], |e| e.steals_from.clone()),
                watchdog_trips,
                backstop_rearms,
                logs: self
                    .record
                    .then(|| hooks.into_iter().map(|h| h.log.unwrap()).collect()),
                thread_stats: None,
            };
            return (run, serve.map(|s| s.cells));
        }
    }

    /// Run `program` with per-node trace recording, whatever
    /// [`MeshExperiment::record`] says, and hand the logs back separately
    /// — the mesh analogue of `tamsim_core::Experiment::run_recorded`.
    ///
    /// One machine-run per configuration is all a cache sweep needs:
    /// replay each node's log into `tamsim_cache::CacheBank` banks across
    /// every geometry. Recording rides the same attempt loop as
    /// [`MeshExperiment::run`] (queue auto-sizing restarts rebuild the
    /// logs), so the returned run is bit-identical to an unrecorded one.
    pub fn run_recorded(&self, program: &Program) -> MeshRecordedRun {
        let mut run = self.recorded().run(program);
        let logs = run.logs.take().expect("recording was requested");
        MeshRecordedRun { run, logs }
    }

    /// Build and seed one machine per node.
    ///
    /// Every node gets the same code image, descriptors, and boot of its
    /// low-priority scheduler context. Node 0 additionally gets the
    /// seeded heap arrays and — unless a serve plan suppresses it
    /// (`inject_boot == false`; requests boot `main` instead) — the boot
    /// message; nodes `n > 0` skip the arrays (they live on node 0) and
    /// point their frame/heap bump allocators at *tagged* addresses, so
    /// every frame or heap cell they hand out carries its home-node tag.
    pub(crate) fn boot_nodes<'c>(&self, linked: &'c Linked, inject_boot: bool) -> Vec<Machine<'c>> {
        (0..self.nodes)
            .map(|n| {
                let mut machine = Machine::new(linked.cfg, &linked.code);
                if let Some(dec) = &linked.decoded {
                    machine.attach_decoded(dec);
                }
                for &(addr, w) in &linked.seed {
                    if n > 0 && addr >= linked.cfg.map.heap_base {
                        continue; // initial arrays live on node 0
                    }
                    machine.mem.write(addr, w);
                }
                if n > 0 {
                    let tag = node_tag(n);
                    machine.mem.write(
                        linked.net.frame_bump,
                        Word::from_addr(tag | linked.cfg.map.frame_base),
                    );
                    machine.mem.write(
                        linked.net.heap_bump,
                        Word::from_addr(tag | linked.net.heap_bump_init),
                    );
                }
                machine.start_low(linked.start_low);
                if n == 0 && inject_boot {
                    machine
                        .inject(Priority::High, &linked.boot)
                        .expect("boot message exceeds queue capacity");
                }
                machine
            })
            .collect()
    }
}
