//! The mesh fabric: bounded link buffers, store-and-forward movement,
//! and network-interface inject/receive queues.
//!
//! Every buffer is bounded in *words* and nothing is ever dropped: a full
//! buffer simply refuses the transfer and the message waits where it is.
//! Back-pressure therefore propagates hop by hop from a congested
//! destination all the way to the sending node's inject queue, whose
//! refusal surfaces as [`tamsim_mdp::RouteOutcome::Busy`] — the sender's
//! `SEND` instruction stalls (see `Machine::step`).
//!
//! Timing model, per transfer of an `L`-word message over a link with
//! bandwidth `B` words/cycle and hop latency `H`:
//! the head arrives `H + ⌈L/B⌉ - 1` cycles later, and the link cannot
//! accept its next message for `⌈L/B⌉` cycles (serialization). All
//! movement is evaluated in a fixed order (node index, then input port
//! order, then the inject queue), so runs are bit-deterministic.

use crate::hooks::{BufKind, NetHooks, NoNetHooks};
use crate::topology::{Dir, MeshTopology};
use std::collections::VecDeque;
use tamsim_mdp::{Priority, Word};

/// Fabric timing and buffering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Router/wire traversal cycles per hop.
    pub hop_latency: u32,
    /// Link bandwidth in words per cycle (serialization divisor).
    pub link_bandwidth: u32,
    /// Per-link input buffer capacity in words.
    pub link_capacity: u32,
    /// NI inject-queue capacity in words (processor side).
    pub inject_capacity: u32,
    /// NI receive-queue capacity in words (ejection side).
    pub recv_capacity: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            hop_latency: 2,
            link_bandwidth: 1,
            link_capacity: 64,
            inject_capacity: 64,
            recv_capacity: 64,
        }
    }
}

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Injecting node.
    pub src: u32,
    /// Destination node.
    pub dest: u32,
    /// Queue priority at the destination.
    pub pri: Priority,
    /// The message words (header included).
    pub words: Vec<Word>,
    /// Link traversals so far.
    pub hops: u32,
    /// Fabric cycle at injection.
    pub injected_at: u64,
    /// Monotonic trace id (injection order), for causal tracing.
    pub trace_id: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    msg: Message,
    /// Cycle at which the head is available to move (or be delivered).
    ready_at: u64,
}

/// Always-on per-buffer telemetry: cheap counters bumped on the push,
/// pop, and blocked-head edges the buffer already handles, surfaced as
/// one [`LinkStat`] row per buffer ([`Fabric::link_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Telemetry {
    /// Messages accepted, by priority.
    msgs_in: [u64; 2],
    /// Words accepted, by priority.
    words_in: [u64; 2],
    /// Messages drained.
    msgs_out: u64,
    /// Words drained.
    words_out: u64,
    /// Cycles spent serializing accepted messages (link busy time).
    busy_cycles: u64,
    /// Occupancy high-water mark in words.
    high_water: u32,
    /// Cycles a ready head sat blocked because the next buffer (or the
    /// machine queue, for receive buffers) had no room.
    stall_cycles: u64,
}

/// One bounded FIFO buffer (link input, inject, or receive).
#[derive(Debug, Clone)]
struct Buffer {
    q: VecDeque<InFlight>,
    used_words: u32,
    cap_words: u32,
    /// Serialization: the cycle at which the buffer can accept again.
    busy_until: u64,
    tel: Telemetry,
}

impl Buffer {
    fn new(cap_words: u32) -> Self {
        Buffer {
            q: VecDeque::new(),
            used_words: 0,
            cap_words,
            busy_until: 0,
            tel: Telemetry::default(),
        }
    }

    fn can_accept(&self, len: u32, now: u64) -> bool {
        self.used_words + len <= self.cap_words && now >= self.busy_until
    }

    fn push(&mut self, msg: Message, now: u64, cfg: &NetConfig) {
        let len = msg.words.len() as u32;
        debug_assert!(self.can_accept(len, now));
        let ser = len.div_ceil(cfg.link_bandwidth) as u64;
        self.used_words += len;
        self.busy_until = now + ser;
        self.tel.msgs_in[msg.pri.index()] += 1;
        self.tel.words_in[msg.pri.index()] += len as u64;
        self.tel.busy_cycles += ser;
        self.tel.high_water = self.tel.high_water.max(self.used_words);
        self.q.push_back(InFlight {
            msg,
            ready_at: now + cfg.hop_latency as u64 + ser - 1,
        });
    }

    fn ready_front(&self, now: u64) -> Option<&Message> {
        self.q.front().filter(|f| f.ready_at <= now).map(|f| &f.msg)
    }

    fn pop(&mut self) -> Message {
        let f = self.q.pop_front().expect("pop from empty buffer");
        let len = f.msg.words.len() as u32;
        self.used_words -= len;
        self.tel.msgs_out += 1;
        self.tel.words_out += len as u64;
        f.msg
    }

    fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    fn stat(&self, node: u32, kind: BufKind) -> LinkStat {
        LinkStat {
            node,
            kind,
            msgs_in: self.tel.msgs_in,
            words_in: self.tel.words_in,
            msgs_out: self.tel.msgs_out,
            words_out: self.tel.words_out,
            queued_msgs: self.q.len() as u64,
            queued_words: self.used_words,
            busy_cycles: self.tel.busy_cycles,
            high_water: self.tel.high_water,
            stall_cycles: self.tel.stall_cycles,
        }
    }
}

/// A per-buffer telemetry snapshot: one row of the link-utilization
/// heatmap (`mesh_links.csv`). Conservation holds per row:
/// `words_in[0] + words_in[1] == words_out + queued_words`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStat {
    /// Node owning the buffer.
    pub node: u32,
    /// Which of the node's buffers (inject, recv, or a link direction).
    pub kind: BufKind,
    /// Messages accepted, by priority (`[low, high]`).
    pub msgs_in: [u64; 2],
    /// Words accepted, by priority (`[low, high]`).
    pub words_in: [u64; 2],
    /// Messages drained.
    pub msgs_out: u64,
    /// Words drained.
    pub words_out: u64,
    /// Messages still queued at snapshot time.
    pub queued_msgs: u64,
    /// Words still queued at snapshot time.
    pub queued_words: u32,
    /// Cycles spent serializing accepted messages.
    pub busy_cycles: u64,
    /// Occupancy high-water mark in words.
    pub high_water: u32,
    /// Cycles a ready head sat blocked behind back-pressure.
    pub stall_cycles: u64,
}

impl LinkStat {
    /// Total words accepted across priorities.
    pub fn words_in_total(&self) -> u64 {
        self.words_in[0] + self.words_in[1]
    }

    /// Total messages accepted across priorities.
    pub fn msgs_in_total(&self) -> u64 {
        self.msgs_in[0] + self.msgs_in[1]
    }
}

/// Aggregate fabric counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages accepted into an inject queue.
    pub injected_msgs: u64,
    /// Words accepted into an inject queue.
    pub injected_words: u64,
    /// Messages handed to a destination machine.
    pub delivered_msgs: u64,
    /// Words handed to a destination machine.
    pub delivered_words: u64,
    /// Link traversals summed over all messages.
    pub hop_traversals: u64,
    /// Sum over delivered messages of (delivery cycle − injection cycle).
    pub latency_total: u64,
    /// `try_inject` calls refused (sender NI stalls).
    pub inject_stalls: u64,
    /// Cycles a ready message sat at a receive-queue head because the
    /// machine's message queue was full (back-pressure at the last hop).
    pub deliver_stalls: u64,
}

/// The mesh interconnect: per-node inject and receive queues plus one
/// bounded input buffer per (node, incoming direction).
#[derive(Debug, Clone)]
pub struct Fabric {
    topo: MeshTopology,
    cfg: NetConfig,
    /// `links[node * 4 + dir.index()]`: input buffer at `node` for
    /// messages travelling in direction `dir` (i.e. arriving from the
    /// neighbour on the opposite side).
    links: Vec<Buffer>,
    inject: Vec<Buffer>,
    recv: Vec<Buffer>,
    now: u64,
    moves: u64,
    /// Messages currently buffered anywhere (O(1) mirror of
    /// [`Fabric::in_flight_msgs`]; movement conserves it, so it changes
    /// only on inject and final delivery).
    in_flight: u64,
    stats: NetStats,
    /// Next trace id (== messages injected so far).
    next_trace_id: u64,
    /// Deliver stalls attributed to each destination node (the global
    /// [`NetStats::deliver_stalls`] is the sum of these).
    deliver_stalls_by_node: Vec<u64>,
}

impl Fabric {
    /// An empty fabric over `topo`.
    pub fn new(topo: MeshTopology, cfg: NetConfig) -> Self {
        let n = topo.nodes() as usize;
        Fabric {
            topo,
            cfg,
            links: (0..n * 4).map(|_| Buffer::new(cfg.link_capacity)).collect(),
            inject: (0..n).map(|_| Buffer::new(cfg.inject_capacity)).collect(),
            recv: (0..n).map(|_| Buffer::new(cfg.recv_capacity)).collect(),
            now: 0,
            moves: 0,
            in_flight: 0,
            stats: NetStats::default(),
            next_trace_id: 0,
            deliver_stalls_by_node: vec![0; n],
        }
    }

    /// The topology this fabric connects.
    pub fn topology(&self) -> MeshTopology {
        self.topo
    }

    /// Node count.
    pub fn nodes(&self) -> u32 {
        self.topo.nodes()
    }

    /// The current fabric cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Total transfers performed (progress watchdogs watch this).
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Offer a message to `src`'s inject queue. `false` = NI full: the
    /// sender must stall and retry (nothing is consumed).
    pub fn try_inject(&mut self, src: u32, dest: u32, pri: Priority, words: &[Word]) -> bool {
        self.try_inject_traced(src, dest, pri, words, &mut NoNetHooks)
    }

    /// [`Fabric::try_inject`] with observation hooks.
    pub fn try_inject_traced<H: NetHooks>(
        &mut self,
        src: u32,
        dest: u32,
        pri: Priority,
        words: &[Word],
        hooks: &mut H,
    ) -> bool {
        debug_assert!(src < self.nodes() && dest < self.nodes());
        let len = words.len() as u32;
        if !self.inject[src as usize].can_accept(len, self.now) {
            self.stats.inject_stalls += 1;
            hooks.inject_stall(src, self.now);
            return false;
        }
        let id = self.next_trace_id;
        self.next_trace_id += 1;
        let msg = Message {
            src,
            dest,
            pri,
            words: words.to_vec(),
            hops: 0,
            injected_at: self.now,
            trace_id: id,
        };
        self.inject[src as usize].push(msg, self.now, &self.cfg);
        self.stats.injected_msgs += 1;
        self.stats.injected_words += len as u64;
        self.in_flight += 1;
        hooks.inject(id, src, dest, pri, len, self.now);
        hooks.occupancy(
            src,
            BufKind::Inject,
            self.inject[src as usize].used_words,
            self.now,
        );
        true
    }

    /// Advance one cycle: move at most one ready message out of every
    /// buffer (input ports in [`Dir::ALL`] order, then the inject queue),
    /// ejecting at the destination into its receive queue and forwarding
    /// everything else along its dimension-order route.
    pub fn tick(&mut self) {
        self.tick_traced(&mut NoNetHooks);
    }

    /// [`Fabric::tick`] with observation hooks.
    pub fn tick_traced<H: NetHooks>(&mut self, hooks: &mut H) {
        for node in 0..self.nodes() {
            for src_q in Self::source_queues(node) {
                let Some(head) = self.buffer(src_q).ready_front(self.now) else {
                    continue;
                };
                let (dest, len, id) = (head.dest, head.words.len() as u32, head.trace_id);
                if dest == node {
                    // Eject into the receive queue.
                    if self.recv[node as usize].can_accept(len, self.now) {
                        let msg = self.buffer_mut(src_q).pop();
                        self.recv[node as usize].push(msg, self.now, &self.cfg);
                        self.moves += 1;
                        hooks.eject(id, node, self.now);
                        if H::ENABLED {
                            hooks.occupancy(
                                node,
                                Self::queue_kind(src_q),
                                self.buffer(src_q).used_words,
                                self.now,
                            );
                            hooks.occupancy(
                                node,
                                BufKind::Recv,
                                self.recv[node as usize].used_words,
                                self.now,
                            );
                        }
                    } else {
                        self.buffer_mut(src_q).tel.stall_cycles += 1;
                        hooks.hop_stall(id, node, self.now);
                    }
                } else {
                    let d = self.topo.next_hop(node, dest);
                    let next = self.topo.neighbor(node, d);
                    let target = (next as usize) * 4 + d.index();
                    if self.links[target].can_accept(len, self.now) {
                        let mut msg = self.buffer_mut(src_q).pop();
                        msg.hops += 1;
                        self.stats.hop_traversals += 1;
                        self.links[target].push(msg, self.now, &self.cfg);
                        self.moves += 1;
                        hooks.hop(id, node, d, self.now);
                        if H::ENABLED {
                            hooks.occupancy(
                                node,
                                Self::queue_kind(src_q),
                                self.buffer(src_q).used_words,
                                self.now,
                            );
                            hooks.occupancy(
                                next,
                                BufKind::Link(d),
                                self.links[target].used_words,
                                self.now,
                            );
                        }
                    } else {
                        self.buffer_mut(src_q).tel.stall_cycles += 1;
                        hooks.hop_stall(id, node, self.now);
                    }
                }
            }
        }
        self.now += 1;
    }

    /// The message ready for delivery at `node`, if any.
    pub fn ready_recv(&self, node: u32) -> Option<&Message> {
        self.recv[node as usize].ready_front(self.now)
    }

    /// Take the delivered message previously seen via
    /// [`Fabric::ready_recv`], updating the delivery counters.
    pub fn pop_recv(&mut self, node: u32) -> Message {
        self.pop_recv_traced(node, &mut NoNetHooks)
    }

    /// [`Fabric::pop_recv`] with observation hooks.
    pub fn pop_recv_traced<H: NetHooks>(&mut self, node: u32, hooks: &mut H) -> Message {
        let msg = self.recv[node as usize].pop();
        self.stats.delivered_msgs += 1;
        self.stats.delivered_words += msg.words.len() as u64;
        self.stats.latency_total += self.now - msg.injected_at;
        self.in_flight -= 1;
        hooks.deliver(
            msg.trace_id,
            node,
            msg.pri,
            msg.hops,
            msg.injected_at,
            self.now,
        );
        hooks.occupancy(
            node,
            BufKind::Recv,
            self.recv[node as usize].used_words,
            self.now,
        );
        msg
    }

    /// Record that a ready message could not enter `node`'s machine queue
    /// this cycle (last-hop back-pressure). Stalls are attributed to the
    /// destination node — see [`Fabric::deliver_stalls_by_node`].
    pub fn note_deliver_stall(&mut self, node: u32) {
        self.note_deliver_stall_traced(node, &mut NoNetHooks);
    }

    /// [`Fabric::note_deliver_stall`] with observation hooks.
    pub fn note_deliver_stall_traced<H: NetHooks>(&mut self, node: u32, hooks: &mut H) {
        self.stats.deliver_stalls += 1;
        self.deliver_stalls_by_node[node as usize] += 1;
        let b = &mut self.recv[node as usize];
        b.tel.stall_cycles += 1;
        if let Some(f) = b.q.front() {
            hooks.deliver_stall(f.msg.trace_id, node, self.now);
        }
    }

    /// Deliver stalls per destination node (sums to
    /// [`NetStats::deliver_stalls`]).
    pub fn deliver_stalls_by_node(&self) -> &[u64] {
        &self.deliver_stalls_by_node
    }

    /// Snapshot every buffer's telemetry: for each node, the real link
    /// input buffers (edge buffers that can never receive traffic are
    /// skipped), then the inject and receive queues. Row order is fixed,
    /// so the rendered CSV is deterministic.
    pub fn link_stats(&self) -> Vec<LinkStat> {
        let mut out = Vec::with_capacity(self.nodes() as usize * 6);
        for node in 0..self.nodes() {
            let (x, y) = self.topo.coords(node);
            for d in Dir::ALL {
                // The `d` input buffer at `node` receives messages
                // travelling in direction `d`, i.e. from the neighbour on
                // the opposite side — which must exist for the buffer to
                // be a real link.
                let upstream_exists = match d {
                    Dir::East => x > 0,
                    Dir::West => x + 1 < self.topo.width,
                    Dir::North => y > 0,
                    Dir::South => y + 1 < self.topo.height,
                };
                if upstream_exists {
                    out.push(
                        self.links[node as usize * 4 + d.index()].stat(node, BufKind::Link(d)),
                    );
                }
            }
            out.push(self.inject[node as usize].stat(node, BufKind::Inject));
            out.push(self.recv[node as usize].stat(node, BufKind::Recv));
        }
        out
    }

    fn queue_kind(q: SourceQueue) -> BufKind {
        match q {
            SourceQueue::Link(i) => BufKind::Link(Dir::ALL[i % 4]),
            SourceQueue::Inject(_) => BufKind::Inject,
        }
    }

    /// Whether no message is buffered anywhere in the fabric.
    pub fn is_empty(&self) -> bool {
        self.links.iter().all(Buffer::is_empty)
            && self.inject.iter().all(Buffer::is_empty)
            && self.recv.iter().all(Buffer::is_empty)
    }

    /// O(1) in-flight message count (equal to [`Fabric::in_flight_msgs`],
    /// maintained incrementally for the fast-forward driver's per-cycle
    /// emptiness checks).
    pub fn msg_count(&self) -> u64 {
        debug_assert_eq!(self.in_flight, self.in_flight_msgs());
        self.in_flight
    }

    /// The fast-forward event horizon: the earliest driver iteration at
    /// which the fabric can act, assuming nothing new is injected.
    ///
    /// The driver's iteration with top-of-loop cycle `c` runs
    /// [`Fabric::tick`] at `now == c` (so a link/inject head with
    /// `ready_at <= c` can move) and checks [`Fabric::ready_recv`] at
    /// `now == c + 1` (so a receive head with `ready_at <= c + 1` can be
    /// delivered). Iterations strictly before the returned cycle are
    /// therefore pure waits: no head is ready to move or deliver, and
    /// serialization windows (`busy_until`) only gate acceptance of moves
    /// that cannot happen anyway — ticking just advances `now`.
    ///
    /// Returns `None` when some head is already actionable in the current
    /// iteration (including a ready head stuck on a full target, where
    /// only cycle-by-cycle ticking reproduces the stall accounting) — the
    /// caller must fall back to lockstep. Also `None` on an empty fabric.
    pub fn next_horizon(&self) -> Option<u64> {
        let mut h = u64::MAX;
        for b in self.links.iter().chain(&self.inject) {
            if let Some(f) = b.q.front() {
                if f.ready_at <= self.now {
                    return None;
                }
                h = h.min(f.ready_at);
            }
        }
        for b in &self.recv {
            if let Some(f) = b.q.front() {
                let t = f.ready_at.saturating_sub(1);
                if t <= self.now {
                    return None;
                }
                h = h.min(t);
            }
        }
        (h != u64::MAX).then_some(h)
    }

    /// Jump the fabric clock forward to `cycle` in one step.
    ///
    /// Only legal across a pure-wait stretch established by
    /// [`Fabric::next_horizon`] (`cycle` at most the returned horizon):
    /// every skipped [`Fabric::tick`] would have moved nothing, so
    /// advancing `now` is the entire effect.
    pub fn skip_to(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.now, "fabric clock cannot run backwards");
        self.now = cycle;
    }

    /// Messages currently buffered in the fabric, counted structurally
    /// (the conservation property checks this against the counters).
    pub fn in_flight_msgs(&self) -> u64 {
        let count = |bufs: &[Buffer]| bufs.iter().map(|b| b.q.len() as u64).sum::<u64>();
        count(&self.links) + count(&self.inject) + count(&self.recv)
    }

    /// Source-queue ids at `node`: the four input ports, then inject.
    fn source_queues(node: u32) -> [SourceQueue; 5] {
        let n = node as usize;
        [
            SourceQueue::Link(n * 4 + Dir::East.index()),
            SourceQueue::Link(n * 4 + Dir::West.index()),
            SourceQueue::Link(n * 4 + Dir::North.index()),
            SourceQueue::Link(n * 4 + Dir::South.index()),
            SourceQueue::Inject(n),
        ]
    }

    fn buffer(&self, q: SourceQueue) -> &Buffer {
        match q {
            SourceQueue::Link(i) => &self.links[i],
            SourceQueue::Inject(i) => &self.inject[i],
        }
    }

    fn buffer_mut(&mut self, q: SourceQueue) -> &mut Buffer {
        match q {
            SourceQueue::Link(i) => &mut self.links[i],
            SourceQueue::Inject(i) => &mut self.inject[i],
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum SourceQueue {
    Link(usize),
    Inject(usize),
}

/// Per-worker deltas of the fabric's *global* counters, accumulated by
/// [`FabricLanes`] operations and folded back by [`Fabric::absorb`].
///
/// The parallel mesh driver partitions nodes across host threads; each
/// thread touches only its own nodes' inject and receive buffers, but the
/// aggregate [`NetStats`] counters are shared. Rather than contend on
/// atomics (and order-perturb nothing anyway — sums commute), each worker
/// accumulates deltas and the main thread sums them at the next barrier,
/// which keeps every published statistic bit-identical to the serial
/// drivers.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneDeltas {
    /// Messages accepted into an inject queue.
    pub injected_msgs: u64,
    /// Words accepted into an inject queue.
    pub injected_words: u64,
    /// Messages handed to a destination machine.
    pub delivered_msgs: u64,
    /// Words handed to a destination machine.
    pub delivered_words: u64,
    /// Sum over delivered messages of (delivery cycle − injection cycle).
    pub latency_total: u64,
    /// Refused injections (sender NI stalls).
    pub inject_stalls: u64,
    /// Ready messages held back by a full machine queue.
    pub deliver_stalls: u64,
    /// Net change in buffered messages (+1 per inject, −1 per delivery).
    pub in_flight: i64,
}

/// Raw per-node views of the fabric's endpoint buffers, for the parallel
/// mesh driver.
///
/// Between the driver's epoch barriers, worker thread `t` owns the inject
/// and receive buffers (and the deliver-stall counter) of exactly the
/// nodes in its partition; these methods mirror [`Fabric::try_inject`],
/// [`Fabric::ready_recv`], [`Fabric::pop_recv`], and
/// [`Fabric::note_deliver_stall`] on that per-node state, routing the
/// global counters into a per-worker [`LaneDeltas`] instead. Link buffers
/// and [`Fabric::tick`] stay main-thread-only. `trace_id` is assigned 0
/// on every lane injection: the parallel driver only runs untraced, where
/// trace ids are unobservable.
///
/// # Safety
/// Every method requires that the caller has exclusive access to the
/// named node's buffers for the duration of the call and that the parent
/// [`Fabric`] outlives this view (the driver guarantees both with its
/// barrier protocol).
#[derive(Debug, Clone, Copy)]
pub struct FabricLanes {
    inject: *mut Buffer,
    recv: *mut Buffer,
    deliver_stalls_by_node: *mut u64,
    nodes: u32,
    cfg: NetConfig,
}

// SAFETY: the raw pointers are only dereferenced under the parallel
// driver's ownership discipline (disjoint nodes per worker, barriers
// establishing happens-before between phases).
unsafe impl Send for FabricLanes {}
unsafe impl Sync for FabricLanes {}

impl FabricLanes {
    /// Mirror of [`Fabric::try_inject_traced`] on `src`'s inject lane
    /// (untraced; counters go to `d`).
    ///
    /// # Safety
    /// See [`FabricLanes`]. `now` must be the fabric cycle the serial
    /// driver would inject at (the current global cycle).
    pub unsafe fn try_inject(
        &self,
        src: u32,
        dest: u32,
        pri: Priority,
        words: &[Word],
        now: u64,
        d: &mut LaneDeltas,
    ) -> bool {
        debug_assert!(src < self.nodes && dest < self.nodes);
        let buf = unsafe { &mut *self.inject.add(src as usize) };
        let len = words.len() as u32;
        if !buf.can_accept(len, now) {
            d.inject_stalls += 1;
            return false;
        }
        buf.push(
            Message {
                src,
                dest,
                pri,
                words: words.to_vec(),
                hops: 0,
                injected_at: now,
                trace_id: 0,
            },
            now,
            &self.cfg,
        );
        d.injected_msgs += 1;
        d.injected_words += len as u64;
        d.in_flight += 1;
        true
    }

    /// Mirror of [`Fabric::ready_recv`] on `node`'s receive lane.
    ///
    /// # Safety
    /// See [`FabricLanes`]. `now` must be the post-tick fabric cycle. The
    /// returned borrow is invalidated by [`FabricLanes::pop_recv`].
    pub unsafe fn ready_recv(&self, node: u32, now: u64) -> Option<&Message> {
        unsafe { (*self.recv.add(node as usize)).ready_front(now) }
    }

    /// Mirror of [`Fabric::pop_recv_traced`] (untraced; counters to `d`).
    ///
    /// # Safety
    /// See [`FabricLanes`]; additionally a prior
    /// [`FabricLanes::ready_recv`] must have returned `Some` this cycle.
    pub unsafe fn pop_recv(&self, node: u32, now: u64, d: &mut LaneDeltas) {
        let msg = unsafe { (*self.recv.add(node as usize)).pop() };
        d.delivered_msgs += 1;
        d.delivered_words += msg.words.len() as u64;
        d.latency_total += now - msg.injected_at;
        d.in_flight -= 1;
    }

    /// Mirror of [`Fabric::note_deliver_stall_traced`] (untraced).
    ///
    /// # Safety
    /// See [`FabricLanes`].
    pub unsafe fn note_deliver_stall(&self, node: u32, d: &mut LaneDeltas) {
        d.deliver_stalls += 1;
        unsafe {
            *self.deliver_stalls_by_node.add(node as usize) += 1;
            (*self.recv.add(node as usize)).tel.stall_cycles += 1;
        }
    }
}

impl Fabric {
    /// Raw per-node endpoint views for the parallel driver (see
    /// [`FabricLanes`] for the ownership contract).
    pub fn lanes(&mut self) -> FabricLanes {
        FabricLanes {
            inject: self.inject.as_mut_ptr(),
            recv: self.recv.as_mut_ptr(),
            deliver_stalls_by_node: self.deliver_stalls_by_node.as_mut_ptr(),
            nodes: self.topo.nodes(),
            cfg: self.cfg,
        }
    }

    /// Fold one worker's [`LaneDeltas`] into the global counters. Sums
    /// commute, so absorbing per-worker deltas in any fixed order yields
    /// the same [`NetStats`] the serial drivers produce.
    pub fn absorb(&mut self, d: &LaneDeltas) {
        self.stats.injected_msgs += d.injected_msgs;
        self.stats.injected_words += d.injected_words;
        self.stats.delivered_msgs += d.delivered_msgs;
        self.stats.delivered_words += d.delivered_words;
        self.stats.latency_total += d.latency_total;
        self.stats.inject_stalls += d.inject_stalls;
        self.stats.deliver_stalls += d.deliver_stalls;
        let in_flight = self.in_flight as i64 + d.in_flight;
        debug_assert!(in_flight >= 0, "more deliveries than injections");
        self.in_flight = in_flight as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg_words(n: usize) -> Vec<Word> {
        (0..n).map(|i| Word::from_i64(i as i64)).collect()
    }

    fn pump(f: &mut Fabric, cycles: u32) {
        for _ in 0..cycles {
            f.tick();
        }
    }

    #[test]
    fn single_hop_arrives_after_latency_and_serialization() {
        let topo = MeshTopology {
            width: 2,
            height: 1,
        };
        let cfg = NetConfig::default(); // hop_latency 2, bandwidth 1
        let mut f = Fabric::new(topo, cfg);
        assert!(f.try_inject(0, 1, Priority::Low, &msg_words(3)));
        // Inject at cycle 0 (ready_at 0+2+3-1 = 4 in the inject queue),
        // then one link hop and one ejection; the exact arrival cycle is
        // a model detail — what matters is that it arrives, is FIFO, and
        // carries its hop count.
        let mut cycles = 0;
        while f.ready_recv(1).is_none() {
            f.tick();
            cycles += 1;
            assert!(cycles < 100, "message must arrive");
        }
        let m = f.ready_recv(1).unwrap();
        assert_eq!(m.hops, 1);
        assert_eq!(m.words, msg_words(3));
        let m = f.pop_recv(1);
        assert_eq!(m.dest, 1);
        assert!(f.is_empty());
        assert_eq!(f.stats().delivered_msgs, 1);
    }

    #[test]
    fn zero_hop_self_message_is_ejected_locally() {
        let topo = MeshTopology {
            width: 2,
            height: 1,
        };
        let mut f = Fabric::new(topo, NetConfig::default());
        assert!(f.try_inject(0, 0, Priority::High, &msg_words(2)));
        pump(&mut f, 10);
        let m = f.pop_recv(0);
        assert_eq!(m.hops, 0);
        assert_eq!(m.pri, Priority::High);
    }

    #[test]
    fn inject_queue_overflow_refuses_without_losing_anything() {
        let topo = MeshTopology {
            width: 2,
            height: 1,
        };
        let cfg = NetConfig {
            inject_capacity: 8,
            ..NetConfig::default()
        };
        let mut f = Fabric::new(topo, cfg);
        assert!(f.try_inject(0, 1, Priority::Low, &msg_words(5)));
        // Refused while the NI serializes the first message...
        assert!(!f.try_inject(0, 1, Priority::Low, &msg_words(3)));
        pump(&mut f, 5);
        // ...accepted once serialization ends (8 words fill capacity)...
        assert!(f.try_inject(0, 1, Priority::Low, &msg_words(3)));
        // ...and refused again on word capacity while both are buffered.
        assert!(!f.try_inject(0, 1, Priority::Low, &msg_words(1)), "full");
        assert_eq!(f.stats().inject_stalls, 2);
        assert_eq!(f.stats().injected_msgs, 2);
        // Everything still arrives, in order.
        pump(&mut f, 50);
        assert_eq!(f.pop_recv(1).words.len(), 5);
        assert_eq!(f.pop_recv(1).words.len(), 3);
        assert!(f.is_empty());
    }

    #[test]
    fn serialization_gates_back_to_back_messages() {
        let topo = MeshTopology {
            width: 2,
            height: 1,
        };
        let cfg = NetConfig {
            link_bandwidth: 1,
            ..NetConfig::default()
        };
        let mut f = Fabric::new(topo, cfg);
        assert!(f.try_inject(0, 1, Priority::Low, &msg_words(4)));
        // 4 words at 1 word/cycle: the inject buffer is busy until cycle
        // 4, so an immediate second message is refused even though the
        // word capacity would allow it.
        assert!(!f.try_inject(0, 1, Priority::Low, &msg_words(4)));
        pump(&mut f, 4);
        assert!(f.try_inject(0, 1, Priority::Low, &msg_words(4)));
        pump(&mut f, 60);
        assert_eq!(f.pop_recv(1).words.len(), 4);
        assert_eq!(f.pop_recv(1).words.len(), 4);
        assert_eq!(f.stats().delivered_msgs, 2);
        assert!(f.is_empty());
    }
}
