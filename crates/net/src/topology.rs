//! 2D mesh topology and dimension-order routing.
//!
//! The J-Machine is a 3D mesh; the paper's locality questions only need
//! *some* distance structure, so this crate models the common 2D variant:
//! nodes at integer coordinates, bidirectional links between orthogonal
//! neighbours, and deterministic dimension-order (X-then-Y) routing — the
//! J-Machine's own e-cube scheme, deadlock-free on a mesh because no
//! message ever turns from a Y channel back into an X channel.

/// A link direction out of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// +X.
    East,
    /// -X.
    West,
    /// +Y.
    North,
    /// -Y.
    South,
}

impl Dir {
    /// All directions, in the fixed order used for deterministic
    /// iteration over a node's input ports.
    pub const ALL: [Dir; 4] = [Dir::East, Dir::West, Dir::North, Dir::South];

    /// Dense index (0..4).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        }
    }
}

/// A `width × height` mesh; node `n` sits at `(n % width, n / width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshTopology {
    /// Nodes per row (X extent).
    pub width: u32,
    /// Rows (Y extent).
    pub height: u32,
}

impl MeshTopology {
    /// The most-square mesh with exactly `n` nodes: height is the largest
    /// divisor of `n` that is at most `√n` (so `8 → 4×2`, `7 → 7×1`).
    ///
    /// # Panics
    /// Panics when `n` is zero.
    pub fn for_nodes(n: u32) -> Self {
        assert!(n > 0, "a mesh needs at least one node");
        let mut h = (n as f64).sqrt() as u32;
        while !n.is_multiple_of(h) {
            h -= 1;
        }
        MeshTopology {
            width: n / h,
            height: h,
        }
    }

    /// Total node count.
    #[inline]
    pub fn nodes(&self) -> u32 {
        self.width * self.height
    }

    /// Coordinates of `node`.
    #[inline]
    pub fn coords(&self, node: u32) -> (u32, u32) {
        debug_assert!(node < self.nodes());
        (node % self.width, node / self.width)
    }

    /// Node id at `(x, y)`.
    #[inline]
    pub fn node_at(&self, x: u32, y: u32) -> u32 {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Manhattan distance between two nodes — the hop count of every
    /// dimension-order route.
    pub fn manhattan(&self, a: u32, b: u32) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The dimension-order next hop from `from` toward `to`: correct X
    /// fully, then Y.
    ///
    /// # Panics
    /// Panics when `from == to` (a delivered message has no next hop).
    pub fn next_hop(&self, from: u32, to: u32) -> Dir {
        assert_ne!(from, to, "no next hop for a delivered message");
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        if fx < tx {
            Dir::East
        } else if fx > tx {
            Dir::West
        } else if fy < ty {
            Dir::North
        } else {
            Dir::South
        }
    }

    /// The neighbour of `node` in direction `d`.
    ///
    /// # Panics
    /// Panics when the link would leave the mesh edge.
    pub fn neighbor(&self, node: u32, d: Dir) -> u32 {
        let (x, y) = self.coords(node);
        match d {
            Dir::East => self.node_at(x + 1, y),
            Dir::West => self.node_at(x - 1, y),
            Dir::North => self.node_at(x, y + 1),
            Dir::South => self.node_at(x, y - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factoring_is_near_square() {
        assert_eq!(
            MeshTopology::for_nodes(1),
            MeshTopology {
                width: 1,
                height: 1
            }
        );
        assert_eq!(
            MeshTopology::for_nodes(2),
            MeshTopology {
                width: 2,
                height: 1
            }
        );
        assert_eq!(
            MeshTopology::for_nodes(4),
            MeshTopology {
                width: 2,
                height: 2
            }
        );
        assert_eq!(
            MeshTopology::for_nodes(8),
            MeshTopology {
                width: 4,
                height: 2
            }
        );
        assert_eq!(
            MeshTopology::for_nodes(16),
            MeshTopology {
                width: 4,
                height: 4
            }
        );
        assert_eq!(
            MeshTopology::for_nodes(7),
            MeshTopology {
                width: 7,
                height: 1
            }
        );
    }

    #[test]
    fn coords_round_trip() {
        let t = MeshTopology::for_nodes(8);
        for n in 0..t.nodes() {
            let (x, y) = t.coords(n);
            assert_eq!(t.node_at(x, y), n);
        }
    }

    #[test]
    fn dimension_order_corrects_x_before_y() {
        let t = MeshTopology {
            width: 4,
            height: 4,
        };
        let from = t.node_at(0, 0);
        let to = t.node_at(2, 3);
        // Walk the route and record the turn sequence.
        let mut cur = from;
        let mut dirs = Vec::new();
        while cur != to {
            let d = t.next_hop(cur, to);
            dirs.push(d);
            cur = t.neighbor(cur, d);
        }
        assert_eq!(dirs.len() as u32, t.manhattan(from, to));
        assert_eq!(
            dirs,
            vec![Dir::East, Dir::East, Dir::North, Dir::North, Dir::North]
        );
        // No Y→X turn anywhere (the deadlock-freedom invariant).
        let first_y = dirs
            .iter()
            .position(|d| matches!(d, Dir::North | Dir::South))
            .unwrap();
        assert!(dirs[first_y..]
            .iter()
            .all(|d| matches!(d, Dir::North | Dir::South)));
    }

    #[test]
    fn routes_terminate_everywhere() {
        let t = MeshTopology::for_nodes(8);
        for a in 0..t.nodes() {
            for b in 0..t.nodes() {
                let mut cur = a;
                let mut hops = 0;
                while cur != b {
                    cur = t.neighbor(cur, t.next_hop(cur, b));
                    hops += 1;
                    assert!(hops <= t.width + t.height, "route must not wander");
                }
                assert_eq!(hops, t.manhattan(a, b));
            }
        }
    }
}
