//! Causal message tracing: per-message lifecycle records, dispatch
//! attribution, and latency histograms.
//!
//! [`NetTraceRecorder`] implements [`NetHooks`] and reconstructs one
//! [`MsgRecord`] per injected message: where it was injected, every link
//! it crossed (with stall attribution), when it was ejected, delivered,
//! and — via the driver's dispatch reports — when its handler actually
//! started. The recorder never feeds anything back into the simulation,
//! so a traced run is bit-identical to an un-traced one (the differential
//! tests enforce this).
//!
//! **Dispatch matching.** The machine's message queue is FIFO per
//! priority, and exactly three things enqueue into it: the boot message,
//! a local `SEND` (the port reports [`NetHooks::local_enqueue`]), and a
//! fabric delivery ([`NetHooks::deliver`], which knows the trace id). The
//! recorder mirrors each (node, priority) queue as a FIFO of
//! `Option<trace id>` and pops it on every reported dispatch; a `Some`
//! pop closes that message's record with its handler-dispatch cycle.
//! Anything unexpected (a dispatch with an empty mirror) is counted, not
//! guessed at.
//!
//! **Memory discipline.** [`NetTraceMode::Ring`] keeps only the last `N`
//! retired records (dropped ones are counted) and skips occupancy
//! samples, so it is cheap enough to leave on for every `tamsim mesh`
//! run; [`NetTraceMode::Full`] (`--trace-net`) keeps everything.

use std::collections::{BTreeMap, VecDeque};

use crate::hooks::{BufKind, NetHooks};
use crate::topology::Dir;
use tamsim_mdp::Priority;

/// How much the recorder retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetTraceMode {
    /// No recorder at all: the fabric runs with [`crate::NoNetHooks`].
    Off,
    /// Keep the last `N` retired message records; no occupancy samples.
    Ring(usize),
    /// Keep every record and every occupancy sample.
    Full,
}

/// One link traversal of a traced message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// Node the message departed from.
    pub node: u32,
    /// Direction it travelled.
    pub dir: Dir,
    /// Fabric cycle of the traversal.
    pub cycle: u64,
}

/// The full lifecycle of one injected message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgRecord {
    /// Monotonic trace id (injection order).
    pub id: u64,
    /// Injecting node.
    pub src: u32,
    /// Destination node.
    pub dest: u32,
    /// Queue priority at the destination.
    pub pri: Priority,
    /// Message length in words.
    pub len: u32,
    /// Fabric cycle the inject queue accepted it.
    pub inject_cycle: u64,
    /// Every link traversal, in order.
    pub hops: Vec<HopRecord>,
    /// Cycle it entered the destination's receive queue.
    pub eject_cycle: Option<u64>,
    /// Cycle it entered the destination machine's queue.
    pub deliver_cycle: Option<u64>,
    /// Cycle its handler was dispatched.
    pub dispatch_cycle: Option<u64>,
    /// Cycles spent stuck at a buffer head behind back-pressure
    /// (hop-level plus last-hop deliver stalls).
    pub stall_cycles: u64,
}

/// One buffer-occupancy change ([`NetTraceMode::Full`] only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySample {
    /// Node owning the buffer.
    pub node: u32,
    /// Which of the node's buffers.
    pub kind: BufKind,
    /// Occupancy in words after the change.
    pub used_words: u32,
    /// Fabric cycle of the change.
    pub cycle: u64,
}

/// A log-bucketed cycle histogram (bucket `k` counts values in
/// `[2^(k-1), 2^k)`; bucket 0 counts zeros).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHist {
    /// Bucket counts, highest occupied bucket last.
    pub buckets: Vec<u64>,
    /// Values recorded.
    pub count: u64,
    /// Sum of values.
    pub total: u64,
    /// Largest value.
    pub max: u64,
}

impl LatencyHist {
    /// Which bucket `v` lands in: the number of significant bits.
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive value bounds of bucket `k`.
    pub fn bucket_bounds(k: usize) -> (u64, u64) {
        if k == 0 {
            (0, 0)
        } else {
            (1 << (k - 1), (1u64 << k) - 1)
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.total += v;
        self.max = self.max.max(v);
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }
}

/// One keyed histogram row: latencies for messages of one priority that
/// crossed a given number of links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistEntry {
    /// Queue priority at the destination.
    pub pri: Priority,
    /// Link traversals of the contributing messages.
    pub hops: u32,
    /// The latency distribution.
    pub hist: LatencyHist,
}

/// Everything a traced run hands back
/// (`MeshRunResult::net_trace`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetTrace {
    /// Message lifecycle records in trace-id (injection) order. In ring
    /// mode only the most recent retired records survive.
    pub records: Vec<MsgRecord>,
    /// Records evicted by the ring.
    pub dropped: u64,
    /// Buffer-occupancy changes (empty outside [`NetTraceMode::Full`]).
    pub occupancy: Vec<OccupancySample>,
    /// inject→deliver latency per (priority, hop count), over **all**
    /// messages (ring eviction does not lose histogram mass).
    pub deliver_hist: Vec<HistEntry>,
    /// inject→dispatch latency per (priority, hop count), over all
    /// messages whose dispatch was observed.
    pub dispatch_hist: Vec<HistEntry>,
    /// Dispatches that could not be matched to a queue entry (should be
    /// zero; kept visible rather than silently mis-attributed).
    pub unmatched_dispatches: u64,
}

impl NetTrace {
    /// Records that completed the full inject→dispatch lifecycle.
    pub fn dispatched(&self) -> impl Iterator<Item = &MsgRecord> {
        self.records.iter().filter(|r| r.dispatch_cycle.is_some())
    }
}

/// The [`NetHooks`] implementation behind `--trace-net` and the default
/// ring: reconstructs message lifecycles and latency histograms without
/// touching the simulation.
#[derive(Debug)]
pub struct NetTraceRecorder {
    mode: NetTraceMode,
    /// Injected but not yet dispatched, by trace id.
    open: BTreeMap<u64, MsgRecord>,
    /// Retired (dispatched) records, oldest first; bounded in ring mode.
    done: VecDeque<MsgRecord>,
    dropped: u64,
    occupancy: Vec<OccupancySample>,
    /// Mirror of each (node, priority) machine queue: `Some(id)` for a
    /// fabric delivery, `None` for a boot/local enqueue.
    fifos: Vec<VecDeque<Option<u64>>>,
    deliver_hist: BTreeMap<(u8, u32), LatencyHist>,
    dispatch_hist: BTreeMap<(u8, u32), LatencyHist>,
    unmatched: u64,
}

fn fifo_index(node: u32, pri: Priority) -> usize {
    node as usize * 2 + pri.index()
}

impl NetTraceRecorder {
    /// An empty recorder for a `nodes`-node mesh.
    pub fn new(mode: NetTraceMode, nodes: u32) -> Self {
        NetTraceRecorder {
            mode,
            open: BTreeMap::new(),
            done: VecDeque::new(),
            dropped: 0,
            occupancy: Vec::new(),
            fifos: (0..nodes as usize * 2).map(|_| VecDeque::new()).collect(),
            deliver_hist: BTreeMap::new(),
            dispatch_hist: BTreeMap::new(),
            unmatched: 0,
        }
    }

    fn retire(&mut self, record: MsgRecord) {
        if let NetTraceMode::Ring(cap) = self.mode {
            if self.done.len() >= cap {
                self.done.pop_front();
                self.dropped += 1;
            }
        }
        self.done.push_back(record);
    }

    /// Consume the recorder into the run's [`NetTrace`].
    pub fn finish(self) -> NetTrace {
        let mut records: Vec<MsgRecord> = self.done.into_iter().collect();
        // Messages still in flight (or delivered but never dispatched)
        // at the end of the run are part of the story too.
        records.extend(self.open.into_values());
        records.sort_by_key(|r| r.id);
        let rows = |m: BTreeMap<(u8, u32), LatencyHist>| {
            m.into_iter()
                .map(|((p, hops), hist)| HistEntry {
                    pri: if p == 0 {
                        Priority::Low
                    } else {
                        Priority::High
                    },
                    hops,
                    hist,
                })
                .collect()
        };
        NetTrace {
            records,
            dropped: self.dropped,
            occupancy: self.occupancy,
            deliver_hist: rows(self.deliver_hist),
            dispatch_hist: rows(self.dispatch_hist),
            unmatched_dispatches: self.unmatched,
        }
    }
}

impl NetHooks for NetTraceRecorder {
    fn reset(&mut self, nodes: u32) {
        *self = NetTraceRecorder::new(self.mode, nodes);
    }

    fn inject(&mut self, id: u64, src: u32, dest: u32, pri: Priority, len: u32, cycle: u64) {
        self.open.insert(
            id,
            MsgRecord {
                id,
                src,
                dest,
                pri,
                len,
                inject_cycle: cycle,
                hops: Vec::new(),
                eject_cycle: None,
                deliver_cycle: None,
                dispatch_cycle: None,
                stall_cycles: 0,
            },
        );
    }

    fn hop(&mut self, id: u64, node: u32, dir: Dir, cycle: u64) {
        if let Some(r) = self.open.get_mut(&id) {
            r.hops.push(HopRecord { node, dir, cycle });
        }
    }

    fn hop_stall(&mut self, id: u64, _node: u32, _cycle: u64) {
        if let Some(r) = self.open.get_mut(&id) {
            r.stall_cycles += 1;
        }
    }

    fn eject(&mut self, id: u64, _node: u32, cycle: u64) {
        if let Some(r) = self.open.get_mut(&id) {
            r.eject_cycle = Some(cycle);
        }
    }

    fn deliver(
        &mut self,
        id: u64,
        node: u32,
        pri: Priority,
        hops: u32,
        injected_at: u64,
        cycle: u64,
    ) {
        self.deliver_hist
            .entry((pri.index() as u8, hops))
            .or_default()
            .record(cycle - injected_at);
        if let Some(r) = self.open.get_mut(&id) {
            r.deliver_cycle = Some(cycle);
        }
        self.fifos[fifo_index(node, pri)].push_back(Some(id));
    }

    fn deliver_stall(&mut self, id: u64, _node: u32, _cycle: u64) {
        if let Some(r) = self.open.get_mut(&id) {
            r.stall_cycles += 1;
        }
    }

    fn local_enqueue(&mut self, node: u32, pri: Priority, _cycle: u64) {
        self.fifos[fifo_index(node, pri)].push_back(None);
    }

    fn dispatch(&mut self, node: u32, pri: Priority, cycle: u64) {
        match self.fifos[fifo_index(node, pri)].pop_front() {
            Some(Some(id)) => {
                if let Some(mut r) = self.open.remove(&id) {
                    r.dispatch_cycle = Some(cycle);
                    self.dispatch_hist
                        .entry((pri.index() as u8, r.hops.len() as u32))
                        .or_default()
                        .record(cycle - r.inject_cycle);
                    self.retire(r);
                }
            }
            Some(None) => {} // boot or local message: nothing to close
            None => self.unmatched += 1,
        }
    }

    fn occupancy(&mut self, node: u32, kind: BufKind, used_words: u32, cycle: u64) {
        if self.mode == NetTraceMode::Full {
            self.occupancy.push(OccupancySample {
                node,
                kind,
                used_words,
                cycle,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(LatencyHist::bucket_of(0), 0);
        assert_eq!(LatencyHist::bucket_of(1), 1);
        assert_eq!(LatencyHist::bucket_of(2), 2);
        assert_eq!(LatencyHist::bucket_of(3), 2);
        assert_eq!(LatencyHist::bucket_of(4), 3);
        assert_eq!(LatencyHist::bucket_bounds(0), (0, 0));
        assert_eq!(LatencyHist::bucket_bounds(1), (1, 1));
        assert_eq!(LatencyHist::bucket_bounds(3), (4, 7));
        let mut h = LatencyHist::default();
        for v in [0, 1, 5, 6, 900] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.total, 912);
        assert_eq!(h.max, 900);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[3], 2);
        assert_eq!(h.buckets[10], 1); // 900 in [512, 1023]
    }

    #[test]
    fn dispatch_matching_follows_the_queue_fifo() {
        let mut rec = NetTraceRecorder::new(NetTraceMode::Full, 2);
        // Boot message on node 0 (no trace id), then a delivery, then the
        // dispatches in FIFO order.
        rec.local_enqueue(0, Priority::High, 0);
        rec.inject(0, 1, 0, Priority::High, 3, 2);
        rec.deliver(0, 0, Priority::High, 1, 2, 9);
        rec.dispatch(0, Priority::High, 10); // pops the boot sentinel
        rec.dispatch(0, Priority::High, 12); // pops message 0
        let t = rec.finish();
        assert_eq!(t.unmatched_dispatches, 0);
        assert_eq!(t.records.len(), 1);
        assert_eq!(t.records[0].deliver_cycle, Some(9));
        assert_eq!(t.records[0].dispatch_cycle, Some(12));
        assert_eq!(t.dispatch_hist.len(), 1);
        assert_eq!(t.dispatch_hist[0].hist.count, 1);
        assert_eq!(t.dispatch_hist[0].hist.total, 10); // 12 - 2
    }

    #[test]
    fn ring_mode_bounds_retired_records_but_keeps_histograms() {
        let mut rec = NetTraceRecorder::new(NetTraceMode::Ring(2), 1);
        for id in 0..5u64 {
            rec.inject(id, 0, 0, Priority::Low, 2, id);
            rec.deliver(id, 0, Priority::Low, 0, id, id + 4);
            rec.dispatch(0, Priority::Low, id + 5);
        }
        let t = rec.finish();
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.dropped, 3);
        assert_eq!(t.records[0].id, 3);
        assert_eq!(t.records[1].id, 4);
        assert_eq!(t.deliver_hist[0].hist.count, 5);
        assert_eq!(t.dispatch_hist[0].hist.count, 5);
        assert!(t.occupancy.is_empty());
    }

    #[test]
    fn latency_hist_zero_values_land_in_bucket_zero() {
        let mut h = LatencyHist::default();
        h.record(0);
        h.record(0);
        assert_eq!(h.buckets, vec![2]);
        assert_eq!(h.count, 2);
        assert_eq!(h.total, 0);
        assert_eq!(h.max, 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(LatencyHist::bucket_bounds(0), (0, 0));
    }

    #[test]
    fn latency_hist_single_value_is_fully_described() {
        let mut h = LatencyHist::default();
        h.record(100);
        assert_eq!(h.count, 1);
        assert_eq!(h.total, 100);
        assert_eq!(h.max, 100);
        assert_eq!(h.mean(), 100.0);
        let b = LatencyHist::bucket_of(100); // 7 bits → bucket 7: [64, 127]
        assert_eq!(b, 7);
        assert_eq!(h.buckets.len(), 8);
        assert_eq!(h.buckets[b], 1);
        let (lo, hi) = LatencyHist::bucket_bounds(b);
        assert!((lo..=hi).contains(&100));
    }

    #[test]
    fn latency_hist_bucket_boundaries_are_exact_powers_of_two() {
        // Bucket k covers [2^(k-1), 2^k): each boundary value must land
        // in the bucket whose bounds contain it, with no gap or overlap.
        for k in 1..=16usize {
            let (lo, hi) = LatencyHist::bucket_bounds(k);
            assert_eq!(lo, 1 << (k - 1));
            assert_eq!(hi, (1u64 << k) - 1);
            assert_eq!(LatencyHist::bucket_of(lo), k, "lower bound of {k}");
            assert_eq!(LatencyHist::bucket_of(hi), k, "upper bound of {k}");
            assert_eq!(LatencyHist::bucket_of(hi + 1), k + 1, "first of {}", k + 1);
        }
        assert_eq!(LatencyHist::bucket_of(0), 0);
        assert_eq!(LatencyHist::bucket_of(1), 1);
        assert_eq!(LatencyHist::bucket_of(2), 2);
        let mut h = LatencyHist::default();
        for v in [1u64, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        assert_eq!(h.buckets, vec![0, 1, 2, 2, 1]);
        assert_eq!(h.total, 25);
        assert_eq!(h.max, 8);
    }

    #[test]
    fn latency_hist_empty_is_all_zero() {
        let h = LatencyHist::default();
        assert!(h.buckets.is_empty());
        assert_eq!(h.count, 0);
        assert_eq!(h.mean(), 0.0);
    }
}
