//! Frame-placement policies.
//!
//! Frame allocation is the one runtime message whose destination is a
//! *choice* rather than an address: a `falloc` request names no existing
//! locus, so the network interface decides which node will own the new
//! activation. That decision is the knob the paper's locality argument
//! turns on — spreading frames buys parallel cache capacity, keeping them
//! near their parents buys shorter, cheaper messages.

/// How frame-allocation requests are spread across the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Rotate through the nodes in index order, one frame each. Maximizes
    /// spread (and message traffic); the classic work-distribution
    /// baseline.
    #[default]
    RoundRobin,
    /// Keep the frame on the requesting node unless that node holds
    /// noticeably more live frames than the least-loaded node, in which
    /// case allocate on the least-loaded node. Trades spread for locality
    /// (parent↔child messages stay on-node).
    LocalityAware,
    /// Birth placement as [`PlacementPolicy::LocalityAware`] (stay home
    /// within the census slack, shed to the least-loaded node past it)
    /// *plus* dynamic rebalancing: the mesh driver's serial phase
    /// migrates enabled frames off overloaded nodes to idle ones (see
    /// `tamsim_net::steal`). Push–pull: the census sheds coarse
    /// imbalance at allocation time, migration drains the backlog the
    /// census couldn't predict. The census tracks migrations too, so
    /// the live counts stay honest.
    WorkStealing,
}

impl PlacementPolicy {
    /// Stable CLI / CSV label.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "rr",
            PlacementPolicy::LocalityAware => "local",
            PlacementPolicy::WorkStealing => "steal",
        }
    }

    /// Parse a [`PlacementPolicy::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rr" | "round-robin" => Some(PlacementPolicy::RoundRobin),
            "local" | "locality" => Some(PlacementPolicy::LocalityAware),
            "steal" | "work-stealing" => Some(PlacementPolicy::WorkStealing),
            _ => None,
        }
    }

    /// Every policy, in CLI/CSV presentation order.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LocalityAware,
        PlacementPolicy::WorkStealing,
    ];

    /// The `a | b | c` list of labels for CLI help and error messages.
    pub fn labels() -> String {
        Self::ALL
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

/// Live-frame imbalance (in frames) the locality-aware policy tolerates
/// before shedding an allocation to the least-loaded node.
const LOCALITY_SLACK: u64 = 2;

/// Placement state: the policy plus the per-node live-frame census it
/// steers by.
#[derive(Debug, Clone)]
pub struct Placement {
    policy: PlacementPolicy,
    /// Next node in round-robin order.
    rr_next: u32,
    /// Live frames per node (`falloc` routed − `ffree` routed).
    live: Vec<u64>,
}

impl Placement {
    /// Fresh state for `nodes` nodes.
    pub fn new(policy: PlacementPolicy, nodes: u32) -> Self {
        Placement {
            policy,
            rr_next: 0,
            live: vec![0; nodes as usize],
        }
    }

    /// The node the next frame from `from` should land on. Pure: a
    /// blocked send re-asks every retry and must keep getting the same
    /// answer until [`Placement::commit`].
    pub fn peek(&self, from: u32) -> u32 {
        match self.policy {
            PlacementPolicy::RoundRobin => self.rr_next,
            // Work stealing places like the locality-aware policy at
            // birth and rebalances by frame migration afterwards
            // (driver serial phase) — push at allocation, pull once a
            // backlog actually forms.
            PlacementPolicy::LocalityAware | PlacementPolicy::WorkStealing => {
                let (argmin, min) = self
                    .live
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &l)| l)
                    .map(|(i, &l)| (i as u32, l))
                    .expect("placement over zero nodes");
                if self.live[from as usize] > min + LOCALITY_SLACK {
                    argmin
                } else {
                    from
                }
            }
        }
    }

    /// Record that a frame request was actually routed to `dest` (only
    /// called once the network accepted the message).
    pub fn commit(&mut self, dest: u32) {
        self.live[dest as usize] += 1;
        if self.policy == PlacementPolicy::RoundRobin {
            self.rr_next = (self.rr_next + 1) % self.live.len() as u32;
        }
    }

    /// Record that a frame on `node` was freed.
    pub fn freed(&mut self, node: u32) {
        self.live[node as usize] = self.live[node as usize].saturating_sub(1);
    }

    /// Live-frame census (tests and stats).
    pub fn live(&self) -> &[u64] {
        &self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_only_on_commit() {
        let mut p = Placement::new(PlacementPolicy::RoundRobin, 4);
        assert_eq!(p.peek(2), 0);
        assert_eq!(p.peek(2), 0, "peek is stable across send retries");
        p.commit(0);
        assert_eq!(p.peek(2), 1);
        p.commit(1);
        p.commit(2);
        p.commit(3);
        assert_eq!(p.peek(0), 0, "wraps");
        assert_eq!(p.live(), &[1, 1, 1, 1]);
    }

    #[test]
    fn locality_aware_stays_home_until_imbalanced() {
        let mut p = Placement::new(PlacementPolicy::LocalityAware, 4);
        // Within the slack the requester keeps its own frames.
        for _ in 0..=LOCALITY_SLACK {
            let d = p.peek(1);
            assert_eq!(d, 1);
            p.commit(d);
        }
        // Now node 1 exceeds min (0) + slack: shed to the least-loaded
        // node (lowest index on ties).
        assert_eq!(p.peek(1), 0);
        p.commit(0);
        // Frees rebalance the census.
        p.freed(1);
        assert_eq!(p.peek(1), 1);
    }
}
