//! The parallel mesh driver: phase-partitioned node execution across a
//! fixed pool of host threads, bit-identical to the serial drivers.
//!
//! ## Why the cycle structure parallelizes
//!
//! The serial driver's global cycle has three phases: (1) every node
//! steps at most one instruction, (2) the fabric moves messages one hop,
//! and (3) every node's NI retires at most one arrived message. Within
//! phase (1) node `i`'s step touches only its own machine, its own
//! inject buffer (a `SEND`'s `Busy` outcome depends solely on that
//! buffer), and — for `falloc`/`ffree` messages — the shared placement
//! state. Within phase (3) node `i` touches only its own machine and its
//! own receive buffer. Nodes are therefore independent within a phase
//! except for placement, and phases are separated by barriers exactly
//! where the serial driver separates them by program order.
//!
//! ## The protocol
//!
//! The main thread owns all state and runs every serial decision (wake
//! scan, quiescence backstop, fast-forward jump, fabric tick, watchdog)
//! exactly as the serial loop does. Nodes are partitioned into contiguous
//! chunks, one per worker; the main thread is worker 0 and owns the
//! lowest chunk. Each cycle the main thread publishes up to two commands
//! — [`Cmd::Step`] for phase (1), [`Cmd::Retire`] for phase (3) — via a
//! sequence-numbered round: it stores the command, bumps `go`
//! (`Release`), runs its own chunk, then spins until every worker has
//! published `done[t] == seq` (`Acquire`). Global fabric counters are
//! accumulated per worker in [`LaneDeltas`] and summed at the barrier
//! (sums commute, so the totals match the serial order).
//!
//! ## Determinism
//!
//! Three shared effects need node-order exactness, and each gets its own
//! mechanism:
//!
//! * **Placement** (`falloc` destination choice, census updates): worker
//!   `t`'s first placement access in a round spins until every lower
//!   worker has finished its whole chunk (`done[u] >= seq`), so
//!   placement operations happen in global node order and exactly one
//!   worker touches the state at a time. Lower workers never wait on
//!   higher ones, so the gate cannot deadlock.
//! * **Halt** ends the serial cycle *mid-phase*: nodes after the halting
//!   one do not step. Before each phase (1) the main thread asks every
//!   machine [`Machine::might_halt`] — an exact, side-effect-free replay
//!   of the step's dispatch decision against a precomputed
//!   [`HaltSet`] — and runs the whole phase serially when any node could
//!   halt (or wild-jump) this cycle. The analysis has no false
//!   negatives, so parallel rounds never see a halt.
//! * **Errors and panics** abort the attempt (queue doubling) or the
//!   process, so extra steps taken by other workers in the same round
//!   are discarded state; only *which* error surfaces must match, and
//!   node isolation plus the placement gate make each node's outcome
//!   identical to serial — the main thread picks the lowest-node error
//!   or panic, which is exactly the one the serial loop would hit first.
//!
//! Everything else a worker writes (machine state, access counters,
//! recorded traces, activity spans, NI stall counts, per-node buffer
//! telemetry) is indexed by node and owned by exactly one worker, so the
//! published results are bit-identical to the serial drivers — which the
//! differential tests and the CI determinism job enforce across thread
//! counts.

use crate::driver::{
    ActivityTrack, MeshExperiment, MeshRunResult, NodeHooks, NodeState, ThreadStats,
};
use crate::fabric::{Fabric, FabricLanes, LaneDeltas};
use crate::place::Placement;
use crate::port::NodePort;
use crate::serve::{ReqCell, ServePlan, ServeShared, ServeState};
use crate::steal::{StealEngine, StealView};
use crate::topology::MeshTopology;
use crate::{node_of, NODE_SHIFT};
use std::any::Any;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tamsim_core::{link, Linked};
use tamsim_mdp::{
    HaltReason, HaltSet, Machine, NetPort, Priority, RouteOutcome, RunError, RunStats, Step, Wake,
    Word,
};
use tamsim_tam::Program;
use tamsim_trace::{CountingSink, TraceLog};

/// One fanned-out phase of a global cycle.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// Phase (1): step every node once at fabric time `now` (== the
    /// global cycle at the top of the iteration).
    Step { now: u64 },
    /// Phase (3): retire at most one arrived message per node at fabric
    /// time `now` (== cycle + 1, after the tick).
    Retire { now: u64 },
}

/// Why an attempt ended (returned out of the thread scope so queue
/// doubling and the result build happen with the pool torn down).
enum End {
    /// The run completed; carries the final cycle count and the halting
    /// node, if any.
    Done(HaltReason, Option<usize>, u64),
    /// A node's local enqueue overflowed: double that queue and restart.
    Overflow(Priority),
    /// The gridlock watchdog tripped: double all queues and restart.
    Gridlock,
}

/// Per-worker communication slot. Owned by its worker during a round and
/// by the main thread between rounds (the `go`/`done` barrier pair
/// provides the happens-before edges).
#[derive(Default)]
struct WorkerSlot {
    /// Any node in the chunk executed an instruction or retired a
    /// message this round.
    progress: bool,
    /// First error in the chunk, in node order (the chunk stops there).
    error: Option<(usize, RunError)>,
    /// Payload of the first panic in the chunk, in node order.
    panic: Option<Box<dyn Any + Send>>,
    /// Global-counter deltas accumulated this round.
    deltas: LaneDeltas,
    /// Cumulative instructions executed by this chunk's nodes.
    steps: u64,
    /// Cumulative messages retired by this chunk's nodes.
    deliveries: u64,
    /// Requests completed (done replies ejected) by this chunk this
    /// round; folded into [`ServeState`] at the barrier.
    completed: u64,
    /// Work stealing: `ffree` loci that hit a migrated frame's new
    /// address, observed by this chunk this round (route and forward
    /// time). Folded at the barrier in worker order — which is node
    /// order — so entry retirement matches the serial drivers exactly.
    frees: Vec<u32>,
    /// Work stealing: home (`old`) addresses of the migrations this
    /// chunk installed this round; folded in worker order for the
    /// serial window's Pending→Active flips.
    installed: Vec<u32>,
}

/// The shared view handed to every worker: the round protocol plus raw
/// pointers into the main thread's per-attempt state.
///
/// Workers dereference only their own chunk's elements, only inside a
/// round; the main thread touches everything, only outside rounds. The
/// barrier sequence numbers order the two.
struct SharedMesh<'a, 'c> {
    /// Round sequence: bumped (`Release`) after `cmd` is written.
    go: AtomicU64,
    /// The command for the current round (valid while `go` is newer than
    /// a worker's last completed round).
    cmd: UnsafeCell<Cmd>,
    /// Per-worker last completed round (`Release` by the worker).
    done: Vec<AtomicU64>,
    /// Main-thread unwinding or run torn down: workers must exit.
    shutdown: AtomicBool,
    /// Contiguous node ranges, one per worker, in node order.
    ranges: Vec<Range<usize>>,
    machines: *mut Machine<'c>,
    hooks: *mut NodeHooks,
    activity: *mut ActivityTrack,
    stall_cycles: *mut u64,
    slots: *mut WorkerSlot,
    lanes: FabricLanes,
    placement: *mut Placement,
    linked: &'a Linked,
    nodes: u32,
    fast_forward: bool,
    is_am: bool,
    /// Work-stealing engine (null unless `--policy steal` on AM). Owned
    /// and mutated by the main thread in serial windows only; workers
    /// do read-only directory lookups during rounds — the same barrier
    /// discipline as `placement`, without even needing the node-order
    /// gate (lookups don't mutate).
    steal: *mut StealEngine,
    /// Serve-mode completion view (`None` on batch runs): workers eject
    /// done replies through it, each request exactly once.
    serve: Option<ServeShared>,
}

// SAFETY: raw pointers are dereferenced under the ownership discipline
// documented on the struct; the barrier protocol provides happens-before.
unsafe impl Sync for SharedMesh<'_, '_> {}

impl SharedMesh<'_, '_> {
    /// Run worker `t`'s chunk for round `seq`.
    ///
    /// # Safety
    /// Must only be called by worker `t` inside round `seq`.
    unsafe fn run_chunk(&self, t: usize, seq: u64, cmd: Cmd) {
        let slot = unsafe { &mut *self.slots.add(t) };
        slot.progress = false;
        slot.error = None;
        slot.deltas = LaneDeltas::default();
        slot.completed = 0;
        match cmd {
            Cmd::Step { now } => unsafe { self.step_chunk(t, seq, now, slot) },
            Cmd::Retire { now } => unsafe { self.retire_chunk(t, now, slot) },
        }
    }

    /// Phase (1) over worker `t`'s nodes: mirror of the serial step loop
    /// minus halts (the caller guarantees no node can halt this round).
    unsafe fn step_chunk(&self, t: usize, seq: u64, now: u64, slot: &mut WorkerSlot) {
        let mut gate_open = t == 0; // worker 0 never waits
        for n in self.ranges[t].clone() {
            let machine = unsafe { &mut *self.machines.add(n) };
            let activity = unsafe { &mut *self.activity.add(n) };
            if self.fast_forward && machine.is_idle() {
                activity.record(now, NodeState::Idle);
                continue;
            }
            let stepped = {
                let mut port = ParallelNodePort {
                    shared: self,
                    worker: t,
                    seq,
                    node: n as u32,
                    now,
                    gate_open: &mut gate_open,
                    deltas: &mut slot.deltas,
                    completed: &mut slot.completed,
                    frees: &mut slot.frees,
                };
                machine.step(unsafe { &mut (*self.hooks.add(n)) }, &mut port)
            };
            match stepped {
                Ok(Step::Ran) => {
                    slot.progress = true;
                    slot.steps += 1;
                    activity.record(now, NodeState::Run);
                }
                Ok(Step::Idle) => activity.record(now, NodeState::Idle),
                Ok(Step::Blocked) => {
                    unsafe { *self.stall_cycles.add(n) += 1 };
                    activity.record(now, NodeState::Stall);
                }
                Ok(Step::Halted(_)) => {
                    unreachable!("halt-capable cycles run on the serial path")
                }
                Err(e) => {
                    slot.error = Some((n, e));
                    return; // serial aborts the cycle here; state is discarded
                }
            }
        }
    }

    /// Phase (3) over worker `t`'s nodes: mirror of the serial retire
    /// loop (no halts or errors are possible here).
    unsafe fn retire_chunk(&self, t: usize, now: u64, slot: &mut WorkerSlot) {
        for n in self.ranges[t].clone() {
            let machine = unsafe { &mut *self.machines.add(n) };
            // Work stealing intercepts migrations (install into this
            // node) and messages addressed to frames that migrated away
            // (forward to the new home) — the exact mirror of the
            // serial driver's phase (3). All fabric access stays on
            // this node's own lanes.
            if let Some(eng) = unsafe { self.steal.as_ref() } {
                if let Some(head) = unsafe { self.lanes.ready_recv(n as u32, now) } {
                    if StealEngine::is_migration(&head.words) {
                        let words = head.words.clone();
                        let old = words[2].bits() as u32;
                        if eng.try_install(machine, &words, self.linked.start_low) {
                            unsafe { self.lanes.pop_recv(n as u32, now, &mut slot.deltas) };
                            slot.progress = true;
                            slot.deliveries += 1;
                            slot.installed.push(old);
                        } else {
                            unsafe { self.lanes.note_deliver_stall(n as u32, &mut slot.deltas) };
                        }
                        continue;
                    }
                    if eng.has_entries()
                        && head.words.len() >= 2
                        && head.words[1].bits() <= u32::MAX as u64
                    {
                        if let Some(e) = eng.forward_of(head.words[1].bits() as u32) {
                            let mut words = head.words.clone();
                            words[1] = Word::from_addr(e.new);
                            let pri = head.pri;
                            let is_free = words[0].bits() == self.linked.net.ffree_addr as u64;
                            let dest = node_of(e.new);
                            if unsafe {
                                self.lanes.try_inject(
                                    n as u32,
                                    dest,
                                    pri,
                                    &words,
                                    now,
                                    &mut slot.deltas,
                                )
                            } {
                                if is_free && eng.frees_new(e.new) {
                                    slot.frees.push(e.new);
                                }
                                unsafe { self.lanes.pop_recv(n as u32, now, &mut slot.deltas) };
                                slot.progress = true;
                                slot.deliveries += 1;
                            } else {
                                unsafe {
                                    self.lanes.note_deliver_stall(n as u32, &mut slot.deltas)
                                };
                            }
                            continue;
                        }
                    }
                }
            }
            let delivered = match unsafe { self.lanes.ready_recv(n as u32, now) } {
                Some(msg) => {
                    machine.try_deliver(msg.pri, &msg.words, unsafe { &mut (*self.hooks.add(n)) })
                }
                None => continue,
            };
            if delivered {
                unsafe { self.lanes.pop_recv(n as u32, now, &mut slot.deltas) };
                slot.progress = true;
                slot.deliveries += 1;
                if self.is_am && machine.low_suspended() {
                    machine.start_low(self.linked.start_low);
                }
            } else {
                unsafe { self.lanes.note_deliver_stall(n as u32, &mut slot.deltas) };
            }
        }
    }
}

/// Spin briefly, then yield: the pool may be oversubscribed (CI runners
/// commonly expose a single core), where pure spinning would stall every
/// barrier for a scheduler quantum.
#[inline]
fn relax(spins: &mut u32) {
    *spins += 1;
    if *spins > 64 {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

/// The worker loop for threads 1..T (the main thread is worker 0 and
/// runs its chunk inline).
fn worker(shared: &SharedMesh<'_, '_>, t: usize) {
    let mut seen = 0u64;
    loop {
        let mut spins = 0;
        let seq = loop {
            let g = shared.go.load(Ordering::Acquire);
            if g > seen {
                break g;
            }
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            relax(&mut spins);
        };
        seen = seq;
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let cmd = unsafe { *shared.cmd.get() };
        // Catch panics so the barrier always completes: the payload is
        // surfaced by the main thread as the lowest-node panic, exactly
        // the one serial execution would raise.
        if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| unsafe {
            shared.run_chunk(t, seq, cmd)
        })) {
            let slot = unsafe { &mut *shared.slots.add(t) };
            slot.panic = Some(p);
        }
        shared.done[t].store(seq, Ordering::Release);
    }
}

/// Worker `t`'s node port: [`NodePort`]'s exact routing decision with
/// fabric access through [`FabricLanes`] and placement access behind the
/// node-order gate.
struct ParallelNodePort<'a, 'b, 'c> {
    shared: &'a SharedMesh<'b, 'c>,
    worker: usize,
    seq: u64,
    node: u32,
    now: u64,
    /// Whether this worker's placement gate has already passed this
    /// round (pay the wait once, on the first placement access).
    gate_open: &'a mut bool,
    deltas: &'a mut LaneDeltas,
    /// This worker's per-round completion count (`WorkerSlot::completed`).
    completed: &'a mut u64,
    /// This worker's per-round migrated-frame free captures
    /// (`WorkerSlot::frees`).
    frees: &'a mut Vec<u32>,
}

impl ParallelNodePort<'_, '_, '_> {
    /// Placement access in global node order: wait until every lower
    /// worker has finished its whole chunk for this round. Lower workers
    /// never wait on higher ones, so progress is guaranteed; the
    /// `Acquire` loads pair with their `done` stores, so all their
    /// placement updates are visible.
    fn placement(&mut self) -> &mut Placement {
        if !*self.gate_open {
            for u in 0..self.worker {
                let mut spins = 0;
                while self.shared.done[u].load(Ordering::Acquire) < self.seq {
                    if self.shared.shutdown.load(Ordering::Relaxed) {
                        // The main thread is unwinding; this sentinel
                        // unwinds the chunk and is never surfaced (the
                        // main thread's own panic wins).
                        panic!("mesh worker shutdown");
                    }
                    relax(&mut spins);
                }
            }
            *self.gate_open = true;
        }
        unsafe { &mut *self.shared.placement }
    }

    /// Mirror of `NodePort::destination`.
    fn destination(&mut self, words: &[Word]) -> Option<u32> {
        if words.len() < 2 {
            return None;
        }
        if words[0].bits() == self.shared.linked.net.falloc_addr as u64 {
            let node = self.node;
            return Some(self.placement().peek(node));
        }
        let locus = words[1].bits();
        if locus > u32::MAX as u64 {
            return None;
        }
        let node = node_of(locus as u32);
        (node < self.shared.nodes).then_some(node)
    }
}

impl NetPort for ParallelNodePort<'_, '_, '_> {
    fn route(&mut self, pri: Priority, words: &[Word]) -> RouteOutcome {
        // Serve mode: eject done replies off-mesh before any routing
        // rule, mirroring `NodePort::route`. A request completes exactly
        // once, so no two workers ever write the same cell; the count is
        // accumulated per worker and folded in at the barrier.
        if let Some(sv) = self.shared.serve {
            if words.first().copied().map(Word::bits) == Some(sv.done_addr) {
                unsafe { sv.complete(self.now, words) };
                *self.completed += 1;
                return RouteOutcome::Injected;
            }
        }
        // Work stealing: mirror of `NodePort::route`'s locus rewrite —
        // directory lookups are read-only, so no node-order gate is
        // needed (the directory only changes in serial windows).
        let mut rewritten: Option<Vec<Word>> = None;
        if let Some(eng) = unsafe { self.shared.steal.as_ref() } {
            if eng.has_entries()
                && words.len() >= 2
                && words[0].bits() != self.shared.linked.net.falloc_addr as u64
                && words[1].bits() <= u32::MAX as u64
            {
                let locus = words[1].bits() as u32;
                let mut target = eng.resolve(locus);
                if let Some(e) = eng.forward_of(target) {
                    // Pending entry: chase it only from its home node,
                    // where the rewritten message rides the migration's
                    // own FIFO path (see `NodePort::route`).
                    if node_of(target) == self.node {
                        target = e.new;
                    }
                }
                if target != locus {
                    let mut w = words.to_vec();
                    w[1] = Word::from_addr(target);
                    rewritten = Some(w);
                }
            }
        }
        let words: &[Word] = rewritten.as_deref().unwrap_or(words);
        let dest = self.destination(words).unwrap_or(self.node);
        // A rewritten self-send must go through the fabric's zero-hop
        // path: `RouteOutcome::Local` would enqueue the un-rewritten
        // words (see `NodePort::route`).
        let outcome = if dest == self.node && rewritten.is_none() {
            RouteOutcome::Local
        } else if unsafe {
            self.shared
                .lanes
                .try_inject(self.node, dest, pri, words, self.now, self.deltas)
        } {
            RouteOutcome::Injected
        } else {
            return RouteOutcome::Busy; // nothing committed; retried verbatim
        };
        let info = self.shared.linked.net;
        let handler = words[0].bits();
        if handler == info.falloc_addr as u64 {
            self.placement().commit(dest);
        } else if handler == info.ffree_addr as u64 && words.len() >= 2 {
            let frame = words[1].bits();
            if frame <= u32::MAX as u64 {
                let nodes = self.shared.nodes;
                self.placement().freed(node_of(frame as u32).min(nodes - 1));
                if let Some(eng) = unsafe { self.shared.steal.as_ref() } {
                    if eng.frees_new(frame as u32) {
                        self.frees.push(frame as u32);
                    }
                }
            }
        }
        outcome
    }
}

/// Sets the shutdown flag when the main thread unwinds between rounds,
/// releasing workers parked on the `go` spin (and any placement gate)
/// before the scope's implicit join.
struct ShutdownGuard<'a>(&'a AtomicBool);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

impl MeshExperiment {
    /// The parallel run loop. Preconditions (checked by the dispatcher in
    /// [`MeshExperiment::run`]): `threads > 1`, `nodes > 1`, untraced.
    pub(crate) fn run_parallel(&self, program: &Program) -> MeshRunResult {
        self.run_parallel_serve(program, None).0
    }

    /// The parallel run loop, optionally in serve mode (see `serve.rs`):
    /// the serial window pumps arrivals exactly as the serial drivers do,
    /// workers eject done replies through [`ServeShared`], and per-round
    /// completion counts fold back into the main thread's [`ServeState`]
    /// at the barrier — so completion records are bit-identical to the
    /// serial drivers at every thread count.
    pub(crate) fn run_parallel_serve(
        &self,
        program: &Program,
        plan: Option<&ServePlan>,
    ) -> (MeshRunResult, Option<Vec<ReqCell>>) {
        let topo = MeshTopology::for_nodes(self.nodes);
        let k = self.nodes as usize;
        let t_count = (self.threads as usize).min(k);
        let mut queue_words = self.queue_words;
        let mut watchdog_trips: u32 = 0;
        let mut backstop_rearms: u64 = 0;

        'attempt: loop {
            let linked = link(
                program,
                self.implementation,
                self.opts,
                self.config(queue_words),
            );
            assert_eq!(
                linked.cfg.map.top,
                1 << NODE_SHIFT,
                "node tag would collide with the local address space"
            );
            let halts = HaltSet::new(&linked.code);
            let mut machines = self.boot_nodes(&linked, plan.is_none());
            let mut serve = plan.map(|p| ServeState::new(p, &linked, k));
            let mut hooks: Vec<NodeHooks> = (0..k)
                .map(|_| NodeHooks {
                    counts: CountingSink::new(linked.cfg.map),
                    log: self.record.then(TraceLog::new),
                })
                .collect();
            let mut fabric = Fabric::new(topo, self.net);
            let mut placement = Placement::new(self.placement, self.nodes);
            if plan.is_none() {
                placement.commit(0); // the boot message allocates main's frame
            }
            // Work-stealing engine (see driver.rs for the gate): owned
            // here, mutated only in serial windows, visible to workers
            // read-only through `SharedMesh::steal`.
            let mut steal = (self.placement == crate::place::PlacementPolicy::WorkStealing
                && self.implementation.is_am()
                && self.nodes > 1)
                .then(|| StealEngine::new(&linked, topo, self.net.inject_capacity));
            let mut steal_installed: Vec<u32> = Vec::new();
            let mut steal_freed: Vec<u32> = Vec::new();
            let mut stall_cycles = vec![0u64; k];
            let mut activity = vec![ActivityTrack::default(); k];
            let mut slots: Vec<WorkerSlot> = (0..t_count).map(|_| WorkerSlot::default()).collect();
            let ranges: Vec<Range<usize>> = (0..t_count)
                .map(|t| (t * k / t_count)..((t + 1) * k / t_count))
                .collect();
            // Node → owning worker, for attributing serial-path steps.
            let owner: Vec<usize> = (0..k)
                .map(|n| ranges.iter().position(|r| r.contains(&n)).unwrap())
                .collect();

            let shared = SharedMesh {
                go: AtomicU64::new(0),
                cmd: UnsafeCell::new(Cmd::Step { now: 0 }),
                done: (0..t_count).map(|_| AtomicU64::new(0)).collect(),
                shutdown: AtomicBool::new(false),
                ranges,
                machines: machines.as_mut_ptr(),
                hooks: hooks.as_mut_ptr(),
                activity: activity.as_mut_ptr(),
                stall_cycles: stall_cycles.as_mut_ptr(),
                slots: slots.as_mut_ptr(),
                lanes: fabric.lanes(),
                placement: &mut placement,
                linked: &linked,
                nodes: self.nodes,
                fast_forward: self.fast_forward,
                is_am: self.implementation.is_am(),
                steal: steal
                    .as_mut()
                    .map_or(std::ptr::null_mut(), |e| e as *mut StealEngine),
                serve: serve.as_mut().map(|s| s.shared()),
            };

            let end = std::thread::scope(|scope| {
                for t in 1..t_count {
                    let sh = &shared;
                    scope.spawn(move || worker(sh, t));
                }
                // Dropped when this closure exits — normally or by panic —
                // before the scope joins, so workers always drain.
                let _guard = ShutdownGuard(&shared.shutdown);

                let mut seq: u64 = 0;
                let mut cycle: u64 = 0;
                let mut last_progress: u64 = 0;
                let mut prev_moves: u64 = 0;
                let mut halted_node: Option<usize> = None;

                // Publish a round, run the main thread's own chunk, and
                // wait for the pool; then fold the slots into the shared
                // state and surface the lowest-node error or panic.
                let run_round = |seq: &mut u64,
                                 cmd: Cmd,
                                 fabric: &mut Fabric,
                                 slots: &mut [WorkerSlot],
                                 progress: &mut bool,
                                 completed: &mut u64|
                 -> Option<(usize, RunError)> {
                    unsafe { *shared.cmd.get() = cmd };
                    *seq += 1;
                    shared.go.store(*seq, Ordering::Release);
                    unsafe { shared.run_chunk(0, *seq, cmd) };
                    shared.done[0].store(*seq, Ordering::Release);
                    for t in 1..t_count {
                        let mut spins = 0;
                        while shared.done[t].load(Ordering::Acquire) < *seq {
                            relax(&mut spins);
                        }
                    }
                    let mut first_error: Option<(usize, RunError)> = None;
                    let mut first_panic: Option<Box<dyn Any + Send>> = None;
                    for slot in slots.iter_mut() {
                        *progress |= slot.progress;
                        *completed += slot.completed;
                        fabric.absorb(&slot.deltas);
                        if first_error.is_none() && first_panic.is_none() {
                            if let Some(p) = slot.panic.take() {
                                first_panic = Some(p);
                            } else if let Some(e) = slot.error {
                                first_error = Some(e);
                            }
                        }
                    }
                    if let Some(p) = first_panic {
                        panic::resume_unwind(p); // guard releases the pool
                    }
                    first_error
                };

                let halt = loop {
                    // Serial window: workers are parked, the main thread
                    // owns everything. This mirrors the serial loop line
                    // for line — including the serve-mode arrival pump at
                    // the top of every global cycle.
                    if let Some(sv) = serve.as_mut() {
                        sv.pump(
                            cycle,
                            &mut machines,
                            &mut hooks,
                            &mut placement,
                            &mut crate::hooks::NoNetHooks,
                            linked.start_low,
                            self.implementation.is_am(),
                        );
                    }
                    let all_waiting = if self.fast_forward {
                        machines.iter().all(|m| m.next_wake() == Wake::OnDelivery)
                    } else {
                        fabric.is_empty() && machines.iter().all(Machine::is_idle)
                    };
                    let fabric_empty =
                        all_waiting && (!self.fast_forward || fabric.msg_count() == 0);
                    if fabric_empty {
                        let mut rearmed = false;
                        if self.nodes > 1 && self.implementation.is_am() {
                            for m in &mut machines {
                                if m.mem.read(linked.net.q_head).bits() != 0 {
                                    m.start_low(linked.start_low);
                                    rearmed = true;
                                    backstop_rearms += 1;
                                }
                            }
                        }
                        if !rearmed {
                            match serve.as_ref() {
                                Some(sv) if !sv.drained() => {
                                    // Mesh drained, schedule not: jump
                                    // (ff) or tick (lockstep) through the
                                    // arrival gap, as the serial drivers
                                    // do.
                                    let target = sv
                                        .next_arrival_cycle()
                                        .expect("idle serve run with requests unaccounted for");
                                    debug_assert!(target > cycle);
                                    if self.fast_forward {
                                        let delta = target - cycle;
                                        for a in &mut activity {
                                            a.record_span(cycle, NodeState::Idle, delta);
                                        }
                                        fabric.skip_to(target);
                                        cycle = target;
                                        last_progress = target;
                                        continue;
                                    }
                                    last_progress = cycle;
                                }
                                _ => break HaltReason::Quiescent,
                            }
                        }
                    }
                    if self.fast_forward && all_waiting && !fabric_empty {
                        if let Some(horizon) = fabric.next_horizon() {
                            debug_assert!(horizon > cycle);
                            // Serve mode clamps the jump to the next
                            // arrival, as in the serial driver.
                            let target = serve
                                .as_ref()
                                .and_then(|s| s.next_arrival_cycle())
                                .map_or(horizon, |a| horizon.min(a.max(cycle + 1)));
                            if target > last_progress + self.watchdog_cycles {
                                return End::Gridlock;
                            }
                            let delta = target - cycle;
                            for a in &mut activity {
                                a.record_span(cycle, NodeState::Idle, delta);
                            }
                            fabric.skip_to(target);
                            cycle = target;
                            // Arrivals due exactly at `target` inject now
                            // (the loop-top pump this jump skipped over).
                            if let Some(sv) = serve.as_mut() {
                                sv.pump(
                                    cycle,
                                    &mut machines,
                                    &mut hooks,
                                    &mut placement,
                                    &mut crate::hooks::NoNetHooks,
                                    linked.start_low,
                                    self.implementation.is_am(),
                                );
                            }
                        }
                    }

                    // Work stealing: settle the previous cycle's installs
                    // and frees, then scan — in the serial window, at the
                    // exact point the serial drivers do it (see
                    // driver.rs for the determinism argument).
                    if let Some(eng) = steal.as_mut() {
                        eng.settle(&steal_installed, &steal_freed, &mut machines);
                        steal_installed.clear();
                        steal_freed.clear();
                        if machines.iter().any(|m| m.next_wake() == Wake::Now) {
                            eng.scan(
                                &mut machines,
                                &mut fabric,
                                &mut placement,
                                &mut crate::hooks::NoNetHooks,
                            );
                        }
                    }

                    // (1) Every node executes at most one instruction. A
                    // halt ends the serial cycle mid-phase (later nodes
                    // do not step), so any cycle where some node *might*
                    // halt runs the phase serially; `might_halt` has no
                    // false negatives, so parallel rounds never halt.
                    let mut progress = false;
                    let mut completed = 0u64;
                    if machines.iter().any(|m| m.might_halt(&halts)) {
                        for n in 0..k {
                            if self.fast_forward && machines[n].is_idle() {
                                activity[n].record(cycle, NodeState::Idle);
                                continue;
                            }
                            let stepped = {
                                let mut port = NodePort {
                                    node: n as u32,
                                    info: linked.net,
                                    fabric: &mut fabric,
                                    placement: &mut placement,
                                    hooks: &mut crate::hooks::NoNetHooks,
                                    serve: serve.as_mut().map(|s| s.tap(cycle)),
                                    steal: steal.as_ref().map(|engine| StealView {
                                        engine,
                                        frees: &mut steal_freed,
                                    }),
                                };
                                machines[n].step(&mut hooks[n], &mut port)
                            };
                            match stepped {
                                Ok(Step::Ran) => {
                                    progress = true;
                                    slots[owner[n]].steps += 1;
                                    activity[n].record(cycle, NodeState::Run);
                                }
                                Ok(Step::Idle) => activity[n].record(cycle, NodeState::Idle),
                                Ok(Step::Blocked) => {
                                    stall_cycles[n] += 1;
                                    activity[n].record(cycle, NodeState::Stall);
                                }
                                Ok(Step::Halted(_)) => {
                                    slots[owner[n]].steps += 1;
                                    activity[n].record(cycle, NodeState::Run);
                                    halted_node = Some(n);
                                    cycle += 1;
                                    break;
                                }
                                Err(RunError::QueueOverflow { pri }) => {
                                    return End::Overflow(pri);
                                }
                                Err(e) => panic!(
                                    "program {} failed on node {n} under {:?}: {e}",
                                    program.name, self.implementation
                                ),
                            }
                        }
                        if halted_node.is_some() {
                            break HaltReason::Explicit;
                        }
                    } else if let Some((n, e)) = run_round(
                        &mut seq,
                        Cmd::Step { now: cycle },
                        &mut fabric,
                        &mut slots,
                        &mut progress,
                        &mut completed,
                    ) {
                        match e {
                            RunError::QueueOverflow { pri } => return End::Overflow(pri),
                            e => panic!(
                                "program {} failed on node {n} under {:?}: {e}",
                                program.name, self.implementation
                            ),
                        }
                    }
                    if let Some(sv) = serve.as_mut() {
                        // Fold the parallel rounds' completion counts back
                        // into the serve state (the serial path's tap
                        // already wrote there directly).
                        sv.completed += completed;
                    }
                    if steal.is_some() {
                        // Fold route-time free captures in worker order
                        // (= node order, matching the serial drivers).
                        for slot in slots.iter_mut() {
                            steal_freed.append(&mut slot.frees);
                        }
                    }

                    // (2) The fabric moves messages one hop (empty-fabric
                    // fast path as in the serial driver).
                    if self.fast_forward && fabric.msg_count() == 0 {
                        fabric.skip_to(cycle + 1);
                        cycle += 1;
                        if progress {
                            last_progress = cycle;
                        } else if cycle - last_progress > self.watchdog_cycles {
                            return End::Gridlock;
                        }
                        continue;
                    }
                    fabric.tick();

                    // (3) Each NI retires at most one arrived message
                    // (no halts or errors possible: always parallel).
                    let mut retire_completed = 0u64;
                    let err = run_round(
                        &mut seq,
                        Cmd::Retire { now: fabric.now() },
                        &mut fabric,
                        &mut slots,
                        &mut progress,
                        &mut retire_completed,
                    );
                    debug_assert!(err.is_none(), "retire phase cannot error");
                    debug_assert_eq!(retire_completed, 0, "retiring never routes a reply");
                    if steal.is_some() {
                        // Fold installs and forward-time free captures in
                        // worker order (= node order); the next serial
                        // window settles them.
                        for slot in slots.iter_mut() {
                            steal_installed.append(&mut slot.installed);
                            steal_freed.append(&mut slot.frees);
                        }
                    }

                    cycle += 1;
                    if progress || fabric.moves() != prev_moves {
                        prev_moves = fabric.moves();
                        last_progress = cycle;
                    } else if cycle - last_progress > self.watchdog_cycles {
                        return End::Gridlock;
                    }
                };
                End::Done(halt, halted_node, cycle)
            });

            match end {
                End::Overflow(pri) => {
                    let i = pri.index();
                    assert!(
                        queue_words[i] < 1 << 22,
                        "queue demand implausibly large; runaway program?"
                    );
                    queue_words[i] *= 2;
                    continue 'attempt;
                }
                End::Gridlock => {
                    watchdog_trips += 1;
                    self.double_queues_for_gridlock(&mut queue_words);
                    continue 'attempt;
                }
                End::Done(halt, halted_node, cycle) => {
                    let stats: Vec<RunStats> = machines
                        .iter()
                        .enumerate()
                        .map(|(n, m)| {
                            m.stats(if halted_node == Some(n) {
                                halt
                            } else {
                                HaltReason::Quiescent
                            })
                        })
                        .collect();
                    let thread_stats = slots
                        .iter()
                        .enumerate()
                        .map(|(t, s)| ThreadStats {
                            first_node: (t * k / t_count) as u32,
                            nodes: ((t + 1) * k / t_count - t * k / t_count) as u32,
                            steps: s.steps,
                            deliveries: s.deliveries,
                        })
                        .collect();
                    let run = MeshRunResult {
                        implementation: self.implementation,
                        policy: self.placement,
                        nodes: self.nodes,
                        width: topo.width,
                        height: topo.height,
                        cycles: cycle,
                        halt,
                        result: linked.read_result(&machines[0]),
                        arrays: linked.read_arrays(&machines[0]),
                        instructions: stats.iter().map(|s| s.instructions).sum(),
                        stats,
                        counts: hooks.iter().map(|h| h.counts.counts).collect(),
                        stall_cycles,
                        net: fabric.stats(),
                        deliver_stalls: fabric.deliver_stalls_by_node().to_vec(),
                        link_stats: fabric.link_stats(),
                        net_trace: None,
                        queue_words,
                        activity,
                        live_frames: placement.live().to_vec(),
                        steals: steal
                            .as_ref()
                            .map_or_else(|| vec![0; k], |e| e.steals_from.clone()),
                        watchdog_trips,
                        backstop_rearms,
                        logs: self
                            .record
                            .then(|| hooks.into_iter().map(|h| h.log.unwrap()).collect()),
                        thread_stats: Some(thread_stats),
                    };
                    return (run, serve.map(|s| s.cells));
                }
            }
        }
    }
}
