//! Fabric observation hooks: the network analogue of `tamsim_mdp::Hooks`.
//!
//! The fabric and the mesh driver call these methods at every message
//! lifecycle edge — injection, each link traversal, ejection into the
//! receive queue, delivery into the machine queue, handler dispatch — plus
//! the stall edges (refused injection, a ready head stuck behind
//! back-pressure, a held delivery) and every buffer-occupancy change. The
//! trait is monomorphized exactly like `mdp::Hooks`: with [`NoNetHooks`]
//! every call inlines to nothing and the un-traced driver compiles to the
//! same loop it had before tracing existed, which is why instrumented and
//! uninstrumented runs are bit-identical (the differential tests enforce
//! it).
//!
//! The driver additionally consults [`NetHooks::ENABLED`] to skip its own
//! bookkeeping (dispatch matching) at compile time when tracing is off.
//!
//! Cycle arguments are always the fabric clock ([`crate::Fabric::now`]),
//! which equals the driver's global cycle at every call site.

use crate::topology::Dir;
use tamsim_mdp::Priority;

/// Which bounded buffer an occupancy or telemetry datum refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufKind {
    /// A node's NI inject queue (processor side).
    Inject,
    /// A node's NI receive queue (ejection side).
    Recv,
    /// A link input buffer at the node, for messages travelling in the
    /// given direction (arriving from the neighbour on the opposite
    /// side).
    Link(Dir),
}

impl BufKind {
    /// Short stable label ("inject", "recv", "east", ...).
    pub fn label(self) -> &'static str {
        match self {
            BufKind::Inject => "inject",
            BufKind::Recv => "recv",
            BufKind::Link(Dir::East) => "east",
            BufKind::Link(Dir::West) => "west",
            BufKind::Link(Dir::North) => "north",
            BufKind::Link(Dir::South) => "south",
        }
    }
}

/// Observation callbacks for everything that happens inside the fabric.
///
/// All methods default to no-ops so implementors opt into exactly the
/// edges they care about. Everything is `#[inline]`-friendly by
/// construction: the fabric is generic over `H`, so a [`NoNetHooks`] run
/// monomorphizes every call away.
pub trait NetHooks {
    /// Whether this hook set observes anything. The mesh driver checks
    /// this at compile time to skip its dispatch-attribution bookkeeping
    /// entirely on un-traced runs.
    const ENABLED: bool = true;

    /// A fresh attempt is starting (the driver restarts on queue
    /// auto-sizing); drop everything recorded so far.
    fn reset(&mut self, _nodes: u32) {}

    /// A message entered `src`'s inject queue, bound for `dest`.
    fn inject(&mut self, _id: u64, _src: u32, _dest: u32, _pri: Priority, _len: u32, _cycle: u64) {}

    /// `try_inject` refused a message at `node` (NI full; the sender's
    /// `SEND` burns the cycle stalled).
    fn inject_stall(&mut self, _node: u32, _cycle: u64) {}

    /// Message `id` left `node` heading `dir` (one link traversal; it is
    /// now in the next node's `dir` input buffer).
    fn hop(&mut self, _id: u64, _node: u32, _dir: Dir, _cycle: u64) {}

    /// Message `id` sat a cycle at a buffer head because its next buffer
    /// had no room (hop-level back-pressure).
    fn hop_stall(&mut self, _id: u64, _node: u32, _cycle: u64) {}

    /// Message `id` was ejected into `node`'s receive queue.
    fn eject(&mut self, _id: u64, _node: u32, _cycle: u64) {}

    /// Message `id` was handed to `node`'s machine queue.
    fn deliver(
        &mut self,
        _id: u64,
        _node: u32,
        _pri: Priority,
        _hops: u32,
        _injected_at: u64,
        _cycle: u64,
    ) {
    }

    /// Message `id` sat a cycle at `node`'s receive-queue head because
    /// the machine queue was full (last-hop back-pressure).
    fn deliver_stall(&mut self, _id: u64, _node: u32, _cycle: u64) {}

    /// A message entered `node`'s machine queue without touching the
    /// fabric (a local `SEND` or the boot message) — it occupies a
    /// machine-queue slot ahead of later deliveries, which the dispatch
    /// matcher must account for.
    fn local_enqueue(&mut self, _node: u32, _pri: Priority, _cycle: u64) {}

    /// `node`'s machine popped one `pri` message from its queue and
    /// started its handler (reported by the driver, which detects the
    /// machine's free dispatch transition).
    fn dispatch(&mut self, _node: u32, _pri: Priority, _cycle: u64) {}

    /// A buffer's occupancy changed (after a push or pop).
    fn occupancy(&mut self, _node: u32, _kind: BufKind, _used_words: u32, _cycle: u64) {}
}

/// The do-nothing hook set: every call compiles away, making the
/// un-traced fabric identical to the pre-observability one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoNetHooks;

impl NetHooks for NoNetHooks {
    const ENABLED: bool = false;
}

impl<H: NetHooks> NetHooks for &mut H {
    const ENABLED: bool = H::ENABLED;

    #[inline]
    fn reset(&mut self, nodes: u32) {
        (**self).reset(nodes);
    }

    #[inline]
    fn inject(&mut self, id: u64, src: u32, dest: u32, pri: Priority, len: u32, cycle: u64) {
        (**self).inject(id, src, dest, pri, len, cycle);
    }

    #[inline]
    fn inject_stall(&mut self, node: u32, cycle: u64) {
        (**self).inject_stall(node, cycle);
    }

    #[inline]
    fn hop(&mut self, id: u64, node: u32, dir: Dir, cycle: u64) {
        (**self).hop(id, node, dir, cycle);
    }

    #[inline]
    fn hop_stall(&mut self, id: u64, node: u32, cycle: u64) {
        (**self).hop_stall(id, node, cycle);
    }

    #[inline]
    fn eject(&mut self, id: u64, node: u32, cycle: u64) {
        (**self).eject(id, node, cycle);
    }

    #[inline]
    fn deliver(
        &mut self,
        id: u64,
        node: u32,
        pri: Priority,
        hops: u32,
        injected_at: u64,
        cycle: u64,
    ) {
        (**self).deliver(id, node, pri, hops, injected_at, cycle);
    }

    #[inline]
    fn deliver_stall(&mut self, id: u64, node: u32, cycle: u64) {
        (**self).deliver_stall(id, node, cycle);
    }

    #[inline]
    fn local_enqueue(&mut self, node: u32, pri: Priority, cycle: u64) {
        (**self).local_enqueue(node, pri, cycle);
    }

    #[inline]
    fn dispatch(&mut self, node: u32, pri: Priority, cycle: u64) {
        (**self).dispatch(node, pri, cycle);
    }

    #[inline]
    fn occupancy(&mut self, node: u32, kind: BufKind, used_words: u32, cycle: u64) {
        (**self).occupancy(node, kind, used_words, cycle);
    }
}
