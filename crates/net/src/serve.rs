//! Open-loop request serving on the mesh: a deterministic arrival
//! process injects independent call-DAG requests at a target offered
//! load, and the drivers track each request's inject → complete
//! lifecycle.
//!
//! ## The request model
//!
//! One program is linked once; each request is one invocation of its
//! `main`. A request's boot message is the batch boot
//! (`[falloc, main, argc, parent, done, args...]`) with the parent word
//! patched to `node_tag(origin) | request_id` — a pseudo frame address
//! that names the external client. The boot is delivered straight into
//! the origin node's queue (an RPC arriving at a front-end node), so the
//! request's root frame is allocated from the origin's arena; child
//! frames of its call DAG follow the configured placement policy.
//!
//! When `main` returns, the lowered return sequence sends
//! `[done, parent, vals...]` toward the parent frame's home node — the
//! origin. A serve-mode network interface recognizes the done handler's
//! address ([`tamsim_core::NetInfo::done_addr`]) and *ejects the reply
//! off-mesh* instead of routing it: the completion cycle and result
//! words are recorded against the request id carried in the parent word,
//! the send reports [`tamsim_mdp::RouteOutcome::Injected`], and the done
//! handler (whose `HALT` would stop the whole mesh) never dispatches.
//! Interception happens identically in all three drivers, so completion
//! records are bit-identical across lockstep, fast-forward, and any
//! parallel thread count.
//!
//! ## Arrivals
//!
//! The schedule is precomputed by [`arrival_schedule`] from a SplitMix64
//! stream: either a discrete Poisson process (one Bernoulli trial per
//! cycle — geometric gaps) or fixed-rate spacing. All arithmetic is
//! integer fixed-point, so schedules are bit-stable across hosts. A
//! request whose origin queue is full waits in a per-node FIFO and is
//! injected as soon as space frees (open-loop back-pressure: nothing is
//! ever dropped); its reported latency runs from *arrival*, so entry
//! queueing is part of the tail, exactly as a client would see it.

use std::collections::VecDeque;

use crate::driver::{MeshExperiment, MeshRunResult, NodeHooks};
use crate::hooks::{NetHooks, NoNetHooks};
use crate::place::Placement;
use crate::{node_tag, LOCAL_MASK};
use tamsim_core::Linked;
use tamsim_mdp::{HaltReason, Machine, Priority, Word};
use tamsim_tam::Program;

/// SplitMix64 (Steele, Lea & Flood; public domain reference constants).
/// A private copy, like the fuzzer's: the crates stay independently
/// buildable and the streams are deliberately unrelated — an arrival
/// schedule must never correlate with a fuzz shape or benchmark input.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Discrete Poisson process: one Bernoulli(rate) trial per cycle,
    /// so inter-arrival gaps are geometric.
    Poisson,
    /// Evenly spaced arrivals at exactly the offered rate.
    Fixed,
}

/// Spatial distribution of request origins across the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OriginDist {
    /// Origins uniform over the nodes (multiply-shift on the arrival
    /// rng) — the balanced baseline.
    #[default]
    Uniform,
    /// Every request arrives at node 0 (a mesh corner): the worst-case
    /// hot-spot that static placement cannot spread, and the scenario
    /// the work-stealing policy is measured on.
    Corner,
}

impl OriginDist {
    /// Stable CLI / CSV label.
    pub fn label(self) -> &'static str {
        match self {
            OriginDist::Uniform => "uniform",
            OriginDist::Corner => "corner",
        }
    }

    /// Parse a [`OriginDist::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "uniform" => Some(OriginDist::Uniform),
            "corner" => Some(OriginDist::Corner),
            _ => None,
        }
    }
}

/// An offered-load scenario: how many requests, how fast, from which
/// seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Offered load in requests per million cycles.
    pub rate_ppm: u64,
    /// Total requests to inject.
    pub requests: u32,
    /// Seed of the arrival stream (times and origin nodes).
    pub seed: u64,
    /// Arrival process shape.
    pub kind: ArrivalKind,
    /// Where requests enter the mesh.
    pub origins: OriginDist,
}

impl ServeConfig {
    /// A Poisson scenario with uniform origins.
    pub fn new(rate_ppm: u64, requests: u32, seed: u64) -> Self {
        ServeConfig {
            rate_ppm,
            requests,
            seed,
            kind: ArrivalKind::Poisson,
            origins: OriginDist::Uniform,
        }
    }
}

/// One scheduled request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Request id (arrival order, dense from 0).
    pub id: u32,
    /// Global cycle the request arrives at its origin node.
    pub cycle: u64,
    /// Origin node.
    pub node: u32,
}

/// Precompute the full arrival schedule for `cfg` on a `nodes`-node
/// mesh: deterministic in `(cfg, nodes)`, integer-only, bit-stable
/// across hosts. Origin nodes follow [`ServeConfig::origins`]
/// (uniform multiply-shift, or all at corner node 0).
///
/// # Panics
/// Panics when the rate is zero, `nodes` is zero, or the request count
/// does not fit the local part of a node-tagged parent word.
pub fn arrival_schedule(cfg: &ServeConfig, nodes: u32) -> Vec<Arrival> {
    assert!(cfg.rate_ppm > 0, "offered load must be positive");
    assert!(nodes > 0, "mesh must have at least one node");
    assert!(
        (cfg.requests as u64) <= LOCAL_MASK as u64,
        "request ids must fit the local part of the parent tag"
    );
    let mut rng = SplitMix64::new(cfg.seed);
    // The uniform draw is taken (and, under `Corner`, discarded) for
    // every arrival regardless of the origin distribution, so the two
    // distributions produce *identical arrival times* from the same
    // seed — corner-vs-uniform comparisons isolate the spatial skew.
    let dist = cfg.origins;
    let origin = move |rng: &mut SplitMix64| {
        let uniform = ((rng.next_u64() as u128 * nodes as u128) >> 64) as u32;
        match dist {
            OriginDist::Uniform => uniform,
            OriginDist::Corner => 0,
        }
    };
    let mut out = Vec::with_capacity(cfg.requests as usize);
    match cfg.kind {
        ArrivalKind::Fixed => {
            for id in 0..cfg.requests {
                out.push(Arrival {
                    id,
                    cycle: (id as u128 * 1_000_000 / cfg.rate_ppm as u128) as u64,
                    node: origin(&mut rng),
                });
            }
        }
        ArrivalKind::Poisson => {
            // `whole` guaranteed arrivals per cycle plus a Bernoulli
            // trial on the fractional part, in 1e6 fixed point.
            let whole = cfg.rate_ppm / 1_000_000;
            let frac = (cfg.rate_ppm % 1_000_000) as u128;
            let mut cycle = 0u64;
            while (out.len() as u32) < cfg.requests {
                let mut k = whole;
                if ((rng.next_u64() as u128).wrapping_mul(1_000_000) >> 64) < frac {
                    k += 1;
                }
                for _ in 0..k {
                    if out.len() as u32 == cfg.requests {
                        break;
                    }
                    out.push(Arrival {
                        id: out.len() as u32,
                        cycle,
                        node: origin(&mut rng),
                    });
                }
                cycle += 1;
            }
        }
    }
    out
}

/// A full serving scenario: the config plus its precomputed schedule
/// (built once; queue-doubling attempt restarts replay the same plan).
#[derive(Debug, Clone)]
pub struct ServePlan {
    /// The offered-load scenario.
    pub cfg: ServeConfig,
    /// Every arrival, in time (= id) order.
    pub arrivals: Vec<Arrival>,
}

impl ServePlan {
    /// Build the schedule for `cfg` on a `nodes`-node mesh.
    pub fn build(cfg: &ServeConfig, nodes: u32) -> Self {
        ServePlan {
            cfg: *cfg,
            arrivals: arrival_schedule(cfg, nodes),
        }
    }
}

/// Per-request lifecycle cell, written in place by the drivers. Plain
/// `Copy` data so the parallel driver's workers can write distinct
/// requests' cells through raw pointers without aliasing references.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReqCell {
    /// Cycle the boot message entered the origin machine's queue.
    pub injected: u64,
    /// Cycle the done reply was ejected off-mesh.
    pub completed: u64,
    /// Result words of the reply (capped at the machine's result arity).
    pub result: [i64; 8],
    /// How many of `result` are live.
    pub result_len: u8,
    /// The reply was seen.
    pub done: bool,
}

impl ReqCell {
    /// Record the done reply `[done, parent, vals...]` at cycle `now`.
    pub(crate) fn complete(&mut self, now: u64, words: &[Word]) {
        assert!(!self.done, "duplicate completion for a request");
        self.completed = now;
        let vals = words.get(2..).unwrap_or(&[]);
        let n = vals.len().min(self.result.len());
        self.result_len = n as u8;
        for (slot, w) in self.result[..n].iter_mut().zip(vals) {
            *slot = w.as_i64();
        }
        self.done = true;
    }
}

/// The serial drivers' interception view, rebuilt per step with the
/// current cycle. [`crate::port::NodePort`] consults it before routing.
/// Opaque outside the crate: ports are constructed with `serve: None`
/// everywhere except the serve drivers.
pub struct ServeTap<'a> {
    done_addr: u64,
    cells: &'a mut [ReqCell],
    completed: &'a mut u64,
    now: u64,
}

impl ServeTap<'_> {
    /// When `words` is a request-completion reply, record it and return
    /// `true`: the reply is ejected off-mesh (reported as injected to the
    /// sender) and never touches the fabric.
    pub(crate) fn intercept(&mut self, words: &[Word]) -> bool {
        if words.first().copied().map(Word::bits) != Some(self.done_addr) {
            return false;
        }
        let id = reply_id(words);
        self.cells
            .get_mut(id)
            .expect("done reply names an unknown request")
            .complete(self.now, words);
        *self.completed += 1;
        true
    }
}

/// The request id carried in a done reply's parent word.
pub(crate) fn reply_id(words: &[Word]) -> usize {
    let parent = words.get(1).copied().map(Word::bits).unwrap_or(0);
    (parent as u32 & LOCAL_MASK) as usize
}

/// The parallel workers' interception view: raw pointers because
/// distinct workers complete distinct requests concurrently (a request
/// completes exactly once, so two workers never touch the same cell).
#[derive(Clone, Copy)]
pub(crate) struct ServeShared {
    pub(crate) done_addr: u64,
    cells: *mut ReqCell,
    len: usize,
}

impl ServeShared {
    /// Record a completion through the raw cell table.
    ///
    /// # Safety
    /// Must only be called from the worker owning the sending node,
    /// inside a round; the reply's request id must not be completed by
    /// any other worker (guaranteed: each request completes once).
    pub(crate) unsafe fn complete(&self, now: u64, words: &[Word]) {
        let id = reply_id(words);
        assert!(id < self.len, "done reply names an unknown request");
        unsafe { (*self.cells.add(id)).complete(now, words) };
    }
}

/// Per-attempt serving state owned by a driver: the schedule cursor,
/// per-node entry FIFOs, and the request cells.
pub(crate) struct ServeState<'p> {
    arrivals: &'p [Arrival],
    /// Boot message template; word 3 (parent) is patched per request.
    boot: Vec<Word>,
    done_addr: u64,
    /// Schedule cursor: arrivals before it are in `pending` or injected.
    next: usize,
    /// Per-node FIFOs of arrived-but-not-yet-injected request ids.
    pending: Vec<VecDeque<u32>>,
    pub(crate) cells: Vec<ReqCell>,
    pub(crate) injected: u64,
    pub(crate) completed: u64,
}

impl<'p> ServeState<'p> {
    pub(crate) fn new(plan: &'p ServePlan, linked: &Linked, nodes: usize) -> Self {
        ServeState {
            arrivals: &plan.arrivals,
            boot: linked.boot.clone(),
            done_addr: linked.net.done_addr as u64,
            next: 0,
            pending: vec![VecDeque::new(); nodes],
            cells: vec![ReqCell::default(); plan.arrivals.len()],
            injected: 0,
            completed: 0,
        }
    }

    /// Every request has arrived, been injected, and completed.
    pub(crate) fn drained(&self) -> bool {
        self.next == self.arrivals.len()
            && self.pending.iter().all(VecDeque::is_empty)
            && self.completed == self.cells.len() as u64
    }

    /// Cycle of the next not-yet-released arrival.
    pub(crate) fn next_arrival_cycle(&self) -> Option<u64> {
        self.arrivals.get(self.next).map(|a| a.cycle)
    }

    /// The serial interception view at cycle `now`.
    pub(crate) fn tap(&mut self, now: u64) -> ServeTap<'_> {
        ServeTap {
            done_addr: self.done_addr,
            cells: &mut self.cells,
            completed: &mut self.completed,
            now,
        }
    }

    /// The parallel workers' interception view.
    pub(crate) fn shared(&mut self) -> ServeShared {
        ServeShared {
            done_addr: self.done_addr,
            cells: self.cells.as_mut_ptr(),
            len: self.cells.len(),
        }
    }

    /// The arrival pump, run at the top of every global cycle in every
    /// driver (inside the parallel driver's serial window): release due
    /// arrivals into their origin FIFOs, then inject each node's queue
    /// head-first until its machine queue refuses — held requests stay
    /// in arrival order and retry next cycle.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn pump<H: NetHooks>(
        &mut self,
        cycle: u64,
        machines: &mut [Machine<'_>],
        hooks: &mut [NodeHooks],
        placement: &mut Placement,
        net_hooks: &mut H,
        start_low: u32,
        is_am: bool,
    ) {
        while let Some(a) = self.arrivals.get(self.next) {
            if a.cycle > cycle {
                break;
            }
            self.pending[a.node as usize].push_back(a.id);
            self.next += 1;
        }
        for n in 0..machines.len() {
            while let Some(&id) = self.pending[n].front() {
                self.boot[3] = Word::from_addr(node_tag(n as u32) | id);
                if !machines[n].try_deliver(Priority::High, &self.boot, &mut hooks[n]) {
                    break; // full queue: hold, nothing consumed
                }
                self.pending[n].pop_front();
                self.cells[id as usize].injected = cycle;
                self.injected += 1;
                // The boot's falloc never crosses the NI, so the census
                // is committed here — the batch boot's `commit(0)`
                // analogue, on the origin node.
                placement.commit(n as u32);
                if H::ENABLED {
                    net_hooks.local_enqueue(n as u32, Priority::High, cycle);
                }
                // Arrival re-arms a suspended AM scheduler, exactly as a
                // fabric delivery would.
                if is_am && machines[n].low_suspended() {
                    machines[n].start_low(start_low);
                }
            }
        }
    }
}

/// One request's full recorded lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request id (arrival order).
    pub id: u32,
    /// Origin node.
    pub node: u32,
    /// Cycle the request arrived (per the schedule).
    pub arrival: u64,
    /// Cycle it entered the origin machine's queue.
    pub injected: u64,
    /// Cycle its done reply was ejected off-mesh.
    pub completed: u64,
    /// The words its `main` returned.
    pub result: Vec<i64>,
}

impl RequestRecord {
    /// Client-observed completion latency (arrival → reply).
    pub fn latency(&self) -> u64 {
        self.completed - self.arrival
    }

    /// Cycles spent waiting for entry-queue space before injection.
    pub fn queue_wait(&self) -> u64 {
        self.injected - self.arrival
    }
}

/// Everything a serve run hands back: the mesh run itself plus one
/// record per request, in id order.
#[derive(Debug, Clone)]
pub struct ServeRunResult {
    /// The underlying mesh run (its `result`/`arrays` are node 0's and
    /// stay zero — per-request results live in `records`).
    pub mesh: MeshRunResult,
    /// The scenario that ran.
    pub cfg: ServeConfig,
    /// Per-request lifecycles, id (= arrival) order.
    pub records: Vec<RequestRecord>,
}

impl ServeRunResult {
    /// Achieved throughput in requests per million cycles.
    pub fn achieved_ppm(&self) -> u64 {
        if self.mesh.cycles == 0 {
            0
        } else {
            (self.records.len() as u128 * 1_000_000 / self.mesh.cycles as u128) as u64
        }
    }
}

impl MeshExperiment {
    /// Serve `cfg.requests` invocations of `program` at the offered
    /// load, tracking each request's arrival → inject → complete
    /// lifecycle. Runs untraced on the driver selected by the
    /// experiment's `threads`/`fast_forward` settings; records are
    /// bit-identical across all drivers and thread counts.
    pub fn serve(&self, program: &Program, cfg: &ServeConfig) -> ServeRunResult {
        let plan = ServePlan::build(cfg, self.nodes);
        let (mesh, cells) = if self.threads > 1 && self.nodes > 1 {
            self.run_parallel_serve(program, Some(&plan))
        } else {
            self.run_serve_with(program, &mut NoNetHooks, Some(&plan))
        };
        let cells = cells.expect("serve run returns request cells");
        // Conservation: the run only quiesces drained, so every request
        // must have completed exactly once.
        assert_eq!(mesh.halt, HaltReason::Quiescent, "serve run halted early");
        let records: Vec<RequestRecord> = plan
            .arrivals
            .iter()
            .map(|a| {
                let c = &cells[a.id as usize];
                assert!(c.done, "request {} never completed", a.id);
                debug_assert!(c.injected >= a.cycle && c.completed >= c.injected);
                RequestRecord {
                    id: a.id,
                    node: a.node,
                    arrival: a.cycle,
                    injected: c.injected,
                    completed: c.completed,
                    result: c.result[..c.result_len as usize].to_vec(),
                }
            })
            .collect();
        ServeRunResult {
            mesh,
            cfg: *cfg,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_reproducible_and_complete() {
        let cfg = ServeConfig::new(50_000, 200, 0xFEED);
        let a = arrival_schedule(&cfg, 8);
        let b = arrival_schedule(&cfg, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for (i, arr) in a.iter().enumerate() {
            assert_eq!(arr.id as usize, i);
            assert!(arr.node < 8);
            if i > 0 {
                assert!(arr.cycle >= a[i - 1].cycle, "arrivals must be time-ordered");
            }
        }
        let c = arrival_schedule(&ServeConfig::new(50_000, 200, 0xFEED + 1), 8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn poisson_mean_rate_tracks_the_offer() {
        // 0.05 req/cycle over 2000 requests: the makespan estimator
        // n/last_cycle must land within 15% of the offered rate.
        let cfg = ServeConfig::new(50_000, 2000, 7);
        let a = arrival_schedule(&cfg, 4);
        let span = a.last().unwrap().cycle.max(1);
        let achieved_ppm = a.len() as u128 * 1_000_000 / span as u128;
        let lo = cfg.rate_ppm as u128 * 85 / 100;
        let hi = cfg.rate_ppm as u128 * 115 / 100;
        assert!(
            (lo..=hi).contains(&achieved_ppm),
            "achieved {achieved_ppm} ppm vs offered {} ppm",
            cfg.rate_ppm
        );
    }

    #[test]
    fn fixed_rate_spacing_is_exact() {
        let cfg = ServeConfig {
            kind: ArrivalKind::Fixed,
            ..ServeConfig::new(10_000, 50, 3)
        };
        let a = arrival_schedule(&cfg, 4);
        // 10_000 ppm = one request per 100 cycles, exactly.
        for arr in &a {
            assert_eq!(arr.cycle, arr.id as u64 * 100);
        }
    }

    #[test]
    fn rates_above_one_per_cycle_batch_arrivals() {
        let cfg = ServeConfig::new(2_500_000, 100, 11);
        let a = arrival_schedule(&cfg, 4);
        assert_eq!(a.len(), 100);
        // ≥ 2 guaranteed arrivals per cycle: 100 requests within 50 cycles.
        assert!(a.last().unwrap().cycle <= 50);
    }

    #[test]
    fn corner_origins_keep_the_uniform_arrival_times() {
        // Same seed, same rate: the corner schedule must be the uniform
        // schedule with every origin collapsed to node 0 — identical
        // arrival cycles, so latency comparisons isolate spatial skew.
        let uniform = ServeConfig::new(40_000, 150, 0xBEEF);
        let corner = ServeConfig {
            origins: OriginDist::Corner,
            ..uniform
        };
        let u = arrival_schedule(&uniform, 16);
        let c = arrival_schedule(&corner, 16);
        assert_eq!(u.len(), c.len());
        for (a, b) in u.iter().zip(&c) {
            assert_eq!(a.cycle, b.cycle, "arrival times must match");
            assert_eq!(b.node, 0, "corner arrivals all land on node 0");
        }
        assert!(
            u.iter().any(|a| a.node != 0),
            "uniform origins must actually spread"
        );
    }

    #[test]
    fn origin_dist_labels_round_trip() {
        for d in [OriginDist::Uniform, OriginDist::Corner] {
            assert_eq!(OriginDist::parse(d.label()), Some(d));
        }
        assert_eq!(OriginDist::parse("hotspot"), None);
    }

    #[test]
    fn no_arrival_past_the_request_count() {
        for kind in [ArrivalKind::Poisson, ArrivalKind::Fixed] {
            let cfg = ServeConfig {
                kind,
                ..ServeConfig::new(123_456, 77, 5)
            };
            let a = arrival_schedule(&cfg, 3);
            assert_eq!(a.len(), 77, "exactly the configured request count");
            assert_eq!(a.last().unwrap().id, 76);
        }
    }
}
