//! Work-stealing frame migration (`--policy steal`).
//!
//! The static placement policies commit a frame to a node at birth and
//! can never revisit the decision; under skewed load (every request
//! arriving at one corner node) a backlog the birth-time census didn't
//! predict piles up behind frames that are already placed. `steal`
//! pairs the `LocalityAware` census shed at allocation time (the push
//! half) with this module's dynamic answer (the pull half): in the
//! **serial phase of every global cycle** the driver scans the mesh,
//! and when a node's runnable backlog (its enabled-but-not-running
//! frame chain) exceeds a threshold while other nodes sit idle, it
//! migrates frames from the *tail* of the chain — Chase–Lev
//! discipline: the owner keeps popping the head, the thief takes the
//! opposite end — to the idle nodes (one frame per idle node per
//! cycle) inside a new migration message kind.
//!
//! ## The protocol
//!
//! 1. **Steal (serial phase).** The engine mirrors the `falloc` handler
//!    read-only on the target to reserve a destination slot (free-list
//!    pop, else bump), injects a `[MIGRATE, new, old, cb, len, words…]`
//!    message onto the fabric (aborting wholesale if the inject queue
//!    refuses), unlinks the tail from the victim's frame queue, applies
//!    the target's allocator writes, and opens a **forwarding entry**
//!    `old → new` in the *Pending* state.
//! 2. **Forward (delivery phase).** Messages addressed to `old` keep
//!    routing to its home node; on arrival the NI rewrites the locus to
//!    `new` and re-injects toward the target. FIFO links and
//!    dimension-order routing guarantee the migration message itself —
//!    injected earlier on the same path — lands first, so a forwarded
//!    message can never reach a slot that has not been installed yet.
//! 3. **Install (delivery phase).** The target NI recognizes the
//!    `MIGRATE` header, writes the frame words into the reserved slot,
//!    and appends it to its own frame queue exactly as `post_lib`
//!    would, re-arming a suspended scheduler. Installs are held under
//!    back-pressure (deliver stall) while either target context is
//!    inside system code, because the queue append races with a
//!    half-executed `post_lib`/`swap`.
//! 4. **Activate (end of delivery phase).** Installed entries flip
//!    *Pending → Active* at the cycle's last serial point; from the
//!    next cycle on, senders rewrite the locus at **route time** and
//!    messages fly straight to the new home.
//! 5. **Retire + reclaim (serial phase).** When the migrated frame is
//!    freed (`ffree` of the *new* address observed at route or forward
//!    time), the entry chain is retired transitively and each vacated
//!    home slot is pushed back onto its home node's free list — the
//!    slot the migration orphaned is reclaimed exactly once, and the
//!    live-frame census never double-decrements.
//!
//! ## Determinism
//!
//! Every steal decision reads only cycle-stamped machine state (memory,
//! registers, queue contents) at a fixed serial point that all three
//! drivers share, and scans are gated on "some machine is runnable" —
//! during a fast-forward-skipped stretch every machine is idle, so the
//! lockstep driver's per-cycle scans over that stretch are provably
//! no-ops and the jump changes nothing. The parallel driver runs the
//! scan in its serial window and folds worker-observed installs and
//! free captures at the epoch barrier in node order, so the
//! Pending→Active flips and reclamations happen in the same order at
//! the same cycle at every thread count.

use std::collections::HashMap;

use crate::fabric::Fabric;
use crate::hooks::NetHooks;
use crate::place::Placement;
use crate::topology::MeshTopology;
use crate::{node_of, LOCAL_MASK};
use tamsim_core::layout::frame;
use tamsim_core::{Linked, NetInfo};
use tamsim_mdp::{Machine, Priority, Reg, Word};

/// Header word of a frame-migration message. Deliberately wider than
/// any code address (`> u32::MAX`), so no handler dispatch can collide
/// with it; the NI intercepts these before the machine ever sees them.
pub const MIGRATE_TAG: u64 = 0x4D49_4752_0000_0001; // "MIGR", version 1

/// Fixed migration-message prefix: `[MIGRATE, new, old, cb, len]`.
pub const MIGRATE_HEADER_WORDS: usize = 5;

/// Minimum runnable backlog (enabled frames queued) before a node is
/// considered overloaded. Two keeps the victim a frame to run while the
/// thief takes the tail.
pub const STEAL_MIN_BACKLOG: usize = 2;

/// Defensive cap on the frame-queue walk (a cycle in the chain would
/// mean corrupted program state; the scan gives up on the node).
const MAX_CHAIN: usize = 4096;

/// A forwarding-directory entry: messages for `old` are redirected to
/// `new` until the frame dies and the entry retires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardEntry {
    /// The frame's address at its original home.
    pub old: u32,
    /// The frame's address at the node it migrated to.
    pub new: u32,
    /// The frame's codeblock index (sizes the slot on free).
    pub cb: u32,
    /// Lifecycle state.
    pub state: ForwardState,
}

/// Lifecycle of a [`ForwardEntry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardState {
    /// Migration message in flight; arrivals at the home node forward,
    /// but route-time rewrite stays off (the home must see stragglers).
    Pending,
    /// Installed at the target: senders rewrite the locus at route time.
    Active,
    /// The frame died and the home slot was handed to reclamation; the
    /// entry is kept only as a tombstone (removed from both maps).
    Retired,
}

/// A home slot awaiting its free-list push (the home node was mid-sys
/// when the frame died; retried every serial window).
#[derive(Debug, Clone, Copy)]
struct PendingReclaim {
    old: u32,
    cb: u32,
}

/// The route-time view of the steal state a node port carries: the
/// read-only forwarding directory plus the capture vector for frees of
/// migrated frames observed while routing (the driver's serial phase
/// drains it into [`StealEngine::settle`]).
pub struct StealView<'a> {
    /// The directory (owned by the driver; never mutated here).
    pub engine: &'a StealEngine,
    /// Captured `ffree` loci that hit a migrated frame's new address.
    pub frees: &'a mut Vec<u32>,
}

/// The work-stealing engine: scan + forwarding directory + counters.
///
/// Owned by the driver; mutated only at serial points. During parallel
/// rounds workers use the read-only lookups ([`StealEngine::resolve`],
/// [`StealEngine::forward_of`], [`StealEngine::frees_new`]) and record
/// installs/free-captures into per-worker vectors that the main thread
/// folds back in node order.
#[derive(Debug)]
pub struct StealEngine {
    topo: MeshTopology,
    info: NetInfo,
    /// Per-codeblock user-code start addresses (sorted) — recovers the
    /// codeblock of a queued frame from its posted thread addresses.
    cb_code: Vec<(u32, u32)>,
    user_code_base: u32,
    frame_base: u32,
    heap_base: u32,
    inject_capacity: u32,
    entries: Vec<ForwardEntry>,
    by_old: HashMap<u32, usize>,
    by_new: HashMap<u32, usize>,
    reclaims: Vec<PendingReclaim>,
    /// Frames stolen from each node (victim-attributed).
    pub steals_from: Vec<u64>,
}

impl StealEngine {
    /// An engine for one run.
    pub fn new(linked: &Linked, topo: MeshTopology, inject_capacity: u32) -> Self {
        StealEngine {
            topo,
            info: linked.net,
            cb_code: linked.cb_code.clone(),
            user_code_base: linked.cfg.map.user_code_base,
            frame_base: linked.cfg.map.frame_base,
            heap_base: linked.cfg.map.heap_base,
            inject_capacity,
            entries: Vec::new(),
            by_old: HashMap::new(),
            by_new: HashMap::new(),
            reclaims: Vec::new(),
            steals_from: vec![0; topo.nodes() as usize],
        }
    }

    /// Total frames migrated so far.
    pub fn steals(&self) -> u64 {
        self.steals_from.iter().sum()
    }

    /// Whether `words` is a frame-migration message.
    #[inline]
    pub fn is_migration(words: &[Word]) -> bool {
        words.first().map(|w| w.bits()) == Some(MIGRATE_TAG)
    }

    /// Follow *Active* forwarding entries from `addr` to the frame's
    /// current address (identity when no entry applies). Stops at a
    /// Pending entry: its home node still owns forwarding for it.
    pub fn resolve(&self, addr: u32) -> u32 {
        let mut cur = addr;
        for _ in 0..=self.entries.len() {
            match self.by_old.get(&cur) {
                Some(&i) if self.entries[i].state == ForwardState::Active => {
                    cur = self.entries[i].new;
                }
                _ => return cur,
            }
        }
        cur
    }

    /// The forwarding entry for arrivals addressed to `old`, if any
    /// (Pending or Active — the home node forwards in both states).
    pub fn forward_of(&self, old: u32) -> Option<ForwardEntry> {
        self.by_old.get(&old).map(|&i| self.entries[i])
    }

    /// Whether an `ffree` with (post-rewrite) locus `addr` frees a
    /// migrated frame — the route/forward paths report these so the
    /// serial phase can retire the entry and reclaim the home slot.
    pub fn frees_new(&self, addr: u32) -> bool {
        self.by_new.contains_key(&addr)
    }

    /// Whether any entry still forwards (fast-path gate for the
    /// delivery loop: empty directory ⇒ no per-message lookups).
    pub fn has_entries(&self) -> bool {
        !self.by_old.is_empty()
    }

    /// All entries in creation order (tests and diagnostics).
    pub fn entries(&self) -> &[ForwardEntry] {
        &self.entries
    }

    fn in_sys(&self, pc: Option<u32>) -> bool {
        pc.is_some_and(|pc| pc < self.user_code_base)
    }

    /// Whether either context of `m` is executing system code (queue,
    /// allocator, or scheduler routines whose half-done state must not
    /// be mutated underneath them).
    fn mid_sys(&self, m: &Machine<'_>) -> bool {
        self.in_sys(m.context_pc(Priority::High)) || self.in_sys(m.context_pc(Priority::Low))
    }

    /// A plausible frame address on `node`: tagged with `node`, aligned,
    /// local part within the frame region.
    fn valid_frame_addr(&self, addr: u32, node: u32) -> bool {
        let local = addr & LOCAL_MASK;
        node_of(addr) == node
            && addr.is_multiple_of(4)
            && local >= self.frame_base
            && local < self.heap_base
    }

    /// Walk `node`'s software frame queue (head → tail via the link
    /// word). Returns the chain of tagged frame addresses, or `None` on
    /// any structural anomaly (the scan then leaves the node alone).
    fn frame_chain(&self, m: &Machine<'_>, node: u32) -> Option<Vec<u32>> {
        let head = m.mem.read(self.info.q_head).bits();
        if head == 0 {
            return Some(Vec::new());
        }
        if head > u32::MAX as u64 {
            return None;
        }
        let mut chain = Vec::new();
        let mut fp = head as u32;
        loop {
            if !self.valid_frame_addr(fp, node) || chain.len() >= MAX_CHAIN {
                return None;
            }
            chain.push(fp);
            let link = m.mem.read((fp & LOCAL_MASK) + frame::LINK_OFF).bits();
            if link == 1 {
                return Some(chain); // tail marker
            }
            if link == 0 || link > u32::MAX as u64 {
                return None;
            }
            fp = link as u32;
        }
    }

    /// Whether any word of either hardware queue equals `addr`: a
    /// queued (or mid-dispatch) message still references the frame, so
    /// an inlet may yet write to it locally — don't migrate it.
    fn queues_reference(m: &Machine<'_>, addr: u32) -> bool {
        for pri in [Priority::Low, Priority::High] {
            let q = m.queue(pri);
            for msg in q.iter() {
                for i in 0..msg.len {
                    if m.mem.read(q.addr_of(msg.start, i)).bits() == addr as u64 {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// The codeblock of a queued enabled frame, recovered from its most
    /// recently posted RCV entry (a thread address of the codeblock; a
    /// queued frame always has one — `rcv_top == 1` is just the
    /// `swap_clean` seed and means the frame was never posted).
    fn frame_cb(&self, m: &Machine<'_>, fp_local: u32) -> Option<u32> {
        let rcv_top = m.mem.read(fp_local + frame::RCV_TOP_OFF).bits();
        if !(2..=1024).contains(&rcv_top) {
            return None;
        }
        let entry = m
            .mem
            .read(fp_local + frame::RCV_BASE_OFF + 4 * (rcv_top as u32 - 1))
            .bits();
        if entry > u32::MAX as u64 {
            return None;
        }
        let entry = entry as u32;
        if entry < self.user_code_base {
            return None;
        }
        // Greatest cb start address at or below the thread address.
        let idx = match self.cb_code.binary_search_by(|&(a, _)| a.cmp(&entry)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        Some(self.cb_code[idx].1)
    }

    /// Frame size (words) and RCV capacity (entries) of codeblock `cb`,
    /// read from the descriptor (identical on every node).
    fn frame_shape(&self, m: &Machine<'_>, cb: u32) -> Option<(u32, u32)> {
        let ptr = m.mem.read(self.info.desc_ptrs + 4 * cb).bits();
        if ptr == 0 || ptr > u32::MAX as u64 {
            return None;
        }
        let desc = ptr as u32 & LOCAL_MASK;
        let frame_words = m.mem.read(desc).bits();
        let parent_off = m.mem.read(desc + 4).bits();
        if !(2..=4096).contains(&frame_words) || parent_off < frame::RCV_BASE_OFF as u64 {
            return None;
        }
        let rcv_cap = (parent_off as u32 - frame::RCV_BASE_OFF) / 4;
        Some((frame_words as u32, rcv_cap))
    }

    /// One serial-phase steal pass over the whole mesh.
    ///
    /// Runs at a fixed point of the global cycle (after the arrival
    /// pump, before the execute phase) in all three drivers. Decisions
    /// read only machine state as of this cycle; every mutation —
    /// victim unlink, target allocator, census, directory — happens
    /// here, serially, in node order.
    pub fn scan<H: NetHooks>(
        &mut self,
        machines: &mut [Machine<'_>],
        fabric: &mut Fabric,
        placement: &mut Placement,
        hooks: &mut H,
    ) {
        let k = machines.len();
        // Target pool: idle nodes with an empty frame queue and no
        // migration already inbound (a Pending entry targeting them).
        let mut inbound = vec![false; k];
        for e in &self.entries {
            if e.state == ForwardState::Pending {
                inbound[node_of(e.new) as usize] = true;
            }
        }
        let mut targets: Vec<u32> = (0..k as u32)
            .filter(|&b| {
                machines[b as usize].is_idle()
                    && !inbound[b as usize]
                    && machines[b as usize].mem.read(self.info.q_head).bits() == 0
            })
            .collect();
        if targets.is_empty() {
            return;
        }

        'victims: for a in 0..k as u32 {
            // A victim with a deep backlog feeds several idle nodes in
            // one pass — one frame per target, until its inject queue
            // refuses or the backlog thins. With one overloaded corner
            // and a mostly-idle mesh, one-frame-per-cycle shedding
            // would drain far too slowly to rebalance anything.
            loop {
                if targets.is_empty() {
                    break 'victims;
                }
                let victim = &machines[a as usize];
                // An overloaded victim must not be mid-system-code: the
                // queue unlink races with a half-executed post/swap/alloc.
                if self.mid_sys(victim) {
                    break;
                }
                let Some(chain) = self.frame_chain(victim, a) else {
                    break;
                };
                if chain.len() < STEAL_MIN_BACKLOG {
                    break;
                }
                let tail = chain[chain.len() - 1];
                let pred = chain[chain.len() - 2];
                // The tail must be quiescent: not the frame either context
                // is running on, not referenced by any queued message, and
                // not itself a forwarding source already.
                if victim.reg(Priority::High, Reg::FP).bits() == tail as u64
                    || victim.reg(Priority::Low, Reg::FP).bits() == tail as u64
                    || self.by_old.contains_key(&tail)
                    || Self::queues_reference(victim, tail)
                {
                    break;
                }
                let Some(cb) = self.frame_cb(victim, tail & LOCAL_MASK) else {
                    break;
                };
                let Some((frame_words, rcv_cap)) = self.frame_shape(victim, cb) else {
                    break;
                };
                let rcv_top = victim
                    .mem
                    .read((tail & LOCAL_MASK) + frame::RCV_TOP_OFF)
                    .bits();
                if rcv_top > rcv_cap as u64 {
                    break;
                }
                let payload_len = MIGRATE_HEADER_WORDS as u32 + frame_words;
                if payload_len > self.inject_capacity {
                    break; // frame too large for the NI — never stealable
                }

                // Nearest idle target (Manhattan distance, lowest id ties).
                let (ax, ay) = self.topo.coords(a);
                let (ti, &b) = targets
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &b)| {
                        let (bx, by) = self.topo.coords(b);
                        (ax.abs_diff(bx) + ay.abs_diff(by), b)
                    })
                    .expect("targets is non-empty");

                // Reserve the destination slot: mirror `falloc` on the
                // target (free-list pop, else bump) — reads only, applied
                // after the fabric accepts the migration.
                let target = &machines[b as usize];
                let fl_addr = self.info.freelist_base + 4 * cb;
                let fl_head = target.mem.read(fl_addr).bits();
                let (new, alloc_write) = if fl_head != 0 {
                    if fl_head > u32::MAX as u64 || !self.valid_frame_addr(fl_head as u32, b) {
                        break;
                    }
                    let new = fl_head as u32;
                    let next = target.mem.read((new & LOCAL_MASK) + frame::LINK_OFF);
                    (new, (fl_addr, next))
                } else {
                    let bump = target.mem.read(self.info.frame_bump).bits();
                    if bump > u32::MAX as u64 || !self.valid_frame_addr(bump as u32, b) {
                        break;
                    }
                    let new = bump as u32;
                    if (new & LOCAL_MASK) + frame_words * 4 > self.heap_base {
                        break; // target arena exhausted
                    }
                    (
                        new,
                        (self.info.frame_bump, Word::from_addr(new + frame_words * 4)),
                    )
                };
                if self.by_new.contains_key(&new) || self.by_old.contains_key(&new) {
                    break; // paranoia: never alias a live forwarding entry
                }

                // Compose and offer the migration message; nothing below
                // commits unless the fabric accepts it.
                let mut payload = Vec::with_capacity(payload_len as usize);
                payload.push(Word::from_i64(MIGRATE_TAG as i64));
                payload.push(Word::from_addr(new));
                payload.push(Word::from_addr(tail));
                payload.push(Word::from_i64(cb as i64));
                payload.push(Word::from_i64(frame_words as i64));
                for i in 0..frame_words {
                    payload.push(victim.mem.read((tail & LOCAL_MASK) + 4 * i));
                }
                if !fabric.try_inject_traced(a, b, Priority::High, &payload, hooks) {
                    break; // inject queue full this cycle; retry later
                }

                // Commit: unlink the tail (its predecessor becomes the new
                // tail, link word 1), apply the target's allocator write,
                // open the forwarding entry, move the census.
                let m = &mut machines[a as usize];
                m.mem
                    .write((pred & LOCAL_MASK) + frame::LINK_OFF, Word::from_i64(1));
                m.mem.write(self.info.q_tail, Word::from_addr(pred));
                let (waddr, wval) = alloc_write;
                machines[b as usize].mem.write(waddr, wval);
                let idx = self.entries.len();
                self.entries.push(ForwardEntry {
                    old: tail,
                    new,
                    cb,
                    state: ForwardState::Pending,
                });
                self.by_old.insert(tail, idx);
                self.by_new.insert(new, idx);
                placement.freed(a);
                placement.commit(b);
                self.steals_from[a as usize] += 1;
                targets.swap_remove(ti);
            }
        }
    }

    /// Install a delivered migration message into the target machine.
    ///
    /// Returns `false` (hold the message under deliver back-pressure)
    /// while either target context is inside system code — the frame-
    /// queue append below must not interleave with a half-executed
    /// `post_lib`/`swap`. On success the frame words are written into
    /// the reserved slot and the frame is appended to the target's
    /// frame queue exactly as `post_lib` appends (link word 1, tail
    /// chained), re-arming a suspended scheduler.
    pub fn try_install(&self, m: &mut Machine<'_>, words: &[Word], start_low: u32) -> bool {
        if self.mid_sys(m) {
            return false;
        }
        debug_assert!(words.len() >= MIGRATE_HEADER_WORDS);
        let new = words[1].bits() as u32;
        let len = words[4].bits() as u32;
        debug_assert_eq!(words.len(), MIGRATE_HEADER_WORDS + len as usize);
        let base = new & LOCAL_MASK;
        for i in 0..len {
            m.mem
                .write(base + 4 * i, words[MIGRATE_HEADER_WORDS + i as usize]);
        }
        // Append to the frame queue as `post_lib` does: the arriving
        // frame is the new tail (link word 1).
        m.mem.write(base + frame::LINK_OFF, Word::from_i64(1));
        let q_tail = m.mem.read(self.info.q_tail).bits();
        if q_tail == 0 {
            m.mem.write(self.info.q_head, Word::from_addr(new));
        } else {
            m.mem.write(
                (q_tail as u32 & LOCAL_MASK) + frame::LINK_OFF,
                Word::from_addr(new),
            );
        }
        m.mem.write(self.info.q_tail, Word::from_addr(new));
        if m.low_suspended() {
            m.start_low(start_low);
        }
        true
    }

    /// Serial-point bookkeeping after the delivery phase: flip each
    /// installed entry Pending → Active (`installed` holds the *old*
    /// addresses, folded in node order), retire entries whose frame
    /// died (`freed` holds captured *new* addresses), and push vacated
    /// home slots back onto their home free lists.
    pub fn settle(&mut self, installed: &[u32], freed: &[u32], machines: &mut [Machine<'_>]) {
        for &old in installed {
            let i = self.by_old[&old];
            debug_assert_eq!(self.entries[i].state, ForwardState::Pending);
            self.entries[i].state = ForwardState::Active;
        }
        for &new in freed {
            self.retire_chain(new);
        }
        self.drain_reclaims(machines);
    }

    /// Retire the forwarding chain ending at `new` (the address the
    /// dying frame was freed by), queueing each vacated slot for its
    /// home free list. Transitive: a re-stolen frame retires every hop.
    fn retire_chain(&mut self, new: u32) {
        let mut cur = new;
        while let Some(&i) = self.by_new.get(&cur) {
            let e = self.entries[i];
            self.entries[i].state = ForwardState::Retired;
            self.by_new.remove(&e.new);
            self.by_old.remove(&e.old);
            self.reclaims.push(PendingReclaim {
                old: e.old,
                cb: e.cb,
            });
            cur = e.old;
        }
    }

    /// Push queued home slots onto their home nodes' free lists —
    /// mirroring the `ffree` handler — skipping (and retrying next
    /// serial window) any home node currently inside system code.
    fn drain_reclaims(&mut self, machines: &mut [Machine<'_>]) {
        if self.reclaims.is_empty() {
            return;
        }
        let mut still = Vec::new();
        for r in std::mem::take(&mut self.reclaims) {
            let home = node_of(r.old) as usize;
            if home >= machines.len() || self.mid_sys(&machines[home]) {
                still.push(r);
                continue;
            }
            let m = &mut machines[home];
            let fl_addr = self.info.freelist_base + 4 * r.cb;
            let head = m.mem.read(fl_addr);
            m.mem.write((r.old & LOCAL_MASK) + frame::LINK_OFF, head);
            m.mem.write(fl_addr, Word::from_addr(r.old));
        }
        self.reclaims = still;
    }

    /// Slots still waiting for their home free-list push (tests).
    pub fn pending_reclaims(&self) -> usize {
        self.reclaims.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_tag;

    /// A bare engine over a 2×2 mesh: directory-only tests never touch
    /// machines, so the link-time facts can be zero.
    fn bare() -> StealEngine {
        let topo = MeshTopology::for_nodes(4);
        StealEngine {
            topo,
            info: NetInfo {
                falloc_addr: 0,
                ffree_addr: 0,
                q_head: 0,
                q_tail: 0,
                frame_bump: 0,
                heap_bump: 0,
                heap_bump_init: 0,
                freelist_base: 0,
                desc_ptrs: 0,
                done_addr: 0,
            },
            cb_code: Vec::new(),
            user_code_base: 0x0010_0000,
            frame_base: 0x0040_0000,
            heap_base: 0x0060_0000,
            inject_capacity: 64,
            entries: Vec::new(),
            by_old: HashMap::new(),
            by_new: HashMap::new(),
            reclaims: Vec::new(),
            steals_from: vec![0; 4],
        }
    }

    fn open(e: &mut StealEngine, old: u32, new: u32, state: ForwardState) {
        let idx = e.entries.len();
        e.entries.push(ForwardEntry {
            old,
            new,
            cb: 3,
            state,
        });
        e.by_old.insert(old, idx);
        e.by_new.insert(new, idx);
    }

    #[test]
    fn resolve_follows_active_chains_and_stops_at_pending() {
        let mut e = bare();
        let a = node_tag(0) | 0x0040_0100;
        let b = node_tag(1) | 0x0040_0200;
        let c = node_tag(2) | 0x0040_0300;
        // a → b active, b → c pending: a resolves one hop (to b), where
        // the *home* of the pending entry takes the final step at
        // forward time; nobody else may chase a pending entry.
        open(&mut e, a, b, ForwardState::Active);
        open(&mut e, b, c, ForwardState::Pending);
        assert_eq!(e.resolve(a), b);
        assert_eq!(e.resolve(b), b);
        assert_eq!(e.resolve(c), c, "identity off the directory");
        assert_eq!(e.forward_of(b).unwrap().new, c);
        // Flip pending → active: now a resolves all the way to c.
        let i = e.by_old[&b];
        e.entries[i].state = ForwardState::Active;
        assert_eq!(e.resolve(a), c);
    }

    #[test]
    fn retire_walks_the_chain_backward_and_queues_each_home_slot() {
        let mut e = bare();
        let a = node_tag(0) | 0x0040_0100;
        let b = node_tag(1) | 0x0040_0200;
        let c = node_tag(2) | 0x0040_0300;
        open(&mut e, a, b, ForwardState::Active);
        open(&mut e, b, c, ForwardState::Active);
        // The frame dies at its final address `c`: both hops retire and
        // both orphaned home slots (a on node 0, b on node 1) queue for
        // reclamation.
        e.retire_chain(c);
        assert_eq!(e.pending_reclaims(), 2);
        assert!(!e.has_entries(), "retired entries must stop forwarding");
        assert_eq!(e.resolve(a), a, "retired chain no longer rewrites");
        assert!(e.forward_of(a).is_none());
        assert!(!e.frees_new(c));
        for entry in e.entries() {
            assert_eq!(entry.state, ForwardState::Retired);
        }
    }

    #[test]
    fn retire_is_exactly_once_under_duplicate_captures() {
        // The route path and the forward path can both report the same
        // free in adversarial interleavings; the second capture must be
        // a no-op (no double reclaim ⇒ no free-list double-push ⇒ no
        // census underflow).
        let mut e = bare();
        let a = node_tag(0) | 0x0040_0100;
        let b = node_tag(1) | 0x0040_0200;
        open(&mut e, a, b, ForwardState::Active);
        e.retire_chain(b);
        assert_eq!(e.pending_reclaims(), 1);
        e.retire_chain(b); // duplicate capture
        assert_eq!(e.pending_reclaims(), 1, "slot must reclaim exactly once");
    }

    #[test]
    fn migration_header_is_recognized_and_collision_free() {
        assert!(MIGRATE_TAG > u32::MAX as u64, "no handler address collides");
        let words = [
            Word::from_i64(MIGRATE_TAG as i64),
            Word::from_addr(node_tag(1) | 0x0040_0200),
        ];
        assert!(StealEngine::is_migration(&words));
        assert!(!StealEngine::is_migration(&words[1..]));
        assert!(!StealEngine::is_migration(&[]));
        // The tag survives the i64 round-trip through `Word`.
        assert_eq!(words[0].bits(), MIGRATE_TAG);
    }
}
