//! Run-length compression of a recorded trace at block granularity.
//!
//! Within a single cache's access stream, consecutive accesses to the same
//! block are guaranteed LRU hits: nothing else touched that cache in
//! between, so the block is still resident and already most-recently-used.
//! A [`BlockTrace`] exploits this — it folds each cache's stream (I and D
//! are independent caches and therefore independent streams) into runs of
//! same-block accesses, so replaying a configuration probes the cache once
//! per *run* instead of once per *event* and bulk-adds the rest to the
//! counters. Instruction fetch is highly sequential (a 64-byte block holds
//! 16 instructions), so the fetch stream — the majority of all events —
//! shrinks severalfold.
//!
//! The compression depends only on the block size, so one [`BlockTrace`]
//! serves every geometry of a sweep that shares it (all 24 Figure 3
//! configurations use 64-byte blocks), and the compression pass runs once
//! while the savings multiply across the whole sweep. Replayed results are
//! bit-for-bit identical to streaming the raw events.

use crate::CacheSystem;
use tamsim_trace::{AccessKind, TraceLog};

/// Data-run flag: the run's first access is a write (the probe must
/// classify a miss as a write miss and allocate dirty).
const D_FIRST_WRITE: u32 = 1;
/// Data-run flag: a later access of the run is a write, so the block must
/// be dirtied after the probe (the probe itself was a read).
const D_LATER_WRITE: u32 = 2;
/// Sentinel for "no run open" (blocks are `addr >> shift` with
/// `shift >= 2`, so a real block never reaches it).
const NO_RUN: u32 = u32::MAX;

/// A recorded trace folded into per-cache same-block runs at one block
/// size. Build once per distinct block size; replay into every geometry
/// sharing it.
///
/// Per-run access counts are not stored: they only feed the read/write
/// totals, which the build pass accumulates once, leaving the replay loop
/// pure probes. A run is one `u32`: the block number for the instruction
/// stream, `block << 2 | flags` for the data stream.
#[derive(Debug, Clone)]
pub struct BlockTrace {
    block_bytes: u32,
    /// Block number of each instruction-stream run.
    i_blocks: Vec<u32>,
    /// `block << 2 | flags` for each data-stream run.
    d_words: Vec<u32>,
    /// Total fetches in the log.
    i_fetches: u64,
    /// Total data reads in the log.
    d_reads: u64,
    /// Total data writes in the log.
    d_writes: u64,
}

impl BlockTrace {
    /// Fold `log` into same-block runs at `block_bytes` granularity.
    pub fn build(log: &TraceLog, block_bytes: u32) -> BlockTrace {
        assert!(
            block_bytes.is_power_of_two() && block_bytes >= 4,
            "bad block size"
        );
        let shift = block_bytes.trailing_zeros();
        let mut i_blocks: Vec<u32> = Vec::new();
        let mut d_words: Vec<u32> = Vec::new();
        let (mut i_fetches, mut d_reads, mut d_writes) = (0u64, 0u64, 0u64);
        let mut cur_i = NO_RUN;
        let mut cur_d = NO_RUN;
        let mut cur_d_flags = 0u32;
        for access in log {
            let block = access.addr >> shift;
            match access.kind {
                AccessKind::Fetch => {
                    i_fetches += 1;
                    if block != cur_i {
                        i_blocks.push(block);
                        cur_i = block;
                    }
                }
                AccessKind::Read => {
                    d_reads += 1;
                    if block != cur_d {
                        if cur_d != NO_RUN {
                            d_words.push(cur_d << 2 | cur_d_flags);
                        }
                        cur_d = block;
                        cur_d_flags = 0;
                    }
                }
                AccessKind::Write => {
                    d_writes += 1;
                    if block != cur_d {
                        if cur_d != NO_RUN {
                            d_words.push(cur_d << 2 | cur_d_flags);
                        }
                        cur_d = block;
                        cur_d_flags = D_FIRST_WRITE;
                    } else if cur_d_flags & D_FIRST_WRITE == 0 {
                        cur_d_flags |= D_LATER_WRITE;
                    }
                }
            }
        }
        if cur_d != NO_RUN {
            d_words.push(cur_d << 2 | cur_d_flags);
        }
        BlockTrace {
            block_bytes,
            i_blocks,
            d_words,
            i_fetches,
            d_reads,
            d_writes,
        }
    }

    /// The block size this trace was folded at.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Total runs (the probes one replay pass performs).
    pub fn runs(&self) -> usize {
        self.i_blocks.len() + self.d_words.len()
    }

    /// Total events the trace was folded from.
    pub fn events(&self) -> u64 {
        self.i_fetches + self.d_reads + self.d_writes
    }

    /// Replay the folded trace into `system`, producing exactly the stats
    /// the raw event stream would have.
    ///
    /// # Panics
    /// Panics if either of `system`'s caches uses a different block size
    /// than this trace was folded at.
    pub fn replay(&self, system: &mut CacheSystem) {
        let shift = self.block_bytes.trailing_zeros();
        assert_eq!(
            system.icache.block_shift(),
            shift,
            "BlockTrace folded at {} B cannot replay into this geometry",
            self.block_bytes
        );
        assert_eq!(
            system.dcache.block_shift(),
            shift,
            "split I/D block sizes unsupported"
        );

        let i = &mut system.icache;
        i.stats.reads += self.i_fetches;
        for &block in &self.i_blocks {
            i.probe_block(block, false);
        }
        let d = &mut system.dcache;
        d.stats.reads += self.d_reads;
        d.stats.writes += self.d_writes;
        for &word in &self.d_words {
            d.probe_block(word >> 2, word & D_FIRST_WRITE != 0);
            // A later write of the run is a hit dirtying the just-probed,
            // now-MRU block (a write-first run allocated it dirty already).
            if word & D_LATER_WRITE != 0 {
                d.dirty_mru(word >> 2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheGeometry;
    use tamsim_trace::{Access, TraceSink};

    /// A stream exercising every run shape: sequential fetch runs,
    /// read-then-write runs, write-first runs, conflicts, and evictions
    /// of dirty blocks.
    fn exercise_log() -> TraceLog {
        let mut log = TraceLog::new();
        for i in 0..64u32 {
            log.access(Access::fetch(i * 4)); // long sequential fetch runs
        }
        for i in 0..8u32 {
            log.access(Access::read(i * 8));
            log.access(Access::write(i * 8)); // read-then-write same block
            log.access(Access::fetch(i * 128)); // fetch run breaks
            log.access(Access::write(i * 8 + 4)); // write run continues
        }
        for i in (0..512u32).step_by(4) {
            log.access(Access::write(i)); // dirty a large footprint
            log.access(Access::read(4096 - i)); // conflict traffic
        }
        log
    }

    #[test]
    fn folded_replay_matches_raw_replay() {
        let log = exercise_log();
        for geometry in [
            CacheGeometry::new(64, 1, 8),
            CacheGeometry::new(128, 2, 16),
            CacheGeometry::new(256, 4, 32),
            CacheGeometry::new(1024, 2, 64),
        ] {
            let mut raw = CacheSystem::symmetric(geometry);
            raw.replay(&log);
            let trace = BlockTrace::build(&log, geometry.block_bytes);
            let mut folded = CacheSystem::symmetric(geometry);
            trace.replay(&mut folded);
            assert_eq!(folded.summary(), raw.summary(), "{geometry:?}");
            assert!(trace.runs() <= log.len());
        }
    }

    #[test]
    fn fetch_runs_fold_hard() {
        let mut log = TraceLog::new();
        for i in 0..160u32 {
            log.access(Access::fetch(i * 4));
        }
        let trace = BlockTrace::build(&log, 64);
        // 160 sequential fetches over 64-byte blocks = 10 runs of 16.
        assert_eq!(trace.runs(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot replay")]
    fn block_size_mismatch_panics() {
        let log = TraceLog::new();
        let trace = BlockTrace::build(&log, 8);
        let mut system = CacheSystem::symmetric(CacheGeometry::new(1024, 2, 64));
        trace.replay(&mut system);
    }
}
