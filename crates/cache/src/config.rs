//! Cache geometry and the paper's configuration sweeps.

/// Geometry of one cache (instruction or data).
///
/// All fields must be powers of two and `size_bytes ≥ assoc × block_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Set associativity (1 = direct-mapped).
    pub assoc: u32,
    /// Block (line) size in bytes.
    pub block_bytes: u32,
}

impl CacheGeometry {
    /// Construct and validate a geometry.
    ///
    /// # Panics
    /// Panics if any parameter is not a power of two or the capacity
    /// cannot hold `assoc` blocks.
    pub fn new(size_bytes: u32, assoc: u32, block_bytes: u32) -> Self {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            assoc.is_power_of_two(),
            "associativity must be a power of two"
        );
        assert!(
            block_bytes.is_power_of_two() && block_bytes >= 4,
            "bad block size"
        );
        assert!(
            size_bytes >= assoc * block_bytes,
            "cache of {size_bytes} B cannot hold {assoc} blocks of {block_bytes} B"
        );
        CacheGeometry {
            size_bytes,
            assoc,
            block_bytes,
        }
    }

    /// Number of sets.
    pub fn n_sets(&self) -> u32 {
        self.size_bytes / (self.assoc * self.block_bytes)
    }

    /// Number of lines.
    pub fn n_lines(&self) -> u32 {
        self.size_bytes / self.block_bytes
    }

    /// Short label like `8K/4way/64B`.
    pub fn label(&self) -> String {
        format!(
            "{}K/{}way/{}B",
            self.size_bytes / 1024,
            self.assoc,
            self.block_bytes
        )
    }
}

/// The cache sizes evaluated in the paper's figures: 1 KB through 128 KB.
pub const PAPER_CACHE_SIZES: [u32; 8] = [1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072];

/// The associativities evaluated in the paper: direct-mapped, 2-way, 4-way.
pub const PAPER_ASSOCS: [u32; 3] = [1, 2, 4];

/// The miss penalties evaluated in the paper (cycles).
pub const PAPER_MISS_COSTS: [u64; 3] = [12, 24, 48];

/// The block size used for the paper's headline data ("we show data for
/// 64-byte blocks, the size at which both systems performed best").
pub const PAPER_BLOCK_BYTES: u32 = 64;

/// The block sizes the paper's simulator explored (8 to 64 bytes).
pub const PAPER_BLOCK_SWEEP: [u32; 4] = [8, 16, 32, 64];

/// Table 2's fixed cache configuration: 8192-byte 4-way set-associative.
pub fn table2_geometry() -> CacheGeometry {
    CacheGeometry::new(8192, 4, PAPER_BLOCK_BYTES)
}

/// The full size × associativity sweep at the headline block size.
pub fn paper_sweep() -> Vec<CacheGeometry> {
    let mut v = Vec::new();
    for &assoc in &PAPER_ASSOCS {
        for &size in &PAPER_CACHE_SIZES {
            v.push(CacheGeometry::new(size, assoc, PAPER_BLOCK_BYTES));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivations() {
        let g = CacheGeometry::new(8192, 4, 64);
        assert_eq!(g.n_sets(), 32);
        assert_eq!(g.n_lines(), 128);
        assert_eq!(g.label(), "8K/4way/64B");
    }

    #[test]
    fn direct_mapped_sets_equal_lines() {
        let g = CacheGeometry::new(1024, 1, 64);
        assert_eq!(g.n_sets(), 16);
        assert_eq!(g.n_lines(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        CacheGeometry::new(3000, 1, 64);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn too_small_for_assoc_rejected() {
        CacheGeometry::new(64, 4, 64);
    }

    #[test]
    fn paper_sweep_covers_24_configs() {
        let sweep = paper_sweep();
        assert_eq!(sweep.len(), 24);
        assert!(sweep.iter().all(|g| g.block_bytes == 64));
    }
}
