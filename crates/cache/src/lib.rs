//! Trace-driven cache simulation.
//!
//! Reimplements the cache side of the paper's methodology: separate
//! instruction and write-back data caches with true-LRU replacement,
//! 1/2/4-way set associativity, 8–64-byte blocks, and capacities of
//! 1 KB–128 KB, evaluated at miss penalties of 12/24/48 cycles. The
//! [`CacheBank`] evaluates every configuration of a sweep in a single
//! trace pass.

pub mod cache;
pub mod compress;
pub mod config;
pub mod system;

pub use cache::{Cache, CacheStats};
pub use compress::BlockTrace;
pub use config::{
    paper_sweep, table2_geometry, CacheGeometry, PAPER_ASSOCS, PAPER_BLOCK_BYTES,
    PAPER_BLOCK_SWEEP, PAPER_CACHE_SIZES, PAPER_MISS_COSTS,
};
pub use system::{CacheBank, CacheSummary, CacheSystem, CycleModel};
