//! Split instruction/data cache systems, the multi-configuration bank, and
//! the cycle model.

use crate::{BlockTrace, Cache, CacheGeometry, CacheStats};
use tamsim_trace::{Access, AccessKind, MarkSink, TraceLog, TraceSink};

/// A split I/D cache pair, as in the paper ("in all cases, we specified
/// separate instruction and write-back data caches").
#[derive(Debug, Clone)]
pub struct CacheSystem {
    /// The instruction cache (receives fetches).
    pub icache: Cache,
    /// The data cache (receives reads and writes).
    pub dcache: Cache,
}

impl CacheSystem {
    /// Build a system with the same geometry for both caches (the paper
    /// quotes one size per configuration).
    pub fn symmetric(geometry: CacheGeometry) -> Self {
        CacheSystem {
            icache: Cache::new(geometry),
            dcache: Cache::new(geometry),
        }
    }

    /// Build a system with distinct I/D geometries.
    pub fn split(i: CacheGeometry, d: CacheGeometry) -> Self {
        CacheSystem {
            icache: Cache::new(i),
            dcache: Cache::new(d),
        }
    }

    /// Summarize both caches.
    pub fn summary(&self) -> CacheSummary {
        CacheSummary {
            i: self.icache.stats,
            d: self.dcache.stats,
        }
    }

    /// Reset both caches.
    pub fn reset(&mut self) {
        self.icache.reset();
        self.dcache.reset();
    }

    /// Replay a recorded access stream into this system.
    ///
    /// Identical to feeding the same events through [`TraceSink::access`]
    /// one at a time, but with the routing match inlined over a dense
    /// packed log — the hot loop of the record/replay sweep.
    pub fn replay(&mut self, log: &TraceLog) {
        for access in log {
            match access.kind {
                AccessKind::Fetch => {
                    self.icache.access(access.addr, false);
                }
                AccessKind::Read => {
                    self.dcache.access(access.addr, false);
                }
                AccessKind::Write => {
                    self.dcache.access(access.addr, true);
                }
            }
        }
    }
}

impl TraceSink for CacheSystem {
    #[inline]
    fn access(&mut self, access: Access) {
        match access.kind {
            AccessKind::Fetch => {
                self.icache.access(access.addr, false);
            }
            AccessKind::Read => {
                self.dcache.access(access.addr, false);
            }
            AccessKind::Write => {
                self.dcache.access(access.addr, true);
            }
        }
    }
}

// Cache behaviour depends only on the access stream; the granularity
// side-channel is deliberately ignored (default no-op `MarkSink`).
impl MarkSink for CacheSystem {}

/// Counters of one I/D pair after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Instruction-cache counters.
    pub i: CacheStats,
    /// Data-cache counters.
    pub d: CacheStats,
}

impl CacheSummary {
    /// Total misses across both caches.
    pub fn misses(&self) -> u64 {
        self.i.misses() + self.d.misses()
    }

    /// Total dirty-block evictions (data cache only; instruction blocks
    /// are never dirtied).
    pub fn writebacks(&self) -> u64 {
        self.d.writebacks
    }
}

// Summaries of disjoint cache systems add: a K-node mesh has one private
// I/D pair per node, and its sweep-level outcome is the per-node sum.
impl std::ops::AddAssign for CacheSummary {
    fn add_assign(&mut self, rhs: CacheSummary) {
        self.i += rhs.i;
        self.d += rhs.d;
    }
}

/// The cycle model.
///
/// Per the paper: "instructions were assumed to uniformly take one cycle,
/// not counting memory access time" and comparisons use "the number of
/// total cycles (including miss penalties)". Every instruction costs one
/// base cycle; every I- or D-cache miss adds `miss_penalty`. Charging
/// write-back traffic is off by default (the paper does not charge it) and
/// available for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleModel {
    /// Added cycles per cache miss.
    pub miss_penalty: u64,
    /// Whether dirty evictions also cost `miss_penalty`.
    pub charge_writebacks: bool,
}

impl CycleModel {
    /// The paper's model at a given miss penalty.
    pub fn paper(miss_penalty: u64) -> Self {
        CycleModel {
            miss_penalty,
            charge_writebacks: false,
        }
    }

    /// Total cycles for a run with `base_cycles` (instructions executed)
    /// and the given cache outcome.
    pub fn total_cycles(&self, base_cycles: u64, summary: &CacheSummary) -> u64 {
        let mut t = base_cycles + self.miss_penalty * summary.misses();
        if self.charge_writebacks {
            t += self.miss_penalty * summary.writebacks();
        }
        t
    }
}

/// Many cache systems fed from one trace pass.
///
/// The machine simulation is far more expensive than a cache probe, so the
/// experiment driver runs the machine once and fans each access out to
/// every configuration in the sweep.
#[derive(Debug, Clone, Default)]
pub struct CacheBank {
    systems: Vec<(CacheGeometry, CacheSystem)>,
}

impl CacheBank {
    /// A bank with one symmetric system per geometry.
    pub fn symmetric(geometries: impl IntoIterator<Item = CacheGeometry>) -> Self {
        CacheBank {
            systems: geometries
                .into_iter()
                .map(|g| (g, CacheSystem::symmetric(g)))
                .collect(),
        }
    }

    /// Number of configurations in the bank.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }

    /// Geometry and summary for every configuration.
    pub fn summaries(&self) -> Vec<(CacheGeometry, CacheSummary)> {
        self.systems
            .iter()
            .map(|(g, s)| (*g, s.summary()))
            .collect()
    }

    /// The summary for one geometry, if present.
    pub fn summary_for(&self, geometry: CacheGeometry) -> Option<CacheSummary> {
        self.systems
            .iter()
            .find(|(g, _)| *g == geometry)
            .map(|(_, s)| s.summary())
    }

    /// Score every geometry against a recorded log, in parallel.
    ///
    /// The log is first folded into same-block runs once per distinct
    /// block size ([`BlockTrace`]) — a single pass whose cost is amortized
    /// over every geometry sharing that block size (the whole Figure 3
    /// sweep uses 64-byte blocks), and which typically shrinks the stream
    /// severalfold because instruction fetch is sequential. Each
    /// configuration is then an independent simulation (they share nothing
    /// but the read-only folded traces), so the sweep is embarrassingly
    /// parallel and fans out through [`tamsim_trace::par_map`].
    ///
    /// Results are in `geometries` order and bit-identical to streaming
    /// the same events through a [`CacheBank`].
    pub fn replay_parallel(
        geometries: &[CacheGeometry],
        log: &TraceLog,
    ) -> Vec<(CacheGeometry, CacheSummary)> {
        let mut traces: Vec<BlockTrace> = Vec::new();
        for g in geometries {
            if !traces.iter().any(|t| t.block_bytes() == g.block_bytes) {
                traces.push(BlockTrace::build(log, g.block_bytes));
            }
        }
        tamsim_trace::par_map(geometries.to_vec(), |g: CacheGeometry| {
            let trace = traces
                .iter()
                .find(|t| t.block_bytes() == g.block_bytes)
                .expect("trace folded for every block size in the sweep");
            let mut system = CacheSystem::symmetric(g);
            trace.replay(&mut system);
            (g, system.summary())
        })
    }

    /// Score every geometry against several recorded logs — one *private*
    /// system per (geometry, log), summaries summed per geometry.
    ///
    /// This is the mesh cache model: each node owns an I/D pair, a
    /// recorded mesh run yields one log per node, and the sweep-level
    /// outcome for a geometry is the sum over all nodes' private caches.
    /// Results are in `geometries` order; each log replays through
    /// [`CacheBank::replay_parallel`], so the sweep still fans out across
    /// the worker pool.
    pub fn replay_parallel_many(
        geometries: &[CacheGeometry],
        logs: &[TraceLog],
    ) -> Vec<(CacheGeometry, CacheSummary)> {
        let mut acc: Vec<(CacheGeometry, CacheSummary)> = geometries
            .iter()
            .map(|g| (*g, CacheSummary::default()))
            .collect();
        for log in logs {
            for (slot, (g, s)) in acc.iter_mut().zip(Self::replay_parallel(geometries, log)) {
                debug_assert_eq!(slot.0, g);
                slot.1 += s;
            }
        }
        acc
    }
}

impl TraceSink for CacheBank {
    #[inline]
    fn access(&mut self, access: Access) {
        for (_, system) in &mut self.systems {
            system.access(access);
        }
    }
}

// See `CacheSystem`: marks carry no cache-visible traffic.
impl MarkSink for CacheBank {}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64, 2, 8)
    }

    #[test]
    fn routing_fetch_vs_data() {
        let mut s = CacheSystem::symmetric(geom());
        s.access(Access::fetch(0));
        s.access(Access::read(0));
        s.access(Access::write(8));
        let sum = s.summary();
        assert_eq!(sum.i.reads, 1);
        assert_eq!(sum.d.reads, 1);
        assert_eq!(sum.d.writes, 1);
        assert_eq!(sum.i.writes, 0);
    }

    #[test]
    fn icache_and_dcache_do_not_interfere() {
        let mut s = CacheSystem::symmetric(geom());
        s.access(Access::fetch(0));
        s.access(Access::read(0));
        // Both were compulsory misses despite identical addresses.
        assert_eq!(s.summary().i.read_misses, 1);
        assert_eq!(s.summary().d.read_misses, 1);
    }

    #[test]
    fn cycle_model_totals() {
        let m = CycleModel::paper(12);
        let mut sum = CacheSummary::default();
        sum.i.read_misses = 3;
        sum.d.write_misses = 2;
        sum.d.writebacks = 5;
        assert_eq!(m.total_cycles(100, &sum), 100 + 12 * 5);
        let charged = CycleModel {
            miss_penalty: 12,
            charge_writebacks: true,
        };
        assert_eq!(charged.total_cycles(100, &sum), 100 + 12 * 5 + 12 * 5);
    }

    #[test]
    fn bank_matches_individual_systems() {
        let geoms = [CacheGeometry::new(32, 1, 8), CacheGeometry::new(64, 2, 8)];
        let mut bank = CacheBank::symmetric(geoms);
        let mut solo: Vec<CacheSystem> = geoms.iter().map(|g| CacheSystem::symmetric(*g)).collect();
        let trace = [
            Access::fetch(0),
            Access::read(16),
            Access::write(16),
            Access::fetch(4),
            Access::read(48),
            Access::read(16),
        ];
        for a in trace {
            bank.access(a);
            for s in &mut solo {
                s.access(a);
            }
        }
        for (i, (g, sum)) in bank.summaries().into_iter().enumerate() {
            assert_eq!(g, geoms[i]);
            assert_eq!(sum, solo[i].summary());
        }
    }

    #[test]
    fn replay_parallel_matches_streaming_bank() {
        let geoms = [
            CacheGeometry::new(32, 1, 8),
            CacheGeometry::new(64, 2, 8),
            CacheGeometry::new(128, 4, 16),
        ];
        let mut log = TraceLog::new();
        let mut bank = CacheBank::symmetric(geoms);
        // A pseudo-random-ish stream with collisions across all geometries.
        let mut addr = 4u32;
        for i in 0..5000u32 {
            addr = (addr.wrapping_mul(1664525).wrapping_add(1013904223)) & 0x3FC;
            let a = match i % 3 {
                0 => Access::fetch(addr),
                1 => Access::read(addr),
                _ => Access::write(addr),
            };
            log.access(a);
            bank.access(a);
        }
        let parallel = CacheBank::replay_parallel(&geoms, &log);
        assert_eq!(parallel, bank.summaries());
    }

    #[test]
    fn replay_parallel_empty_geometries() {
        let log = TraceLog::new();
        assert!(CacheBank::replay_parallel(&[], &log).is_empty());
    }

    #[test]
    fn summary_for_finds_geometry() {
        let g = geom();
        let bank = CacheBank::symmetric([g]);
        assert!(bank.summary_for(g).is_some());
        assert!(bank.summary_for(CacheGeometry::new(128, 2, 8)).is_none());
        assert_eq!(bank.len(), 1);
        assert!(!bank.is_empty());
    }
}
