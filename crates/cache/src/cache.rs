//! One set-associative, write-back, write-allocate, true-LRU cache.
//!
//! Matches the paper's simulator: "separate instruction and write-back
//! data caches with replacement of the least-recently-used element",
//! 1/2/4-way set associativity, block sizes 8–64 bytes.

use crate::CacheGeometry;

/// Per-cache access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read (or fetch) accesses.
    pub reads: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write accesses.
    pub writes: u64,
    /// Write misses (write-allocate: the block is fetched).
    pub write_misses: u64,
    /// Dirty blocks evicted (write-back traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss rate (0 when there were no accesses).
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses() as f64 / a as f64
        }
    }
}

// Counters from disjoint caches add meaningfully (per-node caches on a
// mesh are aggregated this way).
impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.reads += rhs.reads;
        self.read_misses += rhs.read_misses;
        self.writes += rhs.writes;
        self.write_misses += rhs.write_misses;
        self.writebacks += rhs.writebacks;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
}

/// A single cache.
///
/// Lines within a set are kept in recency order (index 0 = most recently
/// used), which makes true LRU trivial for the small associativities the
/// paper studies.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    /// `n_sets × assoc` lines; set `s` occupies
    /// `lines[s*assoc .. (s+1)*assoc]` in recency order.
    lines: Vec<Line>,
    block_shift: u32,
    set_mask: u32,
    /// Bits to shift a block number right to obtain its tag
    /// (`set_mask.trailing_ones()`, precomputed off the access path).
    tag_shift: u32,
    assoc: usize,
    /// Accumulated counters.
    pub stats: CacheStats,
}

impl Cache {
    /// An empty (all-invalid) cache of the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let n_sets = geometry.n_sets();
        Cache {
            lines: vec![Line::default(); (n_sets * geometry.assoc) as usize],
            block_shift: geometry.block_bytes.trailing_zeros(),
            set_mask: n_sets - 1,
            tag_shift: n_sets.trailing_zeros(),
            assoc: geometry.assoc as usize,
            stats: CacheStats::default(),
            geometry,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Perform one access; returns `true` on hit.
    ///
    /// Write misses allocate (fetch the block, then dirty it); evicting a
    /// dirty block counts a write-back.
    #[inline]
    pub fn access(&mut self, addr: u32, is_write: bool) -> bool {
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.probe_block(addr >> self.block_shift, is_write)
    }

    /// Core of [`Cache::access`], operating on a block number and leaving
    /// the read/write access counters to the caller: the compressed-run
    /// replay path accounts whole runs at once and probes only the first
    /// access of each run (the rest are guaranteed hits).
    #[inline]
    pub(crate) fn probe_block(&mut self, block: u32, is_write: bool) -> bool {
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.tag_shift;

        // Direct-mapped fast path: no recency order to maintain, so a
        // single compare decides the access (a third of the paper's sweep
        // is 1-way).
        if self.assoc == 1 {
            let line = &mut self.lines[set];
            if line.valid && line.tag == tag {
                line.dirty |= is_write;
                return true;
            }
            if is_write {
                self.stats.write_misses += 1;
            } else {
                self.stats.read_misses += 1;
            }
            if line.valid && line.dirty {
                self.stats.writebacks += 1;
            }
            *line = Line {
                tag,
                valid: true,
                dirty: is_write,
            };
            return false;
        }

        let base = set * self.assoc;
        let ways = &mut self.lines[base..base + self.assoc];

        // Search for the tag.
        if let Some(pos) = ways.iter().position(|l| l.valid && l.tag == tag) {
            // Hit: move to front (most recently used).
            ways[..=pos].rotate_right(1);
            if is_write {
                ways[0].dirty = true;
            }
            return true;
        }

        // Miss: evict LRU (last way), allocate at front.
        if is_write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        let victim = ways[self.assoc - 1];
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        ways.rotate_right(1);
        ways[0] = Line {
            tag,
            valid: true,
            dirty: is_write,
        };
        false
    }

    /// Dirty the most-recently-used line of `block`'s set.
    ///
    /// Only valid immediately after an access to `block` (the
    /// compressed-run replay calls it when a run's later accesses include
    /// a write: those are hits on the just-touched, MRU-resident block).
    #[inline]
    pub(crate) fn dirty_mru(&mut self, block: u32) {
        let set = (block & self.set_mask) as usize;
        let line = &mut self.lines[set * self.assoc];
        debug_assert!(line.valid && line.tag == block >> self.tag_shift);
        line.dirty = true;
    }

    /// The log2 of the block size (callers shift addresses to blocks).
    #[inline]
    pub(crate) fn block_shift(&self) -> u32 {
        self.block_shift
    }

    /// Reset contents and counters (reuse between runs).
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 8-byte blocks = 32 bytes.
        Cache::new(CacheGeometry::new(32, 2, 8))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(4, false), "same block");
        assert_eq!(c.stats.reads, 3);
        assert_eq!(c.stats.read_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds blocks with even block numbers (block = addr/8,
        // set = block & 1). Blocks 0, 2, 4 all map to set 0.
        assert!(!c.access(0, false)); // block 0
        assert!(!c.access(16, false)); // block 2
        assert!(c.access(0, false)); // touch block 0 → block 2 is LRU
        assert!(!c.access(32, false)); // block 4 evicts block 2
        assert!(c.access(0, false), "block 0 retained");
        assert!(!c.access(16, false), "block 2 was evicted");
    }

    #[test]
    fn write_allocate_and_writeback() {
        let mut c = tiny();
        assert!(!c.access(0, true)); // write miss, allocates dirty
        assert_eq!(c.stats.write_misses, 1);
        assert!(!c.access(16, false)); // set 0 way 2
        assert!(!c.access(32, false)); // evicts dirty block 0 → writeback
        assert_eq!(c.stats.writebacks, 1);
        // Clean eviction doesn't count.
        assert!(!c.access(0, false)); // evicts block 2 (clean)
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheGeometry::new(16, 1, 8));
        // 2 sets; blocks 0 and 2 both map to set 0.
        assert!(!c.access(0, false));
        assert!(!c.access(16, false));
        assert!(!c.access(0, false), "conflict evicted block 0");
        assert_eq!(c.stats.read_misses, 3);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(CacheGeometry::new(16, 1, 8));
        assert!(!c.access(0, false)); // set 0
        assert!(!c.access(8, false)); // set 1
        assert!(c.access(0, false));
        assert!(c.access(8, false));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0, true);
        c.reset();
        assert_eq!(c.stats, CacheStats::default());
        assert!(!c.access(0, false), "contents cleared");
    }

    #[test]
    fn miss_rate_math() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.stats.miss_rate(), 0.5);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn large_cache_holds_working_set() {
        let mut c = Cache::new(CacheGeometry::new(131072, 4, 64));
        // Touch 1000 distinct blocks twice: only compulsory misses.
        for pass in 0..2 {
            for i in 0..1000u32 {
                let hit = c.access(i * 64, false);
                assert_eq!(hit, pass == 1);
            }
        }
        assert_eq!(c.stats.read_misses, 1000);
    }
}
