//! A compact, append-only access log for record-once / replay-many sweeps.
//!
//! The machine simulation is far more expensive than a cache probe, so the
//! experiment driver records the access stream once into a [`TraceLog`] and
//! replays it into every cache configuration afterwards (in parallel — the
//! configurations share nothing). Events are packed into one 32-bit word
//! each: the machine model only issues word-aligned accesses, so the low
//! two address bits are free to carry the [`AccessKind`].

use crate::{Access, AccessKind, Mark, MarkLog, MarkRecord, MarkSink, Priority, TraceSink};

/// Events per chunk (256 KiB of packed events). Chunking keeps appends
/// amortized O(1) without ever copying previously recorded events the way
/// a growing `Vec` would, and keeps allocation requests modest.
const CHUNK_EVENTS: usize = 1 << 16;

#[inline]
fn encode(access: Access) -> u32 {
    debug_assert!(
        access.addr & 3 == 0,
        "TraceLog requires word-aligned addresses, got {:#x}",
        access.addr
    );
    access.addr | access.kind.index() as u32
}

#[inline]
fn decode(word: u32) -> Access {
    let kind = match word & 3 {
        0 => AccessKind::Fetch,
        1 => AccessKind::Read,
        _ => AccessKind::Write,
    };
    Access {
        kind,
        addr: word & !3,
    }
}

/// An in-memory recording of one machine run's access stream.
///
/// Implements [`TraceSink`] for recording; [`TraceLog::iter`] replays the
/// events in the recorded order. One event costs 4 bytes.
///
/// The log also implements [`MarkSink`], retaining the granularity stream
/// (marks with per-priority cycle snapshots and queue-occupancy samples) so
/// recorded runs lose nothing relative to live ones: replay consumers can
/// rebuild timelines and quantum statistics from [`TraceLog::marks`]
/// without re-simulating the machine. Marks are sparse, so the retained
/// side-channel stays small next to the packed access stream.
#[derive(Debug, Default, Clone)]
pub struct TraceLog {
    /// Fixed-capacity chunks; only the last one is ever partially full.
    chunks: Vec<Vec<u32>>,
    /// Retained granularity stream (marks, cycles, queue samples).
    marks: MarkLog,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        match self.chunks.split_last() {
            Some((last, full)) => full.len() * CHUNK_EVENTS + last.len(),
            None => 0,
        }
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        // After `clear` one empty chunk may remain allocated.
        self.chunks.last().is_none_or(|c| c.is_empty())
    }

    /// Bytes of packed event storage currently in use.
    pub fn packed_bytes(&self) -> usize {
        self.len() * 4
    }

    /// Append one event.
    #[inline]
    pub fn push(&mut self, access: Access) {
        match self.chunks.last_mut() {
            Some(chunk) if chunk.len() < CHUNK_EVENTS => chunk.push(encode(access)),
            _ => {
                let mut chunk = Vec::with_capacity(CHUNK_EVENTS);
                chunk.push(encode(access));
                self.chunks.push(chunk);
            }
        }
    }

    /// Discard all recorded events, keeping one chunk's allocation for
    /// reuse (the overflow-retry path re-records from scratch).
    pub fn clear(&mut self) {
        self.chunks.truncate(1);
        if let Some(first) = self.chunks.first_mut() {
            first.clear();
        }
        self.marks.clear();
    }

    /// Append `n` fetch events at consecutive word addresses from `start`.
    ///
    /// Equivalent to `n` [`TraceLog::push`] calls of `Access::fetch`; the
    /// chunk-boundary check runs once per chunk instead of once per event.
    #[inline]
    pub fn push_fetch_run(&mut self, start: u32, n: u32) {
        let mut addr = start;
        let mut left = n as usize;
        while left > 0 {
            let chunk = match self.chunks.last_mut() {
                Some(chunk) if chunk.len() < CHUNK_EVENTS => chunk,
                _ => {
                    self.chunks.push(Vec::with_capacity(CHUNK_EVENTS));
                    self.chunks.last_mut().unwrap()
                }
            };
            let take = left.min(CHUNK_EVENTS - chunk.len());
            // Fetch kind encodes as 0 in the low bits: the packed word is
            // the (word-aligned) address itself.
            debug_assert!(addr & 3 == 0);
            chunk.extend((0..take as u32).map(|k| addr + k * 4));
            addr += (take as u32) * 4;
            left -= take;
        }
    }

    /// The retained granularity marks, in execution order.
    pub fn marks(&self) -> &[MarkRecord] {
        &self.marks.records
    }

    /// Instructions recorded per priority (the run's cycle counters).
    pub fn cycles(&self) -> [u64; 2] {
        self.marks.cycles
    }

    /// Iterate the recorded events in order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            chunks: self.chunks.iter(),
            current: [].iter(),
        }
    }
}

impl TraceSink for TraceLog {
    #[inline]
    fn access(&mut self, access: Access) {
        self.push(access);
    }

    #[inline]
    fn fetch_run(&mut self, start: u32, n: u32) {
        self.push_fetch_run(start, n);
    }
}

impl MarkSink for TraceLog {
    #[inline]
    fn instruction(&mut self, pri: Priority, pc: u32) {
        self.marks.instruction(pri, pc);
    }

    #[inline]
    fn instruction_run(&mut self, pri: Priority, start_pc: u32, n: u32) {
        self.marks.instruction_run(pri, start_pc, n);
    }

    #[inline]
    fn queue_sample(&mut self, used_words: [u32; 2]) {
        self.marks.queue_sample(used_words);
    }

    #[inline]
    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        self.marks.mark(mark, frame, pri);
    }
}

/// Iterator over a [`TraceLog`]'s events in recorded order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    chunks: std::slice::Iter<'a, Vec<u32>>,
    current: std::slice::Iter<'a, u32>,
}

impl Iterator for Iter<'_> {
    type Item = Access;

    #[inline]
    fn next(&mut self) -> Option<Access> {
        loop {
            if let Some(&w) = self.current.next() {
                return Some(decode(w));
            }
            self.current = self.chunks.next()?.iter();
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Lower bound only: remaining full-chunk sizes are not tracked.
        (self.current.len(), None)
    }
}

impl<'a> IntoIterator for &'a TraceLog {
    type Item = Access;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_all_kinds() {
        let mut log = TraceLog::new();
        let events = [
            Access::fetch(0x1000),
            Access::read(0x2004),
            Access::write(0x3008),
            Access::fetch(0),
        ];
        for e in events {
            log.access(e);
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.packed_bytes(), 16);
        let replayed: Vec<Access> = log.iter().collect();
        assert_eq!(replayed, events);
    }

    #[test]
    fn empty_log() {
        let log = TraceLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.iter().count(), 0);
    }

    #[test]
    fn spans_chunk_boundaries() {
        let mut log = TraceLog::new();
        let n = CHUNK_EVENTS + CHUNK_EVENTS / 2 + 7;
        for i in 0..n {
            log.push(Access::read((i as u32) * 4));
        }
        assert_eq!(log.len(), n);
        let mut count = 0usize;
        for (i, a) in log.iter().enumerate() {
            assert_eq!(a, Access::read((i as u32) * 4));
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn clear_discards_and_allows_rerecording() {
        let mut log = TraceLog::new();
        for i in 0..(CHUNK_EVENTS * 2 + 3) {
            log.push(Access::write((i as u32) * 4));
        }
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.iter().count(), 0);
        log.push(Access::fetch(64));
        assert_eq!(log.iter().collect::<Vec<_>>(), vec![Access::fetch(64)]);
    }

    #[test]
    fn marks_are_retained_and_cleared_with_the_log() {
        let mut log = TraceLog::new();
        log.access(Access::fetch(0));
        log.instruction(Priority::Low, 0);
        log.queue_sample([5, 0]);
        log.mark(Mark::ThreadEnd, 0x80, Priority::Low);
        assert_eq!(log.marks().len(), 1);
        assert_eq!(log.cycles(), [1, 0]);
        assert_eq!(log.marks()[0].queue_words, [5, 0]);
        log.clear();
        assert!(log.marks().is_empty());
        assert_eq!(log.cycles(), [0, 0]);
    }

    #[test]
    fn kind_codes_match_access_kind_index() {
        // The packed representation relies on `AccessKind::index`; a change
        // there must not silently corrupt recorded logs.
        for kind in AccessKind::ALL {
            let a = Access { kind, addr: 0x40 };
            assert_eq!(decode(encode(a)), a);
        }
    }
}
