//! The memory-access event type emitted by the machine model.

/// What kind of memory access an event is.
///
/// The paper distinguishes instruction *fetches* from data *reads* and
/// *writes* (Section 3.1 reports each ratio separately: "the MD
/// implementation yields 86% of the reads, 87% of the writes, and 77% of
/// the fetches produced by the AM implementation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An instruction fetch; goes to the instruction cache.
    Fetch,
    /// A data load; goes to the data cache.
    Read,
    /// A data store; goes to the (write-back) data cache.
    Write,
}

impl AccessKind {
    /// All access kinds, in a stable order usable for indexing.
    pub const ALL: [AccessKind; 3] = [AccessKind::Fetch, AccessKind::Read, AccessKind::Write];

    /// A stable small index for this kind (0 = fetch, 1 = read, 2 = write).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            AccessKind::Fetch => 0,
            AccessKind::Read => 1,
            AccessKind::Write => 2,
        }
    }

    /// Whether the access targets the instruction cache.
    #[inline]
    pub fn is_instruction(self) -> bool {
        matches!(self, AccessKind::Fetch)
    }

    /// Human-readable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            AccessKind::Fetch => "fetch",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        }
    }
}

/// A single word-granularity memory access at a byte address.
///
/// Addresses are byte addresses (word-aligned by construction in the machine
/// model); the cache simulator masks them down to block addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Access kind.
    pub kind: AccessKind,
    /// Byte address of the accessed word.
    pub addr: u32,
}

impl Access {
    /// Construct an instruction fetch at `addr`.
    #[inline]
    pub fn fetch(addr: u32) -> Self {
        Access {
            kind: AccessKind::Fetch,
            addr,
        }
    }

    /// Construct a data read at `addr`.
    #[inline]
    pub fn read(addr: u32) -> Self {
        Access {
            kind: AccessKind::Read,
            addr,
        }
    }

    /// Construct a data write at `addr`.
    #[inline]
    pub fn write(addr: u32) -> Self {
        Access {
            kind: AccessKind::Write,
            addr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_distinct_and_dense() {
        let mut seen = [false; 3];
        for k in AccessKind::ALL {
            assert!(!seen[k.index()], "duplicate index for {k:?}");
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn only_fetch_is_instruction() {
        assert!(AccessKind::Fetch.is_instruction());
        assert!(!AccessKind::Read.is_instruction());
        assert!(!AccessKind::Write.is_instruction());
    }

    #[test]
    fn constructors_set_fields() {
        assert_eq!(
            Access::fetch(16),
            Access {
                kind: AccessKind::Fetch,
                addr: 16
            }
        );
        assert_eq!(Access::read(4).kind, AccessKind::Read);
        assert_eq!(Access::write(8).addr, 8);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AccessKind::Fetch.name(), "fetch");
        assert_eq!(AccessKind::Read.name(), "read");
        assert_eq!(AccessKind::Write.name(), "write");
    }
}
