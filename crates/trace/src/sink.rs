//! Trace sinks: consumers of the machine model's access stream.

use crate::{Access, AccessCounts, Mark, MarkSink, MemoryMap, Priority};

/// A consumer of memory-access events.
///
/// The machine model calls [`TraceSink::access`] once per instruction fetch
/// and once per data read/write, in program order. Implementors include the
/// cache simulator, access counters, and test recorders. Sinks are driven
/// single-threaded per machine run; parallelism in the harness is across
/// independent runs.
pub trait TraceSink {
    /// Consume one access event.
    fn access(&mut self, access: Access);

    /// Consume a run of `n` consecutive instruction fetches starting at
    /// `start` (addresses `start`, `start + 4`, ...).
    ///
    /// The decoded-dispatch executor batches straight-line fetch runs into
    /// one call; the default expansion delivers exactly the events the
    /// per-instruction path would, so sinks that do not override this are
    /// bit-identical either way. Sinks with cheap bulk handling (the
    /// [`crate::TraceLog`] recorder, [`CountingSink`]) override it.
    #[inline]
    fn fetch_run(&mut self, start: u32, n: u32) {
        for k in 0..n {
            self.access(Access::fetch(start + k * 4));
        }
    }
}

/// A sink that discards everything (pure instruction-count runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn access(&mut self, _access: Access) {}
}

impl MarkSink for NullSink {}

/// A sink that records every access; for tests and small traces only.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// The recorded events, in program order.
    pub events: Vec<Access>,
}

impl VecSink {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.events.push(access);
    }
}

impl MarkSink for VecSink {}

/// A sink that counts accesses per region and kind.
#[derive(Debug, Clone)]
pub struct CountingSink {
    /// The counters being accumulated.
    pub counts: AccessCounts,
    map: MemoryMap,
}

impl CountingSink {
    /// A zeroed counter over `map`.
    pub fn new(map: MemoryMap) -> Self {
        CountingSink {
            counts: AccessCounts::new(),
            map,
        }
    }
}

impl TraceSink for CountingSink {
    #[inline]
    fn access(&mut self, access: Access) {
        // Checked classification: an address above the modeled top of
        // memory is a machine-model bug and must not be folded into a
        // region bucket, in release builds included.
        let Some(region) = self.map.try_classify(access.addr) else {
            panic!(
                "access at {:#x} lies above the modeled top of memory \
                 ({:#x}); machine-model bug",
                access.addr, self.map.top
            );
        };
        self.counts.record_in(region, access.kind);
    }

    #[inline]
    fn fetch_run(&mut self, start: u32, n: u32) {
        if n == 0 {
            return;
        }
        // A fetch run never crosses a region boundary (the decoder places a
        // guard slot at each region end), so one classification covers the
        // whole batch. Check the last address too so the whole run is
        // validated exactly as per-event delivery would have.
        let last = start + (n - 1) * 4;
        let (Some(region), Some(_)) = (self.map.try_classify(start), self.map.try_classify(last))
        else {
            panic!(
                "access at {:#x} lies above the modeled top of memory \
                 ({:#x}); machine-model bug",
                last, self.map.top
            );
        };
        self.counts
            .record_many(region, crate::AccessKind::Fetch, n as u64);
    }
}

impl MarkSink for CountingSink {}

/// Fan one access stream out to two sinks.
///
/// Compose `Tee`s to feed any number of consumers in a single machine run;
/// the experiment driver uses this to feed the cache bank and the access
/// counters simultaneously.
#[derive(Debug, Default, Clone)]
pub struct Tee<A, B> {
    /// First downstream sink.
    pub a: A,
    /// Second downstream sink.
    pub b: B,
}

impl<A, B> Tee<A, B> {
    /// Combine two sinks.
    pub fn new(a: A, b: B) -> Self {
        Tee { a, b }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<A, B> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.a.access(access);
        self.b.access(access);
    }

    #[inline]
    fn fetch_run(&mut self, start: u32, n: u32) {
        self.a.fetch_run(start, n);
        self.b.fetch_run(start, n);
    }
}

impl<A: MarkSink, B: MarkSink> MarkSink for Tee<A, B> {
    #[inline]
    fn instruction(&mut self, pri: Priority, pc: u32) {
        self.a.instruction(pri, pc);
        self.b.instruction(pri, pc);
    }

    #[inline]
    fn instruction_run(&mut self, pri: Priority, start_pc: u32, n: u32) {
        self.a.instruction_run(pri, start_pc, n);
        self.b.instruction_run(pri, start_pc, n);
    }

    #[inline]
    fn queue_sample(&mut self, used_words: [u32; 2]) {
        self.a.queue_sample(used_words);
        self.b.queue_sample(used_words);
    }

    #[inline]
    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        self.a.mark(mark, frame, pri);
        self.b.mark(mark, frame, pri);
    }
}

/// Adapt a closure into a sink.
pub struct FnSink<F: FnMut(Access)>(pub F);

impl<F: FnMut(Access)> TraceSink for FnSink<F> {
    #[inline]
    fn access(&mut self, access: Access) {
        (self.0)(access);
    }
}

impl<F: FnMut(Access)> MarkSink for FnSink<F> {}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn access(&mut self, access: Access) {
        (**self).access(access);
    }

    #[inline]
    fn fetch_run(&mut self, start: u32, n: u32) {
        (**self).fetch_run(start, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind;

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        s.access(Access::fetch(0));
        s.access(Access::read(4));
        s.access(Access::write(8));
        assert_eq!(
            s.events,
            vec![Access::fetch(0), Access::read(4), Access::write(8)]
        );
    }

    #[test]
    fn tee_duplicates_stream() {
        let mut t = Tee::new(VecSink::new(), VecSink::new());
        t.access(Access::read(12));
        assert_eq!(t.a.events, t.b.events);
        assert_eq!(t.a.events.len(), 1);
    }

    #[test]
    fn counting_sink_counts() {
        let map = MemoryMap::default();
        let mut c = CountingSink::new(map);
        c.access(Access::fetch(map.user_code_base));
        c.access(Access::fetch(map.user_code_base + 4));
        c.access(Access::write(map.frame_base));
        assert_eq!(c.counts.fetches(), 2);
        assert_eq!(c.counts.writes(), 1);
        assert_eq!(c.counts.kind_total(AccessKind::Read), 0);
    }

    #[test]
    #[should_panic(expected = "above the modeled top of memory")]
    fn counting_sink_rejects_out_of_range_addresses_in_release_too() {
        let mut c = CountingSink::new(MemoryMap::default());
        c.access(Access::read(0x7fff_fffc));
    }

    #[test]
    fn tee_forwards_marks_to_both_sinks() {
        let mut t = Tee::new(crate::MarkLog::new(), crate::MarkLog::new());
        t.instruction(Priority::Low, 0);
        t.queue_sample([2, 0]);
        t.mark(Mark::ThreadEnd, 0x10, Priority::Low);
        assert_eq!(t.a.records, t.b.records);
        assert_eq!(t.a.records.len(), 1);
        assert_eq!(t.a.records[0].queue_words, [2, 0]);
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let mut n = 0u32;
        {
            let mut s = FnSink(|a: Access| n += a.addr);
            s.access(Access::read(4));
            s.access(Access::read(6));
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        let mut v = VecSink::new();
        {
            let r: &mut VecSink = &mut v;
            r.access(Access::fetch(0));
        }
        assert_eq!(v.events.len(), 1);
    }
}
