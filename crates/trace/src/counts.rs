//! Per-kind, per-region access counters.

use crate::{Access, AccessKind, MemoryMap, Region};

/// Access counts broken down by [`Region`] × [`AccessKind`].
///
/// This directly supports the Section 3.1 analysis, which compares reads,
/// writes, and fetches of the MD and AM implementations, split into system
/// and user regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCounts {
    /// `counts[region.index()][kind.index()]`.
    counts: [[u64; 3]; 4],
}

impl AccessCounts {
    /// An all-zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one access classified against `map`.
    #[inline]
    pub fn record(&mut self, access: Access, map: &MemoryMap) {
        let region = map.classify(access.addr);
        self.counts[region.index()][access.kind.index()] += 1;
    }

    /// Record one access with an already-known region.
    #[inline]
    pub fn record_in(&mut self, region: Region, kind: AccessKind) {
        self.counts[region.index()][kind.index()] += 1;
    }

    /// Record `n` accesses of one kind in one region (batched fetch runs).
    #[inline]
    pub fn record_many(&mut self, region: Region, kind: AccessKind, n: u64) {
        self.counts[region.index()][kind.index()] += n;
    }

    /// Count for a specific region and kind.
    #[inline]
    pub fn get(&self, region: Region, kind: AccessKind) -> u64 {
        self.counts[region.index()][kind.index()]
    }

    /// Total accesses of `kind` across all regions.
    pub fn kind_total(&self, kind: AccessKind) -> u64 {
        Region::ALL.iter().map(|r| self.get(*r, kind)).sum()
    }

    /// Total accesses in `region` across all kinds.
    pub fn region_total(&self, region: Region) -> u64 {
        AccessKind::ALL.iter().map(|k| self.get(region, *k)).sum()
    }

    /// Total instruction fetches.
    pub fn fetches(&self) -> u64 {
        self.kind_total(AccessKind::Fetch)
    }

    /// Total data reads.
    pub fn reads(&self) -> u64 {
        self.kind_total(AccessKind::Read)
    }

    /// Total data writes.
    pub fn writes(&self) -> u64 {
        self.kind_total(AccessKind::Write)
    }

    /// Total accesses of every kind.
    pub fn total(&self) -> u64 {
        AccessKind::ALL.iter().map(|k| self.kind_total(*k)).sum()
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &AccessCounts) {
        for r in 0..4 {
            for k in 0..3 {
                self.counts[r][k] += other.counts[r][k];
            }
        }
    }

    /// Ratio of this counter's `kind` total to `baseline`'s (MD/AM style).
    ///
    /// Returns `None` when the baseline is zero.
    pub fn ratio_to(&self, baseline: &AccessCounts, kind: AccessKind) -> Option<f64> {
        let b = baseline.kind_total(kind);
        (b != 0).then(|| self.kind_total(kind) as f64 / b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> MemoryMap {
        MemoryMap::default()
    }

    #[test]
    fn record_classifies_by_region() {
        let m = map();
        let mut c = AccessCounts::new();
        c.record(Access::fetch(m.system_code_base + 8), &m);
        c.record(Access::read(m.frame_base + 16), &m);
        c.record(Access::write(m.system_data_base), &m);
        assert_eq!(c.get(Region::SystemCode, AccessKind::Fetch), 1);
        assert_eq!(c.get(Region::UserData, AccessKind::Read), 1);
        assert_eq!(c.get(Region::SystemData, AccessKind::Write), 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn totals_sum_over_axes() {
        let mut c = AccessCounts::new();
        for r in Region::ALL {
            for k in AccessKind::ALL {
                c.record_in(r, k);
                c.record_in(r, k);
            }
        }
        assert_eq!(c.total(), 24);
        assert_eq!(c.fetches(), 8);
        assert_eq!(c.reads(), 8);
        assert_eq!(c.writes(), 8);
        assert_eq!(c.region_total(Region::UserData), 6);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = AccessCounts::new();
        let mut b = AccessCounts::new();
        a.record_in(Region::UserData, AccessKind::Read);
        b.record_in(Region::UserData, AccessKind::Read);
        b.record_in(Region::SystemCode, AccessKind::Fetch);
        a.merge(&b);
        assert_eq!(a.get(Region::UserData, AccessKind::Read), 2);
        assert_eq!(a.get(Region::SystemCode, AccessKind::Fetch), 1);
    }

    #[test]
    fn ratio_to_handles_zero_baseline() {
        let mut md = AccessCounts::new();
        md.record_in(Region::UserData, AccessKind::Read);
        let am = AccessCounts::new();
        assert_eq!(md.ratio_to(&am, AccessKind::Read), None);

        let mut am = AccessCounts::new();
        am.record_in(Region::UserData, AccessKind::Read);
        am.record_in(Region::UserData, AccessKind::Read);
        assert_eq!(md.ratio_to(&am, AccessKind::Read), Some(0.5));
    }
}
