//! A minimal shared worker pool for embarrassingly parallel sweeps.
//!
//! Three consumers fan independent work units across cores: the cache
//! sweep (`tamsim-cache` replays one read-only trace into many
//! configurations), the suite collector (`tamsim-metrics` records one
//! machine run per program/implementation pair), and the fuzz runner
//! (`tamsim-check` checks one generated program per seed). All three used
//! to hand-roll the same `available_parallelism` + `thread::scope` shard
//! loop; this module is that loop, written once.
//!
//! The pool is deliberately simple: items are split into `ceil(n/workers)`
//! contiguous shards, one scoped thread per shard, and results are
//! concatenated in shard order — so the output order always equals the
//! input order, exactly as a serial `map` would produce. There is no work
//! stealing; the consumers' work units are numerous and similar enough
//! that static sharding stays balanced.

/// Map `f` over `items` using up to one worker thread per core.
///
/// Results are returned in input order. With one item, one core, or an
/// empty input the map runs inline on the caller's thread — the scoped
/// spawn is skipped entirely, so `par_map` is safe to use on cheap inputs.
///
/// # Panics
/// Propagates a panic from `f` (the worker's panic aborts the join).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let shard = items.len().div_ceil(workers);
    let mut shards: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(shard).collect();
        if chunk.is_empty() {
            break;
        }
        shards.push(chunk);
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = shards
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map((0..1000).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_run_inline() {
        assert_eq!(par_map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn owned_non_copy_items_move_into_workers() {
        let items: Vec<String> = (0..37).map(|i| format!("item-{i}")).collect();
        let out = par_map(items.clone(), |s| s.len());
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_returns_in_order() {
        // Make early items slow so later shards finish first.
        let out = par_map((0..64u64).collect(), |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * i
        });
        assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "par_map worker panicked")]
    fn worker_panic_propagates() {
        // More items than any plausible core count forces the threaded path
        // on multi-core hosts; on a single core the inline path panics with
        // the closure's own message, so only assert when sharded.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            <= 1
        {
            panic!("par_map worker panicked (inline path, trivially)");
        }
        par_map((0..4096).collect(), |i: i32| {
            assert!(i != 2048, "boom");
            i
        });
    }
}
