//! A minimal shared worker pool for embarrassingly parallel sweeps.
//!
//! Three consumers fan independent work units across cores: the cache
//! sweep (`tamsim-cache` replays one read-only trace into many
//! configurations), the suite collector (`tamsim-metrics` records one
//! machine run per program/implementation pair), and the fuzz runner
//! (`tamsim-check` checks one generated program per seed). All three used
//! to hand-roll the same `available_parallelism` + `thread::scope` shard
//! loop; this module is that loop, written once.
//!
//! The pool is deliberately simple: items are split into `ceil(n/workers)`
//! contiguous shards, one scoped thread per shard, and results are
//! concatenated in shard order — so the output order always equals the
//! input order, exactly as a serial `map` would produce. There is no work
//! stealing; the consumers' work units are numerous and similar enough
//! that static sharding stays balanced.

/// Resolve the worker count for `n_items` work units: the `TAMSIM_JOBS`
/// override when set (parsed as a positive integer; anything else —
/// empty, zero, garbage — falls back to the default), else one worker per
/// available core, always clamped to the item count.
///
/// `TAMSIM_JOBS` may exceed the core count (oversubscription is honoured,
/// useful when work units block) or pin the pool to 1 for a serial,
/// debugger-friendly run. Either way results are deterministic: sharding
/// only changes which thread computes an item, never the output order.
pub fn resolve_jobs(env: Option<&str>, cores: usize, n_items: usize) -> usize {
    let requested = env
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(cores);
    requested.min(n_items)
}

/// Map `f` over `items` using up to one worker thread per core (override
/// with the `TAMSIM_JOBS` environment variable — see [`resolve_jobs`]).
///
/// Results are returned in input order. With one item, one worker, or an
/// empty input the map runs inline on the caller's thread — the scoped
/// spawn is skipped entirely, so `par_map` is safe to use on cheap inputs.
///
/// # Panics
/// Propagates a panic from `f` (the worker's panic aborts the join).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = resolve_jobs(
        std::env::var("TAMSIM_JOBS").ok().as_deref(),
        cores,
        items.len(),
    );
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let shard = items.len().div_ceil(workers);
    let mut shards: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(shard).collect();
        if chunk.is_empty() {
            break;
        }
        shards.push(chunk);
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = shards
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_env_overrides_and_clamps() {
        // Default: one worker per core, clamped to the item count.
        assert_eq!(resolve_jobs(None, 8, 100), 8);
        assert_eq!(resolve_jobs(None, 8, 3), 3);
        // Clamp-to-1: a serial run regardless of cores.
        assert_eq!(resolve_jobs(Some("1"), 16, 100), 1);
        // Oversubscription: more workers than cores is honoured.
        assert_eq!(resolve_jobs(Some("64"), 4, 100), 64);
        // ... but never more workers than items.
        assert_eq!(resolve_jobs(Some("64"), 4, 10), 10);
        // Whitespace tolerated; zero and garbage fall back to the default.
        assert_eq!(resolve_jobs(Some(" 2 "), 8, 100), 2);
        assert_eq!(resolve_jobs(Some("0"), 8, 100), 8);
        assert_eq!(resolve_jobs(Some("lots"), 8, 100), 8);
        assert_eq!(resolve_jobs(Some(""), 8, 100), 8);
        assert_eq!(resolve_jobs(Some("-3"), 8, 100), 8);
    }

    #[test]
    fn preserves_input_order() {
        let out = par_map((0..1000).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_run_inline() {
        assert_eq!(par_map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn owned_non_copy_items_move_into_workers() {
        let items: Vec<String> = (0..37).map(|i| format!("item-{i}")).collect();
        let out = par_map(items.clone(), |s| s.len());
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_returns_in_order() {
        // Make early items slow so later shards finish first.
        let out = par_map((0..64u64).collect(), |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * i
        });
        assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "par_map worker panicked")]
    fn worker_panic_propagates() {
        // More items than any plausible core count forces the threaded path
        // on multi-core hosts; on a single core the inline path panics with
        // the closure's own message, so only assert when sharded.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            <= 1
        {
            panic!("par_map worker panicked (inline path, trivially)");
        }
        par_map((0..4096).collect(), |i: i32| {
            assert!(i != 2048, "boom");
            i
        });
    }
}
