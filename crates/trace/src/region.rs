//! Address-space regions, matching the paper's system/user division.
//!
//! Section 3.1: "For analysis, memory was divided into system and user
//! regions. System code includes the operating system and library,
//! including the floating-point library. System data structures are
//! comprised of the incoming message queues, operating system globals, and
//! the LCV. User code consists of the threads and inlets unique to each
//! program." Everything else (frames, heap, I-structures) is user data.

/// One of the four address-space regions used in the paper's analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Operating system and library code (post library, scheduler, handlers).
    SystemCode,
    /// Lowered user inlets and threads.
    UserCode,
    /// Message queues, OS globals, and (in the MD implementation) the LCV.
    SystemData,
    /// Frames, heap, and I-structure storage.
    UserData,
}

impl Region {
    /// All regions in a stable order usable for indexing.
    pub const ALL: [Region; 4] = [
        Region::SystemCode,
        Region::UserCode,
        Region::SystemData,
        Region::UserData,
    ];

    /// A stable small index for this region.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Region::SystemCode => 0,
            Region::UserCode => 1,
            Region::SystemData => 2,
            Region::UserData => 3,
        }
    }

    /// Whether this region holds code.
    #[inline]
    pub fn is_code(self) -> bool {
        matches!(self, Region::SystemCode | Region::UserCode)
    }

    /// Whether this region belongs to the system (OS/runtime) half.
    #[inline]
    pub fn is_system(self) -> bool {
        matches!(self, Region::SystemCode | Region::SystemData)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Region::SystemCode => "system code",
            Region::UserCode => "user code",
            Region::SystemData => "system data",
            Region::UserData => "user data",
        }
    }
}

/// The simulator's fixed memory map.
///
/// The bases are generous enough that regions never collide for any
/// workload in this repository; the machine model asserts it stays inside
/// its region when allocating.
///
/// The address space deliberately tops out at `1 << 23` (8 MB): a mesh
/// global address is `node << 23 | local`, so a compact local space
/// leaves eight tag bits — 256 nodes — below bit 31 (tagged addresses
/// must stay non-negative words). Every region base is a multiple of
/// the largest simulated cache size (128 KB), so relocating a region
/// preserves cache set indices and tag-equality classes exactly: the
/// compaction from the original 128 MB map is invisible to every
/// figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryMap {
    /// Base of system code (lowest region; starts at 0).
    pub system_code_base: u32,
    /// Base of user code.
    pub user_code_base: u32,
    /// Base of system data (message queues, OS globals, global LCV).
    pub system_data_base: u32,
    /// Base of frame memory (user data).
    pub frame_base: u32,
    /// Base of heap / I-structure memory (user data).
    pub heap_base: u32,
    /// Exclusive top of modeled memory.
    pub top: u32,
}

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap {
            system_code_base: 0x0000_0000,
            user_code_base: 0x0010_0000,
            system_data_base: 0x0020_0000,
            frame_base: 0x0040_0000,
            heap_base: 0x0060_0000,
            top: 0x0080_0000,
        }
    }
}

impl MemoryMap {
    /// Classify a byte address into its region, or `None` if the address
    /// lies above the modeled top of memory.
    ///
    /// An out-of-range address always indicates a machine-model bug;
    /// observation boundaries (the profiler, the access counters) use this
    /// checked variant so the bug surfaces as a clean error in release
    /// builds instead of silently inflating a region count.
    #[inline]
    pub fn try_classify(&self, addr: u32) -> Option<Region> {
        (addr < self.top).then(|| self.classify_unchecked(addr))
    }

    /// Classify a byte address into its region.
    ///
    /// # Panics
    /// Panics (in debug builds) if `addr` lies above the modeled top of
    /// memory, which indicates a machine-model bug. Use
    /// [`MemoryMap::try_classify`] where a release-mode check is wanted.
    #[inline]
    pub fn classify(&self, addr: u32) -> Region {
        debug_assert!(addr < self.top, "address {addr:#x} above top of memory");
        self.classify_unchecked(addr)
    }

    #[inline]
    fn classify_unchecked(&self, addr: u32) -> Region {
        if addr < self.user_code_base {
            Region::SystemCode
        } else if addr < self.system_data_base {
            Region::UserCode
        } else if addr < self.frame_base {
            Region::SystemData
        } else {
            Region::UserData
        }
    }

    /// Whether `addr` falls in frame memory (a sub-range of user data).
    #[inline]
    pub fn is_frame(&self, addr: u32) -> bool {
        (self.frame_base..self.heap_base).contains(&addr)
    }

    /// Whether `addr` falls in heap / I-structure memory.
    #[inline]
    pub fn is_heap(&self, addr: u32) -> bool {
        (self.heap_base..self.top).contains(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_have_dense_indices() {
        let mut seen = [false; 4];
        for r in Region::ALL {
            assert!(!seen[r.index()]);
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn default_map_classifies_bases() {
        let m = MemoryMap::default();
        assert_eq!(m.classify(m.system_code_base), Region::SystemCode);
        assert_eq!(m.classify(m.user_code_base), Region::UserCode);
        assert_eq!(m.classify(m.system_data_base), Region::SystemData);
        assert_eq!(m.classify(m.frame_base), Region::UserData);
        assert_eq!(m.classify(m.heap_base), Region::UserData);
    }

    #[test]
    fn classification_boundaries_are_half_open() {
        let m = MemoryMap::default();
        assert_eq!(m.classify(m.user_code_base - 4), Region::SystemCode);
        assert_eq!(m.classify(m.system_data_base - 4), Region::UserCode);
        assert_eq!(m.classify(m.frame_base - 4), Region::SystemData);
    }

    #[test]
    fn try_classify_rejects_out_of_range_addresses() {
        let m = MemoryMap::default();
        assert_eq!(m.try_classify(m.top - 4), Some(Region::UserData));
        assert_eq!(m.try_classify(m.top), None);
        assert_eq!(m.try_classify(u32::MAX), None);
        assert_eq!(m.try_classify(0), Some(Region::SystemCode));
    }

    #[test]
    fn frame_and_heap_predicates() {
        let m = MemoryMap::default();
        assert!(m.is_frame(m.frame_base));
        assert!(!m.is_frame(m.heap_base));
        assert!(m.is_heap(m.heap_base));
        assert!(!m.is_heap(m.frame_base));
    }

    #[test]
    fn system_and_code_predicates() {
        assert!(Region::SystemCode.is_code());
        assert!(Region::UserCode.is_code());
        assert!(!Region::SystemData.is_code());
        assert!(Region::SystemCode.is_system());
        assert!(Region::SystemData.is_system());
        assert!(!Region::UserData.is_system());
    }
}
