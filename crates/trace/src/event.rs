//! Granularity events: priorities, zero-cost marks, and the sinks that
//! retain them.
//!
//! These types originate in the machine model (`tamsim-mdp` lowers
//! [`Mark`]s into the code stream and executes them in zero cycles) but
//! live here, in the narrow-waist crate, so that *every* trace consumer —
//! the granularity statistics, the profiler in `tamsim-obs`, and the
//! record/replay [`crate::TraceLog`] — can speak about them without
//! depending on the machine model itself.

/// The two hardware priority levels of the MDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Background computation (TAM threads; MD inlets).
    Low = 0,
    /// Message handlers / system calls (AM inlets; system routines).
    High = 1,
}

impl Priority {
    /// Index (0 = low, 1 = high).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Both priorities, low first.
    pub const ALL: [Priority; 2] = [Priority::Low, Priority::High];
}

/// Zero-cost markers lowered into the code stream for statistics.
///
/// Marks execute in zero cycles, emit no instruction fetch, and exist purely
/// so observers can segment execution into inlets, threads, and quanta
/// exactly as the paper's instruction simulator did. Marks that identify a
/// frame read the conventional frame-pointer register at runtime and report
/// its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// A TAM thread body begins (frame pointer sampled from the FP register).
    ThreadStart {
        /// Codeblock id for attribution.
        codeblock: u16,
        /// Thread id within the codeblock.
        thread: u16,
    },
    /// A TAM thread body ends.
    ThreadEnd,
    /// A TAM inlet body begins (frame pointer sampled from the FP register).
    InletStart {
        /// Codeblock id for attribution.
        codeblock: u16,
        /// Inlet id within the codeblock.
        inlet: u16,
    },
    /// A TAM inlet body ends.
    InletEnd,
    /// The AM scheduler activated a frame (start of an AM quantum).
    FrameActivated,
    /// A system routine begins (frame attribution not meaningful).
    SysStart,
    /// A system routine ends.
    SysEnd,
}

/// Extension of [`crate::TraceSink`] for consumers that also want the
/// granularity stream: instruction ticks, marks, and the queue-occupancy
/// samples the machine takes at each mark.
///
/// All methods default to no-ops so that access-only sinks (the cache
/// simulator, counters) opt out for free. The machine driver delivers the
/// callbacks in this order around each mark: any number of
/// [`MarkSink::instruction`] ticks, then one [`MarkSink::queue_sample`],
/// then the [`MarkSink::mark`] itself.
pub trait MarkSink {
    /// One instruction executed at `pri` with program counter `pc`.
    #[inline]
    fn instruction(&mut self, _pri: Priority, _pc: u32) {}

    /// A run of `n` consecutive instructions at `pri`, program counters
    /// `start_pc`, `start_pc + 4`, ... — the batched form emitted by the
    /// decoded-dispatch executor. The default expansion delivers exactly
    /// the per-instruction ticks, so non-overriding sinks observe an
    /// identical stream; counters (e.g. [`MarkLog`]) override it with a
    /// bulk add.
    #[inline]
    fn instruction_run(&mut self, pri: Priority, start_pc: u32, n: u32) {
        for k in 0..n {
            self.instruction(pri, start_pc + k * 4);
        }
    }

    /// Queue occupancy in words per priority, sampled immediately before
    /// each mark.
    #[inline]
    fn queue_sample(&mut self, _used_words: [u32; 2]) {}

    /// A granularity marker with the sampled frame pointer and the
    /// priority level it executed at.
    #[inline]
    fn mark(&mut self, _mark: Mark, _frame: u32, _pri: Priority) {}
}

impl<S: MarkSink + ?Sized> MarkSink for &mut S {
    #[inline]
    fn instruction(&mut self, pri: Priority, pc: u32) {
        (**self).instruction(pri, pc)
    }

    #[inline]
    fn instruction_run(&mut self, pri: Priority, start_pc: u32, n: u32) {
        (**self).instruction_run(pri, start_pc, n)
    }

    #[inline]
    fn queue_sample(&mut self, used_words: [u32; 2]) {
        (**self).queue_sample(used_words)
    }

    #[inline]
    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        (**self).mark(mark, frame, pri)
    }
}

/// One retained mark with enough context to rebuild timelines and
/// granularity statistics offline.
///
/// `cycles` snapshots the per-priority instruction counters *before* the
/// mark fires; because marks are zero-cost, the global timestamp of the
/// mark is exactly `cycles[0] + cycles[1]`. The deltas between consecutive
/// records attribute every executed instruction to a segment, which is all
/// the granularity analysis needs — no per-instruction log required.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkRecord {
    /// Instructions executed at each priority before this mark.
    pub cycles: [u64; 2],
    /// The mark itself.
    pub mark: Mark,
    /// Frame pointer sampled at the mark.
    pub frame: u32,
    /// Priority level the mark executed at.
    pub pri: Priority,
    /// Message-queue occupancy in words per priority, sampled at the mark.
    pub queue_words: [u32; 2],
}

impl MarkRecord {
    /// Global timestamp of this mark in cycles (instructions executed so
    /// far at either priority).
    #[inline]
    pub fn at(&self) -> u64 {
        self.cycles[0] + self.cycles[1]
    }
}

/// A reusable accumulator that turns the [`MarkSink`] callback stream into
/// a vector of [`MarkRecord`]s plus per-priority cycle totals.
///
/// Embedded by [`crate::TraceLog`] and by the profiler's capture hooks so
/// both retain granularity data identically.
#[derive(Debug, Default, Clone)]
pub struct MarkLog {
    /// The retained marks, in execution order.
    pub records: Vec<MarkRecord>,
    /// Instructions executed per priority over the whole run.
    pub cycles: [u64; 2],
    pending_queue: [u32; 2],
}

impl MarkLog {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total instructions observed (the global cycle counter).
    #[inline]
    pub fn total_cycles(&self) -> u64 {
        self.cycles[0] + self.cycles[1]
    }

    /// Discard everything (overflow-retry re-records from scratch).
    pub fn clear(&mut self) {
        self.records.clear();
        self.cycles = [0, 0];
        self.pending_queue = [0, 0];
    }
}

/// A pure mark recorder: accesses flow past it untouched, so it composes
/// into a [`crate::Tee`] chain next to any access sink.
impl crate::TraceSink for MarkLog {
    #[inline]
    fn access(&mut self, _access: crate::Access) {}
}

impl MarkSink for MarkLog {
    #[inline]
    fn instruction(&mut self, pri: Priority, _pc: u32) {
        self.cycles[pri.index()] += 1;
    }

    #[inline]
    fn instruction_run(&mut self, pri: Priority, _start_pc: u32, n: u32) {
        self.cycles[pri.index()] += n as u64;
    }

    #[inline]
    fn queue_sample(&mut self, used_words: [u32; 2]) {
        self.pending_queue = used_words;
    }

    #[inline]
    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        self.records.push(MarkRecord {
            cycles: self.cycles,
            mark,
            frame,
            pri,
            queue_words: self.pending_queue,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_are_ordered() {
        assert!(Priority::Low < Priority::High);
        assert_eq!(Priority::Low.index(), 0);
        assert_eq!(Priority::High.index(), 1);
    }

    #[test]
    fn mark_log_snapshots_cycles_and_queue() {
        let mut log = MarkLog::new();
        log.instruction(Priority::Low, 0);
        log.instruction(Priority::Low, 4);
        log.instruction(Priority::High, 8);
        log.queue_sample([3, 1]);
        log.mark(Mark::ThreadEnd, 0x40, Priority::Low);
        assert_eq!(log.records.len(), 1);
        let r = log.records[0];
        assert_eq!(r.cycles, [2, 1]);
        assert_eq!(r.at(), 3);
        assert_eq!(r.queue_words, [3, 1]);
        assert_eq!(r.frame, 0x40);
        assert_eq!(log.total_cycles(), 3);
    }

    #[test]
    fn mark_log_clear_resets_everything() {
        let mut log = MarkLog::new();
        log.instruction(Priority::High, 0);
        log.queue_sample([9, 9]);
        log.mark(Mark::SysStart, 0, Priority::High);
        log.clear();
        assert!(log.records.is_empty());
        assert_eq!(log.total_cycles(), 0);
        log.mark(Mark::SysEnd, 0, Priority::High);
        assert_eq!(log.records[0].queue_words, [0, 0]);
    }

    #[test]
    fn default_mark_sink_methods_are_inert() {
        struct Inert;
        impl MarkSink for Inert {}
        let mut s = Inert;
        s.instruction(Priority::Low, 0);
        s.queue_sample([1, 2]);
        s.mark(Mark::FrameActivated, 0, Priority::Low);
    }
}
