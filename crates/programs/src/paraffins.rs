//! Paraffins — "enumerates the distinct isomers of paraffins" (paper §3,
//! citing Arvind, Heller & Nikhil).
//!
//! Counts alkane (CₙH₂ₙ₊₂) isomers by the classic two-phase dataflow
//! formulation: first the radical counts `r[0..=n]` (rooted trees of
//! degree ≤ 3 at the root, OEIS A000598) via a triple-partition dynamic
//! program, then the paraffin counts per size by centroid decomposition
//! (OEIS A000602): an edge-centroid term for even sizes plus a
//! vertex-centroid sum over 4-part partitions bounded by half the size.
//!
//! The computation is spawned at dataflow granularity: each radical size
//! runs (sequentially, it depends on its predecessors) but fans its outer
//! partition loop out into concurrent sub-activations; the paraffin
//! counts for all sizes then run fully in parallel, each again fanning
//! out per outer index. Dynamic fan-in joins use counter slots with
//! conditional posts. Multiset multiplicities use branchless 0/1-flag
//! arithmetic, keeping threads straight-line as TAM requires.

use tamsim_tam::ids::regs::*;
use tamsim_tam::ops::*;
use tamsim_tam::{AluOp, CodeblockBuilder, InitArray, Program, ProgramBuilder, SlotId, Value};

/// Build paraffins(n). Returns `[total isomers of sizes 1..=n, isomers
/// of size n]`.
pub fn paraffins(n: usize) -> Program {
    assert!(n >= 1);
    let ni = n as i64;
    let mut pb = ProgramBuilder::new("paraffins");
    // r[0] = 1 ("a radical of size zero is a hydrogen").
    let a_r = pb.array(InitArray {
        name: "radicals".into(),
        cells: std::iter::once(Some(Value::Int(1)))
            .chain((1..=n).map(|_| None))
            .collect(),
    });
    let a_p = pb.array(InitArray::empty("paraffins", n + 1));
    let main = pb.declare("main");
    let rad = pb.declare("rad");
    let radsub = pb.declare("radsub");
    let par = pb.declare("par");
    let parsub = pb.declare("parsub");

    // ---- radsub(i, s): Σ_{i≤j≤k, i+j+k=s} multiset(rᵢ, rⱼ, rₖ) ----
    let mut cb = CodeblockBuilder::new("radsub");
    let s_i = cb.slot();
    let s_s = cb.slot();
    let s_j = cb.slot();
    let s_k = cb.slot();
    let s_acc = cb.slot();
    let rbuf = cb.slots(3);

    let i_i = cb.inlet();
    let i_s = cb.inlet();
    let i_rv = cb.inlet();
    let t_start = cb.thread();
    let t_jloop = cb.thread();
    let t_fetch = cb.thread();
    let t_w = cb.thread();
    let t_done = cb.thread();

    cb.def_inlet(i_i, vec![ldmsg(R0, 0), st(s_i, R0), post(t_start)]);
    cb.def_inlet(i_s, vec![ldmsg(R0, 0), st(s_s, R0), post(t_start)]);
    cb.def_inlet(
        i_rv,
        vec![ldmsg(R0, 0), ldmsg(R1, 1), stx(rbuf, R1, R0), post(t_w)],
    );
    cb.def_thread(
        t_start,
        2,
        vec![
            ld(R0, s_i),
            st(s_j, R0),
            movi(R1, 0),
            st(s_acc, R1),
            fork(t_jloop),
        ],
    );
    cb.def_thread(
        t_jloop,
        1,
        vec![
            ld(R0, s_j),
            alu(AluOp::Shl, R1, R0, imm(1)),
            ld(R2, s_s),
            ld(R3, s_i),
            alu(AluOp::Sub, R2, R2, reg(R3)),
            alu(AluOp::Le, R4, R1, reg(R2)),
            fork_if_else(R4, t_fetch, t_done),
        ],
    );
    cb.def_thread(
        t_fetch,
        1,
        vec![
            // k = s - i - j; fetch r[i], r[j], r[k].
            ld(R0, s_s),
            ld(R1, s_i),
            ld(R2, s_j),
            alu(AluOp::Sub, R0, R0, reg(R1)),
            alu(AluOp::Sub, R0, R0, reg(R2)),
            st(s_k, R0),
            movarr(R3, a_r),
            alu(AluOp::Shl, R4, R1, imm(3)),
            alu(AluOp::Add, R4, R4, reg(R3)),
            movi(R5, 0),
            ifetch(R4, R5, i_rv),
            alu(AluOp::Shl, R4, R2, imm(3)),
            alu(AluOp::Add, R4, R4, reg(R3)),
            movi(R5, 1),
            ifetch(R4, R5, i_rv),
            alu(AluOp::Shl, R4, R0, imm(3)),
            alu(AluOp::Add, R4, R4, reg(R3)),
            movi(R5, 2),
            ifetch(R4, R5, i_rv),
        ],
    );
    // Branchless multiset weight of (a, b, c) by the equality pattern of
    // (i, j, k): flags are 0/1 integers.
    cb.def_thread(
        t_w,
        3,
        vec![
            reset_count(t_w),
            ld(R0, SlotId(rbuf.0)),
            ld(R1, SlotId(rbuf.0 + 1)),
            ld(R2, SlotId(rbuf.0 + 2)),
            ld(R8, s_i),
            ld(R9, s_j),
            alu(AluOp::Eq, R3, R8, reg(R9)), // e1 = (i == j)
            ld(R8, s_k),
            alu(AluOp::Eq, R4, R9, reg(R8)), // e2 = (j == k)
            alu(AluOp::Xor, R5, R3, imm(1)),
            alu(AluOp::Xor, R6, R4, imm(1)),
            // f1·f2·a·b·c
            alu(AluOp::Mul, R7, R0, reg(R1)),
            alu(AluOp::Mul, R7, R7, reg(R2)),
            alu(AluOp::Mul, R7, R7, reg(R5)),
            alu(AluOp::Mul, R7, R7, reg(R6)),
            // + e1·f2·C2(a)·c
            alu(AluOp::Add, R8, R0, imm(1)),
            alu(AluOp::Mul, R8, R8, reg(R0)),
            alu(AluOp::Div, R8, R8, imm(2)),
            alu(AluOp::Mul, R8, R8, reg(R2)),
            alu(AluOp::Mul, R8, R8, reg(R3)),
            alu(AluOp::Mul, R8, R8, reg(R6)),
            alu(AluOp::Add, R7, R7, reg(R8)),
            // + f1·e2·a·C2(b)
            alu(AluOp::Add, R8, R1, imm(1)),
            alu(AluOp::Mul, R8, R8, reg(R1)),
            alu(AluOp::Div, R8, R8, imm(2)),
            alu(AluOp::Mul, R8, R8, reg(R0)),
            alu(AluOp::Mul, R8, R8, reg(R5)),
            alu(AluOp::Mul, R8, R8, reg(R4)),
            alu(AluOp::Add, R7, R7, reg(R8)),
            // + e1·e2·C3(a)
            alu(AluOp::Add, R8, R0, imm(1)),
            alu(AluOp::Add, R9, R0, imm(2)),
            alu(AluOp::Mul, R8, R8, reg(R0)),
            alu(AluOp::Mul, R8, R8, reg(R9)),
            alu(AluOp::Div, R8, R8, imm(6)),
            alu(AluOp::Mul, R8, R8, reg(R3)),
            alu(AluOp::Mul, R8, R8, reg(R4)),
            alu(AluOp::Add, R7, R7, reg(R8)),
            // acc += w; j++.
            ld(R8, s_acc),
            alu(AluOp::Add, R8, R8, reg(R7)),
            st(s_acc, R8),
            ld(R9, s_j),
            alu(AluOp::Add, R9, R9, imm(1)),
            st(s_j, R9),
            fork(t_jloop),
        ],
    );
    cb.def_thread(t_done, 1, vec![ld(R0, s_acc), ret(vec![R0])]);
    pb.define(radsub, cb.finish());

    // ---- rad(m): fan the outer index out, join dynamically, store r[m]
    let mut cb = CodeblockBuilder::new("rad");
    let s_m = cb.slot();
    let s_s = cb.slot();
    let s_i = cb.slot();
    let s_acc = cb.slot();
    let s_ctr = cb.slot();
    let s_want = cb.slot();

    let i_arg = cb.inlet();
    let i_sub = cb.inlet();
    let t_start = cb.thread();
    let t_spawn = cb.thread();
    let t_done = cb.thread();

    cb.def_inlet(i_arg, vec![ldmsg(R0, 0), st(s_m, R0), post(t_start)]);
    // Dynamic fan-in: accumulate, count, finish on the last reply.
    cb.def_inlet(
        i_sub,
        vec![
            ldmsg(R0, 0),
            ld(R1, s_acc),
            alu(AluOp::Add, R1, R1, reg(R0)),
            st(s_acc, R1),
            ld(R2, s_ctr),
            alu(AluOp::Add, R2, R2, imm(1)),
            st(s_ctr, R2),
            ld(R3, s_want),
            alu(AluOp::Eq, R4, R2, reg(R3)),
            post_if(R4, t_done),
        ],
    );
    cb.def_thread(
        t_start,
        1,
        vec![
            ld(R0, s_m),
            alu(AluOp::Sub, R0, R0, imm(1)),
            st(s_s, R0),
            movi(R1, 0),
            st(s_acc, R1),
            st(s_ctr, R1),
            st(s_i, R1),
            // want = s/3 + 1 outer indices.
            alu(AluOp::Div, R2, R0, imm(3)),
            alu(AluOp::Add, R2, R2, imm(1)),
            st(s_want, R2),
            fork(t_spawn),
        ],
    );
    cb.def_thread(
        t_spawn,
        1,
        vec![
            ld(R0, s_i),
            ld(R1, s_s),
            call(radsub, vec![R0, R1], i_sub),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_i, R0),
            alu(AluOp::Mul, R2, R0, imm(3)),
            alu(AluOp::Le, R3, R2, reg(R1)),
            fork_if(R3, t_spawn),
        ],
    );
    cb.def_thread(
        t_done,
        1,
        vec![
            movarr(R0, a_r),
            ld(R1, s_m),
            alu(AluOp::Shl, R1, R1, imm(3)),
            alu(AluOp::Add, R0, R0, reg(R1)),
            ld(R2, s_acc),
            istore(R0, R2),
            ret(vec![R2]),
        ],
    );
    pb.define(rad, cb.finish());

    // ---- parsub(i, s): vertex-centroid partial for fixed outer index ----
    let mut cb = CodeblockBuilder::new("parsub");
    let s_i = cb.slot();
    let s_s = cb.slot();
    let s_j = cb.slot();
    let s_k = cb.slot();
    let s_l = cb.slot();
    let s_acc = cb.slot();
    let qbuf = cb.slots(4);

    let i_i = cb.inlet();
    let i_s = cb.inlet();
    let i_qv = cb.inlet();
    let t_start = cb.thread();
    let t_cj = cb.thread();
    let t_ck_init = cb.thread();
    let t_ck = cb.thread();
    let t_cj_next = cb.thread();
    let t_lchk = cb.thread();
    let t_ck_next = cb.thread();
    let t_qfetch = cb.thread();
    let t_w4 = cb.thread();
    let t_done = cb.thread();

    cb.def_inlet(i_i, vec![ldmsg(R0, 0), st(s_i, R0), post(t_start)]);
    cb.def_inlet(i_s, vec![ldmsg(R0, 0), st(s_s, R0), post(t_start)]);
    cb.def_inlet(
        i_qv,
        vec![ldmsg(R0, 0), ldmsg(R1, 1), stx(qbuf, R1, R0), post(t_w4)],
    );

    cb.def_thread(
        t_start,
        2,
        vec![
            ld(R0, s_i),
            st(s_j, R0),
            movi(R1, 0),
            st(s_acc, R1),
            fork(t_cj),
        ],
    );
    cb.def_thread(
        t_cj,
        1,
        vec![
            ld(R0, s_j),
            alu(AluOp::Mul, R1, R0, imm(3)),
            ld(R2, s_s),
            ld(R3, s_i),
            alu(AluOp::Sub, R2, R2, reg(R3)),
            alu(AluOp::Le, R4, R1, reg(R2)),
            fork_if_else(R4, t_ck_init, t_done),
        ],
    );
    cb.def_thread(t_ck_init, 1, vec![ld(R0, s_j), st(s_k, R0), fork(t_ck)]);
    cb.def_thread(
        t_ck,
        1,
        vec![
            ld(R0, s_k),
            alu(AluOp::Shl, R1, R0, imm(1)),
            ld(R2, s_s),
            ld(R3, s_i),
            ld(R4, s_j),
            alu(AluOp::Sub, R2, R2, reg(R3)),
            alu(AluOp::Sub, R2, R2, reg(R4)),
            alu(AluOp::Le, R5, R1, reg(R2)),
            fork_if_else(R5, t_lchk, t_cj_next),
        ],
    );
    cb.def_thread(
        t_cj_next,
        1,
        vec![
            ld(R0, s_j),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_j, R0),
            fork(t_cj),
        ],
    );
    // l = s-i-j-k; the centroid condition is 2l ≤ s.
    cb.def_thread(
        t_lchk,
        1,
        vec![
            ld(R0, s_s),
            ld(R1, s_i),
            ld(R2, s_j),
            ld(R3, s_k),
            alu(AluOp::Sub, R0, R0, reg(R1)),
            alu(AluOp::Sub, R0, R0, reg(R2)),
            alu(AluOp::Sub, R0, R0, reg(R3)),
            st(s_l, R0),
            alu(AluOp::Shl, R4, R0, imm(1)),
            ld(R5, s_s),
            alu(AluOp::Le, R6, R4, reg(R5)),
            fork_if_else(R6, t_qfetch, t_ck_next),
        ],
    );
    cb.def_thread(
        t_ck_next,
        1,
        vec![
            ld(R0, s_k),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_k, R0),
            fork(t_ck),
        ],
    );
    let mut qf = vec![movarr(R4, a_r)];
    for (tag, slot) in [(0i64, s_i), (1, s_j), (2, s_k), (3, s_l)] {
        qf.extend([
            ld(R0, slot),
            alu(AluOp::Shl, R0, R0, imm(3)),
            alu(AluOp::Add, R0, R0, reg(R4)),
            movi(R1, tag),
            ifetch(R0, R1, i_qv),
        ]);
    }
    cb.def_thread(t_qfetch, 1, qf);
    // Branchless multiset weight of (a, b, c, d) over the 8 equality
    // patterns of (i, j, k, l).
    let mut w4 = vec![
        reset_count(t_w4),
        ld(R0, SlotId(qbuf.0)),
        ld(R1, SlotId(qbuf.0 + 1)),
        ld(R2, SlotId(qbuf.0 + 2)),
        ld(R3, SlotId(qbuf.0 + 3)),
        ld(R8, s_i),
        ld(R9, s_j),
        alu(AluOp::Eq, R4, R8, reg(R9)),
        ld(R8, s_k),
        alu(AluOp::Eq, R5, R9, reg(R8)),
        ld(R9, s_l),
        alu(AluOp::Eq, R6, R8, reg(R9)),
        movi(R7, 0),
    ];
    let c2_into_r9 = |ops: &mut Vec<tamsim_tam::TOp>, x: tamsim_tam::VReg| {
        ops.extend([
            alu(AluOp::Add, R10, x, imm(1)),
            alu(AluOp::Mul, R10, R10, reg(x)),
            alu(AluOp::Div, R10, R10, imm(2)),
            alu(AluOp::Mul, R9, R9, reg(R10)),
        ]);
    };
    let terms: Vec<(bool, bool, bool, Vec<tamsim_tam::TOp>)> = {
        let mut v = Vec::new();
        // (0,0,0): a·b·c·d
        v.push((
            false,
            false,
            false,
            vec![
                mov(R9, R0),
                alu(AluOp::Mul, R9, R9, reg(R1)),
                alu(AluOp::Mul, R9, R9, reg(R2)),
                alu(AluOp::Mul, R9, R9, reg(R3)),
            ],
        ));
        // (1,0,0): C2(a)·c·d
        let mut ops = vec![movi(R9, 1)];
        c2_into_r9(&mut ops, R0);
        ops.extend([
            alu(AluOp::Mul, R9, R9, reg(R2)),
            alu(AluOp::Mul, R9, R9, reg(R3)),
        ]);
        v.push((true, false, false, ops));
        // (0,1,0): a·C2(b)·d
        let mut ops = vec![movi(R9, 1)];
        c2_into_r9(&mut ops, R1);
        ops.extend([
            alu(AluOp::Mul, R9, R9, reg(R0)),
            alu(AluOp::Mul, R9, R9, reg(R3)),
        ]);
        v.push((false, true, false, ops));
        // (0,0,1): a·b·C2(c)
        let mut ops = vec![movi(R9, 1)];
        c2_into_r9(&mut ops, R2);
        ops.extend([
            alu(AluOp::Mul, R9, R9, reg(R0)),
            alu(AluOp::Mul, R9, R9, reg(R1)),
        ]);
        v.push((false, false, true, ops));
        // (1,1,0): C3(a)·d
        v.push((
            true,
            true,
            false,
            vec![
                alu(AluOp::Add, R9, R0, imm(1)),
                alu(AluOp::Mul, R9, R9, reg(R0)),
                alu(AluOp::Add, R10, R0, imm(2)),
                alu(AluOp::Mul, R9, R9, reg(R10)),
                alu(AluOp::Div, R9, R9, imm(6)),
                alu(AluOp::Mul, R9, R9, reg(R3)),
            ],
        ));
        // (0,1,1): a·C3(b)
        v.push((
            false,
            true,
            true,
            vec![
                alu(AluOp::Add, R9, R1, imm(1)),
                alu(AluOp::Mul, R9, R9, reg(R1)),
                alu(AluOp::Add, R10, R1, imm(2)),
                alu(AluOp::Mul, R9, R9, reg(R10)),
                alu(AluOp::Div, R9, R9, imm(6)),
                alu(AluOp::Mul, R9, R9, reg(R0)),
            ],
        ));
        // (1,0,1): C2(a)·C2(c)
        let mut ops = vec![movi(R9, 1)];
        c2_into_r9(&mut ops, R0);
        c2_into_r9(&mut ops, R2);
        v.push((true, false, true, ops));
        // (1,1,1): C4(a)
        v.push((
            true,
            true,
            true,
            vec![
                alu(AluOp::Add, R9, R0, imm(1)),
                alu(AluOp::Mul, R9, R9, reg(R0)),
                alu(AluOp::Add, R10, R0, imm(2)),
                alu(AluOp::Mul, R9, R9, reg(R10)),
                alu(AluOp::Add, R10, R0, imm(3)),
                alu(AluOp::Mul, R9, R9, reg(R10)),
                alu(AluOp::Div, R9, R9, imm(24)),
            ],
        ));
        v
    };
    for (p1, p2, p3, val_ops) in terms {
        w4.extend(val_ops);
        for (want, e) in [(p1, R4), (p2, R5), (p3, R6)] {
            if want {
                w4.push(alu(AluOp::Mul, R9, R9, reg(e)));
            } else {
                w4.extend([
                    alu(AluOp::Xor, R10, e, imm(1)),
                    alu(AluOp::Mul, R9, R9, reg(R10)),
                ]);
            }
        }
        w4.push(alu(AluOp::Add, R7, R7, reg(R9)));
    }
    w4.extend([
        ld(R8, s_acc),
        alu(AluOp::Add, R8, R8, reg(R7)),
        st(s_acc, R8),
        fork(t_ck_next),
    ]);
    cb.def_thread(t_w4, 4, w4);
    cb.def_thread(t_done, 1, vec![ld(R0, s_acc), ret(vec![R0])]);
    pb.define(parsub, cb.finish());

    // ---- par(m): bond term + parallel vertex-centroid fan-out ----
    let mut cb = CodeblockBuilder::new("par");
    let s_m = cb.slot();
    let s_s = cb.slot();
    let s_i = cb.slot();
    let s_acc = cb.slot();
    let s_ctr = cb.slot();
    let s_want = cb.slot();
    let s_bv = cb.slot();

    let i_arg = cb.inlet();
    let i_bw = cb.inlet();
    let i_sub = cb.inlet();
    let t_pstart = cb.thread();
    let t_bfetch = cb.thread();
    let t_bond = cb.thread();
    let t_bzero = cb.thread();
    let t_spawn = cb.thread();
    let t_done = cb.thread();

    cb.def_inlet(i_arg, vec![ldmsg(R0, 0), st(s_m, R0), post(t_pstart)]);
    cb.def_inlet(i_bw, vec![ldmsg(R0, 0), st(s_bv, R0), post(t_bond)]);
    cb.def_inlet(
        i_sub,
        vec![
            ldmsg(R0, 0),
            ld(R1, s_acc),
            alu(AluOp::Add, R1, R1, reg(R0)),
            st(s_acc, R1),
            ld(R2, s_ctr),
            alu(AluOp::Add, R2, R2, imm(1)),
            st(s_ctr, R2),
            ld(R3, s_want),
            alu(AluOp::Eq, R4, R2, reg(R3)),
            post_if(R4, t_done),
        ],
    );
    cb.def_thread(
        t_pstart,
        1,
        vec![
            ld(R0, s_m),
            alu(AluOp::Sub, R1, R0, imm(1)),
            st(s_s, R1),
            movi(R2, 0),
            st(s_ctr, R2),
            st(s_i, R2),
            // want = s/4 + 1 sub-activations + 1 bond term.
            alu(AluOp::Div, R3, R1, imm(4)),
            alu(AluOp::Add, R3, R3, imm(2)),
            st(s_want, R3),
            st(s_acc, R2),
            // Bond term: C2(r[m/2]) for even m, else 0.
            alu(AluOp::Rem, R4, R0, imm(2)),
            alu(AluOp::Eq, R4, R4, imm(0)),
            fork(t_spawn),
            fork_if_else(R4, t_bfetch, t_bzero),
        ],
    );
    cb.def_thread(
        t_bfetch,
        1,
        vec![
            ld(R0, s_m),
            alu(AluOp::Div, R0, R0, imm(2)),
            alu(AluOp::Shl, R0, R0, imm(3)),
            movarr(R1, a_r),
            alu(AluOp::Add, R0, R0, reg(R1)),
            movi(R2, 0),
            ifetch(R0, R2, i_bw),
        ],
    );
    // The bond term folds into the same accumulator/counter the reply
    // inlet uses — atomic so an interrupting reply cannot lose an update
    // (§2.2).
    cb.def_thread_atomic(
        t_bond,
        1,
        vec![
            ld(R0, s_bv),
            alu(AluOp::Add, R1, R0, imm(1)),
            alu(AluOp::Mul, R1, R1, reg(R0)),
            alu(AluOp::Div, R1, R1, imm(2)),
            ld(R2, s_acc),
            alu(AluOp::Add, R2, R2, reg(R1)),
            st(s_acc, R2),
            ld(R3, s_ctr),
            alu(AluOp::Add, R3, R3, imm(1)),
            st(s_ctr, R3),
            ld(R4, s_want),
            alu(AluOp::Eq, R5, R3, reg(R4)),
            fork_if(R5, t_done),
        ],
    );
    cb.def_thread_atomic(
        t_bzero,
        1,
        vec![
            ld(R0, s_ctr),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_ctr, R0),
            ld(R1, s_want),
            alu(AluOp::Eq, R2, R0, reg(R1)),
            fork_if(R2, t_done),
        ],
    );
    cb.def_thread(
        t_spawn,
        1,
        vec![
            ld(R0, s_i),
            ld(R1, s_s),
            call(parsub, vec![R0, R1], i_sub),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_i, R0),
            alu(AluOp::Shl, R2, R0, imm(2)),
            alu(AluOp::Le, R3, R2, reg(R1)),
            fork_if(R3, t_spawn),
        ],
    );
    cb.def_thread(
        t_done,
        1,
        vec![
            ld(R0, s_acc),
            movarr(R1, a_p),
            ld(R2, s_m),
            alu(AluOp::Shl, R2, R2, imm(3)),
            alu(AluOp::Add, R1, R1, reg(R2)),
            istore(R1, R0),
            ret(vec![R0]),
        ],
    );
    pb.define(par, cb.finish());

    // ---- main: rads sequentially (data dependence), then every par(m)
    // in parallel, then a sequential total pass over P[] ----
    let mut cb = CodeblockBuilder::new("main");
    let s_m = cb.slot();
    let s_tot = cb.slot();
    let s_pv = cb.slot();
    let s_last = cb.slot();
    let i_arg = cb.inlet();
    let i_radrep = cb.inlet();
    let i_parrep = cb.inlet();
    let i_pval = cb.inlet();
    let t_radcall = cb.thread();
    let t_radnext = cb.thread();
    let t_parinit = cb.thread();
    let t_parspawn = cb.thread();
    let t_totinit = cb.thread();
    let t_totfetch = cb.thread();
    let t_totadd = cb.thread();
    let t_ret = cb.thread();
    cb.def_inlet(i_arg, vec![movi(R0, 1), st(s_m, R0), post(t_radcall)]);
    cb.def_inlet(i_radrep, vec![post(t_radnext)]);
    // Paraffin sizes complete in any order; the join is a static count.
    cb.def_inlet(i_parrep, vec![post(t_totinit)]);
    cb.def_inlet(i_pval, vec![ldmsg(R0, 0), st(s_pv, R0), post(t_totadd)]);
    cb.def_thread(
        t_radcall,
        1,
        vec![ld(R0, s_m), call(rad, vec![R0], i_radrep)],
    );
    cb.def_thread(
        t_radnext,
        1,
        vec![
            ld(R0, s_m),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_m, R0),
            alu(AluOp::Le, R1, R0, imm(ni)),
            fork_if_else(R1, t_radcall, t_parinit),
        ],
    );
    cb.def_thread(
        t_parinit,
        1,
        vec![movi(R0, 1), st(s_m, R0), fork(t_parspawn)],
    );
    cb.def_thread(
        t_parspawn,
        1,
        vec![
            ld(R0, s_m),
            call(par, vec![R0], i_parrep),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_m, R0),
            alu(AluOp::Le, R1, R0, imm(ni)),
            fork_if(R1, t_parspawn),
        ],
    );
    cb.def_thread(
        t_totinit,
        n as u32,
        vec![
            movi(R0, 1),
            st(s_m, R0),
            movi(R0, 0),
            st(s_tot, R0),
            fork(t_totfetch),
        ],
    );
    cb.def_thread(
        t_totfetch,
        1,
        vec![
            movarr(R0, a_p),
            ld(R1, s_m),
            alu(AluOp::Shl, R2, R1, imm(3)),
            alu(AluOp::Add, R0, R0, reg(R2)),
            movi(R3, 0),
            ifetch(R0, R3, i_pval),
        ],
    );
    cb.def_thread(
        t_totadd,
        1,
        vec![
            ld(R0, s_pv),
            st(s_last, R0),
            ld(R1, s_tot),
            alu(AluOp::Add, R1, R1, reg(R0)),
            st(s_tot, R1),
            ld(R2, s_m),
            alu(AluOp::Add, R2, R2, imm(1)),
            st(s_m, R2),
            alu(AluOp::Le, R3, R2, imm(ni)),
            fork_if_else(R3, t_totfetch, t_ret),
        ],
    );
    cb.def_thread(
        t_ret,
        1,
        vec![ld(R0, s_tot), ld(R1, s_last), ret(vec![R0, R1])],
    );
    pb.define(main, cb.finish());

    pb.main(main, vec![Value::Int(0)]);
    pb.build()
}

/// Radical counts r[0..=n] (OEIS A000598).
pub fn radicals(n: usize) -> Vec<i64> {
    let mut r = vec![0i64; n + 1];
    r[0] = 1;
    for m in 1..=n {
        let s = m - 1;
        let mut acc = 0i64;
        for i in 0..=s / 3 {
            for j in i..=(s - i) / 2 {
                let k = s - i - j;
                let (a, b, c) = (r[i], r[j], r[k]);
                acc += if i == j && j == k {
                    a * (a + 1) * (a + 2) / 6
                } else if i == j {
                    a * (a + 1) / 2 * c
                } else if j == k {
                    a * (b * (b + 1) / 2)
                } else {
                    a * b * c
                };
            }
        }
        r[m] = acc;
    }
    r
}

/// Paraffin (alkane) isomer counts p[1..=n] (OEIS A000602).
pub fn paraffin_counts(n: usize) -> Vec<i64> {
    let r = radicals(n);
    (1..=n)
        .map(|m| {
            let s = m - 1;
            let bond = if m % 2 == 0 {
                r[m / 2] * (r[m / 2] + 1) / 2
            } else {
                0
            };
            let mut center = 0i64;
            for i in 0..=s / 4 {
                for j in i..=(s - i) / 3 {
                    for k in j..=(s - i - j) / 2 {
                        let l = s - i - j - k;
                        if 2 * l > s {
                            continue;
                        }
                        let (a, b, c, d) = (r[i], r[j], r[k], r[l]);
                        let (e1, e2, e3) = (i == j, j == k, k == l);
                        let c2 = |x: i64| x * (x + 1) / 2;
                        let c3 = |x: i64| x * (x + 1) * (x + 2) / 6;
                        let c4 = |x: i64| x * (x + 1) * (x + 2) * (x + 3) / 24;
                        center += match (e1, e2, e3) {
                            (false, false, false) => a * b * c * d,
                            (true, false, false) => c2(a) * c * d,
                            (false, true, false) => a * c2(b) * d,
                            (false, false, true) => a * b * c2(c),
                            (true, true, false) => c3(a) * d,
                            (false, true, true) => a * c3(b),
                            (true, false, true) => c2(a) * c2(c),
                            (true, true, true) => c4(a),
                        };
                    }
                }
            }
            bond + center
        })
        .collect()
}

/// Reference value: `(total isomers of sizes 1..=n, isomers of size n)`.
pub fn paraffins_expected(n: usize) -> (i64, i64) {
    let p = paraffin_counts(n);
    (p.iter().sum(), *p.last().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radicals_match_oeis_a000598() {
        assert_eq!(
            radicals(13),
            vec![1, 1, 1, 2, 4, 8, 17, 39, 89, 211, 507, 1238, 3057, 7639]
        );
    }

    #[test]
    fn paraffin_counts_match_oeis_a000602() {
        assert_eq!(
            paraffin_counts(13),
            vec![1, 1, 1, 2, 3, 5, 9, 18, 35, 75, 159, 355, 802]
        );
    }
}
