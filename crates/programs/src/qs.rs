//! Quicksort (QS) — "sorts an array of random integers" (paper §3).
//!
//! A faithful fine-grained functional quicksort: each activation fetches
//! its segment element-by-element through split-phase I-structure reads,
//! partitions into freshly heap-allocated I-structure arrays, recurses on
//! both halves concurrently, and places the pivot between them. The
//! call-intensive structure gives the low threads-per-quantum the paper
//! reports for QS.

use tamsim_tam::ids::regs::*;
use tamsim_tam::ops::*;
use tamsim_tam::{AluOp, CodeblockBuilder, InitArray, Program, ProgramBuilder, Value};

/// SplitMix64 (Steele, Lea & Flood): a tiny, dependency-free generator.
/// The benchmark only needs a fixed, well-mixed pseudo-random input; a
/// deterministic internal PRNG keeps the workspace building offline and
/// the inputs identical on every platform.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pseudo-random input the benchmark sorts.
pub fn quicksort_input(n: usize, seed: u64) -> Vec<i64> {
    let mut state = seed;
    (0..n)
        .map(|_| (splitmix64(&mut state) % 1000) as i64)
        .collect()
}

/// Build quicksort of `n` random integers. Returns the order-weighted
/// checksum `Σ (k+1)·sorted[k]`.
pub fn quicksort(n: usize, seed: u64) -> Program {
    let input = quicksort_input(n, seed);
    let mut pb = ProgramBuilder::new("qs");
    let a_in = pb.array(InitArray::present(
        "input",
        input.iter().map(|&v| Value::Int(v)),
    ));
    let a_out = pb.array(InitArray::empty("output", n));
    let main = pb.declare("main");
    let qs = pb.declare("qs");

    // ---- qs(src, len, out, out_off) ----
    let mut cb = CodeblockBuilder::new("qs");
    let s_src = cb.slot();
    let s_len = cb.slot();
    let s_out = cb.slot();
    let s_ooff = cb.slot();
    let s_piv = cb.slot();
    let s_i = cb.slot();
    let s_nl = cb.slot();
    let s_ng = cb.slot();
    let s_less = cb.slot();
    let s_geq = cb.slot();
    let s_v = cb.slot();

    // Argument inlets 0..3.
    let i_src = cb.inlet();
    let i_len = cb.inlet();
    let i_out = cb.inlet();
    let i_ooff = cb.inlet();
    let i_piv = cb.inlet();
    let i_elem = cb.inlet();
    let i_join = cb.inlet();
    let i_single = cb.inlet();

    let t_start = cb.thread();
    let t_empty = cb.thread();
    let t_chk1 = cb.thread();
    let t_single_fetch = cb.thread();
    let t_single = cb.thread();
    let t_pivot_fetch = cb.thread();
    let t_setup = cb.thread();
    let t_loop = cb.thread();
    let t_fetch = cb.thread();
    let t_place = cb.thread();
    let t_less = cb.thread();
    let t_geq = cb.thread();
    let t_next = cb.thread();
    let t_recurse = cb.thread();
    let t_join = cb.thread();

    cb.def_inlet(i_src, vec![ldmsg(R0, 0), st(s_src, R0), post(t_start)]);
    cb.def_inlet(i_len, vec![ldmsg(R0, 0), st(s_len, R0), post(t_start)]);
    cb.def_inlet(i_out, vec![ldmsg(R0, 0), st(s_out, R0), post(t_start)]);
    cb.def_inlet(i_ooff, vec![ldmsg(R0, 0), st(s_ooff, R0), post(t_start)]);
    cb.def_inlet(i_piv, vec![ldmsg(R0, 0), st(s_piv, R0), post(t_setup)]);
    cb.def_inlet(i_elem, vec![ldmsg(R0, 0), st(s_v, R0), post(t_place)]);
    cb.def_inlet(i_join, vec![post(t_join)]);
    cb.def_inlet(i_single, vec![ldmsg(R0, 0), st(s_v, R0), post(t_single)]);

    // All four arguments present: dispatch on the segment length.
    cb.def_thread(
        t_start,
        4,
        vec![
            ld(R0, s_len),
            alu(AluOp::Eq, R1, R0, imm(0)),
            fork_if_else(R1, t_empty, t_chk1),
        ],
    );
    cb.def_thread(t_empty, 1, vec![movi(R0, 0), ret(vec![R0])]);
    cb.def_thread(
        t_chk1,
        1,
        vec![
            ld(R0, s_len),
            alu(AluOp::Eq, R1, R0, imm(1)),
            fork_if_else(R1, t_single_fetch, t_pivot_fetch),
        ],
    );
    // len == 1: copy the one element through.
    cb.def_thread(
        t_single_fetch,
        1,
        vec![ld(R0, s_src), movi(R1, 0), ifetch(R0, R1, i_single)],
    );
    cb.def_thread(
        t_single,
        1,
        vec![
            ld(R0, s_v),
            ld(R1, s_out),
            ld(R2, s_ooff),
            alu(AluOp::Shl, R2, R2, imm(3)),
            alu(AluOp::Add, R1, R1, reg(R2)),
            istore(R1, R0),
            movi(R0, 0),
            ret(vec![R0]),
        ],
    );
    // len >= 2: fetch the pivot (element 0).
    cb.def_thread(
        t_pivot_fetch,
        1,
        vec![ld(R0, s_src), movi(R1, 0), ifetch(R0, R1, i_piv)],
    );
    // Allocate the partition arrays and start the scan at element 1.
    cb.def_thread(
        t_setup,
        1,
        vec![
            ld(R0, s_len),
            alu(AluOp::Sub, R0, R0, imm(1)),
            alu(AluOp::Shl, R1, R0, imm(1)), // (len-1) cells × 2 words
            halloc(R2, reg(R1)),
            st(s_less, R2),
            halloc(R3, reg(R1)),
            st(s_geq, R3),
            movi(R4, 1),
            st(s_i, R4),
            movi(R4, 0),
            st(s_nl, R4),
            st(s_ng, R4),
            fork(t_loop),
        ],
    );
    cb.def_thread(
        t_loop,
        1,
        vec![
            ld(R0, s_i),
            ld(R1, s_len),
            alu(AluOp::Lt, R2, R0, reg(R1)),
            fork_if_else(R2, t_fetch, t_recurse),
        ],
    );
    cb.def_thread(
        t_fetch,
        1,
        vec![
            ld(R0, s_src),
            ld(R1, s_i),
            alu(AluOp::Shl, R1, R1, imm(3)),
            alu(AluOp::Add, R0, R0, reg(R1)),
            movi(R2, 0),
            ifetch(R0, R2, i_elem),
        ],
    );
    cb.def_thread(
        t_place,
        1,
        vec![
            ld(R0, s_v),
            ld(R1, s_piv),
            alu(AluOp::Lt, R2, R0, reg(R1)),
            fork_if_else(R2, t_less, t_geq),
        ],
    );
    cb.def_thread(
        t_less,
        1,
        vec![
            ld(R0, s_v),
            ld(R1, s_less),
            ld(R2, s_nl),
            alu(AluOp::Shl, R3, R2, imm(3)),
            alu(AluOp::Add, R1, R1, reg(R3)),
            istore(R1, R0),
            alu(AluOp::Add, R2, R2, imm(1)),
            st(s_nl, R2),
            fork(t_next),
        ],
    );
    cb.def_thread(
        t_geq,
        1,
        vec![
            ld(R0, s_v),
            ld(R1, s_geq),
            ld(R2, s_ng),
            alu(AluOp::Shl, R3, R2, imm(3)),
            alu(AluOp::Add, R1, R1, reg(R3)),
            istore(R1, R0),
            alu(AluOp::Add, R2, R2, imm(1)),
            st(s_ng, R2),
            fork(t_next),
        ],
    );
    cb.def_thread(
        t_next,
        1,
        vec![
            ld(R0, s_i),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_i, R0),
            fork(t_loop),
        ],
    );
    // Place the pivot, recurse on both halves.
    cb.def_thread(
        t_recurse,
        1,
        vec![
            // out[out_off + nless] = pivot.
            ld(R0, s_out),
            ld(R1, s_ooff),
            ld(R2, s_nl),
            alu(AluOp::Add, R3, R1, reg(R2)),
            alu(AluOp::Shl, R4, R3, imm(3)),
            alu(AluOp::Add, R4, R0, reg(R4)),
            ld(R5, s_piv),
            istore(R4, R5),
            // qs(less, nless, out, out_off).
            ld(R6, s_less),
            call(qs, vec![R6, R2, R0, R1], i_join),
            // qs(geq, ngeq, out, out_off + nless + 1).
            ld(R6, s_geq),
            ld(R7, s_ng),
            alu(AluOp::Add, R8, R3, imm(1)),
            call(qs, vec![R6, R7, R0, R8], i_join),
        ],
    );
    cb.def_thread(t_join, 2, vec![movi(R0, 0), ret(vec![R0])]);
    pb.define(qs, cb.finish());

    // ---- main: sort, then checksum the output sequentially ----
    let mut cb = CodeblockBuilder::new("main");
    let s_k = cb.slot();
    let s_sum = cb.slot();
    let s_cv = cb.slot();
    let i_arg = cb.inlet();
    let i_rep = cb.inlet();
    let i_ck = cb.inlet();
    let t_go = cb.thread();
    let t_ck_start = cb.thread();
    let t_ck_fetch = cb.thread();
    let t_ck_add = cb.thread();
    let t_ret = cb.thread();
    cb.def_inlet(i_arg, vec![post(t_go)]);
    cb.def_inlet(i_rep, vec![post(t_ck_start)]);
    cb.def_inlet(i_ck, vec![ldmsg(R0, 0), st(s_cv, R0), post(t_ck_add)]);
    cb.def_thread(
        t_go,
        1,
        vec![
            movarr(R0, a_in),
            movi(R1, n as i64),
            movarr(R2, a_out),
            movi(R3, 0),
            call(qs, vec![R0, R1, R2, R3], i_rep),
        ],
    );
    cb.def_thread(
        t_ck_start,
        1,
        vec![movi(R0, 0), st(s_k, R0), st(s_sum, R0), fork(t_ck_fetch)],
    );
    cb.def_thread(
        t_ck_fetch,
        1,
        vec![
            movarr(R0, a_out),
            ld(R1, s_k),
            alu(AluOp::Shl, R2, R1, imm(3)),
            alu(AluOp::Add, R0, R0, reg(R2)),
            movi(R3, 0),
            ifetch(R0, R3, i_ck),
        ],
    );
    cb.def_thread(
        t_ck_add,
        1,
        vec![
            ld(R0, s_cv),
            ld(R1, s_k),
            alu(AluOp::Add, R2, R1, imm(1)),
            alu(AluOp::Mul, R0, R0, reg(R2)),
            ld(R3, s_sum),
            alu(AluOp::Add, R3, R3, reg(R0)),
            st(s_sum, R3),
            st(s_k, R2),
            alu(AluOp::Lt, R4, R2, imm(n as i64)),
            fork_if_else(R4, t_ck_fetch, t_ret),
        ],
    );
    cb.def_thread(t_ret, 1, vec![ld(R0, s_sum), ret(vec![R0])]);
    pb.define(main, cb.finish());

    pb.main(main, vec![Value::Int(0)]);
    pb.build()
}

/// Reference checksum of the sorted input.
pub fn quicksort_expected(n: usize, seed: u64) -> i64 {
    let mut v = quicksort_input(n, seed);
    v.sort_unstable();
    v.iter().enumerate().map(|(k, &x)| (k as i64 + 1) * x).sum()
}
