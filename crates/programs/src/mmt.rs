//! Matrix multiply with total (MMT) — "multiplies two matrices of
//! floating-point numbers and sums the elements of the product" (§3).
//!
//! One codeblock activation per product row; each element's dot product
//! runs as a split-phase loop fetching five A and five B operands per
//! batch (tags route replies into a frame buffer). MMT is the
//! finest-grained program of the suite by threads-per-quantum and has the
//! largest instructions-per-thread, as in Table 2.
//! Row totals are parked in an I-structure array and summed sequentially,
//! so the float result is identical under every implementation.

use tamsim_tam::ids::regs::*;
use tamsim_tam::ops::*;
use tamsim_tam::{
    AluOp, CodeblockBuilder, FAluOp, InitArray, Program, ProgramBuilder, SlotId, Value,
};

/// Dot-product unroll factor (fetches per batch = 2×UNROLL).
const UNROLL: usize = 5;

fn a_elem(n: usize, i: usize, j: usize) -> f64 {
    (((i * n + j) % 7 + 1) as f64) * 0.5
}

fn b_elem(n: usize, i: usize, j: usize) -> f64 {
    (((i * n + j) % 5 + 1) as f64) * 0.25
}

/// Number of interleaved column pipelines per row activation. One: in the
/// AM implementation a second pipeline lets the active frame absorb its
/// own fetch replies through the thread-top interrupt windows
/// indefinitely, collapsing the whole row into a single quantum — the
/// paper's MMT is instead the *finest*-grained program of the suite.
const PIPES: usize = 1;

/// Build MMT for `n×n` matrices (`n` must be a multiple of 5).
pub fn mmt(n: usize) -> Program {
    assert!(
        n.is_multiple_of(PIPES * UNROLL),
        "mmt size must be a multiple of {}",
        PIPES * UNROLL
    );
    let ni = n as i64;
    let mut pb = ProgramBuilder::new("mmt");
    let a_a = pb.array(InitArray::present(
        "A",
        (0..n * n).map(|x| Value::Float(a_elem(n, x / n, x % n))),
    ));
    let a_b = pb.array(InitArray::present(
        "B",
        (0..n * n).map(|x| Value::Float(b_elem(n, x / n, x % n))),
    ));
    let a_part = pb.array(InitArray::empty("partials", n));
    let main = pb.declare("main");
    let row = pb.declare("row");

    // ---- row(i): partial = Σ_j Σ_k A[i,k]·B[k,j], two column pipelines
    let mut cb = CodeblockBuilder::new("row");
    let s_i = cb.slot();
    let i_arg = cb.inlet();
    let t_init = cb.thread();
    let t_fin = cb.thread();

    // Per-pipeline state.
    struct Pipe {
        s_j: SlotId,
        s_k: SlotId,
        s_acc: SlotId,
        s_row: SlotId,
        buf: SlotId,
        i_buf: tamsim_tam::InletId,
        t_elem: tamsim_tam::ThreadId,
        t_issue: tamsim_tam::ThreadId,
        t_mac: tamsim_tam::ThreadId,
        t_jnext: tamsim_tam::ThreadId,
    }
    let mut pipes = Vec::new();
    for _ in 0..PIPES {
        pipes.push(Pipe {
            s_j: cb.slot(),
            s_k: cb.slot(),
            s_acc: cb.slot(),
            s_row: cb.slot(),
            buf: cb.slots(2 * UNROLL as u16),
            i_buf: cb.inlet(),
            t_elem: cb.thread(),
            t_issue: cb.thread(),
            t_mac: cb.thread(),
            t_jnext: cb.thread(),
        });
    }

    cb.def_inlet(i_arg, vec![ldmsg(R0, 0), st(s_i, R0), post(t_init)]);
    let mut init = Vec::new();
    for (p, pipe) in pipes.iter().enumerate() {
        init.extend([
            movi(R0, p as i64), // first column of this pipeline
            st(pipe.s_j, R0),
            movf(R1, 0.0),
            st(pipe.s_row, R1),
            fork(pipe.t_elem),
        ]);
    }
    cb.def_thread(t_init, 1, init);

    for pipe in &pipes {
        cb.def_inlet(
            pipe.i_buf,
            vec![
                ldmsg(R0, 0),
                ldmsg(R1, 1),
                stx(pipe.buf, R1, R0),
                post(pipe.t_mac),
            ],
        );
        cb.def_thread(
            pipe.t_elem,
            1,
            vec![
                movf(R0, 0.0),
                st(pipe.s_acc, R0),
                movi(R1, 0),
                st(pipe.s_k, R1),
                fork(pipe.t_issue),
            ],
        );
        // Issue 2×UNROLL split-phase fetches: A[i, k+u] and B[k+u, j].
        let mut issue = vec![
            ld(R0, s_i),
            ld(R1, pipe.s_j),
            ld(R2, pipe.s_k),
            movarr(R3, a_a),
            movarr(R4, a_b),
            alu(AluOp::Mul, R5, R0, imm(ni)),
            alu(AluOp::Add, R5, R5, reg(R2)), // A index of the batch start
        ];
        for u in 0..UNROLL {
            issue.extend([
                alu(AluOp::Add, R6, R5, imm(u as i64)),
                alu(AluOp::Shl, R6, R6, imm(3)),
                alu(AluOp::Add, R6, R6, reg(R3)),
                movi(R7, u as i64),
                ifetch(R6, R7, pipe.i_buf),
            ]);
        }
        for u in 0..UNROLL {
            issue.extend([
                // B index = (k+u)*n + j.
                alu(AluOp::Add, R6, R2, imm(u as i64)),
                alu(AluOp::Mul, R6, R6, imm(ni)),
                alu(AluOp::Add, R6, R6, reg(R1)),
                alu(AluOp::Shl, R6, R6, imm(3)),
                alu(AluOp::Add, R6, R6, reg(R4)),
                movi(R7, (UNROLL + u) as i64),
                ifetch(R6, R7, pipe.i_buf),
            ]);
        }
        cb.def_thread(pipe.t_issue, 1, issue);
        // All ten operands arrived: multiply-accumulate the batch.
        let mut mac = vec![reset_count(pipe.t_mac), ld(R0, pipe.s_acc)];
        for u in 0..UNROLL {
            mac.extend([
                ld(R1, SlotId(pipe.buf.0 + u as u16)),
                ld(R2, SlotId(pipe.buf.0 + (UNROLL + u) as u16)),
                falu(FAluOp::FMul, R1, R1, R2),
                falu(FAluOp::FAdd, R0, R0, R1),
            ]);
        }
        mac.extend([
            st(pipe.s_acc, R0),
            ld(R3, pipe.s_k),
            alu(AluOp::Add, R3, R3, imm(UNROLL as i64)),
            st(pipe.s_k, R3),
            alu(AluOp::Lt, R4, R3, imm(ni)),
            fork_if_else(R4, pipe.t_issue, pipe.t_jnext),
        ]);
        cb.def_thread(pipe.t_mac, 2 * UNROLL as u32, mac);
        cb.def_thread(
            pipe.t_jnext,
            1,
            vec![
                ld(R0, pipe.s_acc),
                ld(R1, pipe.s_row),
                falu(FAluOp::FAdd, R1, R1, R0),
                st(pipe.s_row, R1),
                ld(R2, pipe.s_j),
                alu(AluOp::Add, R2, R2, imm(PIPES as i64)),
                st(pipe.s_j, R2),
                alu(AluOp::Lt, R3, R2, imm(ni)),
                fork_if_else(R3, pipe.t_elem, t_fin),
            ],
        );
    }
    // All pipelines done: combine their partials in pipeline order (the
    // fixed combine order keeps the float result deterministic).
    let mut fin = vec![ld(R0, pipes[0].s_row)];
    for pipe in &pipes[1..] {
        fin.extend([ld(R1, pipe.s_row), falu(FAluOp::FAdd, R0, R0, R1)]);
    }
    fin.extend([
        movarr(R2, a_part),
        ld(R3, s_i),
        alu(AluOp::Shl, R3, R3, imm(3)),
        alu(AluOp::Add, R2, R2, reg(R3)),
        istore(R2, R0),
        movi(R4, 0),
        ret(vec![R4]),
    ]);
    cb.def_thread(t_fin, PIPES as u32, fin);
    pb.define(row, cb.finish());

    // ---- main: spawn rows, await all, sum the partials in order ----
    let mut cb = CodeblockBuilder::new("main");
    let s_si = cb.slot();
    let s_sk = cb.slot();
    let s_tot = cb.slot();
    let s_v = cb.slot();
    let i_arg = cb.inlet();
    let i_rep = cb.inlet();
    let i_sv = cb.inlet();
    let t_spawn = cb.thread();
    let t_sum_start = cb.thread();
    let t_sfetch = cb.thread();
    let t_sadd = cb.thread();
    let t_ret = cb.thread();
    cb.def_inlet(i_arg, vec![movi(R0, 0), st(s_si, R0), post(t_spawn)]);
    // Every row completion decrements the join count.
    cb.def_inlet(i_rep, vec![post(t_sum_start)]);
    cb.def_inlet(i_sv, vec![ldmsg(R0, 0), st(s_v, R0), post(t_sadd)]);
    cb.def_thread(
        t_spawn,
        1,
        vec![
            ld(R0, s_si),
            call(row, vec![R0], i_rep),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_si, R0),
            alu(AluOp::Lt, R1, R0, imm(ni)),
            fork_if(R1, t_spawn),
        ],
    );
    cb.def_thread(
        t_sum_start,
        n as u32,
        vec![
            movi(R0, 0),
            st(s_sk, R0),
            movf(R1, 0.0),
            st(s_tot, R1),
            fork(t_sfetch),
        ],
    );
    cb.def_thread(
        t_sfetch,
        1,
        vec![
            movarr(R0, a_part),
            ld(R1, s_sk),
            alu(AluOp::Shl, R2, R1, imm(3)),
            alu(AluOp::Add, R0, R0, reg(R2)),
            movi(R3, 0),
            ifetch(R0, R3, i_sv),
        ],
    );
    cb.def_thread(
        t_sadd,
        1,
        vec![
            ld(R0, s_v),
            ld(R1, s_tot),
            falu(FAluOp::FAdd, R1, R1, R0),
            st(s_tot, R1),
            ld(R2, s_sk),
            alu(AluOp::Add, R2, R2, imm(1)),
            st(s_sk, R2),
            alu(AluOp::Lt, R3, R2, imm(ni)),
            fork_if_else(R3, t_sfetch, t_ret),
        ],
    );
    cb.def_thread(t_ret, 1, vec![ld(R0, s_tot), ret(vec![R0])]);
    pb.define(main, cb.finish());

    pb.main(main, vec![Value::Int(0)]);
    pb.build()
}

/// Reference value, replicating the program's exact accumulation order
/// (per-row pipeline partials combined in pipeline order).
#[allow(clippy::modulo_one)] // PIPES is a tunable constant, currently 1
pub fn mmt_expected(n: usize) -> f64 {
    let mut total = 0.0f64;
    for i in 0..n {
        let mut rows = [0.0f64; PIPES];
        for j in 0..n {
            let mut acc = 0.0f64;
            for k in 0..n {
                acc += a_elem(n, i, k) * b_elem(n, k, j);
            }
            rows[j % PIPES] += acc;
        }
        let mut row = rows[0];
        for r in &rows[1..] {
            row += r;
        }
        total += row;
    }
    total
}
