//! Wavefront — "computes successive matrices in which each element
//! depends on a function of north and west values of the previous and
//! current matrix" (paper §3).
//!
//! One codeblock activation per matrix row per generation; generations
//! run one after another and rows spawn through a k-bounded window, the
//! flow control real TAM programs used so "programs fit in the message
//! queue". A row prefetches the two relevant rows of the previous matrix
//! (all present — generations are serialized), then sweeps left-to-right
//! carrying the west value in the frame while the north value of the
//! *current* matrix streams in as direct messages from the row-above
//! activation; rows register their frames with `main`, which links each
//! row to its successor as registrations arrive. Row 1 instead reads the
//! present boundary row through split-phase fetches.
//!
//! Sweeps, spawning, and linking are all paced by atomic stall/kick
//! gates. Arrival-count gating is sound because arrivals are ordered:
//! norths come from a single producer over a FIFO queue in column order,
//! and registrations arrive in row order (rows spawn in order and
//! register in their argument-inlet task). The long in-frame element
//! runs give wavefront the second-largest quanta of the suite (Table 2).

use tamsim_tam::ids::regs::*;
use tamsim_tam::ops::*;
use tamsim_tam::{
    AluOp, CodeblockBuilder, FAluOp, InitArray, InletId, Program, ProgramBuilder, Value,
};

/// Boundary value for row 0 / column 0 of every generation.
const BOUNDARY: f64 = 1.0;

/// k-bounded spawn window: rows outstanding per generation.
const WINDOW: i64 = 2;

fn gen0(_n: usize, i: usize, j: usize) -> f64 {
    1.0 + 0.1 * (((i + j) % 5) as f64)
}

/// Build wavefront over `n×n` matrices for `gens` successive generations.
/// Returns the bottom-right element of the final matrix.
pub fn wavefront(n: usize, gens: usize) -> Program {
    assert!(n >= 2 && gens >= 1);
    let ni = n as i64;
    let mut pb = ProgramBuilder::new("wavefront");
    // Generation 0 is fully present; later generations have their first
    // row and column pre-filled with the boundary value.
    let mut bases = Vec::with_capacity(gens + 1);
    bases.push(pb.array(InitArray::present(
        "gen0",
        (0..n * n).map(|x| Value::Float(gen0(n, x / n, x % n))),
    )));
    for g in 1..=gens {
        let cells = (0..n * n)
            .map(|x| {
                let (i, j) = (x / n, x % n);
                (i == 0 || j == 0).then_some(Value::Float(BOUNDARY))
            })
            .collect();
        bases.push(pb.array(InitArray {
            name: format!("gen{g}"),
            cells,
        }));
    }
    let main = pb.declare("main");
    let row = pb.declare("row");

    // `main`'s registration inlet index, fixed by construction below.
    const MAIN_I_REG: InletId = InletId(1);

    // ---- row(i, prev, cur, mainf) ----
    let mut cb = CodeblockBuilder::new("row");
    let s_i = cb.slot();
    let s_prev = cb.slot();
    let s_cur = cb.slot();
    let s_mainf = cb.slot();
    let s_j = cb.slot(); // sweep column
    let s_w = cb.slot(); // running west value
    let s_v = cb.slot(); // last computed value (for forwarding)
    let s_na = cb.slot(); // norths arrived (inlet-owned)
    let s_stall = cb.slot(); // sweep parked awaiting a north
    let s_succ = cb.slot(); // successor frame (0 for the last row)
    let s_ta = cb.slot(); // prefetch tag counter
    let s_tn = cb.slot(); // boundary north-issue counter (row 1)
    let nbuf = cb.slots(n as u16); // north values by column
    let pbuf = cb.slots(2 * n as u16); // prev rows i-1 (tags 0..n) and i

    let i_i = cb.inlet();
    let i_prev = cb.inlet();
    let i_cur = cb.inlet();
    let i_mainf = cb.inlet();
    let i_pv = cb.inlet(); // prev-matrix prefetch replies
    let i_nv = cb.inlet(); // norths: producer messages or boundary fetches
    let i_succ = cb.inlet(); // successor frame pointer from main

    let t_reg = cb.thread();
    let t_pf = cb.thread(); // prev-row prefetch loop
    let t_pfn = cb.thread(); // boundary-row fetch loop (row 1 only)
    let t_go = cb.thread(); // sweep enable: 2n prefetches + successor
    let t_gate = cb.thread(); // atomic: continue or park the sweep
    let t_step = cb.thread(); // one sweep element
    let t_send = cb.thread(); // forward the element south
    let t_adv = cb.thread(); // advance the column
    let t_done = cb.thread();

    cb.def_inlet(i_i, vec![ldmsg(R0, 0), st(s_i, R0), post(t_reg)]);
    cb.def_inlet(i_prev, vec![ldmsg(R0, 0), st(s_prev, R0), post(t_reg)]);
    cb.def_inlet(i_cur, vec![ldmsg(R0, 0), st(s_cur, R0), post(t_reg)]);
    cb.def_inlet(i_mainf, vec![ldmsg(R0, 0), st(s_mainf, R0), post(t_reg)]);
    cb.def_inlet(
        i_pv,
        vec![ldmsg(R0, 0), ldmsg(R1, 1), stx(pbuf, R1, R0), post(t_go)],
    );
    // North arrival: bank the value, bump the count, resume a parked
    // sweep exactly once.
    cb.def_inlet(
        i_nv,
        vec![
            ldmsg(R0, 0),
            ldmsg(R1, 1),
            stx(nbuf, R1, R0),
            ld(R2, s_na),
            alu(AluOp::Add, R2, R2, imm(1)),
            st(s_na, R2),
            ld(R3, s_stall),
            movi(R4, 0),
            st(s_stall, R4),
            post_if(R3, t_step),
        ],
    );
    cb.def_inlet(i_succ, vec![ldmsg(R0, 0), st(s_succ, R0), post(t_go)]);

    // All four arguments in: initialize the arrival protocol (frames are
    // recycled — inherited slot values must never be trusted), register
    // this frame with main, then start the fetch loops.
    cb.def_thread(
        t_reg,
        4,
        vec![
            movi(R0, 0),
            st(s_na, R0),
            st(s_stall, R0),
            st(s_ta, R0),
            ld(R1, s_i),
            myframe(R2),
            ld(R3, s_mainf),
            send_to(R3, main, MAIN_I_REG, vec![R1, R2]),
            fork(t_pf),
            movi(R4, 1),
            st(s_tn, R4),
            alu(AluOp::Eq, R5, R1, imm(1)),
            fork_if(R5, t_pfn),
        ],
    );
    // Prefetch both prev rows: tags 0..n-1 = prev[(i-1)*n + t], tags
    // n..2n-1 = prev[i*n + (t-n)]. All present — replies are immediate.
    cb.def_thread(
        t_pf,
        1,
        vec![
            ld(R0, s_ta),
            ld(R1, s_i),
            ld(R2, s_prev),
            alu(AluOp::Lt, R3, R0, imm(ni)), // 1 while fetching row i-1
            alu(AluOp::Sub, R4, R1, reg(R3)),
            alu(AluOp::Mul, R4, R4, imm(ni)),
            alu(AluOp::Rem, R5, R0, imm(ni)),
            alu(AluOp::Add, R4, R4, reg(R5)),
            alu(AluOp::Shl, R4, R4, imm(3)),
            alu(AluOp::Add, R4, R4, reg(R2)),
            ifetch(R4, R0, i_pv),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_ta, R0),
            alu(AluOp::Lt, R6, R0, imm(2 * ni)),
            fork_if(R6, t_pf),
        ],
    );
    // Row 1 reads its norths from the present boundary row 0.
    cb.def_thread(
        t_pfn,
        1,
        vec![
            ld(R0, s_tn),
            ld(R1, s_cur),
            alu(AluOp::Shl, R2, R0, imm(3)),
            alu(AluOp::Add, R2, R2, reg(R1)),
            ifetch(R2, R0, i_nv),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_tn, R0),
            alu(AluOp::Lt, R3, R0, imm(ni)),
            fork_if(R3, t_pfn),
        ],
    );
    // 2n prefetch replies + the successor pointer: start the sweep.
    cb.def_thread(
        t_go,
        2 * n as u32 + 1,
        vec![
            movi(R0, 1),
            st(s_j, R0),
            movf(R1, BOUNDARY), // cur[i][0]
            st(s_w, R1),
            fork(t_gate),
        ],
    );
    // Gate: proceed if north j has arrived, else park (§2.2 atomicity).
    cb.def_thread_atomic(
        t_gate,
        1,
        vec![
            ld(R0, s_j),
            ld(R1, s_na),
            alu(AluOp::Le, R2, R0, reg(R1)),
            movi(R3, 1),
            alu(AluOp::Sub, R3, R3, reg(R2)),
            st(s_stall, R3),
            fork_if(R2, t_step),
        ],
    );
    // One element: v = (w + north_cur + north_prev + west_prev) / 4.
    cb.def_thread(
        t_step,
        1,
        vec![
            ld(R0, s_j),
            ld(R1, s_w),
            ldx(R2, nbuf, R0),
            ldx(R3, pbuf, R0), // north-previous
            alu(AluOp::Add, R4, R0, imm(ni - 1)),
            ldx(R5, pbuf, R4), // west-previous = pbuf[n + j - 1]
            falu(FAluOp::FAdd, R1, R1, R2),
            falu(FAluOp::FAdd, R1, R1, R3),
            falu(FAluOp::FAdd, R1, R1, R5),
            movf(R6, 0.25),
            falu(FAluOp::FMul, R1, R1, R6),
            st(s_w, R1),
            st(s_v, R1),
            // cur[i*n + j] = v (needed by the next generation's prefetches
            // and the final corner read).
            ld(R7, s_i),
            alu(AluOp::Mul, R7, R7, imm(ni)),
            alu(AluOp::Add, R7, R7, reg(R0)),
            alu(AluOp::Shl, R7, R7, imm(3)),
            ld(R8, s_cur),
            alu(AluOp::Add, R7, R7, reg(R8)),
            istore(R7, R1),
            // Stream the value south if a successor exists.
            ld(R9, s_succ),
            fork_if_else(R9, t_send, t_adv),
        ],
    );
    cb.def_thread(
        t_send,
        1,
        vec![
            ld(R0, s_succ),
            ld(R1, s_v),
            ld(R2, s_j),
            send_to(R0, row, i_nv, vec![R1, R2]),
            fork(t_adv),
        ],
    );
    cb.def_thread(
        t_adv,
        1,
        vec![
            ld(R0, s_j),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_j, R0),
            alu(AluOp::Lt, R1, R0, imm(ni)),
            fork_if_else(R1, t_gate, t_done),
        ],
    );
    cb.def_thread(t_done, 1, vec![movi(R0, 0), ret(vec![R0])]);
    pb.define(row, cb.finish());

    // ---- main ----
    let mut cb = CodeblockBuilder::new("main");
    let s_si = cb.slot(); // next row index to spawn
    let s_g = cb.slot(); // current generation (1-based)
    let s_ret = cb.slot(); // rows returned within the current generation
    let s_sstall = cb.slot(); // spawner parked awaiting completions
    let s_nreg = cb.slot(); // rows registered within the current generation
    let s_lk = cb.slot(); // next link action (send succ to row lk-1)
    let s_lstall = cb.slot(); // linker parked awaiting registrations
    let s_res = cb.slot();
    let fbuf = cb.slots(n as u16 + 1); // registered frames by row (+guard)

    let i_arg = cb.inlet();
    let i_reg = cb.inlet();
    let i_rep = cb.inlet();
    let i_final = cb.inlet();
    assert_eq!(i_reg, MAIN_I_REG);

    let t_resets: Vec<_> = (1..=gens).map(|_| cb.thread()).collect();
    let t_spawns: Vec<_> = (1..=gens).map(|_| cb.thread()).collect();
    let t_sgates: Vec<_> = (1..=gens).map(|_| cb.thread()).collect();
    let gate_sel = cb.thread(); // dispatches a spawner kick to its gen
    let t_lgate = cb.thread(); // linker gate
    let t_lstep = cb.thread(); // one successor-link send
    let t_join = cb.thread(); // per-generation completion join
    let t_sels: Vec<_> = (1..=gens).map(|_| cb.thread()).collect();
    let t_final = cb.thread();
    let t_ret = cb.thread();

    cb.def_inlet(i_arg, vec![movi(R0, 1), st(s_g, R0), post(t_resets[0])]);
    // A row registered: bank its frame, resume the linker if parked.
    cb.def_inlet(
        i_reg,
        vec![
            ldmsg(R0, 0),
            ldmsg(R1, 1),
            stx(fbuf, R0, R1),
            ld(R2, s_nreg),
            alu(AluOp::Add, R2, R2, imm(1)),
            st(s_nreg, R2),
            ld(R3, s_lstall),
            movi(R4, 0),
            st(s_lstall, R4),
            post_if(R3, t_lgate),
        ],
    );
    // A row completed: bump the window counter, resume a parked spawner,
    // and count toward the generation join.
    cb.def_inlet(
        i_rep,
        vec![
            ld(R0, s_ret),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_ret, R0),
            ld(R1, s_sstall),
            movi(R2, 0),
            st(s_sstall, R2),
            post_if(R1, gate_sel),
            post(t_join),
        ],
    );
    cb.def_inlet(i_final, vec![ldmsg(R0, 0), st(s_res, R0), post(t_ret)]);

    // Kick path: re-run the current generation's spawn gate.
    {
        let mut ops = vec![ld(R0, s_g)];
        for g in 1..gens {
            ops.push(alu(AluOp::Eq, R1, R0, imm(g as i64)));
            ops.push(fork_if(R1, t_sgates[g - 1]));
        }
        ops.push(alu(AluOp::Eq, R1, R0, imm(gens as i64)));
        ops.push(fork_if(R1, t_sgates[gens - 1]));
        cb.def_thread(gate_sel, 1, ops);
    }

    for g in 1..=gens {
        let t_spawn = t_spawns[g - 1];
        let t_sgate = t_sgates[g - 1];
        cb.def_thread(
            t_resets[g - 1],
            1,
            vec![
                movi(R0, 1),
                st(s_si, R0),
                movi(R1, 2),
                st(s_lk, R1), // first link action: successor of row 1
                movi(R2, 0),
                st(s_ret, R2),
                st(s_sstall, R2),
                st(s_nreg, R2),
                st(s_lstall, R2),
                fork(t_spawn),
                // Seed the linker gate; it parks until registrations arrive.
                fork(t_lgate),
            ],
        );
        cb.def_thread(
            t_spawn,
            1,
            vec![
                ld(R0, s_si),
                movarr(R1, bases[g - 1]),
                movarr(R2, bases[g]),
                myframe(R3),
                call(row, vec![R0, R1, R2, R3], i_rep),
                alu(AluOp::Add, R0, R0, imm(1)),
                st(s_si, R0),
                fork(t_sgate),
            ],
        );
        // Spawn gate: next row if rows remain and the window has room.
        cb.def_thread_atomic(
            t_sgate,
            1,
            vec![
                ld(R0, s_si),
                ld(R1, s_ret),
                alu(AluOp::Lt, R2, R0, imm(ni)), // rows remain?
                alu(AluOp::Sub, R3, R0, imm(1)),
                alu(AluOp::Sub, R3, R3, reg(R1)), // outstanding
                alu(AluOp::Lt, R4, R3, imm(WINDOW)),
                alu(AluOp::Mul, R5, R2, reg(R4)), // go
                alu(AluOp::Xor, R6, R4, imm(1)),
                alu(AluOp::Mul, R6, R2, reg(R6)), // park: rows remain, no room
                st(s_sstall, R6),
                fork_if(R5, t_spawn),
            ],
        );
    }
    // Linker gate: action lk (send row lk-1 its successor) is ready once
    // row lk has registered — or, for lk == n, once row n-1 has (the
    // last row's "successor" is 0).
    cb.def_thread_atomic(
        t_lgate,
        1,
        vec![
            ld(R0, s_lk),
            ld(R1, s_nreg),
            alu(AluOp::Le, R2, R0, imm(ni)), // actions remain?
            alu(AluOp::Sub, R3, R0, imm(1)),
            alu(AluOp::Le, R4, R3, reg(R1)), // row lk-1 registered?
            alu(AluOp::Lt, R5, R0, imm(ni)), // lk < n?
            alu(AluOp::Le, R6, R0, reg(R1)), // row lk registered?
            alu(AluOp::Xor, R7, R5, imm(1)), // lk == n
            alu(AluOp::Mul, R5, R5, reg(R6)),
            alu(AluOp::Mul, R7, R7, reg(R4)),
            alu(AluOp::Or, R5, R5, reg(R7)),  // prerequisites met
            alu(AluOp::Mul, R8, R2, reg(R5)), // go
            alu(AluOp::Xor, R9, R5, imm(1)),
            alu(AluOp::Mul, R9, R2, reg(R9)), // park
            st(s_lstall, R9),
            fork_if(R8, t_lstep),
        ],
    );
    cb.def_thread(
        t_lstep,
        1,
        vec![
            ld(R0, s_lk),
            // succ = fbuf[lk] if lk < n else 0 (the guard slot keeps the
            // out-of-range probe inside the frame).
            alu(AluOp::Lt, R1, R0, imm(ni)),
            ldx(R2, fbuf, R0),
            alu(AluOp::Mul, R2, R2, reg(R1)),
            alu(AluOp::Sub, R3, R0, imm(1)),
            ldx(R4, fbuf, R3), // target row lk-1
            send_to(R4, row, i_succ, vec![R2]),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_lk, R0),
            fork(t_lgate),
        ],
    );
    // A generation finished: re-arm the join, bump the counter, and
    // select the next generation's spawner (unrolled compare chain).
    cb.def_thread(
        t_join,
        (n - 1) as u32,
        vec![
            reset_count(t_join),
            ld(R0, s_g),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_g, R0),
            fork(t_sels[0]),
        ],
    );
    for g in 1..=gens {
        let mut ops = vec![ld(R0, s_g), alu(AluOp::Eq, R1, R0, imm(g as i64 + 1))];
        let target = if g < gens { t_resets[g] } else { t_final };
        if g < gens {
            ops.push(fork_if_else(R1, target, t_sels[g]));
        } else {
            ops.push(fork(target));
        }
        cb.def_thread(t_sels[g - 1], 1, ops);
    }
    cb.def_thread(
        t_final,
        1,
        vec![
            movarr(R0, bases[gens]),
            movi(R1, (ni - 1) * ni + (ni - 1)),
            alu(AluOp::Shl, R1, R1, imm(3)),
            alu(AluOp::Add, R0, R0, reg(R1)),
            movi(R2, 0),
            ifetch(R0, R2, i_final),
        ],
    );
    cb.def_thread(t_ret, 1, vec![ld(R0, s_res), ret(vec![R0])]);
    pb.define(main, cb.finish());

    pb.main(main, vec![Value::Int(0)]);
    pb.build()
}

/// Reference value: the bottom-right element of the final generation.
pub fn wavefront_expected(n: usize, gens: usize) -> f64 {
    let mut prev: Vec<f64> = (0..n * n).map(|x| gen0(n, x / n, x % n)).collect();
    for _ in 1..=gens {
        let mut cur = vec![0.0f64; n * n];
        for i in 0..n {
            cur[i * n] = BOUNDARY;
        }
        for c in cur.iter_mut().take(n) {
            *c = BOUNDARY;
        }
        for i in 1..n {
            let mut w = BOUNDARY;
            for j in 1..n {
                let mut v = w;
                v += cur[(i - 1) * n + j];
                v += prev[(i - 1) * n + j];
                v += prev[i * n + j - 1];
                v *= 0.25;
                cur[i * n + j] = v;
                w = v;
            }
        }
        prev = cur;
    }
    prev[n * n - 1]
}
