//! The benchmark programs of Spertus & Dally (PPOPP 1995), hand-compiled
//! to TAM: "matrix multiply (MMT) 50 … quicksort (QS) 100 … discrete time
//! warp (DTW) 10 … paraffins 13 … wavefront 40 … and selection sort
//! (SS) 100", plus auxiliary micro-programs used by examples and tests.
//!
//! Every builder returns an implementation-agnostic [`Program`]; each has
//! a Rust reference mirror (`*_expected`) used to verify simulated
//! results bit-for-bit (integers) or exactly (floats — the order of
//! cross-activation float accumulation is fixed by construction so both
//! back-ends agree).

pub mod dtw;
pub mod fib;
pub mod mmt;
pub mod paraffins;
pub mod qs;
pub mod ss;
pub mod wavefront;

pub use dtw::{dtw, dtw_expected};
pub use fib::{fib, fib_expected};
pub use mmt::{mmt, mmt_expected};
pub use paraffins::{paraffins, paraffins_expected};
pub use qs::{quicksort, quicksort_expected, quicksort_input};
pub use ss::{ss, ss_expected};
pub use wavefront::{wavefront, wavefront_expected};

use tamsim_tam::Program;

/// One benchmark at a chosen argument size.
#[derive(Debug, Clone)]
pub struct PaperBenchmark {
    /// Paper name ("MMT", "QS", …).
    pub name: &'static str,
    /// The built program.
    pub program: Program,
}

/// The paper's six-program suite at the paper's argument sizes, in
/// Table 2 order (increasing threads-per-quantum).
pub fn paper_suite() -> Vec<PaperBenchmark> {
    vec![
        PaperBenchmark {
            name: "MMT",
            program: mmt(50),
        },
        PaperBenchmark {
            name: "QS",
            program: quicksort(100, 0xC0FFEE),
        },
        PaperBenchmark {
            name: "DTW",
            program: dtw(10, 8),
        },
        PaperBenchmark {
            name: "Paraffins",
            program: paraffins(13),
        },
        PaperBenchmark {
            name: "Wavefront",
            program: wavefront(40, 3),
        },
        PaperBenchmark {
            name: "SS",
            program: ss(100),
        },
    ]
}

/// The same suite at reduced sizes for fast tests and examples.
pub fn small_suite() -> Vec<PaperBenchmark> {
    vec![
        PaperBenchmark {
            name: "MMT",
            program: mmt(10),
        },
        PaperBenchmark {
            name: "QS",
            program: quicksort(24, 0xC0FFEE),
        },
        PaperBenchmark {
            name: "DTW",
            program: dtw(5, 4),
        },
        PaperBenchmark {
            name: "Paraffins",
            program: paraffins(8),
        },
        PaperBenchmark {
            name: "Wavefront",
            program: wavefront(8, 2),
        },
        PaperBenchmark {
            name: "SS",
            program: ss(24),
        },
    ]
}
