//! Selection sort (SS) — "sorts an array of integers that are originally
//! in reverse order" (paper §3).
//!
//! The array lives entirely in frame memory and the whole sort runs as
//! self-forking threads inside a single activation, giving the enormous
//! quanta and "high locality for frame memory" the paper reports for this
//! program ("it makes only 3 procedure calls in its entire execution").

use tamsim_tam::ids::regs::*;
use tamsim_tam::ops::*;
use tamsim_tam::{AluOp, CodeblockBuilder, Program, ProgramBuilder, Value};

/// Build selection sort of `n` integers initialized to `n, n-1, …, 1`.
/// Returns the order-weighted checksum `Σ (i+1)·a[i]` of the sorted array.
pub fn ss(n: u32) -> Program {
    let n = n as i64;
    let mut pb = ProgramBuilder::new("ss");
    let main = pb.declare("main");
    let sorter = pb.declare("sorter");

    // ---- sorter(n) ----
    let mut cb = CodeblockBuilder::new("sorter");
    let s_oi = cb.slot(); // outer index (also init index)
    let s_ij = cb.slot(); // inner index
    let s_mn = cb.slot(); // current minimum value
    let s_mi = cb.slot(); // current minimum index
    let s_sum = cb.slot(); // checksum accumulator
    let s_k = cb.slot(); // checksum index
    let arr = cb.slots(n as u16); // the in-frame array

    let i_arg = cb.inlet();
    let t_init = cb.thread();
    let t_outer = cb.thread();
    let t_inner = cb.thread();
    let t_upd = cb.thread();
    let t_adv = cb.thread();
    let t_place = cb.thread();
    let t_sum_start = cb.thread();
    let t_sum = cb.thread();
    let t_ret = cb.thread();

    // Argument arrives; start filling the array in reverse order.
    cb.def_inlet(i_arg, vec![movi(R0, 0), st(s_oi, R0), post(t_init)]);
    // a[i] = n - i for i in 0..n.
    cb.def_thread(
        t_init,
        1,
        vec![
            ld(R0, s_oi),
            movi(R1, n),
            alu(AluOp::Sub, R1, R1, reg(R0)),
            stx(arr, R0, R1),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_oi, R0),
            alu(AluOp::Lt, R2, R0, imm(n)),
            fork_if_else(R2, t_init, t_outer),
        ],
    );
    // Outer loop entry: min = a[oi], scan from oi+1. (t_init leaves
    // s_oi == n; reset it on first entry via the sentinel below.)
    cb.def_thread(
        t_outer,
        1,
        vec![
            ld(R0, s_oi),
            // First entry comes from t_init with oi == n: wrap to 0.
            alu(AluOp::Eq, R1, R0, imm(n)),
            movi(R2, 1),
            alu(AluOp::Sub, R2, R2, reg(R1)), // R2 = 0 if wrapping, 1 otherwise
            alu(AluOp::Mul, R0, R0, reg(R2)), // oi = 0 on wrap
            st(s_oi, R0),
            ldx(R3, arr, R0),
            st(s_mn, R3),
            st(s_mi, R0),
            alu(AluOp::Add, R4, R0, imm(1)),
            st(s_ij, R4),
            alu(AluOp::Lt, R5, R4, imm(n)),
            fork_if_else(R5, t_inner, t_place),
        ],
    );
    // Inner scan: is a[j] a new minimum?
    cb.def_thread(
        t_inner,
        1,
        vec![
            ld(R0, s_ij),
            ldx(R1, arr, R0),
            ld(R2, s_mn),
            alu(AluOp::Lt, R3, R1, reg(R2)),
            fork_if_else(R3, t_upd, t_adv),
        ],
    );
    cb.def_thread(
        t_upd,
        1,
        vec![
            ld(R0, s_ij),
            ldx(R1, arr, R0),
            st(s_mn, R1),
            st(s_mi, R0),
            fork(t_adv),
        ],
    );
    cb.def_thread(
        t_adv,
        1,
        vec![
            ld(R0, s_ij),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_ij, R0),
            alu(AluOp::Lt, R1, R0, imm(n)),
            fork_if_else(R1, t_inner, t_place),
        ],
    );
    // Swap a[oi] ↔ a[mi], advance the outer loop.
    cb.def_thread(
        t_place,
        1,
        vec![
            ld(R0, s_oi),
            ld(R1, s_mi),
            ldx(R2, arr, R0),
            ldx(R3, arr, R1),
            stx(arr, R0, R3),
            stx(arr, R1, R2),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_oi, R0),
            alu(AluOp::Lt, R4, R0, imm(n - 1)),
            fork_if_else(R4, t_outer, t_sum_start),
        ],
    );
    // Checksum pass: Σ (k+1)·a[k].
    cb.def_thread(
        t_sum_start,
        1,
        vec![movi(R0, 0), st(s_k, R0), st(s_sum, R0), fork(t_sum)],
    );
    cb.def_thread(
        t_sum,
        1,
        vec![
            ld(R0, s_k),
            ldx(R1, arr, R0),
            alu(AluOp::Add, R2, R0, imm(1)),
            alu(AluOp::Mul, R1, R1, reg(R2)),
            ld(R3, s_sum),
            alu(AluOp::Add, R3, R3, reg(R1)),
            st(s_sum, R3),
            st(s_k, R2),
            alu(AluOp::Lt, R4, R2, imm(n)),
            fork_if_else(R4, t_sum, t_ret),
        ],
    );
    cb.def_thread(t_ret, 1, vec![ld(R0, s_sum), ret(vec![R0])]);
    pb.define(sorter, cb.finish());

    // ---- main ----
    let mut cb = CodeblockBuilder::new("main");
    let s_r = cb.slot();
    let i_arg = cb.inlet();
    let i_reply = cb.inlet();
    let t_go = cb.thread();
    let t_done = cb.thread();
    cb.def_inlet(i_arg, vec![post(t_go)]);
    cb.def_inlet(i_reply, vec![ldmsg(R0, 0), st(s_r, R0), post(t_done)]);
    cb.def_thread(t_go, 1, vec![movi(R0, n), call(sorter, vec![R0], i_reply)]);
    cb.def_thread(t_done, 1, vec![ld(R0, s_r), ret(vec![R0])]);
    pb.define(main, cb.finish());

    pb.main(main, vec![Value::Int(0)]);
    pb.build()
}

/// Reference checksum: the sorted array is `1..=n`, so the checksum is
/// `Σ i²`.
pub fn ss_expected(n: u32) -> i64 {
    let n = n as i64;
    n * (n + 1) * (2 * n + 1) / 6
}
