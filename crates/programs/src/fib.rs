//! Recursive Fibonacci — the classic fine-grained TAM demo program.
//!
//! Not part of the paper's suite; used by examples and tests as the
//! smallest call-intensive workload.

use tamsim_tam::ids::regs::*;
use tamsim_tam::ops::*;
use tamsim_tam::{AluOp, CodeblockBuilder, Program, ProgramBuilder, Value};

/// Build `fib(n)`: each activation of the `fib` codeblock either returns
/// its argument (n < 2) or calls itself twice and sums the replies.
pub fn fib(n: u32) -> Program {
    let mut pb = ProgramBuilder::new("fib");
    let main = pb.declare("main");
    let f = pb.declare("fib");

    // fib(n): inlet 0 receives n; replies accumulate via a
    // synchronizing join thread.
    let mut cb = CodeblockBuilder::new("fib");
    let s_n = cb.slot();
    let s_acc = cb.slot();
    let i_arg = cb.inlet(); // inlet 0: the argument
    let i_reply = cb.inlet();
    let t_start = cb.thread();
    let t_base = cb.thread();
    let t_rec = cb.thread();
    let t_join = cb.thread();
    cb.def_inlet(i_arg, vec![ldmsg(R0, 0), st(s_n, R0), post(t_start)]);
    // Reply inlet: acc += value, then synchronize on the join thread.
    cb.def_inlet(
        i_reply,
        vec![
            ldmsg(R0, 0),
            ld(R1, s_acc),
            alu(AluOp::Add, R1, R1, reg(R0)),
            st(s_acc, R1),
            post(t_join),
        ],
    );
    cb.def_thread(
        t_start,
        1,
        vec![
            ld(R0, s_n),
            alu(AluOp::Lt, R1, R0, imm(2)),
            fork_if_else(R1, t_base, t_rec),
        ],
    );
    cb.def_thread(t_base, 1, vec![ld(R0, s_n), ret(vec![R0])]);
    cb.def_thread(
        t_rec,
        1,
        vec![
            movi(R2, 0),
            st(s_acc, R2),
            ld(R0, s_n),
            alu(AluOp::Sub, R1, R0, imm(1)),
            call(f, vec![R1], i_reply),
            alu(AluOp::Sub, R1, R0, imm(2)),
            call(f, vec![R1], i_reply),
        ],
    );
    cb.def_thread(t_join, 2, vec![ld(R0, s_acc), ret(vec![R0])]);
    pb.define(f, cb.finish());

    // main(n): call fib(n), return the reply.
    let mut cb = CodeblockBuilder::new("main");
    let s_r = cb.slot();
    let i_arg = cb.inlet();
    let i_reply = cb.inlet();
    let t_go = cb.thread();
    let t_done = cb.thread();
    cb.def_inlet(i_arg, vec![ldmsg(R0, 0), st(s_r, R0), post(t_go)]);
    cb.def_inlet(i_reply, vec![ldmsg(R0, 0), st(s_r, R0), post(t_done)]);
    cb.def_thread(t_go, 1, vec![ld(R0, s_r), call(f, vec![R0], i_reply)]);
    cb.def_thread(t_done, 1, vec![ld(R0, s_r), ret(vec![R0])]);
    pb.define(main, cb.finish());

    pb.main(main, vec![Value::Int(n as i64)]);
    pb.build()
}

/// Reference value.
pub fn fib_expected(n: u32) -> i64 {
    let (mut a, mut b) = (0i64, 1i64);
    for _ in 0..n {
        let t = a + b;
        a = b;
        b = t;
    }
    a
}
