//! Discrete time warp (DTW) — "a speech-processing application that
//! performs operations on matrices of floating-point numbers" (paper §3).
//!
//! Dynamic time warping of two feature sequences: one codeblock
//! activation per cost-matrix cell. Each cell fetches its two feature
//! vectors element-by-element (computing an L1 distance) and its three
//! neighbour costs through deferred I-structure reads, so all `n²` cells
//! are spawned eagerly and dataflow synchronization orders the wavefront
//! of the recurrence `D[i][j] = dist(aᵢ, bⱼ) + min(D[i-1][j],
//! D[i][j-1], D[i-1][j-1])`.

use tamsim_tam::ids::regs::*;
use tamsim_tam::ops::*;
use tamsim_tam::{
    AluOp, CodeblockBuilder, FAluOp, InitArray, Program, ProgramBuilder, SlotId, Value,
};

fn a_feat(dim: usize, i: usize, k: usize) -> f64 {
    (((i * dim + k) % 7) as f64) * 0.125
}

fn b_feat(dim: usize, j: usize, k: usize) -> f64 {
    (((j * dim + k) % 5) as f64) * 0.25
}

/// Build DTW over two length-`n` sequences of `dim`-dimensional feature
/// vectors (`dim` must be even: the distance splits into two half-range
/// threads so the per-cell work overlaps). Returns the total warp cost
/// `D[n][n]`.
pub fn dtw(n: usize, dim: usize) -> Program {
    assert!(n >= 1 && dim >= 2 && dim.is_multiple_of(2));
    let h = dim / 2;
    let np = (n + 1) as i64; // cost matrix is (n+1)×(n+1)
    let mut pb = ProgramBuilder::new("dtw");
    let a_a = pb.array(InitArray::present(
        "a",
        (0..n * dim).map(|x| Value::Float(a_feat(dim, x / dim, x % dim))),
    ));
    let a_b = pb.array(InitArray::present(
        "b",
        (0..n * dim).map(|x| Value::Float(b_feat(dim, x / dim, x % dim))),
    ));
    // Cost matrix: first row and column present as 0.0, interior empty.
    let a_d = pb.array(InitArray {
        name: "D".into(),
        cells: (0..(n + 1) * (n + 1))
            .map(|x| {
                let (i, j) = (x / (n + 1), x % (n + 1));
                (i == 0 || j == 0).then_some(Value::Float(0.0))
            })
            .collect(),
    });
    let main = pb.declare("main");
    let cell = pb.declare("cell");

    // ---- cell(i, j), 1-based in the cost matrix ----
    let mut cb = CodeblockBuilder::new("cell");
    let s_i = cb.slot();
    let s_j = cb.slot();
    let s_dlo = cb.slot();
    let s_dhi = cb.slot();
    let s_min = cb.slot();
    let fbuf = cb.slots(2 * dim as u16); // feature replies by tag
    let nbuf = cb.slots(3); // neighbour replies by tag

    let i_i = cb.inlet();
    let i_j = cb.inlet();
    let i_feat_lo = cb.inlet(); // feature dims 0..dim/2
    let i_feat_hi = cb.inlet(); // feature dims dim/2..dim
    let i_nbr = cb.inlet();
    let t_start = cb.thread();
    let t_dista = cb.thread();
    let t_distb = cb.thread();
    let t_min = cb.thread();
    let t_fin = cb.thread();

    cb.def_inlet(i_i, vec![ldmsg(R0, 0), st(s_i, R0), post(t_start)]);
    cb.def_inlet(i_j, vec![ldmsg(R0, 0), st(s_j, R0), post(t_start)]);
    cb.def_inlet(
        i_feat_lo,
        vec![ldmsg(R0, 0), ldmsg(R1, 1), stx(fbuf, R1, R0), post(t_dista)],
    );
    cb.def_inlet(
        i_feat_hi,
        vec![ldmsg(R0, 0), ldmsg(R1, 1), stx(fbuf, R1, R0), post(t_distb)],
    );
    cb.def_inlet(
        i_nbr,
        vec![ldmsg(R0, 0), ldmsg(R1, 1), stx(nbuf, R1, R0), post(t_min)],
    );

    // Issue every fetch: 2·dim features and 3 neighbours.
    let mut start = vec![
        ld(R0, s_i),
        ld(R1, s_j),
        movarr(R2, a_a),
        movarr(R3, a_b),
        // Feature rows are 0-based: a[(i-1)*dim + k], b[(j-1)*dim + k].
        alu(AluOp::Sub, R4, R0, imm(1)),
        alu(AluOp::Mul, R4, R4, imm(dim as i64)),
        alu(AluOp::Sub, R5, R1, imm(1)),
        alu(AluOp::Mul, R5, R5, imm(dim as i64)),
    ];
    for k in 0..dim {
        let inlet = if k < h { i_feat_lo } else { i_feat_hi };
        start.extend([
            alu(AluOp::Add, R6, R4, imm(k as i64)),
            alu(AluOp::Shl, R6, R6, imm(3)),
            alu(AluOp::Add, R6, R6, reg(R2)),
            movi(R7, k as i64),
            ifetch(R6, R7, inlet),
        ]);
    }
    for k in 0..dim {
        let inlet = if k < h { i_feat_lo } else { i_feat_hi };
        start.extend([
            alu(AluOp::Add, R6, R5, imm(k as i64)),
            alu(AluOp::Shl, R6, R6, imm(3)),
            alu(AluOp::Add, R6, R6, reg(R3)),
            movi(R7, (dim + k) as i64),
            ifetch(R6, R7, inlet),
        ]);
    }
    // Neighbours: D[i-1][j] (tag 0), D[i][j-1] (tag 1), D[i-1][j-1]
    // (tag 2).
    start.extend([movarr(R8, a_d)]);
    for (tag, (di, dj)) in [(0i64, (1i64, 0i64)), (1, (0, 1)), (2, (1, 1))] {
        start.extend([
            alu(AluOp::Sub, R6, R0, imm(di)),
            alu(AluOp::Mul, R6, R6, imm(np)),
            alu(AluOp::Add, R6, R6, reg(R1)),
            alu(AluOp::Sub, R6, R6, imm(dj)),
            alu(AluOp::Shl, R6, R6, imm(3)),
            alu(AluOp::Add, R6, R6, reg(R8)),
            movi(R7, tag),
            ifetch(R6, R7, i_nbr),
        ]);
    }
    cb.def_thread(t_start, 2, start);

    // L1 distance, split into two half-range threads.
    for (t, slot, range) in [(t_dista, s_dlo, 0..h), (t_distb, s_dhi, h..dim)] {
        let mut dist = vec![movf(R0, 0.0)];
        for k in range.clone() {
            dist.extend([
                ld(R1, SlotId(fbuf.0 + k as u16)),
                ld(R2, SlotId(fbuf.0 + (dim + k) as u16)),
                falu(FAluOp::FSub, R1, R1, R2),
                falu(FAluOp::FAbs, R1, R1, R1),
                falu(FAluOp::FAdd, R0, R0, R1),
            ]);
        }
        dist.extend([st(slot, R0), fork(t_fin)]);
        cb.def_thread(t, 2 * range.len() as u32, dist);
    }

    cb.def_thread(
        t_min,
        3,
        vec![
            ld(R0, SlotId(nbuf.0)),
            ld(R1, SlotId(nbuf.0 + 1)),
            ld(R2, SlotId(nbuf.0 + 2)),
            falu(FAluOp::FMin, R0, R0, R1),
            falu(FAluOp::FMin, R0, R0, R2),
            st(s_min, R0),
            fork(t_fin),
        ],
    );
    cb.def_thread(
        t_fin,
        3,
        vec![
            ld(R0, s_dlo),
            ld(R1, s_dhi),
            falu(FAluOp::FAdd, R0, R0, R1),
            ld(R1, s_min),
            falu(FAluOp::FAdd, R0, R0, R1),
            ld(R2, s_i),
            ld(R3, s_j),
            alu(AluOp::Mul, R4, R2, imm(np)),
            alu(AluOp::Add, R4, R4, reg(R3)),
            alu(AluOp::Shl, R4, R4, imm(3)),
            movarr(R5, a_d),
            alu(AluOp::Add, R4, R4, reg(R5)),
            istore(R4, R0),
            movi(R6, 0),
            ret(vec![R6]),
        ],
    );
    pb.define(cell, cb.finish());

    // ---- main: spawn all n² cells, await them, read D[n][n] ----
    let mut cb = CodeblockBuilder::new("main");
    let s_si = cb.slot();
    let s_sj = cb.slot();
    let s_res = cb.slot();
    let i_arg = cb.inlet();
    let i_rep = cb.inlet();
    let i_final = cb.inlet();
    let t_spawn = cb.thread();
    let t_row = cb.thread();
    let t_final = cb.thread();
    let t_ret = cb.thread();
    cb.def_inlet(
        i_arg,
        vec![movi(R0, 1), st(s_si, R0), st(s_sj, R0), post(t_spawn)],
    );
    // Every cell completion decrements the join count.
    cb.def_inlet(i_rep, vec![post(t_final)]);
    cb.def_inlet(i_final, vec![ldmsg(R0, 0), st(s_res, R0), post(t_ret)]);
    cb.def_thread(
        t_spawn,
        1,
        vec![
            ld(R0, s_si),
            ld(R1, s_sj),
            call(cell, vec![R0, R1], i_rep),
            alu(AluOp::Add, R1, R1, imm(1)),
            st(s_sj, R1),
            alu(AluOp::Le, R2, R1, imm(n as i64)),
            fork_if_else(R2, t_spawn, t_row),
        ],
    );
    cb.def_thread(
        t_row,
        1,
        vec![
            ld(R0, s_si),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(s_si, R0),
            movi(R1, 1),
            st(s_sj, R1),
            alu(AluOp::Le, R2, R0, imm(n as i64)),
            fork_if(R2, t_spawn),
        ],
    );
    cb.def_thread(
        t_final,
        (n * n) as u32,
        vec![
            movarr(R0, a_d),
            movi(R1, (n as i64) * np + n as i64),
            alu(AluOp::Shl, R1, R1, imm(3)),
            alu(AluOp::Add, R0, R0, reg(R1)),
            movi(R2, 0),
            ifetch(R0, R2, i_final),
        ],
    );
    cb.def_thread(t_ret, 1, vec![ld(R0, s_res), ret(vec![R0])]);
    pb.define(main, cb.finish());

    pb.main(main, vec![Value::Int(0)]);
    pb.build()
}

/// Reference value: `D[n][n]` with the program's exact evaluation order.
pub fn dtw_expected(n: usize, dim: usize) -> f64 {
    let np = n + 1;
    let h = dim / 2;
    let mut d = vec![0.0f64; np * np];
    for i in 1..=n {
        for j in 1..=n {
            // Two half-range partials, matching the program's combine
            // order exactly.
            let mut dlo = 0.0f64;
            for k in 0..h {
                dlo += (a_feat(dim, i - 1, k) - b_feat(dim, j - 1, k)).abs();
            }
            let mut dhi = 0.0f64;
            for k in h..dim {
                dhi += (a_feat(dim, i - 1, k) - b_feat(dim, j - 1, k)).abs();
            }
            let dist = dlo + dhi;
            let m = d[(i - 1) * np + j]
                .min(d[i * np + j - 1])
                .min(d[(i - 1) * np + j - 1]);
            d[i * np + j] = dist + m;
        }
    }
    d[n * np + n]
}
