//! Verify every benchmark program computes its reference result under
//! all three runtime implementations ("while both implementations yield
//! the same results, their dynamic behaviors differ").

use tamsim_core::{Experiment, Implementation};
use tamsim_programs as programs;

const ALL_IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

#[test]
fn fib_is_correct_everywhere() {
    let p = programs::fib(10);
    for impl_ in ALL_IMPLS {
        let out = Experiment::new(impl_).run(&p);
        assert_eq!(
            out.result[0].as_i64(),
            programs::fib_expected(10),
            "{impl_:?}"
        );
    }
}

#[test]
fn ss_is_correct_everywhere() {
    let p = programs::ss(24);
    for impl_ in ALL_IMPLS {
        let out = Experiment::new(impl_).run(&p);
        assert_eq!(
            out.result[0].as_i64(),
            programs::ss_expected(24),
            "{impl_:?}"
        );
    }
}

#[test]
fn ss_has_giant_quanta() {
    let p = programs::ss(24);
    let out = Experiment::new(Implementation::Md).run(&p);
    // The whole sort runs as a few enormous quanta.
    assert!(
        out.granularity.tpq() > 50.0,
        "tpq = {}",
        out.granularity.tpq()
    );
}

#[test]
fn quicksort_is_correct_everywhere() {
    let p = programs::quicksort(24, 7);
    let want = programs::quicksort_expected(24, 7);
    for impl_ in ALL_IMPLS {
        let out = Experiment::new(impl_).run(&p);
        assert_eq!(out.result[0].as_i64(), want, "{impl_:?}");
        // The output array is fully present and sorted.
        let sorted: Vec<i64> = out.arrays[1]
            .iter()
            .map(|c| c.expect("cell empty").as_i64())
            .collect();
        let mut reference = programs::quicksort_input(24, 7);
        reference.sort_unstable();
        assert_eq!(sorted, reference, "{impl_:?}");
    }
}

#[test]
fn quicksort_handles_duplicates_and_tiny_inputs() {
    for n in [1usize, 2, 3, 5] {
        let p = programs::quicksort(n, 123);
        let want = programs::quicksort_expected(n, 123);
        let out = Experiment::new(Implementation::Md).run(&p);
        assert_eq!(out.result[0].as_i64(), want, "n={n}");
    }
}

#[test]
fn mmt_is_correct_everywhere() {
    let p = programs::mmt(10);
    let want = programs::mmt_expected(10);
    for impl_ in ALL_IMPLS {
        let out = Experiment::new(impl_).run(&p);
        assert_eq!(
            out.result[0].as_f64(),
            want,
            "{impl_:?} (exact: order is fixed)"
        );
    }
}

#[test]
fn wavefront_is_correct_everywhere() {
    let p = programs::wavefront(8, 2);
    let want = programs::wavefront_expected(8, 2);
    for impl_ in ALL_IMPLS {
        let out = Experiment::new(impl_).run(&p);
        assert_eq!(out.result[0].as_f64(), want, "{impl_:?}");
    }
}

#[test]
fn dtw_is_correct_everywhere() {
    let p = programs::dtw(5, 4);
    let want = programs::dtw_expected(5, 4);
    for impl_ in ALL_IMPLS {
        let out = Experiment::new(impl_).run(&p);
        assert_eq!(out.result[0].as_f64(), want, "{impl_:?}");
    }
}

#[test]
fn paraffins_is_correct_everywhere() {
    let p = programs::paraffins(8);
    let (total, last) = programs::paraffins_expected(8);
    for impl_ in ALL_IMPLS {
        let out = Experiment::new(impl_).run(&p);
        assert_eq!(out.result[0].as_i64(), total, "{impl_:?}");
        assert_eq!(out.result[1].as_i64(), last, "{impl_:?}");
    }
}

#[test]
fn paraffins_counts_visible_in_istructure_array() {
    let p = programs::paraffins(8);
    let out = Experiment::new(Implementation::Am).run(&p);
    let counts = programs::paraffins::paraffin_counts(8);
    for (m, want) in (1..=8).zip(counts) {
        assert_eq!(out.arrays[1][m].map(|w| w.as_i64()), Some(want), "p[{m}]");
    }
}

#[test]
fn md_beats_am_on_instruction_count_for_every_program() {
    for bench in programs::small_suite() {
        let md = Experiment::new(Implementation::Md).run(&bench.program);
        let am = Experiment::new(Implementation::Am).run(&bench.program);
        assert!(
            md.instructions < am.instructions,
            "{}: MD {} !< AM {}",
            bench.name,
            md.instructions,
            am.instructions
        );
    }
}

#[test]
fn am_quanta_are_at_least_as_large_as_md_quanta() {
    // Table 2: "the AM implementation has higher numbers of instructions
    // and threads per quantum, almost without exception".
    let mut am_wins = 0;
    let mut total = 0;
    for bench in programs::small_suite() {
        let md = Experiment::new(Implementation::Md).run(&bench.program);
        let am = Experiment::new(Implementation::Am).run(&bench.program);
        total += 1;
        if am.granularity.tpq() >= md.granularity.tpq() * 0.99 {
            am_wins += 1;
        }
    }
    assert!(
        am_wins >= total - 1,
        "AM TPQ >= MD TPQ for {am_wins}/{total} programs"
    );
}
