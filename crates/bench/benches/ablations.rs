//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the §2.3 MD peephole optimizations on/off,
//! * the §2.4 enabled AM variant vs the measured unenabled one,
//! * charging write-back traffic in the cycle model,
//! * queue memory through the cache vs dedicated queue SRAM.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tamsim_cache::{table2_geometry, CacheBank, CycleModel};
use tamsim_core::{Experiment, Implementation, LoweringOptions};

fn bench_md_optimizations(c: &mut Criterion) {
    let program = tamsim_programs::quicksort(32, 7);
    let mut g = c.benchmark_group("ablation_md_opts");
    g.sample_size(20);
    for (label, opts) in [
        ("all_on", LoweringOptions::default()),
        ("all_off", LoweringOptions::none()),
        ("no_specialize", LoweringOptions { md_specialize: false, ..Default::default() }),
        ("no_store_elim", LoweringOptions { md_store_elim: false, ..Default::default() }),
        (
            "no_stop_to_suspend",
            LoweringOptions { md_stop_to_suspend: false, ..Default::default() },
        ),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let out = Experiment::new(Implementation::Md)
                    .with_opts(opts)
                    .run(black_box(&program));
                black_box(out.instructions)
            })
        });
    }
    g.finish();
}

fn bench_am_variants(c: &mut Criterion) {
    let program = tamsim_programs::mmt(10);
    let mut g = c.benchmark_group("ablation_enabled_am");
    g.sample_size(10);
    for impl_ in [Implementation::Am, Implementation::AmEnabled] {
        g.bench_function(impl_.label(), |b| {
            b.iter(|| {
                let out = Experiment::new(impl_).run(black_box(&program));
                black_box(out.instructions)
            })
        });
    }
    g.finish();
}

fn bench_queue_placement(c: &mut Criterion) {
    let program = tamsim_programs::wavefront(12, 2);
    let geom = table2_geometry();
    let mut g = c.benchmark_group("ablation_queue_placement");
    g.sample_size(10);
    for (label, bypass) in [("through_cache", false), ("queue_sram", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut exp = Experiment::new(Implementation::Md);
                exp.queue_bypass = bypass;
                let mut bank = CacheBank::symmetric([geom]);
                let out = exp.run_with_sink(black_box(&program), &mut bank);
                let model = CycleModel::paper(24);
                black_box(
                    model.total_cycles(out.instructions, &bank.summary_for(geom).unwrap()),
                )
            })
        });
    }
    g.finish();
}

fn bench_writeback_charging(c: &mut Criterion) {
    let program = tamsim_programs::ss(32);
    let geom = table2_geometry();
    // Collect once; the ablation is pure cycle arithmetic.
    let mut bank = CacheBank::symmetric([geom]);
    let out = Experiment::new(Implementation::Md).run_with_sink(&program, &mut bank);
    let summary = bank.summary_for(geom).unwrap();
    let mut g = c.benchmark_group("ablation_writeback");
    for (label, charge) in [("uncharged", false), ("charged", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let model = CycleModel { miss_penalty: 24, charge_writebacks: charge };
                black_box(model.total_cycles(out.instructions, &summary))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_md_optimizations,
    bench_am_variants,
    bench_queue_placement,
    bench_writeback_charging
);
criterion_main!(benches);
