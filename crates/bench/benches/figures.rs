//! Benches regenerating the paper's figures (1–6) and the §3.3 block
//! sweep, at reduced suite sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tamsim_cache::{paper_sweep, CacheGeometry, PAPER_BLOCK_SWEEP};
use tamsim_core::Implementation;
use tamsim_metrics::{
    block_sweep, capture_schedule, figure1_program, figure2, figure3, figure6,
    figure_per_program, SuiteData,
};

fn sweep_data() -> SuiteData {
    let mut geoms = paper_sweep();
    for &b in &PAPER_BLOCK_SWEEP {
        if b != 64 {
            geoms.push(CacheGeometry::new(8192, 4, b));
        }
    }
    SuiteData::collect(
        tamsim_programs::small_suite(),
        &[Implementation::Md, Implementation::Am],
        geoms,
    )
}

fn bench_figure1(c: &mut Criterion) {
    let program = figure1_program();
    c.bench_function("figure1_schedule_order", |b| {
        b.iter(|| {
            for impl_ in [Implementation::Am, Implementation::Md] {
                black_box(capture_schedule(&program, impl_, 1));
            }
        })
    });
}

fn bench_figure2(c: &mut Criterion) {
    let suite = tamsim_programs::small_suite();
    let mut g = c.benchmark_group("figure2");
    g.sample_size(10);
    g.bench_function("enabled_vs_unenabled", |b| {
        b.iter(|| black_box(figure2(&suite).to_csv()))
    });
    g.finish();
}

fn bench_sweep_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures3_to_6");
    g.sample_size(10);
    // The expensive part: the traced sweep feeding figures 3–6.
    g.bench_function("collect_sweep", |b| b.iter(|| black_box(sweep_data())));
    let data = sweep_data();
    g.bench_function("figure3_geomeans", |b| b.iter(|| black_box(figure3(&data))));
    g.bench_function("figure4_per_program_4way", |b| {
        b.iter(|| black_box(figure_per_program(&data, 4)))
    });
    g.bench_function("figure5_per_program_1way", |b| {
        b.iter(|| black_box(figure_per_program(&data, 1)))
    });
    g.bench_function("figure6_geomean_no_ss", |b| b.iter(|| black_box(figure6(&data))));
    g.bench_function("block_sweep_section3_3", |b| {
        b.iter(|| black_box(block_sweep(&data, &PAPER_BLOCK_SWEEP)))
    });
    g.finish();
}

criterion_group!(benches, bench_figure1, bench_figure2, bench_sweep_figures);
criterion_main!(benches);
