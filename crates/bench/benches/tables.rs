//! Benches regenerating the paper's tables.
//!
//! Each bench runs the full pipeline that produces the corresponding
//! artifact (machine simulation → trace → caches → statistics), at the
//! reduced suite sizes so `cargo bench` stays fast; the `tamsim` binary
//! regenerates the paper-size artifacts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tamsim_cache::table2_geometry;
use tamsim_core::Implementation;
use tamsim_metrics::{accesses, table1, table2, SuiteData};

fn small_data() -> SuiteData {
    SuiteData::collect(
        tamsim_programs::small_suite(),
        &[Implementation::Md, Implementation::Am],
        vec![table2_geometry()],
    )
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_mapping", |b| b.iter(|| black_box(table1())));
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    // The full pipeline: every program under both implementations, traced
    // into the Table 2 cache configuration.
    g.bench_function("collect_and_render", |b| {
        b.iter(|| {
            let data = small_data();
            black_box(table2(&data).to_csv())
        })
    });
    // Derivation alone, on a pre-collected dataset.
    let data = small_data();
    g.bench_function("render_only", |b| b.iter(|| black_box(table2(&data).to_csv())));
    g.finish();
}

fn bench_section31(c: &mut Criterion) {
    let data = small_data();
    c.bench_function("section3_1_accesses", |b| {
        b.iter(|| black_box(accesses(&data).to_csv()))
    });
}

criterion_group!(benches, bench_table1, bench_table2, bench_section31);
criterion_main!(benches);
