//! Support crate for the Criterion benches (see `benches/`); the bench
//! targets regenerate every table and figure of the paper.
