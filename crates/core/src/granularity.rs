//! Granularity statistics: threads per quantum, instructions per thread,
//! instructions per quantum (Table 2 of the paper).
//!
//! "A useful metric of granularity is threads per quantum, which indicates
//! how many threads from a frame are executed before a switch to another
//! frame. This can involve emptying the LCV multiple times if subsequent
//! messages are destined for the same frame." We therefore detect quantum
//! boundaries from the *frame* of each started thread, which measures both
//! implementations uniformly.

use tamsim_mdp::{Hooks, Mark, Priority};
use tamsim_trace::Access;

/// What kind of code a priority level is currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Segment {
    #[default]
    Other,
    Thread,
    Inlet,
}

/// Accumulates granularity statistics from machine marks.
#[derive(Debug, Default, Clone)]
pub struct Granularity {
    seg: [Segment; 2],
    last_frame: Option<u32>,
    /// Threads executed.
    pub threads: u64,
    /// Quanta (maximal runs of threads on the same frame).
    pub quanta: u64,
    /// Inlet executions.
    pub inlets: u64,
    /// Instructions executed inside thread bodies.
    pub thread_instructions: u64,
    /// Instructions executed inside inlet bodies.
    pub inlet_instructions: u64,
    /// All other instructions (system routines, scheduler, dispatch glue).
    pub other_instructions: u64,
}

impl Granularity {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Threads per quantum.
    pub fn tpq(&self) -> f64 {
        if self.quanta == 0 {
            0.0
        } else {
            self.threads as f64 / self.quanta as f64
        }
    }

    /// Instructions per thread (thread-body instructions only, matching
    /// Table 2 where IPQ ≈ TPQ × IPT).
    pub fn ipt(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            self.thread_instructions as f64 / self.threads as f64
        }
    }

    /// Instructions per quantum.
    pub fn ipq(&self) -> f64 {
        if self.quanta == 0 {
            0.0
        } else {
            self.thread_instructions as f64 / self.quanta as f64
        }
    }

    /// Total instructions observed.
    pub fn total_instructions(&self) -> u64 {
        self.thread_instructions + self.inlet_instructions + self.other_instructions
    }
}

impl Hooks for Granularity {
    #[inline]
    fn access(&mut self, _access: Access) {}

    #[inline]
    fn instruction(&mut self, pri: Priority, _pc: u32) {
        match self.seg[pri.index()] {
            Segment::Thread => self.thread_instructions += 1,
            Segment::Inlet => self.inlet_instructions += 1,
            Segment::Other => self.other_instructions += 1,
        }
    }

    // A straight-line run stays in one segment: segments change only at
    // marks, and marks always break the decoded interpreter's batches.
    #[inline]
    fn fetch_run(&mut self, pri: Priority, _start_pc: u32, n: u32) {
        match self.seg[pri.index()] {
            Segment::Thread => self.thread_instructions += n as u64,
            Segment::Inlet => self.inlet_instructions += n as u64,
            Segment::Other => self.other_instructions += n as u64,
        }
    }

    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        let p = pri.index();
        match mark {
            Mark::ThreadStart { .. } => {
                self.seg[p] = Segment::Thread;
                self.threads += 1;
                if self.last_frame != Some(frame) {
                    self.quanta += 1;
                    self.last_frame = Some(frame);
                }
            }
            Mark::ThreadEnd => self.seg[p] = Segment::Other,
            Mark::InletStart { .. } => {
                self.seg[p] = Segment::Inlet;
                self.inlets += 1;
            }
            Mark::InletEnd => self.seg[p] = Segment::Other,
            Mark::FrameActivated | Mark::SysStart | Mark::SysEnd => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(g: &mut Granularity, frame: u32) {
        g.mark(
            Mark::ThreadStart {
                codeblock: 0,
                thread: 0,
            },
            frame,
            Priority::Low,
        );
    }

    #[test]
    fn quanta_count_frame_runs() {
        let mut g = Granularity::new();
        for f in [10, 10, 10, 20, 10, 10] {
            start(&mut g, f);
            g.mark(Mark::ThreadEnd, f, Priority::Low);
        }
        assert_eq!(g.threads, 6);
        // Runs: [10,10,10], [20], [10,10] → 3 quanta.
        assert_eq!(g.quanta, 3);
        assert_eq!(g.tpq(), 2.0);
    }

    #[test]
    fn instructions_attributed_by_segment() {
        let mut g = Granularity::new();
        start(&mut g, 1);
        g.instruction(Priority::Low, 0);
        g.instruction(Priority::Low, 4);
        // An inlet preempts at high priority.
        g.mark(
            Mark::InletStart {
                codeblock: 0,
                inlet: 0,
            },
            1,
            Priority::High,
        );
        g.instruction(Priority::High, 8);
        g.mark(Mark::InletEnd, 1, Priority::High);
        // Back in the thread.
        g.instruction(Priority::Low, 12);
        g.mark(Mark::ThreadEnd, 1, Priority::Low);
        g.instruction(Priority::Low, 16); // scheduler glue
        assert_eq!(g.thread_instructions, 3);
        assert_eq!(g.inlet_instructions, 1);
        assert_eq!(g.other_instructions, 1);
        assert_eq!(g.inlets, 1);
        assert_eq!(g.ipt(), 3.0);
    }

    #[test]
    fn ipq_is_thread_instructions_per_quantum() {
        let mut g = Granularity::new();
        for f in [1, 1, 2, 2] {
            start(&mut g, f);
            g.instruction(Priority::Low, 0);
            g.instruction(Priority::Low, 4);
            g.mark(Mark::ThreadEnd, f, Priority::Low);
        }
        assert_eq!(g.quanta, 2);
        assert_eq!(g.ipq(), 4.0);
        assert_eq!(g.total_instructions(), 8);
    }

    #[test]
    fn empty_tracker_has_zero_ratios() {
        let g = Granularity::new();
        assert_eq!(g.tpq(), 0.0);
        assert_eq!(g.ipt(), 0.0);
        assert_eq!(g.ipq(), 0.0);
    }
}
