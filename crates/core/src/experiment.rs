//! Linking TAM programs and running experiments end-to-end.

use crate::asm::Asm;
use crate::granularity::Granularity;
use crate::layout::{FrameLayout, GlobalsMap, RESULT_WORDS};
use crate::lower::{lower_program, make_labels, LowerCtx, Lowered};
use crate::opts::{Implementation, LoweringOptions};
use crate::sys::gen_sys;
use tamsim_mdp::{
    CodeImage, DecodedImage, Hooks, Machine, MachineConfig, Mark, Priority, RunError, RunStats,
    Word,
};
use tamsim_obs::{ObsError, Profile, ProfileHooks, ProfileMeta, RawProfile, SymbolTable};
use tamsim_tam::{Program, TOp, Value};
use tamsim_trace::{
    Access, AccessCounts, CountingSink, MarkSink, MemoryMap, NullSink, TraceLog, TraceSink,
};

/// A program lowered and linked for one implementation: code image, boot
/// message, and memory seed.
#[derive(Debug, Clone)]
pub struct Linked {
    /// The complete code image (system + user code).
    pub code: CodeImage,
    /// Pre-decoded threaded-code form of `code`, built once at link time
    /// when [`LoweringOptions::predecode`] is on. Machines booted from
    /// this link run the batched decoded dispatch loop; `None` runs the
    /// baseline interpreter (the `--no-predecode` escape hatch). Either
    /// way the observable event stream is bit-identical.
    pub decoded: Option<DecodedImage>,
    /// The boot message (a frame-allocation request for `main`).
    pub boot: Vec<Word>,
    /// Load-time memory initialization (descriptors, allocator bumps,
    /// initial heap arrays).
    pub seed: Vec<(u32, Word)>,
    /// Load address of each initial array.
    pub array_bases: Vec<u32>,
    /// Element counts of the initial arrays.
    pub array_lens: Vec<usize>,
    /// Address of the result words.
    pub result_addr: u32,
    /// Number of result words `main` returns.
    pub result_arity: usize,
    /// Machine configuration the image was linked against.
    pub cfg: MachineConfig,
    /// Boot address of the low-priority context.
    pub start_low: u32,
    /// Names for every bound code label (system routines, threads,
    /// inlets), for hotspot attribution.
    pub symbols: SymbolTable,
    /// Addresses a mesh network interface routes and places by.
    pub net: NetInfo,
    /// Per-codeblock user-code start addresses, sorted ascending: the
    /// entry `(addr, cb)` covers code from `addr` up to the next entry.
    /// A queued frame's codeblock is recovered by mapping any of its
    /// posted thread addresses (RCV entries) through this table — the
    /// work-stealing policy needs the codeblock index to size and free
    /// migrated frames.
    pub cb_code: Vec<(u32, u32)>,
}

/// The link-time facts `tamsim-net` needs to turn sends into routed
/// messages and to give each node its own allocation arenas.
///
/// Every runtime message is `[handler, locus, ...]` where the locus word
/// is a frame or heap-cell address — except frame-allocation requests,
/// whose destination is a *policy choice* (that is the paper's frame
/// placement question). The NI recognizes those by `falloc_addr`;
/// `ffree_addr` lets a locality-aware policy keep live-frame counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetInfo {
    /// Code address of the frame-allocation handler.
    pub falloc_addr: u32,
    /// Code address of the frame-free handler.
    pub ffree_addr: u32,
    /// Globals address of the AM software frame-queue head: nonzero means
    /// frames are posted and runnable. A mesh NI re-arms a suspended
    /// scheduler when this races with message arrival (arrival can land
    /// between the scheduler's final queue check and its suspend).
    pub q_head: u32,
    /// Globals address of the AM software frame-queue tail (companion of
    /// `q_head`; the work-stealing policy unlinks the tail frame).
    pub q_tail: u32,
    /// Globals address of the frame-region bump pointer.
    pub frame_bump: u32,
    /// Globals address of the heap bump pointer.
    pub heap_bump: u32,
    /// Initial heap-bump value (just above the seeded arrays).
    pub heap_bump_init: u32,
    /// Globals address of the per-codeblock free-list heads (one word per
    /// codeblock). A stealing NI mirrors `falloc`'s pop on the target
    /// node and `ffree`'s push when reclaiming a migrated frame's home
    /// slot.
    pub freelist_base: u32,
    /// Globals address of the per-codeblock descriptor-pointer table
    /// (`desc_ptrs[cb]` → descriptor, whose word 0 is the frame size).
    pub desc_ptrs: u32,
    /// Code address of the done handler. A serve-mode NI recognizes
    /// request-completion replies by it and ejects them off-mesh to the
    /// external client instead of dispatching them.
    pub done_addr: u32,
}

impl Linked {
    /// Build a machine loaded with this image (memory seeded, boot message
    /// injected, low context started).
    pub fn boot_machine(&self) -> Machine<'_> {
        let mut machine = Machine::new(self.cfg, &self.code);
        if let Some(dec) = &self.decoded {
            machine.attach_decoded(dec);
        }
        for (addr, w) in &self.seed {
            machine.mem.write(*addr, *w);
        }
        machine.start_low(self.start_low);
        machine
            .inject(Priority::High, &self.boot)
            .expect("boot message exceeds queue capacity");
        machine
    }

    /// Run to completion, streaming events into `hooks`; returns the
    /// machine for post-mortem inspection alongside the stats.
    pub fn run<H: Hooks>(&self, hooks: &mut H) -> Result<(RunStats, Machine<'_>), RunError> {
        let mut machine = self.boot_machine();
        let stats = machine.run(hooks)?;
        Ok((stats, machine))
    }

    /// Read the result words from a finished machine.
    pub fn read_result(&self, machine: &Machine<'_>) -> Vec<Word> {
        (0..self.result_arity)
            .map(|i| machine.mem.read(self.result_addr + 4 * i as u32))
            .collect()
    }

    /// Read back every initial array's I-structure cells (`None` = still
    /// empty).
    pub fn read_arrays(&self, machine: &Machine<'_>) -> Vec<Vec<Option<Word>>> {
        self.array_bases
            .iter()
            .zip(&self.array_lens)
            .map(|(&base, &len)| {
                (0..len)
                    .map(|j| {
                        let cell = base + (j as u32) * 8;
                        let present = machine.mem.read(cell).as_i64() == 1;
                        present.then(|| machine.mem.read(cell + 4))
                    })
                    .collect()
            })
            .collect()
    }
}

fn resolve_value(v: &Value, array_bases: &[u32]) -> Word {
    match v {
        Value::Int(i) => Word::from_i64(*i),
        Value::Float(f) => Word::from_f64(*f),
        Value::ArrayBase(i) => Word::from_addr(array_bases[*i]),
    }
}

/// Lower and link `program` for `impl_` under `opts` and `cfg`.
pub fn link(
    program: &Program,
    impl_: Implementation,
    opts: LoweringOptions,
    cfg: MachineConfig,
) -> Linked {
    program.validate().expect("invalid program");

    // Result arity: the widest Return in main.
    let result_arity = program
        .codeblock(program.main)
        .threads
        .iter()
        .flat_map(|t| t.ops.iter())
        .filter_map(|op| match op {
            TOp::Return { vals } => Some(vals.len()),
            _ => None,
        })
        .max()
        .unwrap_or(0)
        .min(RESULT_WORDS as usize);

    let layouts: Vec<FrameLayout> = program
        .codeblocks
        .iter()
        .map(|cb| FrameLayout::of(cb, impl_.is_am()))
        .collect();
    let sys_layout = cfg.sys_layout();
    let globals = GlobalsMap::new(&sys_layout, program, &layouts);

    // Arrays at the bottom of the heap; the bump allocator starts above.
    let mut array_bases = Vec::with_capacity(program.arrays.len());
    let mut next = cfg.map.heap_base;
    for a in &program.arrays {
        array_bases.push(next);
        next += (a.len() as u32) * 8;
    }
    let heap_bump_init = next;

    let mut img = CodeImage::new(&cfg.map);
    let mut asm = Asm::new();
    let sys = gen_sys(&mut img, &mut asm, impl_, &globals, result_arity);
    let mut lowered: Lowered = make_labels(&mut asm, program);
    {
        let mut ctx = LowerCtx {
            img: &mut img,
            asm: &mut asm,
            impl_,
            opts,
            globals: &globals,
            sys: &sys,
            layouts: &layouts,
            program,
            array_bases: &array_bases,
        };
        lower_program(&mut ctx, &mut lowered);
    }

    // Collect addresses needed by descriptors and boot before finishing.
    let falloc_addr = asm.addr(sys.falloc);
    let ffree_addr = asm.addr(sys.ffree);
    let done_addr = asm.addr(sys.done);
    let start_low = asm.addr(sys.start_low);
    let mut seed: Vec<(u32, Word)> = Vec::new();
    for (i, cb) in program.codeblocks.iter().enumerate() {
        let inlet_addrs: Vec<u32> = lowered.inlet_labels[i]
            .iter()
            .map(|l| asm.addr(*l))
            .collect();
        seed.extend(crate::layout::descriptor_seed(
            globals.desc_addr[i],
            cb,
            &layouts[i],
            &inlet_addrs,
        ));
    }
    // Symbol table for hotspot attribution (built while the labels are
    // still accessible; `finish` consumes the assembler). Thread labels
    // elided by fall-through folding stay unbound and are skipped — their
    // code attributes to the preceding symbol, exactly as it executes.
    let mut syms: Vec<(u32, String)> = Vec::new();
    {
        let mut sys_sym = |label: Option<crate::asm::Label>, name: &str| {
            if let Some(addr) = label.and_then(|l| asm.try_addr(l)) {
                syms.push((addr, format!("sys:{name}")));
            }
        };
        sys_sym(Some(sys.falloc), "falloc");
        sys_sym(Some(sys.ffree), "ffree");
        sys_sym(Some(sys.ifetch), "ifetch");
        sys_sym(Some(sys.istore), "istore");
        sys_sym(Some(sys.halloc), "halloc");
        sys_sym(Some(sys.done), "done");
        sys_sym(Some(sys.start_low), "start_low");
        sys_sym(sys.post_lib, "post_lib");
        sys_sym(sys.swap_clean, "swap_clean");
        sys_sym(sys.swap_fresh, "swap_fresh");
        sys_sym(sys.am_pop, "am_pop");
        sys_sym(sys.md_pop, "md_pop");
        sys_sym(sys.md_boot, "md_boot");
    }
    let mut cb_code: Vec<(u32, u32)> = Vec::with_capacity(program.codeblocks.len());
    for (i, cb) in program.codeblocks.iter().enumerate() {
        let mut cb_start = u32::MAX;
        for (j, l) in lowered.thread_labels[i].iter().enumerate() {
            if let Some(addr) = asm.try_addr(*l) {
                syms.push((addr, format!("{}.t{}", cb.name, j)));
                cb_start = cb_start.min(addr);
            }
        }
        for (j, l) in lowered.inlet_labels[i].iter().enumerate() {
            if let Some(addr) = asm.try_addr(*l) {
                syms.push((addr, format!("{}.in{}", cb.name, j)));
                cb_start = cb_start.min(addr);
            }
        }
        if cb_start != u32::MAX {
            cb_code.push((cb_start, i as u32));
        }
    }
    // Codeblocks are lowered in index order, so start addresses ascend
    // and `cb_code` can be binary-searched by any contained address.
    debug_assert!(cb_code.windows(2).all(|w| w[0].0 < w[1].0));
    let symbols = SymbolTable::new(syms);

    asm.finish(&mut img);

    // Pre-decode once, after all label fixups are patched in.
    let decoded = opts.predecode.then(|| DecodedImage::decode(&img));

    // Allocator bumps and initial arrays.
    seed.push((globals.frame_bump, Word::from_addr(cfg.map.frame_base)));
    seed.push((globals.heap_bump, Word::from_addr(heap_bump_init)));
    let mut desc_ptr_seed: Vec<(u32, Word)> = globals
        .desc_addr
        .iter()
        .enumerate()
        .map(|(i, a)| (globals.desc_ptrs + 4 * i as u32, Word::from_addr(*a)))
        .collect();
    seed.append(&mut desc_ptr_seed);
    for (a, base) in program.arrays.iter().zip(&array_bases) {
        for (j, cell) in a.cells.iter().enumerate() {
            let addr = base + (j as u32) * 8;
            if let Some(v) = cell {
                seed.push((addr, Word::from_i64(1)));
                seed.push((addr + 4, resolve_value(v, &array_bases)));
            }
            // Empty cells stay zero (memory default).
        }
    }

    // Boot: allocate main's frame; replies go to the done handler.
    let mut boot = vec![
        Word::from_addr(falloc_addr),
        Word::from_i64(program.main.0 as i64),
        Word::from_i64(program.main_args.len() as i64),
        Word::from_i64(0), // parent frame (none)
        Word::from_addr(done_addr),
    ];
    boot.extend(
        program
            .main_args
            .iter()
            .map(|v| resolve_value(v, &array_bases)),
    );

    Linked {
        code: img,
        decoded,
        boot,
        seed,
        array_bases,
        array_lens: program.arrays.iter().map(|a| a.len()).collect(),
        result_addr: globals.result,
        result_arity,
        cfg,
        start_low,
        symbols,
        net: NetInfo {
            falloc_addr,
            ffree_addr,
            q_head: globals.q_head,
            q_tail: globals.q_tail,
            frame_bump: globals.frame_bump,
            heap_bump: globals.heap_bump,
            heap_bump_init,
            freelist_base: globals.freelist_base,
            desc_ptrs: globals.desc_ptrs,
            done_addr,
        },
        cb_code,
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which implementation ran.
    pub implementation: Implementation,
    /// Machine counters (`stats.instructions` is the base cycle count).
    pub stats: RunStats,
    /// Total instructions executed.
    pub instructions: u64,
    /// The words `main` returned.
    pub result: Vec<Word>,
    /// Region/kind access counts (Section 3.1).
    pub counts: AccessCounts,
    /// Granularity statistics (Table 2).
    pub granularity: Granularity,
    /// Final contents of the initial arrays (program verification).
    pub arrays: Vec<Vec<Option<Word>>>,
    /// Queue capacities the run used (auto-sized on overflow).
    pub queue_words: [u32; 2],
    /// Data accesses absorbed by the queue SRAM (0 when the bypass is
    /// disabled).
    pub queue_accesses: u64,
}

/// Hooks combining access counting, granularity tracking, and an
/// arbitrary trace sink (e.g. a cache bank).
///
/// When `queue_bypass` is set, data accesses to the hardware message
/// queues are counted but not forwarded to the sink: on the J-Machine
/// "messages are buffered directly into the top level of the memory
/// hierarchy" (dedicated on-chip queue SRAM), so queue words do not
/// contend for cache lines. Disabling the bypass models a CM-5-style
/// network interface attached below the cache (the paper's footnote
/// contrast) and is exercised by the ablation bench.
struct DriverHooks<'a, S: TraceSink + MarkSink> {
    counts: CountingSink,
    gran: Granularity,
    extra: &'a mut S,
    queue_bypass: Option<(u32, u32)>,
    queue_accesses: u64,
}

impl<S: TraceSink + MarkSink> Hooks for DriverHooks<'_, S> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.counts.access(access);
        if let Some((lo, hi)) = self.queue_bypass {
            if access.kind != tamsim_trace::AccessKind::Fetch && (lo..hi).contains(&access.addr) {
                self.queue_accesses += 1;
                return;
            }
        }
        self.extra.access(access);
    }

    #[inline]
    fn instruction(&mut self, pri: Priority, pc: u32) {
        self.gran.instruction(pri, pc);
        self.extra.instruction(pri, pc);
    }

    // Bulk path for the decoded interpreter's straight-line batches. The
    // per-consumer streams stay identical to the per-event expansion:
    // fetches carry no data accesses to order against (those flush the
    // batch first), the granularity segment cannot change inside a batch
    // (marks break batches), and the sink's TraceSink/MarkSink channels
    // are independent streams, so delivering the batch's fetches and
    // ticks grouped rather than interleaved is unobservable.
    #[inline]
    fn fetch_run(&mut self, pri: Priority, start_pc: u32, n: u32) {
        self.counts.fetch_run(start_pc, n);
        self.gran.fetch_run(pri, start_pc, n);
        self.extra.fetch_run(start_pc, n);
        self.extra.instruction_run(pri, start_pc, n);
    }

    #[inline]
    fn queue_sample(&mut self, used_words: [u32; 2]) {
        self.extra.queue_sample(used_words);
    }

    #[inline]
    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        Hooks::mark(&mut self.gran, mark, frame, pri);
        self.extra.mark(mark, frame, pri);
    }
}

/// High-level experiment driver: one implementation + options, reusable
/// across programs.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// The back-end to lower to.
    pub implementation: Implementation,
    /// Lowering optimization switches.
    pub opts: LoweringOptions,
    /// Instruction budget per run.
    pub fuel: u64,
    /// Initial queue capacities (words); doubled automatically on
    /// overflow, with the final values reported in the result.
    pub queue_words: [u32; 2],
    /// Whether queue memory bypasses the data cache. Off by default:
    /// the paper's analysis charges message buffering to the memory
    /// system ("even under software control, cache space and memory
    /// bandwidth is required to buffer most arriving data"). Enabling it
    /// models the J-Machine's dedicated on-chip queue SRAM instead — an
    /// ablation that mostly erases the AM implementation's high-penalty
    /// advantage (see EXPERIMENTS.md).
    pub queue_bypass: bool,
}

impl Experiment {
    /// An experiment with the paper's defaults (4 KB queues, all MD
    /// optimizations on).
    pub fn new(implementation: Implementation) -> Self {
        Experiment {
            implementation,
            opts: LoweringOptions::default(),
            fuel: 2_000_000_000,
            queue_words: [1024, 1024],
            queue_bypass: false,
        }
    }

    /// Override the lowering options.
    pub fn with_opts(mut self, opts: LoweringOptions) -> Self {
        self.opts = opts;
        self
    }

    fn config(&self, queue_words: [u32; 2]) -> MachineConfig {
        MachineConfig {
            queue_words,
            fuel: self.fuel,
            ..MachineConfig::default()
        }
    }

    /// Link `program` at the experiment's current queue sizes.
    pub fn link(&self, program: &Program) -> Linked {
        link(
            program,
            self.implementation,
            self.opts,
            self.config(self.queue_words),
        )
    }

    /// Run `program` with no extra sink.
    pub fn run(&self, program: &Program) -> RunResult {
        self.run_with_sink(program, &mut NullSink)
    }

    /// Run `program`, also streaming the trace into `sink` (typically a
    /// [`tamsim_cache::CacheBank`]). On queue overflow the run restarts
    /// with doubled queues, re-linking so addresses stay consistent, and
    /// `sink` is only fed by the final successful run (the caller's sink
    /// must be fresh; overflow is detected with a cheap probe first).
    ///
    /// This is the legacy streaming path: it costs an extra untraced
    /// machine run even when the initial queues fit. Prefer
    /// [`Experiment::run_recorded`] unless the consumer genuinely needs a
    /// live sink (e.g. an ablation observing events as they happen).
    ///
    /// The sink receives the *complete* observation stream — accesses,
    /// instruction ticks, queue samples, and marks. Access-only sinks use
    /// the default no-op [`MarkSink`] methods and cost nothing extra.
    pub fn run_with_sink<S: TraceSink + MarkSink>(
        &self,
        program: &Program,
        sink: &mut S,
    ) -> RunResult {
        // Probe with untraced runs until the queues fit.
        let mut queue_words = self.queue_words;
        let linked = loop {
            let linked = link(
                program,
                self.implementation,
                self.opts,
                self.config(queue_words),
            );
            match linked.run(&mut tamsim_mdp::NoHooks) {
                Ok(_) => break linked,
                Err(RunError::QueueOverflow { pri }) => {
                    let i = pri.index();
                    assert!(
                        queue_words[i] < 1 << 22,
                        "queue demand implausibly large; runaway program?"
                    );
                    queue_words[i] *= 2;
                }
                Err(e) => panic!(
                    "program {} failed under {:?}: {e}",
                    program.name, self.implementation
                ),
            }
        };

        let sys = linked.cfg.sys_layout();
        let mut hooks = DriverHooks {
            counts: CountingSink::new(linked.cfg.map),
            gran: Granularity::new(),
            extra: sink,
            queue_bypass: self
                .queue_bypass
                .then_some((sys.low_queue_base, sys.globals_base)),
            queue_accesses: 0,
        };
        let (stats, machine) = linked
            .run(&mut hooks)
            .expect("probed run failed on the traced pass");
        let queue_accesses = hooks.queue_accesses;
        RunResult {
            implementation: self.implementation,
            instructions: stats.instructions,
            result: linked.read_result(&machine),
            arrays: linked.read_arrays(&machine),
            counts: hooks.counts.counts,
            granularity: hooks.gran,
            stats,
            queue_words,
            queue_accesses,
        }
    }

    /// Run `program` once, recording its access trace into a [`TraceLog`]
    /// for later (parallel) replay.
    ///
    /// Unlike [`Experiment::run_with_sink`], recording happens *during*
    /// the queue-sizing attempt loop: when the initial queues fit — the
    /// common case — the machine runs exactly once instead of
    /// probe-then-trace twice. On overflow the partial log is discarded
    /// and the attempt repeats with that queue doubled.
    pub fn run_recorded(&self, program: &Program) -> RecordedRun {
        self.run_recorded_observed(program, |_| {})
    }

    /// [`Experiment::run_recorded`] with an observer: `on_machine_run` is
    /// invoked with the 0-based attempt number immediately before each
    /// machine run, letting tests assert how many simulations a sweep
    /// actually cost.
    pub fn run_recorded_observed(
        &self,
        program: &Program,
        mut on_machine_run: impl FnMut(u32),
    ) -> RecordedRun {
        let mut queue_words = self.queue_words;
        let mut log = TraceLog::new();
        let mut attempt = 0u32;
        loop {
            let linked = link(
                program,
                self.implementation,
                self.opts,
                self.config(queue_words),
            );
            let sys = linked.cfg.sys_layout();
            let mut hooks = DriverHooks {
                counts: CountingSink::new(linked.cfg.map),
                gran: Granularity::new(),
                extra: &mut log,
                queue_bypass: self
                    .queue_bypass
                    .then_some((sys.low_queue_base, sys.globals_base)),
                queue_accesses: 0,
            };
            on_machine_run(attempt);
            attempt += 1;
            match linked.run(&mut hooks) {
                Ok((stats, machine)) => {
                    let run = RunResult {
                        implementation: self.implementation,
                        instructions: stats.instructions,
                        result: linked.read_result(&machine),
                        arrays: linked.read_arrays(&machine),
                        counts: hooks.counts.counts,
                        granularity: hooks.gran,
                        stats,
                        queue_words,
                        queue_accesses: hooks.queue_accesses,
                    };
                    return RecordedRun { run, log };
                }
                Err(RunError::QueueOverflow { pri }) => {
                    let i = pri.index();
                    assert!(
                        queue_words[i] < 1 << 22,
                        "queue demand implausibly large; runaway program?"
                    );
                    queue_words[i] *= 2;
                    log.clear();
                }
                Err(e) => panic!(
                    "program {} failed under {:?}: {e}",
                    program.name, self.implementation
                ),
            }
        }
    }

    /// Run `program` with the profiler attached.
    ///
    /// This is [`Experiment::run_with_sink`] with a
    /// [`tamsim_obs::ProfileHooks`] sink — the machine takes exactly the
    /// same path as an unprofiled [`Experiment::run`], so cycle counts,
    /// results, and all statistics are identical by construction (the
    /// differential tests assert this).
    pub fn run_profiled(&self, program: &Program) -> ProfiledRun {
        let mut hooks = ProfileHooks::new();
        let run = self.run_with_sink(program, &mut hooks);
        // Re-link at the final (possibly auto-doubled) queue sizes to
        // recover the symbol table of the image that actually ran.
        let linked = link(
            program,
            self.implementation,
            self.opts,
            self.config(run.queue_words),
        );
        ProfiledRun {
            raw: hooks.finish(),
            symbols: linked.symbols,
            map: linked.cfg.map,
            codeblock_names: program
                .codeblocks
                .iter()
                .map(|cb| cb.name.clone())
                .collect(),
            program: program.name.clone(),
            run,
        }
    }
}

/// A completed run together with the profiler's raw capture and the
/// layout context needed to analyze it.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// Everything [`Experiment::run`] would have measured — identical to
    /// an unprofiled run.
    pub run: RunResult,
    /// The raw capture (marks, cycle counters, fetch histogram).
    pub raw: RawProfile,
    /// Symbol table of the image that ran.
    pub symbols: SymbolTable,
    /// Memory map of the image that ran.
    pub map: MemoryMap,
    /// Codeblock display names, indexed by codeblock id.
    pub codeblock_names: Vec<String>,
    /// Program name.
    pub program: String,
}

impl ProfiledRun {
    /// Analyze the capture into a full [`Profile`] (timeline, quantum
    /// statistics, hotspots).
    pub fn profile(&self) -> Result<Profile, ObsError> {
        let names: Vec<&str> = self.codeblock_names.iter().map(|s| s.as_str()).collect();
        Profile::build(
            ProfileMeta {
                program: self.program.clone(),
                implementation: self.run.implementation.label().to_string(),
            },
            &self.raw,
            &self.symbols,
            &self.map,
            &names,
        )
    }
}

/// A completed run together with the access trace it recorded.
///
/// Produced by [`Experiment::run_recorded`]; the log replays into any
/// number of cache configurations via
/// `tamsim_cache::CacheBank::replay_parallel`.
#[derive(Debug, Clone)]
pub struct RecordedRun {
    /// Everything [`Experiment::run_with_sink`] would have measured.
    pub run: RunResult,
    /// The recorded access stream (queue-bypassed accesses excluded, as
    /// in the streaming path).
    pub log: TraceLog,
}
