//! Frame layouts, OS-globals map, and codeblock descriptors.
//!
//! The two implementations use different frame layouts: the AM frame
//! embeds its remote continuation vector (RCV) — the per-frame list of
//! ready threads that becomes the LCV when the frame is activated — while
//! the MD frame has none ("inlets contain branches directly to threads,
//! eliminating the need for storing pointers to ready threads in the
//! frame"). Both reserve a link word (frame queue / free list), the parent
//! frame pointer, the caller's reply-inlet address, and one word per
//! synchronizing thread's entry count.

use tamsim_mdp::{SysLayout, Word};
use tamsim_tam::{Codeblock, Program, SlotId, ThreadId};

/// Fixed frame header offsets shared by the runtime library.
pub mod frame {
    /// Byte offset of the link word (AM frame queue; free list when dead).
    pub const LINK_OFF: u32 = 0;
    /// AM only: byte offset of the RCV top index.
    pub const RCV_TOP_OFF: u32 = 4;
    /// AM only: byte offset of the first RCV entry.
    pub const RCV_BASE_OFF: u32 = 8;
}

/// Per-codeblock frame layout for one implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameLayout {
    /// RCV capacity in entries (0 for MD).
    pub rcv_cap: u32,
    /// Byte offset of the parent frame pointer.
    pub parent_off: u32,
    /// Byte offset of the caller's reply-inlet address.
    pub reply_off: u32,
    /// Byte offset of each synchronizing thread's entry-count slot
    /// (`None` for non-synchronizing threads).
    pub count_off: Vec<Option<u32>>,
    /// Byte offset of user slot 0.
    pub user_off: u32,
    /// Total frame size in words.
    pub frame_words: u32,
}

impl FrameLayout {
    /// Compute the layout of `cb` for the AM (`is_am`) or MD back-end.
    pub fn of(cb: &Codeblock, is_am: bool) -> Self {
        let rcv_cap = if is_am {
            2 * cb.threads.len() as u32 + 8
        } else {
            0
        };
        // AM: link, rcv_top, rcv entries, parent, reply, counts, slots.
        // MD: link, parent, reply, counts, slots.
        let parent_off = if is_am {
            frame::RCV_BASE_OFF + rcv_cap * 4
        } else {
            4
        };
        let reply_off = parent_off + 4;
        let mut next = reply_off + 4;
        let mut count_off = Vec::with_capacity(cb.threads.len());
        for t in &cb.threads {
            if t.is_synchronizing() {
                count_off.push(Some(next));
                next += 4;
            } else {
                count_off.push(None);
            }
        }
        let user_off = next;
        let frame_words = user_off / 4 + cb.n_slots as u32;
        FrameLayout {
            rcv_cap,
            parent_off,
            reply_off,
            count_off,
            user_off,
            frame_words,
        }
    }

    /// Byte offset of a user slot.
    #[inline]
    pub fn slot_off(&self, slot: SlotId) -> u32 {
        self.user_off + slot.0 as u32 * 4
    }

    /// Byte offset of a synchronizing thread's entry-count slot.
    ///
    /// # Panics
    /// Panics for non-synchronizing threads (they have no count slot).
    #[inline]
    pub fn count_off(&self, t: ThreadId) -> u32 {
        self.count_off[t.0 as usize].expect("count slot of non-synchronizing thread")
    }

    /// The `(offset, initial value)` pairs the frame allocator initializes.
    pub fn count_inits(&self, cb: &Codeblock) -> Vec<(u32, u32)> {
        cb.threads
            .iter()
            .zip(&self.count_off)
            .filter_map(|(t, off)| off.map(|o| (o, t.entry_count)))
            .collect()
    }
}

/// Number of result words reserved in the globals area.
pub const RESULT_WORDS: u32 = 8;

/// Words reserved for the MD global LCV.
pub const LCV_WORDS: u32 = 16 * 1024;

/// Addresses of every OS-global structure, derived from the machine's
/// [`SysLayout`] and the program shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalsMap {
    /// AM frame-queue head.
    pub q_head: u32,
    /// AM frame-queue tail.
    pub q_tail: u32,
    /// Frame-region bump pointer.
    pub frame_bump: u32,
    /// Heap bump pointer.
    pub heap_bump: u32,
    /// I-structure deferred-node free list head.
    pub defer_free: u32,
    /// Base of the program-result words.
    pub result: u32,
    /// Base of the per-codeblock frame free lists (`+ cb*4`).
    pub freelist_base: u32,
    /// Base of the per-codeblock descriptor-pointer table (`+ cb*4`).
    pub desc_ptrs: u32,
    /// Address of each codeblock's descriptor blob.
    pub desc_addr: Vec<u32>,
    /// Base of the MD global LCV.
    pub lcv_base: u32,
    /// One past the last globals address.
    pub end: u32,
}

impl GlobalsMap {
    /// Lay out the globals for `program` with the given frame layouts.
    ///
    /// # Panics
    /// Panics if the globals would overflow the system-data region.
    pub fn new(sys: &SysLayout, program: &Program, layouts: &[FrameLayout]) -> Self {
        let g = sys.globals_base;
        let n_cbs = program.codeblocks.len() as u32;
        let q_head = g;
        let q_tail = g + 4;
        let frame_bump = g + 8;
        let heap_bump = g + 12;
        let defer_free = g + 16;
        let result = g + 20;
        let freelist_base = result + RESULT_WORDS * 4;
        let desc_ptrs = freelist_base + n_cbs * 4;
        let mut next = desc_ptrs + n_cbs * 4;
        let mut desc_addr = Vec::with_capacity(n_cbs as usize);
        for (cb, layout) in program.codeblocks.iter().zip(layouts) {
            desc_addr.push(next);
            next += descriptor_words(cb, layout) * 4;
        }
        let lcv_base = next;
        let end = lcv_base + LCV_WORDS * 4;
        GlobalsMap {
            q_head,
            q_tail,
            frame_bump,
            heap_bump,
            defer_free,
            result,
            freelist_base,
            desc_ptrs,
            desc_addr,
            lcv_base,
            end,
        }
    }
}

/// Descriptor size in words: header (frame words, parent offset, count
/// count) + one pair per synchronizing thread + one word per inlet.
fn descriptor_words(cb: &Codeblock, layout: &FrameLayout) -> u32 {
    3 + 2 * layout.count_off.iter().flatten().count() as u32 + cb.inlets.len() as u32
}

/// Build the descriptor seed words for one codeblock.
///
/// Layout (word offsets from the descriptor base):
/// `+0` frame words; `+1` parent byte-offset; `+2` number of counts;
/// then `(count byte-offset, initial value)` pairs; then the code address
/// of every inlet (argument inlet *i* at pair-table end + *i*).
pub fn descriptor_seed(
    addr: u32,
    cb: &Codeblock,
    layout: &FrameLayout,
    inlet_addrs: &[u32],
) -> Vec<(u32, Word)> {
    assert_eq!(inlet_addrs.len(), cb.inlets.len());
    let mut words: Vec<Word> = vec![
        Word::from_i64(layout.frame_words as i64),
        Word::from_i64(layout.parent_off as i64),
    ];
    let inits = layout.count_inits(cb);
    words.push(Word::from_i64(inits.len() as i64));
    for (off, val) in inits {
        words.push(Word::from_i64(off as i64));
        words.push(Word::from_i64(val as i64));
    }
    words.extend(inlet_addrs.iter().map(|a| Word::from_addr(*a)));
    words
        .into_iter()
        .enumerate()
        .map(|(i, w)| (addr + 4 * i as u32, w))
        .collect()
}

/// Word offset (from the descriptor base) of the inlet-address table.
pub fn descriptor_inlets_off(n_counts: u32) -> u32 {
    (3 + 2 * n_counts) * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamsim_mdp::MachineConfig;
    use tamsim_tam::{CodeblockId, Inlet, Thread, Value};

    fn cb(sync_counts: &[u32], n_slots: u16, n_inlets: usize) -> Codeblock {
        Codeblock {
            name: "t".into(),
            n_slots,
            threads: sync_counts
                .iter()
                .map(|&c| Thread::new(c, vec![]))
                .collect(),
            inlets: vec![Inlet::default(); n_inlets],
        }
    }

    #[test]
    fn md_layout_is_compact() {
        let c = cb(&[1, 3, 1, 2], 5, 2);
        let l = FrameLayout::of(&c, false);
        assert_eq!(l.rcv_cap, 0);
        assert_eq!(l.parent_off, 4);
        assert_eq!(l.reply_off, 8);
        assert_eq!(l.count_off, vec![None, Some(12), None, Some(16)]);
        assert_eq!(l.user_off, 20);
        // link + parent + reply + 2 counts + 5 slots = 10 words.
        assert_eq!(l.frame_words, 10);
        assert_eq!(l.slot_off(SlotId(2)), 28);
    }

    #[test]
    fn am_layout_embeds_rcv() {
        let c = cb(&[1, 3], 2, 1);
        let l = FrameLayout::of(&c, true);
        assert_eq!(l.rcv_cap, 2 * 2 + 8);
        assert_eq!(l.parent_off, 8 + l.rcv_cap * 4);
        assert_eq!(l.reply_off, l.parent_off + 4);
        assert_eq!(l.count_off[1], Some(l.reply_off + 4));
        // words: 2 (link, top) + 12 rcv + 2 + 1 count + 2 slots = 19.
        assert_eq!(l.frame_words, 19);
    }

    #[test]
    fn am_frames_are_larger_than_md_frames() {
        let c = cb(&[1, 2, 1], 4, 2);
        assert!(FrameLayout::of(&c, true).frame_words > FrameLayout::of(&c, false).frame_words);
    }

    #[test]
    fn count_inits_pairs() {
        let c = cb(&[1, 3, 2], 0, 0);
        let l = FrameLayout::of(&c, false);
        assert_eq!(l.count_inits(&c), vec![(12, 3), (16, 2)]);
    }

    #[test]
    fn globals_map_is_contiguous_and_in_region() {
        let c = cb(&[1, 2], 3, 2);
        let program = Program {
            name: "p".into(),
            codeblocks: vec![c.clone(), c],
            main: CodeblockId(0),
            main_args: vec![Value::Int(0)],
            arrays: vec![],
        };
        let layouts: Vec<_> = program
            .codeblocks
            .iter()
            .map(|c| FrameLayout::of(c, false))
            .collect();
        let cfg = MachineConfig::default();
        let sys = cfg.sys_layout();
        let g = GlobalsMap::new(&sys, &program, &layouts);
        assert!(g.q_head >= sys.globals_base);
        assert!(g.freelist_base > g.result);
        assert_eq!(g.desc_ptrs, g.freelist_base + 8);
        assert_eq!(g.desc_addr.len(), 2);
        assert!(g.desc_addr[1] > g.desc_addr[0]);
        assert!(g.lcv_base > g.desc_addr[1]);
        assert!(g.end < cfg.map.frame_base, "globals fit in system data");
    }

    #[test]
    fn descriptor_seed_encoding() {
        let c = cb(&[1, 4], 1, 2);
        let l = FrameLayout::of(&c, false);
        let seed = descriptor_seed(0x1000, &c, &l, &[0x100040, 0x100080]);
        // frame_words, parent_off, n_counts=1, (off,4), inlet0, inlet1.
        assert_eq!(seed.len(), 7);
        assert_eq!(seed[0], (0x1000, Word::from_i64(l.frame_words as i64)));
        assert_eq!(seed[2].1.as_i64(), 1);
        assert_eq!(seed[3].1.as_i64(), 12); // count offset
        assert_eq!(seed[4].1.as_i64(), 4); // init value
        assert_eq!(seed[5].1.as_addr(), 0x100040);
        assert_eq!(descriptor_inlets_off(1), 20);
        assert_eq!(seed[5].0, 0x1000 + 20);
    }
}
