//! Runtime system routines, generated into system code per implementation.
//!
//! "The only code that runs at high priority [in the MD implementation] is
//! that to service system calls, such as allocating frames or accessing
//! global data structures" (§2.2); in the AM implementation the same
//! handlers run at high priority alongside the user inlets. The AM
//! implementation additionally carries the post library ("the calls to
//! library routines to post threads and manage the queue of inactive
//! frames", §3.1) and the frame scheduler (swap routine).

use crate::asm::{Asm, Label, Part, Stream};
use crate::layout::{frame, GlobalsMap};
use crate::opts::Implementation;
use tamsim_mdp::{AluOp, CodeImage, MOp, Mark, Operand, Priority, Reg, Word};

/// Labels of every generated system routine.
#[derive(Debug, Clone, Copy)]
pub struct SysAddrs {
    /// Frame-allocation handler (high priority).
    pub falloc: Label,
    /// Frame-free handler (high priority).
    pub ffree: Label,
    /// I-structure fetch handler (high priority).
    pub ifetch: Label,
    /// I-structure store handler (high priority).
    pub istore: Label,
    /// Heap-allocation library routine (called at low priority).
    pub halloc: Label,
    /// Program-completion inlet (stores results, halts).
    pub done: Label,
    /// AM: the post library routine called from inlets.
    pub post_lib: Option<Label>,
    /// AM: scheduler entry that first cleans up the finished frame.
    pub swap_clean: Option<Label>,
    /// AM: scheduler entry for boot / after a frame was freed.
    pub swap_fresh: Option<Label>,
    /// AM: the shared LCV-pop routine threads branch to at `stop`.
    pub am_pop: Option<Label>,
    /// MD: the shared LCV-pop / suspend routine.
    pub md_pop: Option<Label>,
    /// MD: boot stub initializing the LCV register.
    pub md_boot: Option<Label>,
    /// Where the low-priority context starts at boot.
    pub start_low: Label,
}

const S: Stream = Stream::Sys;

/// The MD implementation's LCV-top register (see `tamsim_tam::ids::VReg`).
pub const LCV_REG: Reg = Reg(11);

fn alu(op: AluOp, d: Reg, a: Reg, b: Operand) -> MOp {
    MOp::Alu { op, d, a, b }
}

/// Generate all system routines for `impl_`; returns their labels.
pub fn gen_sys(
    img: &mut CodeImage,
    asm: &mut Asm,
    impl_: Implementation,
    g: &GlobalsMap,
    result_arity: usize,
) -> SysAddrs {
    let inlet_pri = if impl_.is_am() {
        Priority::High
    } else {
        Priority::Low
    };
    let enabled_variant = impl_ == Implementation::AmEnabled;

    // Pre-create labels that are referenced across routines.
    let falloc = asm.label();
    let ffree = asm.label();
    let ifetch = asm.label();
    let istore = asm.label();
    let halloc = asm.label();
    let done = asm.label();
    let (post_lib, swap_clean, swap_fresh, am_pop, md_pop, md_boot);
    if impl_.is_am() {
        post_lib = Some(asm.label());
        swap_clean = Some(asm.label());
        swap_fresh = Some(asm.label());
        am_pop = Some(asm.label());
        md_pop = None;
        md_boot = None;
    } else {
        post_lib = None;
        swap_clean = None;
        swap_fresh = None;
        am_pop = None;
        md_pop = Some(asm.label());
        md_boot = Some(asm.label());
    }

    // ---- falloc: allocate and initialize a frame, deliver arguments ----
    // Message: [falloc, cb, argc, parent, reply, arg0..].
    asm.bind(img, S, falloc);
    asm.op(img, S, MOp::Mark(Mark::SysStart));
    asm.op(img, S, MOp::LdMsg { d: Reg(0), idx: 1 }); // cb index
                                                      // r1 = descriptor address.
    asm.op(img, S, alu(AluOp::Shl, Reg(1), Reg(0), Operand::Imm(2)));
    asm.op(
        img,
        S,
        MOp::MovI {
            d: Reg(2),
            v: Word::from_addr(g.desc_ptrs),
        },
    );
    asm.op(
        img,
        S,
        alu(AluOp::Add, Reg(1), Reg(1), Operand::Reg(Reg(2))),
    );
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(1),
            base: Reg(1),
            off: 0,
        },
    );
    // r2 = &freelist[cb].
    asm.op(img, S, alu(AluOp::Shl, Reg(2), Reg(0), Operand::Imm(2)));
    asm.op(
        img,
        S,
        MOp::MovI {
            d: Reg(4),
            v: Word::from_addr(g.freelist_base),
        },
    );
    asm.op(
        img,
        S,
        alu(AluOp::Add, Reg(2), Reg(2), Operand::Reg(Reg(4))),
    );
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(3),
            base: Reg(2),
            off: 0,
        },
    );
    let l_reuse = asm.label();
    let l_have = asm.label();
    asm.bnz(img, S, Reg(3), l_reuse);
    // Bump allocation: r3 = frame, advance FRAME_BUMP by frame words.
    asm.op(
        img,
        S,
        MOp::LdA {
            d: Reg(3),
            addr: g.frame_bump,
        },
    );
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(4),
            base: Reg(1),
            off: 0,
        },
    );
    asm.op(img, S, alu(AluOp::Shl, Reg(4), Reg(4), Operand::Imm(2)));
    asm.op(
        img,
        S,
        alu(AluOp::Add, Reg(4), Reg(4), Operand::Reg(Reg(3))),
    );
    asm.op(
        img,
        S,
        MOp::StA {
            s: Reg(4),
            addr: g.frame_bump,
        },
    );
    asm.br(img, S, l_have);
    // Free-list reuse: pop the head.
    asm.bind(img, S, l_reuse);
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(4),
            base: Reg(3),
            off: 0,
        },
    );
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(4),
            base: Reg(2),
            off: 0,
        },
    );
    asm.bind(img, S, l_have);
    if impl_.is_am() {
        // AM header: idle link, RCV top = 1, RCV[0] = swap_clean seed
        // ("the last item in the LCV is the address of the system code to
        // swap in a new frame").
        asm.op(
            img,
            S,
            MOp::MovI {
                d: Reg(5),
                v: Word::from_i64(0),
            },
        );
        asm.op(
            img,
            S,
            MOp::St {
                s: Reg(5),
                base: Reg(3),
                off: frame::LINK_OFF as i32,
            },
        );
        asm.op(
            img,
            S,
            MOp::MovI {
                d: Reg(5),
                v: Word::from_i64(1),
            },
        );
        asm.op(
            img,
            S,
            MOp::St {
                s: Reg(5),
                base: Reg(3),
                off: frame::RCV_TOP_OFF as i32,
            },
        );
        asm.movi_label(img, S, Reg(5), swap_clean.unwrap());
        asm.op(
            img,
            S,
            MOp::St {
                s: Reg(5),
                base: Reg(3),
                off: frame::RCV_BASE_OFF as i32,
            },
        );
    }
    // Parent and reply at desc[1].
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(6),
            base: Reg(1),
            off: 4,
        },
    );
    asm.op(
        img,
        S,
        alu(AluOp::Add, Reg(6), Reg(6), Operand::Reg(Reg(3))),
    );
    asm.op(img, S, MOp::LdMsg { d: Reg(7), idx: 3 });
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(7),
            base: Reg(6),
            off: 0,
        },
    );
    asm.op(img, S, MOp::LdMsg { d: Reg(7), idx: 4 });
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(7),
            base: Reg(6),
            off: 4,
        },
    );
    // Initialize entry counts from the descriptor pair table.
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(5),
            base: Reg(1),
            off: 8,
        },
    );
    asm.op(img, S, alu(AluOp::Add, Reg(6), Reg(1), Operand::Imm(12)));
    let l_cnt = asm.label();
    let l_args = asm.label();
    asm.bind(img, S, l_cnt);
    asm.bz(img, S, Reg(5), l_args);
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(7),
            base: Reg(6),
            off: 0,
        },
    );
    asm.op(
        img,
        S,
        alu(AluOp::Add, Reg(7), Reg(7), Operand::Reg(Reg(3))),
    );
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(8),
            base: Reg(6),
            off: 4,
        },
    );
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(8),
            base: Reg(7),
            off: 0,
        },
    );
    asm.op(img, S, alu(AluOp::Add, Reg(6), Reg(6), Operand::Imm(8)));
    asm.op(img, S, alu(AluOp::Sub, Reg(5), Reg(5), Operand::Imm(1)));
    asm.br(img, S, l_cnt);
    // Deliver each argument to the corresponding inlet (r6 now points at
    // the descriptor's inlet-address table).
    asm.bind(img, S, l_args);
    asm.op(img, S, MOp::LdMsg { d: Reg(5), idx: 2 }); // argc
    asm.op(
        img,
        S,
        MOp::MovI {
            d: Reg(7),
            v: Word::from_i64(5),
        },
    ); // msg index
    let l_arg = asm.label();
    let l_fin = asm.label();
    asm.bind(img, S, l_arg);
    asm.bz(img, S, Reg(5), l_fin);
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(8),
            base: Reg(6),
            off: 0,
        },
    );
    asm.op(
        img,
        S,
        MOp::LdMsgIdx {
            d: Reg(9),
            idx: Reg(7),
        },
    );
    asm.send_parts(
        img,
        S,
        inlet_pri,
        vec![Part::reg(Reg(8)), Part::reg(Reg(3)), Part::reg(Reg(9))],
    );
    asm.op(img, S, alu(AluOp::Add, Reg(6), Reg(6), Operand::Imm(4)));
    asm.op(img, S, alu(AluOp::Add, Reg(7), Reg(7), Operand::Imm(1)));
    asm.op(img, S, alu(AluOp::Sub, Reg(5), Reg(5), Operand::Imm(1)));
    asm.br(img, S, l_arg);
    asm.bind(img, S, l_fin);
    asm.op(img, S, MOp::Mark(Mark::SysEnd));
    asm.op(img, S, MOp::Suspend);

    // ---- ffree: push a dead frame onto its codeblock's free list ----
    // Message: [ffree, frame, cb].
    asm.bind(img, S, ffree);
    asm.op(img, S, MOp::Mark(Mark::SysStart));
    asm.op(img, S, MOp::LdMsg { d: Reg(0), idx: 1 });
    asm.op(img, S, MOp::LdMsg { d: Reg(1), idx: 2 });
    asm.op(img, S, alu(AluOp::Shl, Reg(1), Reg(1), Operand::Imm(2)));
    asm.op(
        img,
        S,
        MOp::MovI {
            d: Reg(2),
            v: Word::from_addr(g.freelist_base),
        },
    );
    asm.op(
        img,
        S,
        alu(AluOp::Add, Reg(1), Reg(1), Operand::Reg(Reg(2))),
    );
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(2),
            base: Reg(1),
            off: 0,
        },
    );
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(2),
            base: Reg(0),
            off: 0,
        },
    );
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(0),
            base: Reg(1),
            off: 0,
        },
    );
    asm.op(img, S, MOp::Mark(Mark::SysEnd));
    asm.op(img, S, MOp::Suspend);

    // ---- ifetch: split-phase I-structure read ----
    // Message: [ifetch, cell, frame, reply, tag]. Cell = [state, value];
    // state 0 = empty, 1 = present, else deferred-list head.
    asm.bind(img, S, ifetch);
    asm.op(img, S, MOp::Mark(Mark::SysStart));
    asm.op(img, S, MOp::LdMsg { d: Reg(0), idx: 1 });
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(1),
            base: Reg(0),
            off: 0,
        },
    );
    asm.op(img, S, alu(AluOp::Eq, Reg(2), Reg(1), Operand::Imm(1)));
    let l_present = asm.label();
    asm.bnz(img, S, Reg(2), l_present);
    // Deferred: allocate a 4-word node (free pool, else heap bump).
    asm.op(
        img,
        S,
        MOp::LdA {
            d: Reg(3),
            addr: g.defer_free,
        },
    );
    let l_pool = asm.label();
    let l_node = asm.label();
    asm.bnz(img, S, Reg(3), l_pool);
    asm.op(
        img,
        S,
        MOp::LdA {
            d: Reg(3),
            addr: g.heap_bump,
        },
    );
    asm.op(img, S, alu(AluOp::Add, Reg(4), Reg(3), Operand::Imm(16)));
    asm.op(
        img,
        S,
        MOp::StA {
            s: Reg(4),
            addr: g.heap_bump,
        },
    );
    asm.br(img, S, l_node);
    asm.bind(img, S, l_pool);
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(4),
            base: Reg(3),
            off: 0,
        },
    );
    asm.op(
        img,
        S,
        MOp::StA {
            s: Reg(4),
            addr: g.defer_free,
        },
    );
    asm.bind(img, S, l_node);
    // node = [next = old state, frame, reply, tag]; cell.state = node.
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(1),
            base: Reg(3),
            off: 0,
        },
    );
    asm.op(img, S, MOp::LdMsg { d: Reg(4), idx: 2 });
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(4),
            base: Reg(3),
            off: 4,
        },
    );
    asm.op(img, S, MOp::LdMsg { d: Reg(4), idx: 3 });
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(4),
            base: Reg(3),
            off: 8,
        },
    );
    asm.op(img, S, MOp::LdMsg { d: Reg(4), idx: 4 });
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(4),
            base: Reg(3),
            off: 12,
        },
    );
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(3),
            base: Reg(0),
            off: 0,
        },
    );
    asm.op(img, S, MOp::Mark(Mark::SysEnd));
    asm.op(img, S, MOp::Suspend);
    // Present: reply immediately ([reply, frame, value, tag]).
    asm.bind(img, S, l_present);
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(1),
            base: Reg(0),
            off: 4,
        },
    );
    asm.op(img, S, MOp::LdMsg { d: Reg(2), idx: 2 });
    asm.op(img, S, MOp::LdMsg { d: Reg(3), idx: 3 });
    asm.op(img, S, MOp::LdMsg { d: Reg(4), idx: 4 });
    asm.send_parts(
        img,
        S,
        inlet_pri,
        vec![
            Part::reg(Reg(3)),
            Part::reg(Reg(2)),
            Part::reg(Reg(1)),
            Part::reg(Reg(4)),
        ],
    );
    asm.op(img, S, MOp::Mark(Mark::SysEnd));
    asm.op(img, S, MOp::Suspend);

    // ---- istore: I-structure write; satisfy deferred readers ----
    // Message: [istore, cell, value].
    asm.bind(img, S, istore);
    asm.op(img, S, MOp::Mark(Mark::SysStart));
    asm.op(img, S, MOp::LdMsg { d: Reg(0), idx: 1 });
    asm.op(img, S, MOp::LdMsg { d: Reg(1), idx: 2 });
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(2),
            base: Reg(0),
            off: 0,
        },
    ); // old state
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(1),
            base: Reg(0),
            off: 4,
        },
    );
    asm.op(
        img,
        S,
        MOp::MovI {
            d: Reg(3),
            v: Word::from_i64(1),
        },
    );
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(3),
            base: Reg(0),
            off: 0,
        },
    );
    asm.op(img, S, alu(AluOp::Gt, Reg(3), Reg(2), Operand::Imm(1)));
    let l_walk = asm.label();
    let l_sdone = asm.label();
    asm.bz(img, S, Reg(3), l_sdone);
    asm.bind(img, S, l_walk);
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(4),
            base: Reg(2),
            off: 4,
        },
    ); // frame
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(5),
            base: Reg(2),
            off: 8,
        },
    ); // reply
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(6),
            base: Reg(2),
            off: 12,
        },
    ); // tag
    asm.send_parts(
        img,
        S,
        inlet_pri,
        vec![
            Part::reg(Reg(5)),
            Part::reg(Reg(4)),
            Part::reg(Reg(1)),
            Part::reg(Reg(6)),
        ],
    );
    // Free the node, advance.
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(7),
            base: Reg(2),
            off: 0,
        },
    );
    asm.op(
        img,
        S,
        MOp::LdA {
            d: Reg(8),
            addr: g.defer_free,
        },
    );
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(8),
            base: Reg(2),
            off: 0,
        },
    );
    asm.op(
        img,
        S,
        MOp::StA {
            s: Reg(2),
            addr: g.defer_free,
        },
    );
    asm.op(
        img,
        S,
        MOp::Mov {
            d: Reg(2),
            s: Reg(7),
        },
    );
    asm.op(img, S, alu(AluOp::Gt, Reg(3), Reg(2), Operand::Imm(1)));
    asm.bnz(img, S, Reg(3), l_walk);
    asm.bind(img, S, l_sdone);
    asm.op(img, S, MOp::Mark(Mark::SysEnd));
    asm.op(img, S, MOp::Suspend);

    // ---- halloc: bump-allocate heap (library call, low priority) ----
    // In: r12 = words; out: r12 = address; clobbers r13. The unenabled AM
    // variant calls this with interrupts already disabled; the others must
    // mask around the bump (I-structure handlers also touch HEAP_BUMP).
    asm.bind(img, S, halloc);
    let mask = enabled_variant || impl_ == Implementation::Md;
    if mask {
        asm.op(img, S, MOp::DisableInt);
    }
    asm.op(
        img,
        S,
        MOp::LdA {
            d: Reg(13),
            addr: g.heap_bump,
        },
    );
    asm.op(img, S, alu(AluOp::Shl, Reg(12), Reg(12), Operand::Imm(2)));
    asm.op(
        img,
        S,
        alu(AluOp::Add, Reg(12), Reg(12), Operand::Reg(Reg(13))),
    );
    asm.op(
        img,
        S,
        MOp::StA {
            s: Reg(12),
            addr: g.heap_bump,
        },
    );
    asm.op(
        img,
        S,
        MOp::Mov {
            d: Reg(12),
            s: Reg(13),
        },
    );
    if mask {
        asm.op(img, S, MOp::EnableInt);
    }
    asm.op(img, S, MOp::Ret);

    // ---- done: store program results, halt the machine ----
    // Message: [done, parent(=0), val0..val(arity-1)].
    asm.bind(img, S, done);
    for i in 0..result_arity {
        asm.op(
            img,
            S,
            MOp::LdMsg {
                d: Reg(0),
                idx: 2 + i as u8,
            },
        );
        asm.op(
            img,
            S,
            MOp::StA {
                s: Reg(0),
                addr: g.result + 4 * i as u32,
            },
        );
    }
    asm.op(img, S, MOp::Halt);

    if impl_.is_am() {
        gen_am_scheduler(
            img,
            asm,
            g,
            post_lib.unwrap(),
            swap_clean.unwrap(),
            swap_fresh.unwrap(),
            am_pop.unwrap(),
            enabled_variant,
        );
    } else {
        gen_md_dispatch(img, asm, g, md_pop.unwrap(), md_boot.unwrap());
    }

    let start_low = if impl_.is_am() {
        swap_fresh.unwrap()
    } else {
        md_boot.unwrap()
    };
    SysAddrs {
        falloc,
        ffree,
        ifetch,
        istore,
        halloc,
        done,
        post_lib,
        swap_clean,
        swap_fresh,
        am_pop,
        md_pop,
        md_boot,
        start_low,
    }
}

/// AM: post library, swap routine, and the shared LCV pop.
#[allow(clippy::too_many_arguments)]
fn gen_am_scheduler(
    img: &mut CodeImage,
    asm: &mut Asm,
    g: &GlobalsMap,
    post_lib: Label,
    swap_clean: Label,
    swap_fresh: Label,
    am_pop: Label,
    enabled_variant: bool,
) {
    let fp = Reg::FP;

    // ---- post_lib: append a ready thread to the frame's RCV and enqueue
    // the frame if idle. Called from inlets (high priority) with the
    // thread address in r12; clobbers r12/r13 only. ----
    asm.bind(img, S, post_lib);
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(13),
            base: fp,
            off: frame::RCV_TOP_OFF as i32,
        },
    );
    asm.op(img, S, alu(AluOp::Shl, Reg(13), Reg(13), Operand::Imm(2)));
    asm.op(img, S, alu(AluOp::Add, Reg(13), Reg(13), Operand::Reg(fp)));
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(12),
            base: Reg(13),
            off: frame::RCV_BASE_OFF as i32,
        },
    );
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(13),
            base: fp,
            off: frame::RCV_TOP_OFF as i32,
        },
    );
    asm.op(img, S, alu(AluOp::Add, Reg(13), Reg(13), Operand::Imm(1)));
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(13),
            base: fp,
            off: frame::RCV_TOP_OFF as i32,
        },
    );
    // Enqueue the frame into the global frame queue if idle.
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(13),
            base: fp,
            off: frame::LINK_OFF as i32,
        },
    );
    let l_done = asm.label();
    let l_empty = asm.label();
    asm.bnz(img, S, Reg(13), l_done);
    asm.op(
        img,
        S,
        MOp::MovI {
            d: Reg(13),
            v: Word::from_i64(1),
        },
    );
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(13),
            base: fp,
            off: frame::LINK_OFF as i32,
        },
    );
    asm.op(
        img,
        S,
        MOp::LdA {
            d: Reg(12),
            addr: g.q_tail,
        },
    );
    asm.bz(img, S, Reg(12), l_empty);
    asm.op(
        img,
        S,
        MOp::St {
            s: fp,
            base: Reg(12),
            off: frame::LINK_OFF as i32,
        },
    );
    asm.op(
        img,
        S,
        MOp::StA {
            s: fp,
            addr: g.q_tail,
        },
    );
    asm.op(img, S, MOp::Ret);
    asm.bind(img, S, l_empty);
    asm.op(
        img,
        S,
        MOp::StA {
            s: fp,
            addr: g.q_head,
        },
    );
    asm.op(
        img,
        S,
        MOp::StA {
            s: fp,
            addr: g.q_tail,
        },
    );
    asm.bind(img, S, l_done);
    asm.op(img, S, MOp::Ret);

    // ---- swap: activate the next ready frame ----
    // swap_clean: entered from the RCV seed at quantum end with FP = the
    // finished frame (interrupts disabled): reset its RCV and mark idle.
    asm.bind(img, S, swap_clean);
    asm.op(
        img,
        S,
        MOp::MovI {
            d: Reg(12),
            v: Word::from_i64(1),
        },
    );
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(12),
            base: fp,
            off: frame::RCV_TOP_OFF as i32,
        },
    );
    asm.op(
        img,
        S,
        MOp::MovI {
            d: Reg(12),
            v: Word::from_i64(0),
        },
    );
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(12),
            base: fp,
            off: frame::LINK_OFF as i32,
        },
    );
    // swap_fresh: entered at boot and after Return (frame already freed).
    asm.bind(img, S, swap_fresh);
    asm.op(img, S, MOp::DisableInt);
    asm.op(
        img,
        S,
        MOp::LdA {
            d: Reg(12),
            addr: g.q_head,
        },
    );
    let l_idle = asm.label();
    let l_mid = asm.label();
    let l_act = asm.label();
    asm.bz(img, S, Reg(12), l_idle);
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(13),
            base: Reg(12),
            off: frame::LINK_OFF as i32,
        },
    );
    asm.op(img, S, alu(AluOp::Eq, Reg(0), Reg(13), Operand::Imm(1)));
    asm.bz(img, S, Reg(0), l_mid);
    // Last frame in the queue: clear head and tail.
    asm.op(
        img,
        S,
        MOp::MovI {
            d: Reg(13),
            v: Word::from_i64(0),
        },
    );
    asm.op(
        img,
        S,
        MOp::StA {
            s: Reg(13),
            addr: g.q_head,
        },
    );
    asm.op(
        img,
        S,
        MOp::StA {
            s: Reg(13),
            addr: g.q_tail,
        },
    );
    asm.br(img, S, l_act);
    asm.bind(img, S, l_mid);
    asm.op(
        img,
        S,
        MOp::StA {
            s: Reg(13),
            addr: g.q_head,
        },
    );
    asm.bind(img, S, l_act);
    // Mark active (nonzero link suppresses re-enqueue) and activate.
    asm.op(
        img,
        S,
        MOp::MovI {
            d: Reg(13),
            v: Word::from_i64(1),
        },
    );
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(13),
            base: Reg(12),
            off: frame::LINK_OFF as i32,
        },
    );
    asm.op(img, S, MOp::Mov { d: fp, s: Reg(12) });
    asm.op(img, S, MOp::Mark(Mark::FrameActivated));
    asm.br(img, S, am_pop);
    // Idle: let pending handlers run, re-check, then quiesce.
    asm.bind(img, S, l_idle);
    asm.op(img, S, MOp::EnableInt);
    asm.op(
        img,
        S,
        MOp::LdA {
            d: Reg(12),
            addr: g.q_head,
        },
    );
    asm.bnz(img, S, Reg(12), swap_fresh);
    asm.op(img, S, MOp::Suspend);

    // ---- am_pop: pop the next ready thread from the active frame ----
    // "When a thread finishes, the address of the next thread is popped
    // from the LCV"; the RCV seed routes the final pop to swap_clean.
    asm.bind(img, S, am_pop);
    if enabled_variant {
        // §2.4: interrupts are disabled only during CV access.
        asm.op(img, S, MOp::DisableInt);
    }
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(12),
            base: fp,
            off: frame::RCV_TOP_OFF as i32,
        },
    );
    asm.op(img, S, alu(AluOp::Sub, Reg(12), Reg(12), Operand::Imm(1)));
    asm.op(
        img,
        S,
        MOp::St {
            s: Reg(12),
            base: fp,
            off: frame::RCV_TOP_OFF as i32,
        },
    );
    asm.op(img, S, alu(AluOp::Shl, Reg(13), Reg(12), Operand::Imm(2)));
    asm.op(img, S, alu(AluOp::Add, Reg(13), Reg(13), Operand::Reg(fp)));
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(13),
            base: Reg(13),
            off: frame::RCV_BASE_OFF as i32,
        },
    );
    asm.op(img, S, MOp::Jr { s: Reg(13) });
}

/// MD: the shared LCV pop / task-end routine and the boot stub.
fn gen_md_dispatch(
    img: &mut CodeImage,
    asm: &mut Asm,
    g: &GlobalsMap,
    md_pop: Label,
    md_boot: Label,
) {
    // md_pop: if the (global) LCV is empty the task is over — suspend and
    // let the hardware dispatch the next message; otherwise run the next
    // enabled thread. The LCV top pointer lives in LCV_REG.
    asm.bind(img, S, md_pop);
    asm.op(
        img,
        S,
        alu(AluOp::Eq, Reg(12), LCV_REG, Operand::Imm(g.lcv_base as i64)),
    );
    let l_pop = asm.label();
    asm.bz(img, S, Reg(12), l_pop);
    asm.op(img, S, MOp::Suspend);
    asm.bind(img, S, l_pop);
    asm.op(img, S, alu(AluOp::Sub, LCV_REG, LCV_REG, Operand::Imm(4)));
    asm.op(
        img,
        S,
        MOp::Ld {
            d: Reg(12),
            base: LCV_REG,
            off: 0,
        },
    );
    asm.op(img, S, MOp::Jr { s: Reg(12) });

    // md_boot: initialize the LCV register, then wait for messages.
    asm.bind(img, S, md_boot);
    asm.op(
        img,
        S,
        MOp::MovI {
            d: LCV_REG,
            v: Word::from_addr(g.lcv_base),
        },
    );
    asm.op(img, S, MOp::Suspend);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::FrameLayout;
    use tamsim_mdp::MachineConfig;
    use tamsim_tam::{Codeblock, CodeblockId, Program};
    use tamsim_trace::MemoryMap;

    fn empty_program() -> Program {
        Program {
            name: "p".into(),
            codeblocks: vec![Codeblock {
                name: "m".into(),
                n_slots: 0,
                threads: vec![],
                inlets: vec![],
            }],
            main: CodeblockId(0),
            main_args: vec![],
            arrays: vec![],
        }
    }

    #[test]
    fn generates_all_routines_for_both_implementations() {
        for impl_ in [
            Implementation::Am,
            Implementation::AmEnabled,
            Implementation::Md,
        ] {
            let program = empty_program();
            let layouts: Vec<_> = program
                .codeblocks
                .iter()
                .map(|c| FrameLayout::of(c, impl_.is_am()))
                .collect();
            let cfg = MachineConfig::default();
            let g = GlobalsMap::new(&cfg.sys_layout(), &program, &layouts);
            let mut img = CodeImage::new(&MemoryMap::default());
            let mut asm = Asm::new();
            let sys = gen_sys(&mut img, &mut asm, impl_, &g, 2);
            asm.finish(&mut img);
            assert!(img.sys_len() > 50, "substantial system code generated");
            assert_eq!(sys.post_lib.is_some(), impl_.is_am());
            assert_eq!(sys.md_pop.is_some(), !impl_.is_am());
        }
    }
}
