//! Implementation selection and lowering options.

/// Which TAM back-end to lower to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Implementation {
    /// The Active Messages implementation (§2.1): inlets run at high
    /// priority and post threads into per-frame ready lists; a background
    /// scheduler activates one frame at a time. Thread bodies run with
    /// interrupts disabled except for a brief window at the top of each
    /// thread (the "unenabled" variant the paper measures).
    Am,
    /// The "enabled" AM variant of §2.4: interrupts stay enabled inside
    /// thread bodies except during continuation-vector access, letting a
    /// local I-structure reply extend the current quantum.
    AmEnabled,
    /// The Message-Driven implementation (§2.2): the hardware message
    /// queue is the task queue; inlets run at low priority and branch
    /// directly into threads.
    Md,
}

impl Implementation {
    /// Short label for reports ("AM", "AM-en", "MD").
    pub fn label(self) -> &'static str {
        match self {
            Implementation::Am => "AM",
            Implementation::AmEnabled => "AM-en",
            Implementation::Md => "MD",
        }
    }

    /// Whether this is one of the Active-Messages variants.
    pub fn is_am(self) -> bool {
        matches!(self, Implementation::Am | Implementation::AmEnabled)
    }
}

/// Toggleable lowering optimizations (ablation knobs).
///
/// The MD flags correspond to the Section 2.3 observation that "because
/// inlets pass control directly to threads instead of placing them into a
/// continuation vector, a bigger region of code is open to conventional
/// optimization". All default to on — the paper's MD implementation is
/// described with these benefits in effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweringOptions {
    /// MD: place a specialized copy of a thread directly after the sole
    /// inlet that posts it, eliminating the `post`/branch (Section 2.3's
    /// "the code for the thread can be placed immediately after the
    /// inlet, eliminating the need for line I3").
    pub md_specialize: bool,
    /// MD: in a specialized inlet/thread pair, keep the message value in
    /// its register instead of reloading it from the frame ("the reload of
    /// the register in line T1 can be eliminated"), and drop the frame
    /// store entirely when no other code reads the slot ("if no other
    /// threads use frame slot 5, line I2 can be removed").
    pub md_store_elim: bool,
    /// MD: convert a specialized thread's `stop` into a `suspend` when the
    /// LCV is statically known to be empty ("if thread 1 contains no
    /// pushes onto the LCV, then the LCV is known to be empty, and the
    /// stop can be converted to a suspend instruction").
    pub md_stop_to_suspend: bool,
    /// Run the simulator's pre-decoded threaded-code dispatch path instead
    /// of the baseline enum-walking interpreter. This is a *simulator*
    /// knob, not a lowering knob: the generated code and the observable
    /// event stream are bit-identical either way; only wall-clock speed
    /// changes. Off is the escape hatch (`--no-predecode`) for isolating
    /// dispatch-path bugs.
    pub predecode: bool,
}

impl Default for LoweringOptions {
    fn default() -> Self {
        LoweringOptions {
            md_specialize: true,
            md_store_elim: true,
            md_stop_to_suspend: true,
            predecode: true,
        }
    }
}

impl LoweringOptions {
    /// All Section 2.3 optimizations disabled (ablation baseline). The
    /// dispatch path is not a lowering ablation, so it stays pre-decoded.
    pub fn none() -> Self {
        LoweringOptions {
            md_specialize: false,
            md_store_elim: false,
            md_stop_to_suspend: false,
            predecode: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Implementation::Am.label(), "AM");
        assert_eq!(Implementation::Md.label(), "MD");
        assert_eq!(Implementation::AmEnabled.label(), "AM-en");
    }

    #[test]
    fn am_family() {
        assert!(Implementation::Am.is_am());
        assert!(Implementation::AmEnabled.is_am());
        assert!(!Implementation::Md.is_am());
    }

    #[test]
    fn default_options_enable_everything() {
        let o = LoweringOptions::default();
        assert!(o.md_specialize && o.md_store_elim && o.md_stop_to_suspend);
        let n = LoweringOptions::none();
        assert!(!n.md_specialize && !n.md_store_elim && !n.md_stop_to_suspend);
    }
}
