//! A tiny two-region assembler over [`CodeImage`] with labels and fixups.

use tamsim_mdp::{CodeImage, MOp, Priority, Reg, SendSrc, Word};

/// Which code region an [`Asm`] emits into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// System code (OS, libraries, handlers).
    Sys,
    /// User code (lowered inlets and threads).
    User,
}

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// One source word of a to-be-assembled send: a concrete source or a code
/// label whose address becomes an immediate word.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Part {
    /// A concrete send source.
    Src(SendSrc),
    /// The address of a label (handler / inlet entry points).
    Lbl(Label),
}

/// Shorthand constructors for [`Part`].
impl Part {
    /// Send a register.
    pub fn reg(r: Reg) -> Part {
        Part::Src(SendSrc::Reg(r))
    }

    /// Send an immediate word.
    pub fn imm(w: Word) -> Part {
        Part::Src(SendSrc::Imm(w))
    }

    /// Send an immediate integer.
    pub fn int(v: i64) -> Part {
        Part::Src(SendSrc::Imm(Word::from_i64(v)))
    }
}

/// Assembler state: labels and pending branch fixups shared across both
/// regions of one image.
#[derive(Debug, Default)]
pub struct Asm {
    labels: Vec<Option<u32>>,
    /// `(address of the op to patch, label it references)`.
    fixups: Vec<(u32, Label)>,
    /// `(op address, source index, label)` — patch a `Send` source.
    send_fixups: Vec<(u32, usize, Label)>,
    /// `(op address, label)` — patch a `MovI` immediate with the address.
    movi_fixups: Vec<(u32, Label)>,
}

impl Asm {
    /// Fresh assembler state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the next address of `stream`.
    ///
    /// # Panics
    /// Panics if the label is already bound.
    pub fn bind(&mut self, img: &CodeImage, stream: Stream, label: Label) {
        let addr = match stream {
            Stream::Sys => img.next_sys(),
            Stream::User => img.next_user(),
        };
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(addr);
    }

    /// Create a label already bound to `addr`.
    pub fn known(&mut self, addr: u32) -> Label {
        self.labels.push(Some(addr));
        Label(self.labels.len() - 1)
    }

    /// Emit `op` into `stream`; returns its address.
    pub fn op(&mut self, img: &mut CodeImage, stream: Stream, op: MOp) -> u32 {
        match stream {
            Stream::Sys => img.push_sys(op),
            Stream::User => img.push_user(op),
        }
    }

    /// Emit a branch-family op whose target is `label` (patched at
    /// [`Asm::finish`]). The `make` closure receives a placeholder target.
    pub fn op_to(
        &mut self,
        img: &mut CodeImage,
        stream: Stream,
        label: Label,
        make: impl FnOnce(u32) -> MOp,
    ) -> u32 {
        let addr = self.op(img, stream, make(u32::MAX));
        self.fixups.push((addr, label));
        addr
    }

    /// Convenience: unconditional branch to `label`.
    pub fn br(&mut self, img: &mut CodeImage, stream: Stream, label: Label) {
        self.op_to(img, stream, label, |t| MOp::Br { t });
    }

    /// Convenience: branch-if-zero to `label`.
    pub fn bz(&mut self, img: &mut CodeImage, stream: Stream, c: Reg, label: Label) {
        self.op_to(img, stream, label, move |t| MOp::Bz { c, t });
    }

    /// Convenience: branch-if-nonzero to `label`.
    pub fn bnz(&mut self, img: &mut CodeImage, stream: Stream, c: Reg, label: Label) {
        self.op_to(img, stream, label, move |t| MOp::Bnz { c, t });
    }

    /// Convenience: call `label`.
    pub fn call(&mut self, img: &mut CodeImage, stream: Stream, label: Label) {
        self.op_to(img, stream, label, |t| MOp::Call { t });
    }

    /// Emit a `MovI d, <address of label>` (patched at finish).
    pub fn movi_label(&mut self, img: &mut CodeImage, stream: Stream, d: Reg, label: Label) {
        let addr = self.op(img, stream, MOp::MovI { d, v: Word::ZERO });
        self.movi_fixups.push((addr, label));
    }

    /// Emit a `Send` whose sources may include label addresses.
    pub fn send_parts(
        &mut self,
        img: &mut CodeImage,
        stream: Stream,
        pri: Priority,
        parts: Vec<Part>,
    ) {
        let mut srcs = Vec::with_capacity(parts.len());
        let mut pending = Vec::new();
        for (i, p) in parts.into_iter().enumerate() {
            match p {
                Part::Src(s) => srcs.push(s),
                Part::Lbl(l) => {
                    srcs.push(SendSrc::Imm(Word::ZERO));
                    pending.push((i, l));
                }
            }
        }
        let addr = self.op(img, stream, MOp::Send { pri, srcs });
        for (i, l) in pending {
            self.send_fixups.push((addr, i, l));
        }
    }

    /// The bound address of `label`.
    ///
    /// # Panics
    /// Panics if the label is unbound.
    pub fn addr(&self, label: Label) -> u32 {
        self.labels[label.0].expect("label never bound")
    }

    /// The bound address of `label`, or `None` if it was never bound
    /// (e.g. a thread label elided by fall-through folding).
    pub fn try_addr(&self, label: Label) -> Option<u32> {
        self.labels[label.0]
    }

    /// Apply all fixups.
    ///
    /// # Panics
    /// Panics if any referenced label was never bound.
    pub fn finish(self, img: &mut CodeImage) {
        for (addr, label) in self.fixups {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("branch to unbound label {}", label.0));
            let patched = match img.at(addr).clone() {
                MOp::Br { .. } => MOp::Br { t: target },
                MOp::Bz { c, .. } => MOp::Bz { c, t: target },
                MOp::Bnz { c, .. } => MOp::Bnz { c, t: target },
                MOp::Call { .. } => MOp::Call { t: target },
                other => panic!("fixup on non-branch op {other:?}"),
            };
            img.patch(addr, patched);
        }
        for (addr, idx, label) in self.send_fixups {
            let target =
                self.labels[label.0].unwrap_or_else(|| panic!("send of unbound label {}", label.0));
            let MOp::Send { pri, mut srcs } = img.at(addr).clone() else {
                panic!("send fixup on non-send op");
            };
            srcs[idx] = SendSrc::Imm(Word::from_addr(target));
            img.patch(addr, MOp::Send { pri, srcs });
        }
        for (addr, label) in self.movi_fixups {
            let target =
                self.labels[label.0].unwrap_or_else(|| panic!("movi of unbound label {}", label.0));
            let MOp::MovI { d, .. } = img.at(addr).clone() else {
                panic!("movi fixup on non-movi op");
            };
            img.patch(
                addr,
                MOp::MovI {
                    d,
                    v: Word::from_addr(target),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamsim_mdp::{AluOp, Machine, MachineConfig, NoHooks, Operand, Priority, Word};
    use tamsim_trace::MemoryMap;

    #[test]
    fn forward_branch_resolves() {
        let mut img = CodeImage::new(&MemoryMap::default());
        let mut asm = Asm::new();
        let skip = asm.label();
        let entry = img.next_user();
        asm.op(
            &mut img,
            Stream::User,
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(1),
            },
        );
        asm.br(&mut img, Stream::User, skip);
        asm.op(
            &mut img,
            Stream::User,
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(99),
            },
        );
        asm.bind(&img, Stream::User, skip);
        asm.op(&mut img, Stream::User, MOp::Halt);
        asm.finish(&mut img);

        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        m.run(&mut NoHooks).unwrap();
        assert_eq!(
            m.reg(Priority::Low, Reg(0)).as_i64(),
            1,
            "skipped the overwrite"
        );
    }

    #[test]
    fn backward_branch_and_conditionals() {
        let mut img = CodeImage::new(&MemoryMap::default());
        let mut asm = Asm::new();
        let entry = img.next_user();
        asm.op(
            &mut img,
            Stream::User,
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(0),
            },
        );
        asm.op(
            &mut img,
            Stream::User,
            MOp::MovI {
                d: Reg(1),
                v: Word::from_i64(4),
            },
        );
        let top = asm.label();
        asm.bind(&img, Stream::User, top);
        asm.op(
            &mut img,
            Stream::User,
            MOp::Alu {
                op: AluOp::Add,
                d: Reg(0),
                a: Reg(0),
                b: Operand::Imm(2),
            },
        );
        asm.op(
            &mut img,
            Stream::User,
            MOp::Alu {
                op: AluOp::Sub,
                d: Reg(1),
                a: Reg(1),
                b: Operand::Imm(1),
            },
        );
        asm.bnz(&mut img, Stream::User, Reg(1), top);
        asm.op(&mut img, Stream::User, MOp::Halt);
        asm.finish(&mut img);

        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        m.run(&mut NoHooks).unwrap();
        assert_eq!(m.reg(Priority::Low, Reg(0)).as_i64(), 8);
    }

    #[test]
    fn cross_region_call() {
        let mut img = CodeImage::new(&MemoryMap::default());
        let mut asm = Asm::new();
        // System routine: r0 += 5; ret.
        let lib = asm.label();
        asm.bind(&img, Stream::Sys, lib);
        asm.op(
            &mut img,
            Stream::Sys,
            MOp::Alu {
                op: AluOp::Add,
                d: Reg(0),
                a: Reg(0),
                b: Operand::Imm(5),
            },
        );
        asm.op(&mut img, Stream::Sys, MOp::Ret);
        // User: call it twice.
        let entry = img.next_user();
        asm.op(
            &mut img,
            Stream::User,
            MOp::MovI {
                d: Reg(0),
                v: Word::from_i64(0),
            },
        );
        asm.call(&mut img, Stream::User, lib);
        asm.call(&mut img, Stream::User, lib);
        asm.op(&mut img, Stream::User, MOp::Halt);
        asm.finish(&mut img);

        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        m.run(&mut NoHooks).unwrap();
        assert_eq!(m.reg(Priority::Low, Reg(0)).as_i64(), 10);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics_at_finish() {
        let mut img = CodeImage::new(&MemoryMap::default());
        let mut asm = Asm::new();
        let l = asm.label();
        asm.br(&mut img, Stream::User, l);
        asm.finish(&mut img);
    }

    #[test]
    fn send_and_movi_label_fixups_resolve() {
        let mut img = CodeImage::new(&MemoryMap::default());
        let mut asm = Asm::new();
        let handler = asm.label();
        let entry = img.next_user();
        asm.movi_label(&mut img, Stream::User, Reg(3), handler);
        asm.send_parts(
            &mut img,
            Stream::User,
            Priority::Low,
            vec![Part::Lbl(handler), Part::int(9)],
        );
        asm.op(&mut img, Stream::User, MOp::Suspend);
        asm.bind(&img, Stream::User, handler);
        let haddr = img.next_user();
        asm.op(&mut img, Stream::User, MOp::Halt);
        asm.finish(&mut img);

        let mut m = Machine::new(MachineConfig::default(), &img);
        m.start_low(entry);
        let stats = m.run(&mut NoHooks).unwrap();
        // The sent message dispatched to the (patched) handler address.
        assert_eq!(stats.dispatches[0], 1);
        assert_eq!(m.reg(Priority::Low, Reg(3)).as_addr(), haddr);
    }

    #[test]
    fn known_labels_need_no_fixup() {
        let _img = CodeImage::new(&MemoryMap::default());
        let mut asm = Asm::new();
        let k = asm.known(0x42);
        assert_eq!(asm.addr(k), 0x42);
    }
}
