//! The paper's contribution: two TAM runtime implementations for a
//! J-Machine-class node, and the experiment driver that measures them.
//!
//! * [`Implementation::Am`] — the Active Messages back-end (§2.1): high
//!   priority inlets, per-frame ready lists, a background frame scheduler.
//! * [`Implementation::AmEnabled`] — the §2.4 variant with interrupts
//!   enabled except during CV access.
//! * [`Implementation::Md`] — the Message-Driven back-end (§2.2): the
//!   hardware queue is the task queue; inlets branch directly to threads,
//!   with the §2.3 peephole optimizations as toggleable passes.
//!
//! [`Experiment`] links a `tamsim-tam` [`tamsim_tam::Program`] for either
//! back-end, runs it on the `tamsim-mdp` machine, and reports instruction
//! counts, Section 3.1 access counts, and Table 2 granularity statistics.
//! [`Experiment::run_recorded`] additionally captures the access trace in
//! a single machine run; `tamsim_cache::CacheBank::replay_parallel` then
//! scores every cache configuration from the recording. The streaming
//! alternative ([`Experiment::run_with_sink`] with a live
//! [`tamsim_cache::CacheBank`]) remains for consumers that must observe
//! events as they happen.

pub mod asm;
pub mod experiment;
pub mod granularity;
pub mod layout;
pub mod lower;
pub mod opts;
pub mod sys;

pub use experiment::{link, Experiment, Linked, NetInfo, ProfiledRun, RecordedRun, RunResult};
pub use granularity::Granularity;
pub use layout::{FrameLayout, GlobalsMap};
pub use opts::{Implementation, LoweringOptions};
pub use sys::SysAddrs;
