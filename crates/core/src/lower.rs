//! Lowering TAM codeblocks to MDP code for each implementation.
//!
//! The two back-ends differ exactly where the paper says they do
//! (Table 1):
//!
//! | TAM construct        | AM lowering                         | MD lowering                     |
//! |----------------------|-------------------------------------|---------------------------------|
//! | inlet                | high-priority handler               | low-priority handler            |
//! | post from inlet      | RCV append via the post library     | branch (or fall through) to the thread |
//! | activation of frame  | swap routine + frame queue          | n/a                             |
//! | fork from thread     | branch, or push on the in-frame LCV | branch, or push on the global LCV |
//! | system routines      | high-priority handlers              | high-priority handlers          |
//!
//! The AM thread prologue enables interrupts briefly (Figure 2a); the
//! `AmEnabled` variant instead leaves them enabled except around CV
//! access (§2.4). The MD specialization path implements the §2.3
//! optimizations (fall-through placement, register reuse, dead-store
//! elimination, stop→suspend).

use crate::asm::{Asm, Label, Part, Stream};
use crate::layout::{FrameLayout, GlobalsMap};
use crate::opts::{Implementation, LoweringOptions};
use crate::sys::{SysAddrs, LCV_REG};
use tamsim_mdp::{AluOp, CodeImage, MOp, Mark, Operand, Priority, Reg, Word};
use tamsim_tam::{
    CbAnalysis, Codeblock, CodeblockId, InletId, Program, TOp, TOperand, ThreadId, VReg, Value,
};

const U: Stream = Stream::User;
const SCRATCH_A: Reg = Reg(12);
const SCRATCH_B: Reg = Reg(13);

/// Labels of every lowered inlet and thread.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// Per codeblock, per thread: entry label (unbound for threads folded
    /// into their sole posting inlet).
    pub thread_labels: Vec<Vec<Label>>,
    /// Per codeblock, per inlet: entry label.
    pub inlet_labels: Vec<Vec<Label>>,
}

/// Shared state for one lowering run.
pub struct LowerCtx<'a> {
    /// Image being emitted into.
    pub img: &'a mut CodeImage,
    /// Assembler (labels/fixups).
    pub asm: &'a mut Asm,
    /// Back-end being generated.
    pub impl_: Implementation,
    /// Optimization switches.
    pub opts: LoweringOptions,
    /// OS-globals map.
    pub globals: &'a GlobalsMap,
    /// System-routine labels.
    pub sys: &'a SysAddrs,
    /// Per-codeblock frame layouts.
    pub layouts: &'a [FrameLayout],
    /// The program.
    pub program: &'a Program,
    /// Load addresses of the program's initial arrays.
    pub array_bases: &'a [u32],
}

/// What a thread does when it runs out of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopMode {
    /// AM: branch to the shared in-frame LCV pop.
    AmPop,
    /// MD: branch to the shared global LCV pop.
    MdPop,
    /// MD §2.3: the LCV is statically empty — suspend directly.
    MdSuspend,
}

impl<'a> LowerCtx<'a> {
    fn inlet_pri(&self) -> Priority {
        if self.impl_.is_am() {
            Priority::High
        } else {
            Priority::Low
        }
    }

    fn layout(&self, cb: CodeblockId) -> &FrameLayout {
        &self.layouts[cb.0 as usize]
    }
}

fn vreg(v: VReg) -> Reg {
    Reg(v.0)
}

fn operand(b: TOperand) -> Operand {
    match b {
        TOperand::Reg(v) => Operand::Reg(vreg(v)),
        TOperand::Imm(i) => Operand::Imm(i),
    }
}

/// Lower every codeblock of the program; returns the entry labels.
pub fn lower_program(ctx: &mut LowerCtx<'_>, lowered: &mut Lowered) {
    for (i, cb) in ctx.program.codeblocks.iter().enumerate() {
        lower_codeblock(ctx, lowered, CodeblockId(i as u16), cb);
    }
}

/// Create (unbound) labels for every inlet and thread of the program.
pub fn make_labels(asm: &mut Asm, program: &Program) -> Lowered {
    Lowered {
        thread_labels: program
            .codeblocks
            .iter()
            .map(|cb| cb.threads.iter().map(|_| asm.label()).collect())
            .collect(),
        inlet_labels: program
            .codeblocks
            .iter()
            .map(|cb| cb.inlets.iter().map(|_| asm.label()).collect())
            .collect(),
    }
}

fn lower_codeblock(ctx: &mut LowerCtx<'_>, lowered: &Lowered, cbid: CodeblockId, cb: &Codeblock) {
    let analysis = CbAnalysis::of(cb);
    // Which threads get folded into their sole posting inlet (MD §2.3).
    let specialized: Vec<bool> = cb
        .threads
        .iter()
        .enumerate()
        .map(|(t, thread)| {
            ctx.impl_ == Implementation::Md
                && ctx.opts.md_specialize
                && thread.entry_count == 1
                && analysis
                    .sole_poster(ThreadId(t as u16))
                    .is_some_and(|inlet| {
                        // The post must be the inlet's final op, with no
                        // other (conditional) posts before it — those
                        // would force the non-folded lowering path.
                        let ops = &cb.inlets[inlet.0 as usize].ops;
                        matches!(
                            ops.last(),
                            Some(TOp::Post { t: pt }) if *pt == ThreadId(t as u16)
                        ) && !ops[..ops.len() - 1]
                            .iter()
                            .any(|op| matches!(op, TOp::Post { .. } | TOp::PostIf { .. }))
                    })
        })
        .collect();

    for (i, _inlet) in cb.inlets.iter().enumerate() {
        lower_inlet(
            ctx,
            lowered,
            cbid,
            cb,
            &analysis,
            InletId(i as u16),
            &specialized,
        );
    }
    for (t, thread) in cb.threads.iter().enumerate() {
        if specialized[t] {
            continue; // folded into its inlet; canonical body is dead code
        }
        let tid = ThreadId(t as u16);
        ctx.asm
            .bind(ctx.img, U, lowered.thread_labels[cbid.0 as usize][t]);
        emit_thread_prologue(ctx, cbid, tid);
        let stop = if ctx.impl_.is_am() {
            StopMode::AmPop
        } else {
            StopMode::MdPop
        };
        lower_thread_body(ctx, lowered, cbid, cb, &thread.ops, stop);
    }
}

fn emit_thread_prologue(ctx: &mut LowerCtx<'_>, cbid: CodeblockId, tid: ThreadId) {
    let atomic = ctx.program.codeblock(cbid).threads[tid.0 as usize].atomic;
    ctx.asm.op(
        ctx.img,
        U,
        MOp::Mark(Mark::ThreadStart {
            codeblock: cbid.0,
            thread: tid.0,
        }),
    );
    match ctx.impl_ {
        // Figure 2(a): "interrupts are enabled briefly at the top of a
        // thread".
        Implementation::Am => {
            ctx.asm.op(ctx.img, U, MOp::EnableInt);
            ctx.asm.op(ctx.img, U, MOp::DisableInt);
        }
        // Figure 2(b): "interrupts are only disabled for CV access" —
        // and atomic (control-protocol) threads stay masked throughout.
        Implementation::AmEnabled => {
            if !atomic {
                ctx.asm.op(ctx.img, U, MOp::EnableInt);
            } else {
                ctx.asm.op(ctx.img, U, MOp::DisableInt);
            }
        }
        Implementation::Md => {}
    }
}

/// Lower a thread body (canonical or a specialized copy).
fn lower_thread_body(
    ctx: &mut LowerCtx<'_>,
    lowered: &Lowered,
    cbid: CodeblockId,
    cb: &Codeblock,
    ops: &[TOp],
    stop: StopMode,
) {
    let n = ops.len();
    for (i, op) in ops.iter().enumerate() {
        let is_last = i + 1 == n;
        match op {
            TOp::Fork { t } => {
                if is_last {
                    if fork_branch(ctx, lowered, cbid, cb, *t) {
                        return; // unconditional branch; no fall-through
                    }
                } else {
                    fork_push(ctx, lowered, cbid, cb, *t, true);
                }
            }
            TOp::ForkIf { c, t } => {
                let skip = ctx.asm.label();
                ctx.asm.bz(ctx.img, U, vreg(*c), skip);
                if is_last {
                    fork_branch(ctx, lowered, cbid, cb, *t);
                } else {
                    fork_push(ctx, lowered, cbid, cb, *t, true);
                }
                ctx.asm.bind(ctx.img, U, skip);
            }
            TOp::ForkIfElse { c, t, f } => {
                let l_else = ctx.asm.label();
                let l_end = ctx.asm.label();
                ctx.asm.bz(ctx.img, U, vreg(*c), l_else);
                if is_last {
                    if !fork_branch(ctx, lowered, cbid, cb, *t) {
                        ctx.asm.br(ctx.img, U, l_end);
                    }
                    ctx.asm.bind(ctx.img, U, l_else);
                    fork_branch(ctx, lowered, cbid, cb, *f);
                    ctx.asm.bind(ctx.img, U, l_end);
                } else {
                    fork_push(ctx, lowered, cbid, cb, *t, true);
                    ctx.asm.br(ctx.img, U, l_end);
                    ctx.asm.bind(ctx.img, U, l_else);
                    fork_push(ctx, lowered, cbid, cb, *f, true);
                    ctx.asm.bind(ctx.img, U, l_end);
                }
            }
            TOp::Return { vals } => {
                emit_return(ctx, cbid, vals);
                return;
            }
            TOp::Halt => {
                ctx.asm.op(ctx.img, U, MOp::Halt);
                return;
            }
            other => lower_common(ctx, lowered, cbid, other, None),
        }
    }
    emit_thread_tail(ctx, stop);
}

fn emit_thread_tail(ctx: &mut LowerCtx<'_>, stop: StopMode) {
    ctx.asm.op(ctx.img, U, MOp::Mark(Mark::ThreadEnd));
    match stop {
        StopMode::AmPop => ctx.asm.br(ctx.img, U, ctx.sys.am_pop.unwrap()),
        StopMode::MdPop => ctx.asm.br(ctx.img, U, ctx.sys.md_pop.unwrap()),
        StopMode::MdSuspend => {
            ctx.asm.op(ctx.img, U, MOp::Suspend);
        }
    }
}

/// Mid-thread fork: synchronize, then push the thread on the LCV.
/// `in_thread` selects the AmEnabled bracketing (inlet posts at high
/// priority need no masking).
fn fork_push(
    ctx: &mut LowerCtx<'_>,
    lowered: &Lowered,
    cbid: CodeblockId,
    cb: &Codeblock,
    t: ThreadId,
    in_thread: bool,
) {
    let bracket = in_thread && ctx.impl_ == Implementation::AmEnabled;
    if bracket {
        ctx.asm.op(ctx.img, U, MOp::DisableInt);
    }
    let sync = cb.threads[t.0 as usize].is_synchronizing();
    let skip = ctx.asm.label();
    if sync {
        emit_count_decrement(ctx, cbid, t);
        ctx.asm.bnz(ctx.img, U, SCRATCH_A, skip);
    }
    emit_lcv_push(ctx, lowered, cbid, t);
    ctx.asm.bind(ctx.img, U, skip);
    if bracket {
        ctx.asm.op(ctx.img, U, MOp::EnableInt);
    }
}

/// Tail fork ("when a fork occurs at the end of a thread, it is converted
/// by the compiler into a branch when possible"). Returns `true` when the
/// emitted code never falls through (non-synchronizing target).
fn fork_branch(
    ctx: &mut LowerCtx<'_>,
    lowered: &Lowered,
    cbid: CodeblockId,
    cb: &Codeblock,
    t: ThreadId,
) -> bool {
    let target = lowered.thread_labels[cbid.0 as usize][t.0 as usize];
    let sync = cb.threads[t.0 as usize].is_synchronizing();
    if !sync {
        ctx.asm.br(ctx.img, U, target);
        return true;
    }
    if ctx.impl_ == Implementation::AmEnabled {
        ctx.asm.op(ctx.img, U, MOp::DisableInt);
    }
    emit_count_decrement(ctx, cbid, t);
    ctx.asm.bz(ctx.img, U, SCRATCH_A, target);
    // Not ready: fall through (the caller emits the stop path; AmEnabled
    // stays masked into am_pop, which re-disables harmlessly).
    false
}

/// `SCRATCH_A <- --count(t)` (load, decrement, store).
fn emit_count_decrement(ctx: &mut LowerCtx<'_>, cbid: CodeblockId, t: ThreadId) {
    let off = ctx.layout(cbid).count_off(t) as i32;
    ctx.asm.op(
        ctx.img,
        U,
        MOp::Ld {
            d: SCRATCH_A,
            base: Reg::FP,
            off,
        },
    );
    ctx.asm.op(
        ctx.img,
        U,
        MOp::Alu {
            op: AluOp::Sub,
            d: SCRATCH_A,
            a: SCRATCH_A,
            b: Operand::Imm(1),
        },
    );
    ctx.asm.op(
        ctx.img,
        U,
        MOp::St {
            s: SCRATCH_A,
            base: Reg::FP,
            off,
        },
    );
}

/// Push `t`'s entry address onto the LCV (in-frame for AM, global for MD).
fn emit_lcv_push(ctx: &mut LowerCtx<'_>, lowered: &Lowered, cbid: CodeblockId, t: ThreadId) {
    let target = lowered.thread_labels[cbid.0 as usize][t.0 as usize];
    if ctx.impl_.is_am() {
        use crate::layout::frame;
        let top = frame::RCV_TOP_OFF as i32;
        ctx.asm.op(
            ctx.img,
            U,
            MOp::Ld {
                d: SCRATCH_A,
                base: Reg::FP,
                off: top,
            },
        );
        ctx.asm.op(
            ctx.img,
            U,
            MOp::Alu {
                op: AluOp::Add,
                d: SCRATCH_B,
                a: SCRATCH_A,
                b: Operand::Imm(1),
            },
        );
        ctx.asm.op(
            ctx.img,
            U,
            MOp::St {
                s: SCRATCH_B,
                base: Reg::FP,
                off: top,
            },
        );
        ctx.asm.op(
            ctx.img,
            U,
            MOp::Alu {
                op: AluOp::Shl,
                d: SCRATCH_A,
                a: SCRATCH_A,
                b: Operand::Imm(2),
            },
        );
        ctx.asm.op(
            ctx.img,
            U,
            MOp::Alu {
                op: AluOp::Add,
                d: SCRATCH_A,
                a: SCRATCH_A,
                b: Operand::Reg(Reg::FP),
            },
        );
        ctx.asm.movi_label(ctx.img, U, SCRATCH_B, target);
        ctx.asm.op(
            ctx.img,
            U,
            MOp::St {
                s: SCRATCH_B,
                base: SCRATCH_A,
                off: frame::RCV_BASE_OFF as i32,
            },
        );
    } else {
        ctx.asm.movi_label(ctx.img, U, SCRATCH_A, target);
        ctx.asm.op(
            ctx.img,
            U,
            MOp::St {
                s: SCRATCH_A,
                base: LCV_REG,
                off: 0,
            },
        );
        ctx.asm.op(
            ctx.img,
            U,
            MOp::Alu {
                op: AluOp::Add,
                d: LCV_REG,
                a: LCV_REG,
                b: Operand::Imm(4),
            },
        );
    }
}

fn emit_return(ctx: &mut LowerCtx<'_>, cbid: CodeblockId, vals: &[VReg]) {
    let (reply_off, parent_off) = {
        let lay = ctx.layout(cbid);
        (lay.reply_off as i32, lay.parent_off as i32)
    };
    ctx.asm.op(
        ctx.img,
        U,
        MOp::Ld {
            d: SCRATCH_A,
            base: Reg::FP,
            off: reply_off,
        },
    );
    ctx.asm.op(
        ctx.img,
        U,
        MOp::Ld {
            d: SCRATCH_B,
            base: Reg::FP,
            off: parent_off,
        },
    );
    let mut parts = vec![Part::reg(SCRATCH_A), Part::reg(SCRATCH_B)];
    parts.extend(vals.iter().map(|v| Part::reg(vreg(*v))));
    ctx.asm.send_parts(ctx.img, U, ctx.inlet_pri(), parts);
    ctx.asm.send_parts(
        ctx.img,
        U,
        Priority::High,
        vec![
            Part::Lbl(ctx.sys.ffree),
            Part::reg(Reg::FP),
            Part::int(cbid.0 as i64),
        ],
    );
    ctx.asm.op(ctx.img, U, MOp::Mark(Mark::ThreadEnd));
    match ctx.impl_ {
        Implementation::Am | Implementation::AmEnabled => {
            // The frame is gone; enter the scheduler without touching it.
            ctx.asm.br(ctx.img, U, ctx.sys.swap_fresh.unwrap());
        }
        Implementation::Md => {
            // Contract: Return runs with an empty LCV.
            ctx.asm.op(ctx.img, U, MOp::Suspend);
        }
    }
}

/// Lower one data/compute/send op (shared by threads and inlets).
/// `skip_store_of` suppresses a specific `StSlot` (MD dead-store elim).
fn lower_common(
    ctx: &mut LowerCtx<'_>,
    lowered: &Lowered,
    cbid: CodeblockId,
    op: &TOp,
    skip_store_of: Option<usize>,
) {
    let _ = skip_store_of;
    let lay = ctx.layout(cbid);
    let user = lay.user_off;
    match op {
        TOp::MovI { d, v } => {
            let w = match v {
                Value::Int(i) => Word::from_i64(*i),
                Value::Float(f) => Word::from_f64(*f),
                Value::ArrayBase(i) => Word::from_addr(ctx.array_bases[*i]),
            };
            ctx.asm.op(ctx.img, U, MOp::MovI { d: vreg(*d), v: w });
        }
        TOp::Mov { d, s } => {
            ctx.asm.op(
                ctx.img,
                U,
                MOp::Mov {
                    d: vreg(*d),
                    s: vreg(*s),
                },
            );
        }
        TOp::Alu { op, d, a, b } => {
            ctx.asm.op(
                ctx.img,
                U,
                MOp::Alu {
                    op: *op,
                    d: vreg(*d),
                    a: vreg(*a),
                    b: operand(*b),
                },
            );
        }
        TOp::FAlu { op, d, a, b } => {
            ctx.asm.op(
                ctx.img,
                U,
                MOp::FAlu {
                    op: *op,
                    d: vreg(*d),
                    a: vreg(*a),
                    b: vreg(*b),
                },
            );
        }
        TOp::LdSlot { d, slot } => {
            ctx.asm.op(
                ctx.img,
                U,
                MOp::Ld {
                    d: vreg(*d),
                    base: Reg::FP,
                    off: lay.slot_off(*slot) as i32,
                },
            );
        }
        TOp::StSlot { slot, s } => {
            ctx.asm.op(
                ctx.img,
                U,
                MOp::St {
                    s: vreg(*s),
                    base: Reg::FP,
                    off: lay.slot_off(*slot) as i32,
                },
            );
        }
        TOp::LdSlotIdx { d, base, idx } => {
            emit_slot_index(ctx, *idx);
            ctx.asm.op(
                ctx.img,
                U,
                MOp::Ld {
                    d: vreg(*d),
                    base: SCRATCH_A,
                    off: (user + base.0 as u32 * 4) as i32,
                },
            );
        }
        TOp::StSlotIdx { base, idx, s } => {
            emit_slot_index(ctx, *idx);
            ctx.asm.op(
                ctx.img,
                U,
                MOp::St {
                    s: vreg(*s),
                    base: SCRATCH_A,
                    off: (user + base.0 as u32 * 4) as i32,
                },
            );
        }
        TOp::LdMsg { d, idx } => {
            // Payload starts after [handler, frame].
            ctx.asm.op(
                ctx.img,
                U,
                MOp::LdMsg {
                    d: vreg(*d),
                    idx: idx + 2,
                },
            );
        }
        TOp::Call { cb, args, reply } => {
            let mut parts = vec![
                Part::Lbl(ctx.sys.falloc),
                Part::int(cb.0 as i64),
                Part::int(args.len() as i64),
                Part::reg(Reg::FP),
                Part::Lbl(lowered.inlet_labels[cbid.0 as usize][reply.0 as usize]),
            ];
            parts.extend(args.iter().map(|a| Part::reg(vreg(*a))));
            ctx.asm.send_parts(ctx.img, U, Priority::High, parts);
        }
        TOp::SendToInlet {
            frame,
            cb,
            inlet,
            vals,
        } => {
            let mut parts = vec![
                Part::Lbl(lowered.inlet_labels[cb.0 as usize][inlet.0 as usize]),
                Part::reg(vreg(*frame)),
            ];
            parts.extend(vals.iter().map(|v| Part::reg(vreg(*v))));
            let pri = ctx.inlet_pri();
            ctx.asm.send_parts(ctx.img, U, pri, parts);
        }
        TOp::HAlloc { d, words } => {
            match words {
                TOperand::Imm(i) => {
                    ctx.asm.op(
                        ctx.img,
                        U,
                        MOp::MovI {
                            d: SCRATCH_A,
                            v: Word::from_i64(*i),
                        },
                    );
                }
                TOperand::Reg(r) => {
                    ctx.asm.op(
                        ctx.img,
                        U,
                        MOp::Mov {
                            d: SCRATCH_A,
                            s: vreg(*r),
                        },
                    );
                }
            }
            ctx.asm.call(ctx.img, U, ctx.sys.halloc);
            ctx.asm.op(
                ctx.img,
                U,
                MOp::Mov {
                    d: vreg(*d),
                    s: SCRATCH_A,
                },
            );
        }
        TOp::IFetch { addr, tag, reply } => {
            let parts = vec![
                Part::Lbl(ctx.sys.ifetch),
                Part::reg(vreg(*addr)),
                Part::reg(Reg::FP),
                Part::Lbl(lowered.inlet_labels[cbid.0 as usize][reply.0 as usize]),
                Part::reg(vreg(*tag)),
            ];
            ctx.asm.send_parts(ctx.img, U, Priority::High, parts);
        }
        TOp::IStore { addr, val } => {
            let parts = vec![
                Part::Lbl(ctx.sys.istore),
                Part::reg(vreg(*addr)),
                Part::reg(vreg(*val)),
            ];
            ctx.asm.send_parts(ctx.img, U, Priority::High, parts);
        }
        TOp::MyFrame { d } => {
            ctx.asm.op(
                ctx.img,
                U,
                MOp::Mov {
                    d: vreg(*d),
                    s: Reg::FP,
                },
            );
        }
        TOp::ResetCount { t } => {
            // Non-synchronizing threads have an implicit entry count of
            // one and no count slot; re-arming them is a no-op.
            if !ctx.program.codeblock(cbid).threads[t.0 as usize].is_synchronizing() {
                return;
            }
            let bracket = ctx.impl_ == Implementation::AmEnabled;
            if bracket {
                ctx.asm.op(ctx.img, U, MOp::DisableInt);
            }
            let count = ctx.program.codeblock(cbid).threads[t.0 as usize].entry_count;
            let off = ctx.layout(cbid).count_off(*t) as i32;
            ctx.asm.op(
                ctx.img,
                U,
                MOp::Ld {
                    d: SCRATCH_A,
                    base: Reg::FP,
                    off,
                },
            );
            ctx.asm.op(
                ctx.img,
                U,
                MOp::Alu {
                    op: AluOp::Add,
                    d: SCRATCH_A,
                    a: SCRATCH_A,
                    b: Operand::Imm(count as i64),
                },
            );
            ctx.asm.op(
                ctx.img,
                U,
                MOp::St {
                    s: SCRATCH_A,
                    base: Reg::FP,
                    off,
                },
            );
            if bracket {
                ctx.asm.op(ctx.img, U, MOp::EnableInt);
            }
        }
        TOp::Fork { .. }
        | TOp::ForkIf { .. }
        | TOp::ForkIfElse { .. }
        | TOp::Post { .. }
        | TOp::PostIf { .. }
        | TOp::Return { .. }
        | TOp::Halt => unreachable!("control ops handled by callers"),
    }
}

/// `SCRATCH_A <- FP + idx*4` for dynamically indexed slot access.
fn emit_slot_index(ctx: &mut LowerCtx<'_>, idx: VReg) {
    ctx.asm.op(
        ctx.img,
        U,
        MOp::Alu {
            op: AluOp::Shl,
            d: SCRATCH_A,
            a: vreg(idx),
            b: Operand::Imm(2),
        },
    );
    ctx.asm.op(
        ctx.img,
        U,
        MOp::Alu {
            op: AluOp::Add,
            d: SCRATCH_A,
            a: SCRATCH_A,
            b: Operand::Reg(Reg::FP),
        },
    );
}

fn lower_inlet(
    ctx: &mut LowerCtx<'_>,
    lowered: &Lowered,
    cbid: CodeblockId,
    cb: &Codeblock,
    analysis: &CbAnalysis,
    iid: InletId,
    specialized: &[bool],
) {
    let inlet = &cb.inlets[iid.0 as usize];
    ctx.asm.bind(
        ctx.img,
        U,
        lowered.inlet_labels[cbid.0 as usize][iid.0 as usize],
    );
    // Frame pointer arrives as message word 1.
    ctx.asm.op(ctx.img, U, MOp::LdMsg { d: Reg::FP, idx: 1 });
    ctx.asm.op(
        ctx.img,
        U,
        MOp::Mark(Mark::InletStart {
            codeblock: cbid.0,
            inlet: iid.0,
        }),
    );

    // MD (§2.2): "inlets contain branches directly to threads". When the
    // final op posts a thread and nothing else was pushed, the LCV is
    // statically empty at that point, so the post lowers to a direct
    // branch (conditional for PostIf; gated on the entry count for
    // synchronizing targets). The §2.3 *specialization* below goes
    // further for sole-poster targets, placing the thread body inline.
    let is_post = |op: &TOp| matches!(op, TOp::Post { .. } | TOp::PostIf { .. });
    let earlier_posts = inlet.ops.len() > 1 && inlet.ops[..inlet.ops.len() - 1].iter().any(is_post);
    let direct: Option<(Option<VReg>, ThreadId)> =
        if ctx.impl_ == Implementation::Md && !earlier_posts {
            match inlet.ops.last() {
                Some(TOp::Post { t }) => Some((None, *t)),
                Some(TOp::PostIf { c, t }) => Some((Some(*c), *t)),
                _ => None,
            }
        } else {
            None
        };

    // The §2.3 fall-through specialization (sole unconditional poster of
    // a non-synchronizing thread): inline the thread body after the inlet.
    if let Some((None, t)) = direct {
        if specialized[t.0 as usize] && analysis.sole_poster(t) == Some(iid) {
            let body = &inlet.ops[..inlet.ops.len() - 1];
            lower_inlet_specialized(ctx, lowered, cbid, cb, analysis, body, t);
            return;
        }
    }

    let body: &[TOp] = if direct.is_some() {
        &inlet.ops[..inlet.ops.len() - 1]
    } else {
        &inlet.ops
    };

    let mut posted_any = false;
    for op in body {
        match op {
            TOp::Post { t } => {
                posted_any = true;
                lower_post(ctx, lowered, cbid, cb, *t);
            }
            TOp::PostIf { c, t } => {
                posted_any = true;
                let skip = ctx.asm.label();
                ctx.asm.bz(ctx.img, U, vreg(*c), skip);
                lower_post(ctx, lowered, cbid, cb, *t);
                ctx.asm.bind(ctx.img, U, skip);
            }
            other => lower_common(ctx, lowered, cbid, other, None),
        }
    }
    ctx.asm.op(ctx.img, U, MOp::Mark(Mark::InletEnd));
    if let Some((cond, t)) = direct {
        // Direct dispatch: branch straight into the thread when it is (or
        // becomes) enabled; otherwise the task is over.
        let target = lowered.thread_labels[cbid.0 as usize][t.0 as usize];
        let sync = cb.threads[t.0 as usize].is_synchronizing();
        let suspend = ctx.asm.label();
        if let Some(c) = cond {
            ctx.asm.bz(ctx.img, U, vreg(c), suspend);
        }
        if sync {
            emit_count_decrement(ctx, cbid, t);
            ctx.asm.bnz(ctx.img, U, SCRATCH_A, suspend);
        }
        ctx.asm.br(ctx.img, U, target);
        ctx.asm.bind(ctx.img, U, suspend);
        ctx.asm.op(ctx.img, U, MOp::Suspend);
        return;
    }
    if ctx.impl_.is_am() {
        ctx.asm.op(ctx.img, U, MOp::Suspend);
    } else if !posted_any {
        // No posts at all: the LCV is statically empty.
        ctx.asm.op(ctx.img, U, MOp::Suspend);
    } else {
        ctx.asm.br(ctx.img, U, ctx.sys.md_pop.unwrap());
    }
}

/// Lower a `post` in a non-folded inlet.
fn lower_post(
    ctx: &mut LowerCtx<'_>,
    lowered: &Lowered,
    cbid: CodeblockId,
    cb: &Codeblock,
    t: ThreadId,
) {
    let sync = cb.threads[t.0 as usize].is_synchronizing();
    let skip = ctx.asm.label();
    if sync {
        emit_count_decrement(ctx, cbid, t);
        ctx.asm.bnz(ctx.img, U, SCRATCH_A, skip);
    }
    if ctx.impl_.is_am() {
        // "place thread in frame" via the post library.
        let target = lowered.thread_labels[cbid.0 as usize][t.0 as usize];
        ctx.asm.movi_label(ctx.img, U, SCRATCH_A, target);
        ctx.asm.call(ctx.img, U, ctx.sys.post_lib.unwrap());
    } else {
        emit_lcv_push(ctx, lowered, cbid, t);
    }
    ctx.asm.bind(ctx.img, U, skip);
}

/// The MD fall-through specialization (§2.3): emit the inlet body, then a
/// specialized copy of the posted thread immediately after it.
fn lower_inlet_specialized(
    ctx: &mut LowerCtx<'_>,
    lowered: &Lowered,
    cbid: CodeblockId,
    cb: &Codeblock,
    analysis: &CbAnalysis,
    body: &[TOp],
    t: ThreadId,
) {
    let thread = &cb.threads[t.0 as usize];
    let mut thread_ops: &[TOp] = &thread.ops;
    let mut skip_store = false;
    let mut prefix_mov: Option<(VReg, VReg)> = None;

    if ctx.opts.md_store_elim {
        // Pattern: inlet ends [..., StSlot{s, r}] and the thread begins
        // LdSlot{d, s}: keep the value in its register across the
        // fall-through ("the reload of the register in line T1 can be
        // eliminated").
        if let (Some(TOp::StSlot { slot, s: src }), Some(TOp::LdSlot { d, slot: s2 })) =
            (body.last(), thread.ops.first())
        {
            if slot == s2 {
                thread_ops = &thread.ops[1..];
                if d != src {
                    prefix_mov = Some((*d, *src));
                }
                // "If no other threads use frame slot 5, line I2 can be
                // removed."
                let si = slot.0 as usize;
                if analysis.slot_reads[si] == 1 && analysis.slot_writes[si] == 1 {
                    skip_store = true;
                }
            }
        }
    }

    let mut posted_any = false;
    let body_end = if skip_store {
        body.len() - 1
    } else {
        body.len()
    };
    for op in &body[..body_end] {
        match op {
            TOp::Post { t } => {
                posted_any = true;
                lower_post(ctx, lowered, cbid, cb, *t);
            }
            TOp::PostIf { c, t } => {
                posted_any = true;
                let skip = ctx.asm.label();
                ctx.asm.bz(ctx.img, U, vreg(*c), skip);
                lower_post(ctx, lowered, cbid, cb, *t);
                ctx.asm.bind(ctx.img, U, skip);
            }
            other => lower_common(ctx, lowered, cbid, other, None),
        }
    }

    ctx.asm.op(ctx.img, U, MOp::Mark(Mark::InletEnd));
    ctx.asm.op(
        ctx.img,
        U,
        MOp::Mark(Mark::ThreadStart {
            codeblock: cbid.0,
            thread: t.0,
        }),
    );
    if let Some((d, s)) = prefix_mov {
        ctx.asm.op(
            ctx.img,
            U,
            MOp::Mov {
                d: vreg(d),
                s: vreg(s),
            },
        );
    }
    // Stop→suspend is legal when neither the inlet nor the thread pushed
    // anything onto the LCV.
    let no_pushes = !posted_any
        && thread_ops.iter().all(|op| {
            !matches!(
                op,
                TOp::Fork { .. }
                    | TOp::ForkIf { .. }
                    | TOp::ForkIfElse { .. }
                    | TOp::Post { .. }
                    | TOp::PostIf { .. }
            )
        });
    let stop = if no_pushes && ctx.opts.md_stop_to_suspend {
        StopMode::MdSuspend
    } else {
        StopMode::MdPop
    };
    lower_thread_body(ctx, lowered, cbid, cb, thread_ops, stop);
}
