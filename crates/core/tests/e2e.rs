//! End-to-end tests: small TAM programs run under every implementation
//! must compute identical results ("while both implementations yield the
//! same results, their dynamic behaviors differ").

use tamsim_core::{Experiment, Implementation, LoweringOptions};
use tamsim_mdp::HaltReason;
use tamsim_tam::ids::regs::*;
use tamsim_tam::ops::*;
use tamsim_tam::{CodeblockBuilder, InitArray, Program, ProgramBuilder, Value};

const ALL_IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

/// main(a, b) = a + b, synchronizing on both argument inlets.
fn add_two() -> Program {
    let mut pb = ProgramBuilder::new("add-two");
    let main = pb.declare("main");
    let mut cb = CodeblockBuilder::new("main");
    let sa = cb.slot();
    let sb = cb.slot();
    let t_sum = cb.thread();
    cb.add_inlet(vec![ldmsg(R0, 0), st(sa, R0), post(t_sum)]);
    cb.add_inlet(vec![ldmsg(R0, 0), st(sb, R0), post(t_sum)]);
    cb.def_thread(
        t_sum,
        2,
        vec![
            ld(R0, sa),
            ld(R1, sb),
            alu(AluOp::Add, R2, R0, reg(R1)),
            ret(vec![R2]),
        ],
    );
    pb.define(main, cb.finish());
    pb.main(main, vec![Value::Int(30), Value::Int(12)]);
    pb.build()
}

use tamsim_tam::AluOp;

/// main(x) calls leaf(x) which returns x*2; main returns leaf(x) + 1.
fn call_leaf() -> Program {
    let mut pb = ProgramBuilder::new("call-leaf");
    let main = pb.declare("main");
    let leaf = pb.declare("leaf");

    let mut cb = CodeblockBuilder::new("main");
    let sx = cb.slot();
    let sr = cb.slot();
    let t_go = cb.thread();
    let t_done = cb.thread();
    let i_reply = cb.inlet();
    let i_arg = cb.inlet();
    // Argument inlet must be inlet 0 for `Call`; reorder: define arg first.
    // (Builder ids follow declaration order: i_reply=0, i_arg=1; main_args
    // deliver to inlet 0, so use i_reply as the arg inlet instead.)
    cb.def_inlet(i_reply, vec![ldmsg(R0, 0), st(sx, R0), post(t_go)]);
    cb.def_inlet(i_arg, vec![ldmsg(R0, 0), st(sr, R0), post(t_done)]);
    cb.def_thread(t_go, 1, vec![ld(R0, sx), call(leaf, vec![R0], i_arg)]);
    cb.def_thread(
        t_done,
        1,
        vec![ld(R0, sr), alu(AluOp::Add, R0, R0, imm(1)), ret(vec![R0])],
    );
    pb.define(main, cb.finish());

    let mut cb = CodeblockBuilder::new("leaf");
    let sv = cb.slot();
    let t = cb.thread();
    cb.add_inlet(vec![ldmsg(R0, 0), st(sv, R0), post(t)]);
    cb.def_thread(
        t,
        1,
        vec![ld(R0, sv), alu(AluOp::Add, R0, R0, reg(R0)), ret(vec![R0])],
    );
    pb.define(leaf, cb.finish());

    pb.main(main, vec![Value::Int(20)]);
    pb.build()
}

/// main() reads arr[1] (present) and arr[2] (initially empty, stored by a
/// forked thread), returning their sum — exercises both I-structure paths.
fn istructures() -> Program {
    let mut pb = ProgramBuilder::new("istructs");
    let arr = pb.array(InitArray {
        name: "a".into(),
        cells: vec![Some(Value::Int(5)), Some(Value::Int(7)), None],
    });
    let main = pb.declare("main");
    let mut cb = CodeblockBuilder::new("main");
    let s0 = cb.slot();
    let s1 = cb.slot();
    let t_go = cb.thread();
    let t_store = cb.thread();
    let t_sum = cb.thread();
    let i_arg = cb.inlet();
    let i_reply = cb.inlet();
    cb.def_inlet(i_arg, vec![post(t_go)]);
    // Replies carry [value, tag]; store by tag.
    cb.def_inlet(
        i_reply,
        vec![ldmsg(R0, 0), ldmsg(R1, 1), stx(s0, R1, R0), post(t_sum)],
    );
    cb.def_thread(
        t_go,
        1,
        vec![
            // Fetch arr[1] (present) with tag 0 and arr[2] (empty) with
            // tag 1; the second defers until t_store fills it.
            movarr(R0, arr),
            alu(AluOp::Add, R1, R0, imm(8)),
            movi(R2, 0),
            ifetch(R1, R2, i_reply),
            alu(AluOp::Add, R1, R0, imm(16)),
            movi(R2, 1),
            ifetch(R1, R2, i_reply),
            fork(t_store),
        ],
    );
    cb.def_thread(
        t_store,
        1,
        vec![
            movarr(R0, arr),
            alu(AluOp::Add, R0, R0, imm(16)),
            movi(R1, 100),
            istore(R0, R1),
        ],
    );
    cb.def_thread(
        t_sum,
        2,
        vec![
            ld(R0, s0),
            ld(R1, s1),
            alu(AluOp::Add, R2, R0, reg(R1)),
            ret(vec![R2]),
        ],
    );
    pb.define(main, cb.finish());
    pb.main(main, vec![Value::Int(0)]);
    pb.build()
}

#[test]
fn add_two_runs_identically_everywhere() {
    let p = add_two();
    for impl_ in ALL_IMPLS {
        let out = Experiment::new(impl_).run(&p);
        assert_eq!(out.result.len(), 1, "{impl_:?}");
        assert_eq!(out.result[0].as_i64(), 42, "{impl_:?}");
        assert_eq!(out.stats.halt, HaltReason::Explicit, "{impl_:?}");
    }
}

#[test]
fn md_executes_fewer_instructions() {
    let p = add_two();
    let md = Experiment::new(Implementation::Md).run(&p);
    let am = Experiment::new(Implementation::Am).run(&p);
    assert!(
        md.instructions < am.instructions,
        "MD {} !< AM {}",
        md.instructions,
        am.instructions
    );
}

#[test]
fn md_without_optimizations_still_beats_am_but_less() {
    let p = add_two();
    let md = Experiment::new(Implementation::Md).run(&p);
    let md_raw = Experiment::new(Implementation::Md)
        .with_opts(LoweringOptions::none())
        .run(&p);
    assert_eq!(md_raw.result[0].as_i64(), 42);
    assert!(md.instructions <= md_raw.instructions);
}

#[test]
fn calls_allocate_and_free_frames() {
    let p = call_leaf();
    for impl_ in ALL_IMPLS {
        let out = Experiment::new(impl_).run(&p);
        assert_eq!(out.result[0].as_i64(), 41, "{impl_:?}");
    }
}

#[test]
fn istructure_fetch_present_and_deferred() {
    let p = istructures();
    for impl_ in ALL_IMPLS {
        let out = Experiment::new(impl_).run(&p);
        assert_eq!(out.result[0].as_i64(), 107, "{impl_:?}");
        // The store became visible in the array read-back.
        assert_eq!(out.arrays[0][2].map(|w| w.as_i64()), Some(100), "{impl_:?}");
    }
}

#[test]
fn granularity_is_tracked() {
    let p = call_leaf();
    for impl_ in ALL_IMPLS {
        let out = Experiment::new(impl_).run(&p);
        assert!(
            out.granularity.threads >= 3,
            "{impl_:?}: {:?}",
            out.granularity
        );
        assert!(out.granularity.quanta >= 1);
        assert!(out.granularity.thread_instructions > 0);
        assert!(out.counts.fetches() > 0);
        assert!(out.counts.reads() > 0);
        assert!(out.counts.writes() > 0);
    }
}

#[test]
fn am_uses_high_priority_inlets_md_does_not() {
    let p = add_two();
    let am = Experiment::new(Implementation::Am).run(&p);
    let md = Experiment::new(Implementation::Md).run(&p);
    // AM: argument inlets dispatch at high priority. MD: at low.
    assert!(am.stats.dispatches[1] > md.stats.dispatches[1]);
    assert!(md.stats.dispatches[0] > am.stats.dispatches[0]);
}
