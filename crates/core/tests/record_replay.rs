//! The record-once/replay-parallel engine must be invisible: identical
//! measurements to the legacy streaming path, at one machine run instead
//! of two.

use tamsim_cache::{table2_geometry, CacheBank, CacheGeometry};
use tamsim_core::{Experiment, Implementation};
use tamsim_tam::Program;

fn sweep() -> Vec<CacheGeometry> {
    vec![
        table2_geometry(),
        CacheGeometry::new(1024, 1, 64),
        CacheGeometry::new(4096, 2, 16),
    ]
}

fn programs() -> Vec<(&'static str, Program)> {
    vec![
        ("fib", tamsim_programs::fib(8)),
        ("ss", tamsim_programs::ss(12)),
    ]
}

/// Recording during the machine run and replaying the log afterwards must
/// reproduce the streaming path bit for bit: same run measurements, same
/// cache outcome for every geometry.
#[test]
fn record_replay_matches_streaming_sink() {
    let geoms = sweep();
    for (name, program) in programs() {
        for impl_ in [Implementation::Am, Implementation::Md] {
            let exp = Experiment::new(impl_);

            let mut bank = CacheBank::symmetric(geoms.iter().copied());
            let streamed = exp.run_with_sink(&program, &mut bank);

            let recorded = exp.run_recorded(&program);
            let replayed = CacheBank::replay_parallel(&geoms, &recorded.log);

            let ctx = format!("{name} under {impl_:?}");
            assert_eq!(recorded.run.instructions, streamed.instructions, "{ctx}");
            assert_eq!(recorded.run.result, streamed.result, "{ctx}");
            assert_eq!(recorded.run.queue_words, streamed.queue_words, "{ctx}");
            assert_eq!(
                format!("{:?}", recorded.run.counts),
                format!("{:?}", streamed.counts),
                "{ctx}"
            );
            assert_eq!(replayed, bank.summaries(), "{ctx}");
            assert_eq!(
                recorded.log.len() as u64,
                recorded.run.counts.total(),
                "{ctx}"
            );
        }
    }
}

/// The point of recording inside the sizing loop: when the default queues
/// fit, the sweep costs exactly one machine simulation.
#[test]
fn records_in_a_single_machine_run_when_queues_fit() {
    for (name, program) in programs() {
        for impl_ in [Implementation::Am, Implementation::Md] {
            let mut attempts = Vec::new();
            let rec = Experiment::new(impl_)
                .run_recorded_observed(&program, |attempt| attempts.push(attempt));
            assert_eq!(attempts, vec![0], "{name} under {impl_:?}");
            assert!(!rec.log.is_empty());
        }
    }
}

/// Queue overflow restarts with doubled queues and a discarded partial
/// log; the final recording must still match the streaming path run at
/// the same (tiny) initial queue sizes.
#[test]
fn overflow_retries_then_records_cleanly() {
    let geoms = sweep();
    let program = tamsim_programs::fib(8);
    let mut tiny = Experiment::new(Implementation::Md);
    tiny.queue_words = [16, 16];

    let mut attempts = 0u32;
    let recorded = tiny.run_recorded_observed(&program, |_| attempts += 1);
    assert!(
        attempts > 1,
        "expected 16-word queues to overflow (got {attempts} attempt)"
    );
    assert!(recorded.run.queue_words[0] > 16 || recorded.run.queue_words[1] > 16);

    let mut bank = CacheBank::symmetric(geoms.iter().copied());
    let streamed = tiny.run_with_sink(&program, &mut bank);
    assert_eq!(recorded.run.instructions, streamed.instructions);
    assert_eq!(recorded.run.result, streamed.result);
    assert_eq!(recorded.run.queue_words, streamed.queue_words);
    // A clean recording: replay sees only the final run's events.
    assert_eq!(
        CacheBank::replay_parallel(&geoms, &recorded.log),
        bank.summaries()
    );
}

/// The legacy streaming path stays a supported API for live-sink
/// consumers.
#[test]
fn legacy_run_with_sink_still_works() {
    let geom = table2_geometry();
    let mut bank = CacheBank::symmetric([geom]);
    let run =
        Experiment::new(Implementation::Am).run_with_sink(&tamsim_programs::fib(8), &mut bank);
    assert!(run.instructions > 0);
    let summary = bank.summary_for(geom).expect("geometry present");
    assert!(summary.i.reads > 0, "fetches reached the sink");
    assert!(summary.d.accesses() > 0, "data accesses reached the sink");
}
