//! The pre-decoded dispatch path must be invisible: bit-identical
//! results, counters, granularity, and recorded event streams to the
//! baseline interpreter, for every paper program under every back-end.
//! (The mesh half of this wall lives in `tamsim-net`'s
//! `dispatch_diff_mesh` test, since `net` sits above `core`.)

use tamsim_core::{Experiment, Implementation, LoweringOptions};

const IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

fn opts(predecode: bool) -> LoweringOptions {
    LoweringOptions {
        predecode,
        ..LoweringOptions::default()
    }
}

/// Every paper program × every back-end: a recorded run under baseline
/// dispatch and one under pre-decoded dispatch must agree on everything —
/// result words, final arrays, machine counters, region/kind access
/// counts, granularity statistics, queue sizing, and the full recorded
/// trace (access events in order, mark records, cycle counters).
#[test]
fn decoded_dispatch_is_bit_identical_across_suite_and_backends() {
    for bench in tamsim_programs::small_suite() {
        for impl_ in IMPLS {
            let ctx = format!("{} under {impl_:?}", bench.name);

            let base = Experiment::new(impl_)
                .with_opts(opts(false))
                .run_recorded(&bench.program);
            let dec = Experiment::new(impl_)
                .with_opts(opts(true))
                .run_recorded(&bench.program);

            assert_eq!(dec.run.result, base.run.result, "{ctx}: result words");
            assert_eq!(dec.run.arrays, base.run.arrays, "{ctx}: final arrays");
            assert_eq!(dec.run.stats, base.run.stats, "{ctx}: machine counters");
            assert_eq!(
                dec.run.instructions, base.run.instructions,
                "{ctx}: instruction count"
            );
            assert_eq!(dec.run.counts, base.run.counts, "{ctx}: access counts");
            assert_eq!(
                dec.run.queue_words, base.run.queue_words,
                "{ctx}: queue sizing"
            );
            assert_eq!(
                dec.run.queue_accesses, base.run.queue_accesses,
                "{ctx}: queue-bypass accounting"
            );

            let bg = &base.run.granularity;
            let dg = &dec.run.granularity;
            assert_eq!(dg.threads, bg.threads, "{ctx}: threads");
            assert_eq!(dg.quanta, bg.quanta, "{ctx}: quanta");
            assert_eq!(dg.inlets, bg.inlets, "{ctx}: inlets");
            assert_eq!(
                dg.thread_instructions, bg.thread_instructions,
                "{ctx}: thread instructions"
            );
            assert_eq!(
                dg.inlet_instructions, bg.inlet_instructions,
                "{ctx}: inlet instructions"
            );
            assert_eq!(
                dg.other_instructions, bg.other_instructions,
                "{ctx}: other instructions"
            );

            // The recorded trace, event for event.
            assert_eq!(dec.log.len(), base.log.len(), "{ctx}: recorded event count");
            if let Some((i, (b, d))) = base
                .log
                .iter()
                .zip(dec.log.iter())
                .enumerate()
                .find(|(_, (b, d))| b != d)
            {
                panic!("{ctx}: trace diverges at event {i}: baseline {b:?}, decoded {d:?}");
            }
            assert_eq!(dec.log.marks(), base.log.marks(), "{ctx}: mark records");
            assert_eq!(dec.log.cycles(), base.log.cycles(), "{ctx}: cycle counters");
        }
    }
}
