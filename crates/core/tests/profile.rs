//! Profiler integration tests: the differential guarantee (profiling does
//! not perturb the run) and the validity of emitted artifacts.

use tamsim_core::{Experiment, Implementation};
use tamsim_obs::{json, Priority, Span};
use tamsim_programs::{fib, quicksort};
use tamsim_tam::Program;

fn programs() -> Vec<Program> {
    vec![fib(10), quicksort(24, 0xC0FFEE)]
}

/// `run_profiled` must be an ordinary run with an observer attached:
/// identical stats, counts, results, and granularity.
#[test]
fn profiled_runs_are_bit_identical_to_plain_runs() {
    for program in programs() {
        for impl_ in [Implementation::Am, Implementation::Md] {
            let exp = Experiment::new(impl_);
            let plain = exp.run(&program);
            let profiled = exp.run_profiled(&program);
            let p = &profiled.run;
            assert_eq!(plain.instructions, p.instructions, "{}", program.name);
            assert_eq!(plain.stats, p.stats, "{}", program.name);
            assert_eq!(plain.result, p.result, "{}", program.name);
            assert_eq!(plain.counts, p.counts, "{}", program.name);
            assert_eq!(plain.queue_words, p.queue_words, "{}", program.name);
            assert_eq!(
                plain.granularity.quanta, p.granularity.quanta,
                "{}",
                program.name
            );
            assert_eq!(
                plain.granularity.threads, p.granularity.threads,
                "{}",
                program.name
            );
        }
    }
}

/// The profile's own quantum detection must agree with the granularity
/// statistics computed live during the run, and the capture's cycle
/// counters must match the machine's instruction count.
#[test]
fn profile_statistics_agree_with_live_granularity() {
    for program in programs() {
        for impl_ in [Implementation::Am, Implementation::Md] {
            let profiled = Experiment::new(impl_).run_profiled(&program);
            assert_eq!(profiled.raw.total_cycles(), profiled.run.instructions);
            let profile = profiled.profile().expect("profile analysis failed");
            let q = &profile.timeline.quanta;
            let g = &profiled.run.granularity;
            assert_eq!(q.count() as u64, g.quanta, "{}", program.name);
            assert_eq!(q.threads, g.threads, "{}", program.name);
            assert_eq!(q.inlets, g.inlets, "{}", program.name);
            assert_eq!(q.thread_cycles, g.thread_instructions, "{}", program.name);
        }
    }
}

/// The emitted artifacts must parse as JSON, and spans that share a track
/// must never overlap (Perfetto renders overlapping slices wrongly).
#[test]
fn emitted_trace_parses_and_spans_never_overlap_per_track() {
    let profiled = Experiment::new(Implementation::Am).run_profiled(&fib(10));
    let profile = profiled.profile().expect("profile analysis failed");
    json::validate(&profile.trace_json()).expect("trace.json must be valid JSON");
    json::validate(&profile.profile_json()).expect("profile.json must be valid JSON");

    for track in 0..profile.timeline.tracks.len() {
        let mut spans: Vec<&Span> = profile
            .timeline
            .spans
            .iter()
            .filter(|s| s.track == track)
            .collect();
        spans.sort_by_key(|s| (s.start, s.end));
        for pair in spans.windows(2) {
            assert!(
                pair[1].start >= pair[0].end,
                "overlapping spans on track {track} ({}): {:?} / {:?}",
                profile.timeline.tracks[track].name,
                pair[0],
                pair[1]
            );
        }
    }
    // Every instruction is attributed to exactly one span of its priority.
    for pri in Priority::ALL {
        let attributed: u64 = profile
            .timeline
            .spans
            .iter()
            .filter(|s| s.pri == pri)
            .map(|s| s.instructions)
            .sum();
        assert_eq!(attributed, profile.timeline.cycles[pri.index()]);
    }
}

/// The paper's locality contrast must be visible in the profile: the AM
/// scheduler batches multiple threads per activation (it drains a frame's
/// whole RCV) where MD runs only one message's threads per dispatch. The
/// frame-run quantum metric (the paper's Table 2 definition) must agree
/// with the weaker published inequality AM >= MD.
#[test]
fn am_activations_batch_more_threads_than_md_dispatches() {
    let program = fib(10);
    let am = Experiment::new(Implementation::Am)
        .run_profiled(&program)
        .profile()
        .unwrap();
    let md = Experiment::new(Implementation::Md)
        .run_profiled(&program)
        .profile()
        .unwrap();
    let am_tpa = am.timeline.quanta.threads_per_activation();
    let md_tpa = md.timeline.quanta.threads_per_activation();
    assert!(
        am_tpa > md_tpa,
        "expected AM threads/activation ({am_tpa:.2}) > MD ({md_tpa:.2})"
    );
    let am_tpq = am.timeline.quanta.threads_per_quantum();
    let md_tpq = md.timeline.quanta.threads_per_quantum();
    assert!(
        am_tpq >= md_tpq * 0.99,
        "expected AM tpq ({am_tpq:.2}) >= MD tpq ({md_tpq:.2})"
    );
}

/// Hotspot attribution covers every fetch and resolves real symbols.
#[test]
fn hotspots_cover_all_fetches_with_named_symbols() {
    let profiled = Experiment::new(Implementation::Am).run_profiled(&fib(10));
    let profile = profiled.profile().unwrap();
    let h = &profile.hotspots;
    assert_eq!(h.total_fetches, profiled.run.stats.instructions);
    let region_sum: u64 = h.regions.iter().map(|r| r.fetches).sum();
    assert_eq!(region_sum, h.total_fetches);
    let names: Vec<&str> = h
        .regions
        .iter()
        .flat_map(|r| r.rows.iter().map(|row| row.name.as_str()))
        .collect();
    assert!(names.iter().any(|n| n.starts_with("sys:")), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("fib.")), "{names:?}");
    assert!(!names.contains(&"(unmapped)"), "{names:?}");
}
