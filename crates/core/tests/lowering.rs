//! White-box tests on the generated code shapes: the Table 1 mapping and
//! the §2.3 optimizations must be visible in the lowered instructions.

use tamsim_core::{link, Experiment, Implementation, LoweringOptions};
use tamsim_mdp::{disasm_region, MachineConfig};
use tamsim_tam::ids::regs::*;
use tamsim_tam::ops::*;
use tamsim_tam::{CodeblockBuilder, Program, ProgramBuilder, Value};

/// A one-codeblock program: inlet 0 stores its argument and posts a
/// thread that doubles it and returns.
fn store_post_program() -> Program {
    let mut pb = ProgramBuilder::new("p");
    let main = pb.declare("main");
    let mut cb = CodeblockBuilder::new("main");
    let s = cb.slot();
    let t = cb.thread();
    cb.add_inlet(vec![ldmsg(R0, 0), st(s, R0), post(t)]);
    cb.def_thread(
        t,
        1,
        vec![ld(R1, s), alu(AluOp::Add, R1, R1, reg(R1)), ret(vec![R1])],
    );
    pb.define(main, cb.finish());
    pb.main(main, vec![Value::Int(21)]);
    pb.build()
}

use tamsim_tam::AluOp;

fn user_listing(program: &Program, impl_: Implementation, opts: LoweringOptions) -> String {
    let linked = link(program, impl_, opts, MachineConfig::default());
    disasm_region(
        &linked.code,
        linked.cfg.map.user_code_base,
        linked.code.user_len(),
    )
}

#[test]
fn md_specialization_folds_the_thread_into_the_inlet() {
    let program = store_post_program();
    let full = user_listing(&program, Implementation::Md, LoweringOptions::default());
    let none = user_listing(&program, Implementation::Md, LoweringOptions::none());

    // Specialized: the frame store, the post, and the reload all vanish;
    // the thread body follows the inlet directly and ends in a suspend.
    assert!(
        full.lines().count() < none.lines().count(),
        "specialized listing should be shorter:\n{full}\nvs\n{none}"
    );
    // Store elimination: the sole-use slot write disappears entirely.
    let stores = |s: &str| s.matches("st    r0, [fp").count();
    assert!(stores(&full) < stores(&none) || !full.contains("st    r0, [fp"));
    // The specialized path needs no LCV pop: it suspends directly.
    assert!(full.contains("suspend"));
}

#[test]
fn am_inlets_call_the_post_library_md_inlets_do_not() {
    let program = store_post_program();
    let am = user_listing(&program, Implementation::Am, LoweringOptions::default());
    let md = user_listing(&program, Implementation::Md, LoweringOptions::none());
    // AM: the post is a call into system code (the post library).
    assert!(
        am.contains("call"),
        "AM inlet should call the post library:\n{am}"
    );
    // MD (even unoptimized): a direct branch into the thread, no call.
    assert!(
        !md.contains("call"),
        "MD inlet must not call a post library:\n{md}"
    );
}

#[test]
fn am_threads_have_the_interrupt_window_md_threads_do_not() {
    let program = store_post_program();
    let am = user_listing(&program, Implementation::Am, LoweringOptions::default());
    let md = user_listing(&program, Implementation::Md, LoweringOptions::none());
    // Figure 2(a): "interrupts are enabled briefly at the top of a thread".
    assert!(am.contains("eint") && am.contains("dint"), "{am}");
    assert!(!md.contains("eint"), "{md}");
}

#[test]
fn enabled_variant_omits_the_disable_at_thread_top() {
    let program = store_post_program();
    let en = user_listing(
        &program,
        Implementation::AmEnabled,
        LoweringOptions::default(),
    );
    // The thread top enables and stays enabled; the return path carries no
    // disable (the one CV-ish op here is the return send, which is atomic).
    let thread_part = en.split(";; thread start").nth(1).expect("thread present");
    assert!(thread_part.contains("eint"));
    assert!(!thread_part.contains("dint"), "{thread_part}");
}

#[test]
fn md_code_is_denser_than_am_code() {
    // "User code consists of the threads and inlets unique to each
    // program" — MD's lowering of the same program is consistently
    // smaller (no post sequences, no interrupt windows, direct dispatch).
    for bench in tamsim_programs::small_suite() {
        let am = link(
            &bench.program,
            Implementation::Am,
            LoweringOptions::default(),
            MachineConfig::default(),
        );
        let md = link(
            &bench.program,
            Implementation::Md,
            LoweringOptions::default(),
            MachineConfig::default(),
        );
        assert!(
            md.code.user_len() < am.code.user_len(),
            "{}: MD user code {} !< AM {}",
            bench.name,
            md.code.user_len(),
            am.code.user_len()
        );
    }
}

#[test]
fn frames_are_recycled_through_the_free_list() {
    // fib allocates thousands of frames; with per-codeblock free lists the
    // frame region stays small.
    let program = tamsim_programs::fib(15);
    // fib's unthrottled fan-out needs a roomier queue than the 4 KB
    // default (Experiment::run would auto-size; link() is manual).
    let mut exp = Experiment::new(Implementation::Md);
    exp.queue_words = [8192, 4096];
    let linked = exp.link(&program);
    let mut hooks = tamsim_mdp::NoHooks;
    let (stats, machine) = linked.run(&mut hooks).unwrap();
    assert!(stats.dispatches[1] > 1000, "plenty of calls happened");
    let bump = machine.mem.read(
        // FRAME_BUMP is the third OS global; read it via the public layout.
        linked.cfg.sys_layout().globals_base + 8,
    );
    let used = bump.as_addr() - linked.cfg.map.frame_base;
    // At most ~depth × frame size, not #calls × frame size.
    assert!(
        used < 64 * 1024,
        "frame region grew to {used} bytes — free list not reusing frames?"
    );
}

#[test]
fn queue_high_water_marks_fit_the_hardware_queue_for_the_suite() {
    // "We verified that substantial problems could be solved without
    // using all the memory available for message queues."
    for bench in tamsim_programs::small_suite() {
        for impl_ in [Implementation::Am, Implementation::Md] {
            let out = Experiment::new(impl_).run(&bench.program);
            assert!(
                out.queue_words <= [1024, 1024],
                "{} {:?}: queues {:?} exceed the 4 KB hardware size",
                bench.name,
                impl_,
                out.queue_words
            );
        }
    }
}
