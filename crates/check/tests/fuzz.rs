//! Integration tests for the differential harness.
//!
//! Two directions of validation: the hand-written paper benchmarks must
//! pass every machine-level and cross-implementation check (the checks are
//! not too strict), and a seeded bug must be caught and shrunk to a
//! readable reproducer (the checks are not too loose).

use tamsim_check::{
    check_program, failure_signature, fuzz_many, generate, reproducer_files, shrink, CheckConfig,
    FailureKind, Mutation,
};

/// The paper's benchmark suite passes the full differential check: all
/// three back-ends agree, every access respects the region model, and
/// message/frame accounting balances down to the documented shutdown
/// residue.
#[test]
fn paper_benchmarks_pass_differential_checks() {
    let cfg = CheckConfig {
        // Wavefront's boundary handling reads zero-defaulted frame slots
        // on purpose (masked loads); generated programs never do, so only
        // this hand-written-suite test relaxes the rule.
        check_uninit_frame_reads: false,
        ..CheckConfig::default()
    };
    for bench in tamsim_programs::small_suite() {
        let pass =
            check_program(&bench.program, &cfg).unwrap_or_else(|f| panic!("{}: {f}", bench.name));
        assert_eq!(pass.per_impl.len(), 3, "{}", bench.name);
        assert!(pass.trace_events > 0, "{}", bench.name);
    }
}

/// A 200-iteration fuzz campaign from a fixed master seed is clean. (CI's
/// smoke job and the nightly workflow run larger campaigns through the
/// `tamsim fuzz` CLI.)
#[test]
fn fuzz_campaign_seed_1_is_clean() {
    let report = fuzz_many(1, 200, &CheckConfig::default());
    assert!(
        report.is_clean(),
        "failing seeds: {:?}",
        report
            .failures
            .iter()
            .map(|f| (f.seed, f.failure.kind))
            .collect::<Vec<_>>()
    );
    assert_eq!(report.passed, 200);
    assert!(report.trace_events > 0);
}

/// The harness's own mutation test: an intentionally seeded bug (first
/// integer Add flipped to Sub in the MD back-end only) is caught as a
/// result divergence and shrunk to a reproducer of at most 10 static
/// instructions, whose `.tam` dump round-trips through the text parser.
#[test]
fn seeded_bug_is_caught_and_shrunk() {
    let cfg = CheckConfig {
        mutation: Some(Mutation::FlipFirstAddToSub),
        ..CheckConfig::default()
    };
    let report = fuzz_many(1, 32, &CheckConfig { ..cfg.clone() });
    let caught = report
        .failures
        .first()
        .expect("the seeded bug must be caught within 32 iterations");
    assert_eq!(caught.failure.kind, FailureKind::ResultDivergence);

    let program = generate(caught.seed, &cfg.gen);
    let kind = failure_signature(&program, &cfg).expect("failure must reproduce from the seed");
    let shrunk = shrink(&program, &cfg, kind);
    let minimal = &shrunk.program;
    minimal.validate().expect("reproducer must validate");
    assert_eq!(failure_signature(minimal, &cfg), Some(kind));
    assert!(
        minimal.static_ops() <= 10,
        "reproducer has {} static ops (started from {})",
        minimal.static_ops(),
        program.static_ops()
    );

    let (tam, manifest) = reproducer_files(minimal, caught.seed, &caught.failure, Some(&shrunk));
    let parsed = tamsim_tam::parse_program(&tam).expect("reproducer text must parse");
    assert_eq!(parsed.static_ops(), minimal.static_ops());
    assert!(manifest.contains("result-divergence"));
}
