//! Driver edge paths the mesh differentials rarely reach: the
//! gridlock-watchdog trip and the quiescence-backstop re-arm race.
//!
//! Both fixtures are pinned — generator seeds, network configurations,
//! and the exact cycle counts they produce — so any change to the
//! watchdog or backstop logic shows up as a concrete number, not a flaky
//! threshold. Each scenario is run under the lockstep driver and the
//! event-horizon fast-forward driver; the two must agree bit-for-bit on
//! every observable, including the edge-path counters themselves.

use tamsim_check::{generate, GenConfig};
use tamsim_core::Implementation;
use tamsim_net::{MeshExperiment, MeshRunResult, NetConfig, PlacementPolicy};

/// A saturating 2×2 fabric: one-message links and one-slot interface
/// queues, so a modest burst of remote traffic back-pressures all the
/// way into the senders.
fn tiny_fabric() -> NetConfig {
    NetConfig {
        link_capacity: 1,
        inject_capacity: 1,
        recv_capacity: 1,
        ..NetConfig::default()
    }
}

/// Run under both drivers and panic-capture each; the two outcomes must
/// match (both complete with identical results, or both abort).
fn both_drivers(
    exp: MeshExperiment,
    program: &tamsim_tam::Program,
) -> [Result<MeshRunResult, String>; 2] {
    [exp.lockstep(), exp].map(|e| {
        let p = program.clone();
        std::panic::catch_unwind(move || e.run(&p)).map_err(|e| {
            e.downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| e.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".into())
        })
    })
}

/// Gridlock on a saturated 2×2 mesh: seed 0's call fan-out wedges every
/// node behind the one-slot queues, nothing moves for a full watchdog
/// interval, and no amount of machine-queue doubling can cure a fabric
/// that small — the watchdog must abort with its gridlock diagnosis (not
/// hang, and not die on the machine's layout assert).
#[test]
fn watchdog_aborts_a_gridlocked_mesh_identically_under_both_drivers() {
    let program = generate(0, &GenConfig::default());
    let mut exp = MeshExperiment::new(Implementation::Am, 4)
        .with_placement(PlacementPolicy::RoundRobin)
        .with_net(tiny_fabric());
    exp.queue_words = [16, 16];
    exp.watchdog_cycles = 200;
    for outcome in both_drivers(exp, &program) {
        let msg = outcome.expect_err("a gridlocked mesh must abort, not complete");
        assert!(
            msg.contains("gridlocked program?"),
            "expected the watchdog diagnosis, got: {msg}"
        );
    }
}

/// The exact watchdog threshold. With 300-cycle hops the longest
/// no-progress stretch in this run is one message flight: 301 iterations
/// from the cycle after the last fabric move to the next one. A watchdog
/// set to that stretch never trips (`cycle - last_progress` must *exceed*
/// it); one cycle tighter trips on the first flight, and — since a
/// latency stall is not cured by queue growth — every retry trips again
/// until the queue-demand abort. The fast-forward driver never executes
/// the skipped iterations, so its jump-time check (`horizon >
/// last_progress + watchdog_cycles`) must reproduce this boundary to the
/// cycle.
#[test]
fn watchdog_boundary_is_exact_under_both_drivers() {
    let program = generate(0, &GenConfig::default());
    for (impl_, cycles_at_boundary) in [(Implementation::Am, 7455), (Implementation::Md, 7149)] {
        let mut exp = MeshExperiment::new(impl_, 4)
            .with_placement(PlacementPolicy::RoundRobin)
            .with_net(NetConfig {
                hop_latency: 300,
                ..NetConfig::default()
            });

        // Watchdog exactly at the longest quiet stretch: completes.
        exp.watchdog_cycles = 301;
        for outcome in both_drivers(exp, &program) {
            let run = outcome.expect("watchdog at the boundary must not trip");
            assert_eq!(run.watchdog_trips, 0, "{impl_:?}");
            assert_eq!(run.cycles, cycles_at_boundary, "{impl_:?}");
        }

        // One cycle tighter: trips on the first long flight and aborts.
        exp.watchdog_cycles = 300;
        for outcome in both_drivers(exp, &program) {
            let msg = outcome.expect_err("a too-tight watchdog must trip");
            assert!(msg.contains("gridlocked program?"), "{impl_:?}: {msg}");
        }
    }
}

/// The arrival/suspend race behind the quiescence backstop: a message
/// lands between an AM scheduler's final frame-queue check and its
/// suspend, so the whole mesh looks idle with posted frames still
/// queued. The backstop re-arms the node instead of quiescing. These two
/// suite runs are pinned configurations where the race really happens —
/// `backstop_rearms` counts it — and the run still completes with the
/// right answer at the exact same cycle under both drivers.
#[test]
fn backstop_rearm_race_is_counted_and_resolved_identically() {
    let suite = tamsim_programs::small_suite();
    let fixture = [
        (
            "DTW",
            Implementation::Am,
            PlacementPolicy::LocalityAware,
            1,
            8768,
        ),
        (
            "Wavefront",
            Implementation::AmEnabled,
            PlacementPolicy::RoundRobin,
            2,
            14688,
        ),
    ];
    for (name, impl_, policy, rearms, cycles) in fixture {
        let bench = suite.iter().find(|b| b.name == name).unwrap();
        let exp = MeshExperiment::new(impl_, 4).with_placement(policy);
        let [lock, fast] = both_drivers(exp, &bench.program)
            .map(|o| o.unwrap_or_else(|e| panic!("{name} must complete, panicked: {e}")));
        for run in [&lock, &fast] {
            assert_eq!(run.backstop_rearms, rearms, "{name}");
            assert_eq!(run.cycles, cycles, "{name}");
        }
        assert_eq!(lock.result, fast.result, "{name}");
        assert_eq!(lock.stats, fast.stats, "{name}");
        assert_eq!(lock.activity, fast.activity, "{name}");
    }
}
