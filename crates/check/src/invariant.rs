//! Machine-level invariant checking, as a trace-sink layer over the
//! access/mark stream of a `tamsim-mdp` run.
//!
//! The checker validates every event the machine emits, with no knowledge
//! of *which* program is running:
//!
//! * **Region discipline** — every access classifies under
//!   [`MemoryMap::try_classify`] (no access above the modeled top of
//!   memory), every address is word-aligned, instruction fetches come only
//!   from code regions, and data reads/writes never target code regions
//!   (the lowerings keep code immutable; descriptors and inlet tables live
//!   in system data).
//! * **Frame initialization** — a word-granularity written-bitmap over the
//!   frame region flags any read of a frame word that was never written
//!   during the run. Load-time memory seeding touches only code,
//!   descriptors, globals, and heap arrays, and boot-message injection
//!   only queue memory, so a frame word's first event must be a write: the
//!   frame allocator initializes every header word (link, RCV, parent,
//!   reply, entry counts) before any code reads it, and generated programs
//!   store every user slot before loading it.
//! * **Queue occupancy conservation** — every queue-occupancy sample (the
//!   machine samples both queues at each mark) stays within the configured
//!   capacity, per priority.
//!
//! Violations accumulate as human-readable strings (capped — a broken run
//! can emit millions) rather than panicking, so the differential runner
//! can report them per implementation and the shrinker can use "still
//! violates" as its failure signature.

use tamsim_mdp::MachineConfig;
use tamsim_trace::{Access, AccessKind, MarkSink, MemoryMap, TraceSink};

/// Cap on retained violation messages (the total count keeps counting).
const MAX_RETAINED: usize = 16;

/// A [`TraceSink`]/[`MarkSink`] layer that validates the event stream of
/// one machine run. Feed it via `SinkHooks`, typically teed with a trace
/// recorder.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    map: MemoryMap,
    queue_caps: [u32; 2],
    /// One bit per frame-region word: set once written.
    frame_written: Vec<u64>,
    check_uninit_reads: bool,
    /// Retained violation messages (first [`MAX_RETAINED`]).
    pub violations: Vec<String>,
    /// Total violations observed, including ones past the retention cap.
    pub total_violations: u64,
}

impl InvariantChecker {
    /// A checker for runs under `cfg` (the map bounds the regions, the
    /// queue capacities bound the occupancy samples).
    pub fn new(cfg: &MachineConfig) -> Self {
        let frame_words = ((cfg.map.heap_base - cfg.map.frame_base) / 4) as usize;
        InvariantChecker {
            map: cfg.map,
            queue_caps: cfg.queue_words,
            frame_written: vec![0u64; frame_words.div_ceil(64)],
            check_uninit_reads: true,
            violations: Vec::new(),
            total_violations: 0,
        }
    }

    /// Disable the never-written-frame-word rule.
    ///
    /// Hand-written programs may legitimately read zero-defaulted frame
    /// slots — the wavefront benchmark's boundary handling loads
    /// `frame[base + i]` unconditionally and multiplies by a bounds
    /// predicate, relying on out-of-range slots reading as zero. Generated
    /// programs always store before loading, so the fuzzer keeps the rule
    /// on.
    pub fn without_uninit_read_check(mut self) -> Self {
        self.check_uninit_reads = false;
        self
    }

    /// Whether the run stayed clean.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    fn violate(&mut self, msg: String) {
        self.total_violations += 1;
        if self.violations.len() < MAX_RETAINED {
            self.violations.push(msg);
        }
    }

    /// Bit index of a frame-region byte address, if it is one.
    fn frame_bit(&self, addr: u32) -> Option<usize> {
        (self.map.frame_base..self.map.heap_base)
            .contains(&addr)
            .then(|| ((addr - self.map.frame_base) / 4) as usize)
    }
}

impl TraceSink for InvariantChecker {
    fn access(&mut self, access: Access) {
        let Some(region) = self.map.try_classify(access.addr) else {
            self.violate(format!(
                "{} at {:#x}: above the modeled top of memory",
                access.kind.name(),
                access.addr
            ));
            return;
        };
        if !access.addr.is_multiple_of(4) {
            self.violate(format!(
                "{} at {:#x}: unaligned address",
                access.kind.name(),
                access.addr
            ));
            return;
        }
        match access.kind {
            AccessKind::Fetch => {
                if !region.is_code() {
                    self.violate(format!(
                        "fetch at {:#x}: from {} (not a code region)",
                        access.addr,
                        region.name()
                    ));
                }
            }
            AccessKind::Read | AccessKind::Write => {
                if region.is_code() {
                    self.violate(format!(
                        "{} at {:#x}: data access in {}",
                        access.kind.name(),
                        access.addr,
                        region.name()
                    ));
                    return;
                }
                if let Some(bit) = self.frame_bit(access.addr) {
                    if access.kind == AccessKind::Write {
                        self.frame_written[bit / 64] |= 1 << (bit % 64);
                    } else if self.check_uninit_reads
                        && self.frame_written[bit / 64] & (1 << (bit % 64)) == 0
                    {
                        self.violate(format!(
                            "read at {:#x}: frame word never written this run",
                            access.addr
                        ));
                    }
                }
            }
        }
    }
}

impl MarkSink for InvariantChecker {
    fn queue_sample(&mut self, used_words: [u32; 2]) {
        let caps = self.queue_caps;
        for (i, (&used, &cap)) in used_words.iter().zip(&caps).enumerate() {
            if used > cap {
                self.violate(format!(
                    "queue occupancy sample {used} words exceeds capacity {cap} (priority {i})",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> InvariantChecker {
        InvariantChecker::new(&MachineConfig::default())
    }

    #[test]
    fn clean_stream_stays_clean() {
        let map = MemoryMap::default();
        let mut c = checker();
        c.access(Access::fetch(map.system_code_base + 8));
        c.access(Access::fetch(map.user_code_base));
        c.access(Access::read(map.system_data_base + 4));
        c.access(Access::write(map.frame_base + 16));
        c.access(Access::read(map.frame_base + 16));
        c.access(Access::read(map.heap_base)); // empty-cell state reads are legal
        c.queue_sample([4, 0]);
        assert!(c.is_clean(), "{:?}", c.violations);
    }

    #[test]
    fn flags_out_of_range_and_unaligned() {
        let mut c = checker();
        c.access(Access::read(MemoryMap::default().top));
        c.access(Access::write(MemoryMap::default().frame_base + 2));
        assert_eq!(c.total_violations, 2);
        assert!(c.violations[0].contains("top of memory"));
        assert!(c.violations[1].contains("unaligned"));
    }

    #[test]
    fn flags_region_discipline_breaches() {
        let map = MemoryMap::default();
        let mut c = checker();
        c.access(Access::fetch(map.frame_base)); // fetch from data
        c.access(Access::write(map.user_code_base + 4)); // write to code
        c.access(Access::read(map.system_code_base)); // read from code
        assert_eq!(c.total_violations, 3);
    }

    #[test]
    fn flags_read_of_never_written_frame_word() {
        let map = MemoryMap::default();
        let mut c = checker();
        c.access(Access::read(map.frame_base + 64));
        assert_eq!(c.total_violations, 1);
        assert!(c.violations[0].contains("never written"));
        // Writing first makes the same read legal.
        c.access(Access::write(map.frame_base + 68));
        c.access(Access::read(map.frame_base + 68));
        assert_eq!(c.total_violations, 1);
    }

    #[test]
    fn uninit_read_rule_can_be_disabled() {
        let map = MemoryMap::default();
        let mut c = checker().without_uninit_read_check();
        c.access(Access::read(map.frame_base + 64));
        assert!(c.is_clean());
        // The other rules stay armed.
        c.access(Access::fetch(map.frame_base));
        assert_eq!(c.total_violations, 1);
    }

    #[test]
    fn flags_queue_overflow_samples() {
        let mut c = checker();
        let cap = MachineConfig::default().queue_words;
        c.queue_sample(cap);
        assert!(c.is_clean());
        c.queue_sample([cap[0] + 1, 0]);
        assert_eq!(c.total_violations, 1);
    }

    #[test]
    fn retention_is_capped_but_counting_is_not() {
        let mut c = checker();
        for i in 0..100 {
            c.access(Access::fetch(MemoryMap::default().frame_base + i * 4));
        }
        assert_eq!(c.total_violations, 100);
        assert_eq!(c.violations.len(), MAX_RETAINED);
    }
}
