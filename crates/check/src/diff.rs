//! The differential runner: one program, three back-ends, every invariant.
//!
//! [`check_program`] executes a TAM program under AM, AM-enabled, and MD
//! and fails unless all of the following hold:
//!
//! * every back-end halts **explicitly** (the completion handler ran; a
//!   quiescent end means a lost message or a deadlocked entry count);
//! * the [`crate::InvariantChecker`] saw zero violations;
//! * **message conservation** is exact: every message ever enqueued
//!   (`sends` + the boot injection) was dispatched or is still sitting in
//!   a queue;
//! * **termination residue** is exactly what the runtime's shutdown leaves
//!   behind — nothing more. A [`tamsim_tam::TOp::Return`] sends the reply
//!   *before* the frame-free message, and main's reply goes to the
//!   synthetic completion inlet, which halts. Under plain AM (handlers
//!   chain at high priority, FIFO) the halt lands with the final `ffree`
//!   still queued; under AM-enabled the high-priority reply preempts
//!   main's low-priority `Return` *between the two sends*, so the `ffree`
//!   is never even sent; either way main's frame stays allocated. Under MD
//!   the completion inlet runs at low priority, so the already-sent
//!   high-priority `ffree` is handled first and everything drains. Any
//!   other leftover message or unfreed frame — counted by walking the
//!   per-codeblock free lists against the frame-region bump pointer — is a
//!   leak;
//! * all three back-ends produce **bit-identical results** and final
//!   I-structure array states;
//! * replaying the AM run's recorded trace through
//!   [`CacheBank::replay_parallel`] is bit-identical to streaming the same
//!   trace through an inline [`CacheBank`] (the record/replay engine that
//!   produces every figure cross-checked on a trace nobody hand-picked);
//! * with [`CheckConfig::mesh`] set, every back-end additionally runs on a
//!   1×1 [`tamsim_net::MeshExperiment`] and must match the single-node run
//!   bit-for-bit — result words, final arrays, instruction count, machine
//!   counters, and region/kind access counts — with zero network traffic.
//!   The mesh driver degenerating to exactly `Machine::run` is the anchor
//!   invariant every multi-node number rests on, so it gets fuzzed, not
//!   just unit-tested. On top of that, every back-end runs on a 4-node
//!   mesh under all three placement policies twice — once with the lockstep
//!   driver, once with the event-horizon fast-forward — and the two must
//!   agree in every observable (cycles, per-node counters and timelines,
//!   fabric statistics, queue growth): the fast-forward may only skip
//!   cycles that were provably no-ops.
//!
//! A [`Mutation`] injects a deliberate bug into the MD back-end's copy of
//! the program — the harness's self-test that divergences are actually
//! caught (and shrinkable; see [`crate::shrink`]).

use crate::invariant::InvariantChecker;
use tamsim_cache::{CacheBank, CacheGeometry};
use tamsim_core::{link, FrameLayout, GlobalsMap, Implementation, LoweringOptions};
use tamsim_mdp::{HaltReason, Machine, MachineConfig, RunError, RunStats, SinkHooks};
use tamsim_net::{MeshExperiment, MeshRunResult, NetTraceMode, PlacementPolicy};
use tamsim_tam::{AluOp, Program, TOp};
use tamsim_trace::{
    Access, AccessCounts, CountingSink, Mark, MarkSink, Priority, Tee, TraceLog, TraceSink,
};

use crate::gen::GenConfig;

/// Optional per-run recorders, so one `Tee` shape serves every
/// combination: the trace log is armed for the recorded (AM) run only,
/// the access counters only when the mesh cross-check needs a reference.
struct Recorders {
    counts: Option<CountingSink>,
    log: Option<TraceLog>,
}

impl TraceSink for Recorders {
    #[inline]
    fn access(&mut self, access: Access) {
        if let Some(counts) = &mut self.counts {
            counts.access(access);
        }
        if let Some(log) = &mut self.log {
            log.access(access);
        }
    }
}

impl MarkSink for Recorders {
    #[inline]
    fn instruction(&mut self, pri: Priority, pc: u32) {
        if let Some(log) = &mut self.log {
            log.instruction(pri, pc);
        }
    }

    #[inline]
    fn queue_sample(&mut self, used_words: [u32; 2]) {
        if let Some(log) = &mut self.log {
            log.queue_sample(used_words);
        }
    }

    #[inline]
    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        if let Some(log) = &mut self.log {
            log.mark(mark, frame, pri);
        }
    }
}

/// The three back-ends under test, with their display labels.
pub const IMPLS: [(Implementation, &str); 3] = [
    (Implementation::Am, "am"),
    (Implementation::AmEnabled, "am-en"),
    (Implementation::Md, "md"),
];

/// A deliberate bug to seed into the MD back-end's copy of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flip the first integer `Add` (program order: per codeblock, threads
    /// then inlets) to `Sub`.
    FlipFirstAddToSub,
}

/// Apply `mutation` to a copy of `program`. Returns `None` if the program
/// has no site the mutation applies to.
pub fn mutate(program: &Program, mutation: Mutation) -> Option<Program> {
    match mutation {
        Mutation::FlipFirstAddToSub => {
            let mut p = program.clone();
            for cb in &mut p.codeblocks {
                let bodies = cb
                    .threads
                    .iter_mut()
                    .map(|t| &mut t.ops)
                    .chain(cb.inlets.iter_mut().map(|i| &mut i.ops));
                for ops in bodies {
                    for op in ops {
                        if let TOp::Alu { op: o, .. } = op {
                            if *o == AluOp::Add {
                                *o = AluOp::Sub;
                                return Some(p);
                            }
                        }
                    }
                }
            }
            None
        }
    }
}

/// Everything one [`check_program`] / [`crate::fuzz_many`] call needs.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Generator bounds (used by [`crate::fuzz_many`]).
    pub gen: GenConfig,
    /// Initial queue capacity in words (doubled on overflow).
    pub queue_words: u32,
    /// Queue capacity at which an overflow becomes a failure.
    pub max_queue_words: u32,
    /// Instruction budget per run; exhaustion is a `Hung` failure.
    pub fuel: u64,
    /// Deliberate bug to inject into the MD run (harness self-test).
    pub mutation: Option<Mutation>,
    /// Flag reads of never-written frame words. On for generated programs
    /// (they always store before loading); off for hand-written programs
    /// that read zero-defaulted slots deliberately (see
    /// [`InvariantChecker::without_uninit_read_check`]).
    pub check_uninit_frame_reads: bool,
    /// Cache sweep for the replay-vs-inline cross-check (empty = skip).
    pub geometries: Vec<CacheGeometry>,
    /// Also run every back-end on a 1×1 mesh and require bit-identity
    /// with the single-node run (`tamsim fuzz --mesh`; see module docs).
    pub mesh: bool,
    /// Cross-check the two interpreter dispatch paths: re-run every
    /// back-end under baseline and pre-decoded dispatch with full-stream
    /// recording and require bit-identical results, counters, access
    /// events, and marks (`--no-predecode` disables the decoded path
    /// everywhere instead). On by default — this is the fuzzing wall the
    /// decoded interpreter's event-batching invariant leans on.
    pub dispatch: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            gen: GenConfig::default(),
            queue_words: 512,
            max_queue_words: 1 << 20,
            fuel: 50_000_000,
            mutation: None,
            check_uninit_frame_reads: true,
            // Three disparate geometries keep the cross-check cheap while
            // covering distinct block sizes (each folds its own
            // block-trace) and associativities.
            geometries: vec![
                CacheGeometry::new(1 << 12, 1, 16),
                CacheGeometry::new(1 << 14, 2, 32),
                CacheGeometry::new(1 << 16, 4, 64),
            ],
            mesh: false,
            dispatch: true,
        }
    }
}

/// Why a check failed (the shrinker preserves this as its signature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A queue overflowed even at [`CheckConfig::max_queue_words`].
    QueueOverflow,
    /// A run exhausted its instruction budget.
    Hung,
    /// A run ended quiescent instead of executing `Halt`.
    NoCompletion,
    /// The machine-level invariant checker flagged the run.
    InvariantViolation,
    /// Messages enqueued and dispatched don't balance.
    SendRecvMismatch,
    /// Messages beyond the expected shutdown residue were left queued.
    QueueResidue,
    /// Frame words beyond the expected shutdown residue were left
    /// allocated.
    LeakedFrames,
    /// The back-ends disagree on the result words or final array state.
    ResultDivergence,
    /// Parallel trace replay disagrees with inline cache simulation.
    CacheMismatch,
    /// A 1×1 mesh run is not bit-identical to the single-node run.
    MeshDivergence,
    /// The pre-decoded dispatch path is not bit-identical to the baseline
    /// interpreter (results, counters, access events, or marks).
    DispatchDivergence,
    /// The machine model panicked (wild address, malformed message) —
    /// reachable only through shrink candidates that feed garbage
    /// registers into address positions, never from validated generated
    /// programs.
    MachineTrap,
}

impl FailureKind {
    /// Stable lowercase name (manifests, reports).
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::QueueOverflow => "queue-overflow",
            FailureKind::Hung => "hung",
            FailureKind::NoCompletion => "no-completion",
            FailureKind::InvariantViolation => "invariant-violation",
            FailureKind::SendRecvMismatch => "send-recv-mismatch",
            FailureKind::QueueResidue => "queue-residue",
            FailureKind::LeakedFrames => "leaked-frames",
            FailureKind::ResultDivergence => "result-divergence",
            FailureKind::CacheMismatch => "cache-mismatch",
            FailureKind::MeshDivergence => "mesh-divergence",
            FailureKind::DispatchDivergence => "dispatch-divergence",
            FailureKind::MachineTrap => "machine-trap",
        }
    }
}

/// A failed check: the signature kind plus a human-readable account.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// The failure signature.
    pub kind: FailureKind,
    /// What exactly went wrong (addresses, values, which back-end).
    pub detail: String,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind.name(), self.detail)
    }
}

/// Per-back-end observations from a passing run.
#[derive(Debug, Clone)]
pub struct ImplReport {
    /// Display label ("am", "am-en", "md").
    pub label: &'static str,
    /// Result words as raw bit patterns.
    pub result_bits: Vec<u64>,
    /// Final I-structure array states as bit patterns.
    pub arrays: Vec<Vec<Option<u64>>>,
    /// Instructions the run executed.
    pub instructions: u64,
}

/// A passing differential check over all three back-ends.
#[derive(Debug, Clone)]
pub struct CheckPass {
    /// One report per entry of [`IMPLS`], in that order.
    pub per_impl: Vec<ImplReport>,
    /// Access events in the AM run's recorded trace (cross-check size).
    pub trace_events: usize,
}

/// Run `program` under all three back-ends and check every invariant.
pub fn check_program(program: &Program, cfg: &CheckConfig) -> Result<CheckPass, CheckFailure> {
    let mut per_impl = Vec::with_capacity(IMPLS.len());
    let mut am_log: Option<TraceLog> = None;
    for (impl_, label) in IMPLS {
        let mutated;
        let subject = match (impl_, cfg.mutation) {
            (Implementation::Md, Some(m)) => match mutate(program, m) {
                Some(p) => {
                    mutated = p;
                    &mutated
                }
                None => program,
            },
            _ => program,
        };
        // Record the trace of the AM run only: one log is enough for the
        // replay-vs-inline cross-check, and the others would just burn
        // memory.
        let record = impl_ == Implementation::Am && !cfg.geometries.is_empty();
        let (report, log) = run_one(subject, impl_, label, cfg, record)?;
        per_impl.push(report);
        if let Some(log) = log {
            am_log = Some(log);
        }
    }

    // Cross-implementation agreement, bit-exact.
    for r in &per_impl[1..] {
        if r.result_bits != per_impl[0].result_bits {
            return Err(CheckFailure {
                kind: FailureKind::ResultDivergence,
                detail: format!(
                    "result mismatch: {} returned {:?}, {} returned {:?}",
                    per_impl[0].label, per_impl[0].result_bits, r.label, r.result_bits
                ),
            });
        }
        if r.arrays != per_impl[0].arrays {
            return Err(CheckFailure {
                kind: FailureKind::ResultDivergence,
                detail: format!(
                    "final array state mismatch between {} and {}",
                    per_impl[0].label, r.label
                ),
            });
        }
    }

    // Record/replay cross-check: the parallel folded replay must be
    // bit-identical to streaming the same recorded events inline.
    let mut trace_events = 0;
    if let Some(log) = &am_log {
        trace_events = log.len();
        let replayed = CacheBank::replay_parallel(&cfg.geometries, log);
        let mut bank = CacheBank::symmetric(cfg.geometries.iter().copied());
        for access in log {
            bank.access(access);
        }
        let inline = bank.summaries();
        if replayed != inline {
            let diff = replayed
                .iter()
                .zip(&inline)
                .find(|(a, b)| a != b)
                .map(|((g, a), (_, b))| format!("{g:?}: replay {a:?} vs inline {b:?}"))
                .unwrap_or_else(|| "geometry sets differ".to_string());
            return Err(CheckFailure {
                kind: FailureKind::CacheMismatch,
                detail: format!("replay_parallel diverges from inline simulation: {diff}"),
            });
        }
    }

    Ok(CheckPass {
        per_impl,
        trace_events,
    })
}

/// Run `f` with machine-model panics captured instead of unwinding into
/// the harness (shrink candidates can feed garbage registers into address
/// positions, and the machine traps on wild addresses by design). A
/// thread-local flag silences the default panic hook for these expected
/// traps only.
fn catch_trap<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    use std::cell::Cell;
    use std::sync::Once;
    thread_local! {
        static SILENCED: Cell<bool> = const { Cell::new(false) };
    }
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCED.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
    SILENCED.with(|s| s.set(true));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    SILENCED.with(|s| s.set(false));
    outcome.map_err(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "machine model panicked".to_string())
    })
}

/// Run one back-end with queue-size probing and full invariant checking.
fn run_one(
    program: &Program,
    impl_: Implementation,
    label: &'static str,
    cfg: &CheckConfig,
    record: bool,
) -> Result<(ImplReport, Option<TraceLog>), CheckFailure> {
    let mut queue_words = cfg.queue_words;
    loop {
        let mcfg = MachineConfig {
            queue_words: [queue_words, queue_words],
            fuel: cfg.fuel,
            ..MachineConfig::default()
        };
        let linked = link(program, impl_, LoweringOptions::default(), mcfg);
        let mut checker = InvariantChecker::new(&mcfg);
        if !cfg.check_uninit_frame_reads {
            checker = checker.without_uninit_read_check();
        }
        let mut hooks = SinkHooks(Tee::new(
            checker,
            Recorders {
                // Armed only when the mesh cross-check needs a single-node
                // reference to compare access counts against.
                counts: cfg.mesh.then(|| CountingSink::new(mcfg.map)),
                log: record.then(TraceLog::new),
            },
        ));
        let run = match catch_trap(|| linked.run(&mut hooks)) {
            Ok(run) => run,
            Err(trap) => {
                return Err(CheckFailure {
                    kind: FailureKind::MachineTrap,
                    detail: format!("{label}: {trap}"),
                });
            }
        };
        match run {
            Err(RunError::QueueOverflow { pri }) => {
                if queue_words >= cfg.max_queue_words {
                    return Err(CheckFailure {
                        kind: FailureKind::QueueOverflow,
                        detail: format!(
                            "{label}: {pri:?} queue overflows even at {queue_words} words"
                        ),
                    });
                }
                queue_words *= 2;
            }
            Err(RunError::FuelExhausted) => {
                return Err(CheckFailure {
                    kind: FailureKind::Hung,
                    detail: format!("{label}: no halt within {} instructions", cfg.fuel),
                });
            }
            Ok((stats, machine)) => {
                let checker = &hooks.0.a;
                post_run_checks(program, impl_, label, &mcfg, &stats, &machine, checker)?;
                let report = ImplReport {
                    label,
                    result_bits: linked
                        .read_result(&machine)
                        .iter()
                        .map(|w| w.bits())
                        .collect(),
                    arrays: linked
                        .read_arrays(&machine)
                        .iter()
                        .map(|a| a.iter().map(|c| c.map(|w| w.bits())).collect())
                        .collect(),
                    instructions: stats.instructions,
                };
                if let Some(counts) = &hooks.0.b.counts {
                    let counts = counts.counts;
                    mesh_identity_check(
                        program,
                        impl_,
                        label,
                        cfg,
                        queue_words,
                        &stats,
                        &report,
                        &counts,
                    )?;
                }
                if cfg.dispatch {
                    dispatch_cross_check(program, impl_, label, queue_words, cfg.fuel)?;
                }
                return Ok((report, hooks.0.b.log.take()));
            }
        }
    }
}

/// Re-run `program` under both interpreter dispatch paths — the baseline
/// enum-walking `step` loop and the pre-decoded batched loop — with
/// full-stream recording ([`TraceLog`] retains accesses, marks, and cycle
/// counters), and require bit-identity in every observable: result words,
/// final arrays, machine counters, every access event in recorded order,
/// every mark record, and the per-priority cycle counters. Any gap means
/// the decoded interpreter's batching broke the event-stream contract.
fn dispatch_cross_check(
    program: &Program,
    impl_: Implementation,
    label: &'static str,
    queue_words: u32,
    fuel: u64,
) -> Result<(), CheckFailure> {
    let fail = |what: String| CheckFailure {
        kind: FailureKind::DispatchDivergence,
        detail: format!("{label}: {what} (baseline vs pre-decoded dispatch)"),
    };
    let mcfg = MachineConfig {
        queue_words: [queue_words, queue_words],
        fuel,
        ..MachineConfig::default()
    };
    let mut runs = Vec::with_capacity(2);
    for predecode in [false, true] {
        let name = if predecode { "decoded" } else { "baseline" };
        let opts = LoweringOptions {
            predecode,
            ..LoweringOptions::default()
        };
        let linked = link(program, impl_, opts, mcfg);
        let mut hooks = SinkHooks(TraceLog::new());
        let run = catch_trap(|| linked.run(&mut hooks))
            .map_err(|trap| fail(format!("{name} run trapped: {trap}")))?;
        let (stats, machine) = run.map_err(|e| fail(format!("{name} run failed: {e}")))?;
        let result: Vec<u64> = linked
            .read_result(&machine)
            .iter()
            .map(|w| w.bits())
            .collect();
        let arrays: Vec<Vec<Option<u64>>> = linked
            .read_arrays(&machine)
            .iter()
            .map(|a| a.iter().map(|c| c.map(|w| w.bits())).collect())
            .collect();
        runs.push((stats, result, arrays, hooks.0));
    }
    let (base_stats, base_result, base_arrays, base_log) = &runs[0];
    let (dec_stats, dec_result, dec_arrays, dec_log) = &runs[1];
    if dec_result != base_result {
        return Err(fail(format!(
            "result mismatch: baseline {base_result:?}, decoded {dec_result:?}"
        )));
    }
    if dec_arrays != base_arrays {
        return Err(fail("final array state diverges".into()));
    }
    if dec_stats != base_stats {
        return Err(fail(format!(
            "machine counters diverge: baseline {base_stats:?}, decoded {dec_stats:?}"
        )));
    }
    if dec_log.len() != base_log.len() {
        return Err(fail(format!(
            "access stream length diverges: baseline {} events, decoded {}",
            base_log.len(),
            dec_log.len()
        )));
    }
    if let Some((i, (b, d))) = base_log
        .iter()
        .zip(dec_log.iter())
        .enumerate()
        .find(|(_, (b, d))| b != d)
    {
        return Err(fail(format!(
            "access stream diverges at event {i}: baseline {b:?}, decoded {d:?}"
        )));
    }
    if dec_log.marks() != base_log.marks() {
        return Err(fail("mark records diverge".into()));
    }
    if dec_log.cycles() != base_log.cycles() {
        return Err(fail(format!(
            "cycle counters diverge: baseline {:?}, decoded {:?}",
            base_log.cycles(),
            dec_log.cycles()
        )));
    }
    Ok(())
}

/// Re-run `program` on a 1×1 mesh with the same machine configuration and
/// require bit-identity with the finished single-node run: same result
/// words, final arrays, instruction count, machine counters, and
/// region/kind access counts, with zero network traffic and no queue
/// growth. Any gap means the mesh driver is not the computation the
/// multi-node numbers claim to scale.
#[allow(clippy::too_many_arguments)]
fn mesh_identity_check(
    program: &Program,
    impl_: Implementation,
    label: &'static str,
    cfg: &CheckConfig,
    queue_words: u32,
    stats: &RunStats,
    report: &ImplReport,
    counts: &AccessCounts,
) -> Result<(), CheckFailure> {
    let fail = |what: String| CheckFailure {
        kind: FailureKind::MeshDivergence,
        detail: format!("{label}: {what}"),
    };
    let mut exp = MeshExperiment::new(impl_, 1);
    exp.fuel = cfg.fuel;
    exp.queue_words = [queue_words, queue_words];
    let mesh = catch_trap(|| exp.run(program))
        .map_err(|trap| fail(format!("1x1 mesh run trapped: {trap}")))?;

    if mesh.queue_words != [queue_words; 2] {
        return Err(fail(format!(
            "1x1 mesh grew its queues to {:?}; single-node ran at {queue_words} words",
            mesh.queue_words
        )));
    }
    let mesh_result: Vec<u64> = mesh.result.iter().map(|w| w.bits()).collect();
    if mesh_result != report.result_bits {
        return Err(fail(format!(
            "result mismatch: single-node {:?}, 1x1 mesh {:?}",
            report.result_bits, mesh_result
        )));
    }
    let mesh_arrays: Vec<Vec<Option<u64>>> = mesh
        .arrays
        .iter()
        .map(|a| a.iter().map(|c| c.map(|w| w.bits())).collect())
        .collect();
    if mesh_arrays != report.arrays {
        return Err(fail("final array state diverges on the 1x1 mesh".into()));
    }
    if mesh.stats[0] != *stats {
        return Err(fail(format!(
            "machine counters diverge: single-node {stats:?}, 1x1 mesh {:?}",
            mesh.stats[0]
        )));
    }
    if mesh.counts[0] != *counts {
        return Err(fail(
            "region/kind access counts diverge on the 1x1 mesh".into(),
        ));
    }
    if mesh.net.injected_msgs != 0 || mesh.total_stall_cycles() != 0 {
        return Err(fail(format!(
            "1x1 mesh touched the network: {} message(s) injected, {} stall cycle(s)",
            mesh.net.injected_msgs,
            mesh.total_stall_cycles()
        )));
    }
    mesh_driver_cross_check(program, impl_, label, cfg)
}

/// Node count the fuzz cross-check runs the two mesh drivers on: a 2×2
/// mesh, the smallest with multi-hop routes in both dimensions.
const CROSS_CHECK_NODES: u32 = 4;

/// Run `program` on a [`CROSS_CHECK_NODES`]-node mesh under all three
/// drivers — PR 4's lockstep loop, the event-horizon fast-forward, and
/// the epoch-barrier parallel driver on two worker threads — and every
/// placement policy (including the dynamically-migrating `steal`), and
/// require bit-identity in every observable. The
/// fast-forward may only skip cycles that were pure no-ops, and the
/// parallel driver's barriers may only reorder work the serial cycle
/// already treats as unordered; any divergence here means one of them
/// broke that contract.
fn mesh_driver_cross_check(
    program: &Program,
    impl_: Implementation,
    label: &'static str,
    cfg: &CheckConfig,
) -> Result<(), CheckFailure> {
    for policy in PlacementPolicy::ALL {
        let trap_fail = |what: String| CheckFailure {
            kind: FailureKind::MeshDivergence,
            detail: format!(
                "{label}: {what} ({CROSS_CHECK_NODES} nodes, {})",
                policy.label()
            ),
        };
        let mut exp = MeshExperiment::new(impl_, CROSS_CHECK_NODES).with_placement(policy);
        exp.fuel = cfg.fuel;
        // Multi-node runs may legitimately need more queue space than the
        // single-node run probed; all drivers must grow identically.
        exp.queue_words = [cfg.queue_words, cfg.queue_words];
        let lock = catch_trap(|| exp.lockstep().run(program))
            .map_err(|trap| trap_fail(format!("lockstep run trapped: {trap}")))?;
        // The fast leg runs with network tracing on (bounded ring) while
        // the lockstep leg stays untraced, so every fuzz iteration also
        // proves instrumentation is invisible to the run itself.
        let fast = catch_trap(|| exp.traced(NetTraceMode::Ring(256)).run(program))
            .map_err(|trap| trap_fail(format!("fast-forward run trapped: {trap}")))?;
        // The parallel leg fans the same run across two worker threads.
        let par = catch_trap(|| exp.with_threads(2).run(program))
            .map_err(|trap| trap_fail(format!("parallel run trapped: {trap}")))?;
        for (leg, run) in [("fast-forward", &fast), ("parallel x2", &par)] {
            mesh_runs_identical(label, leg, policy, &lock, run)?;
        }
    }
    Ok(())
}

/// Require bit-identity between a lockstep mesh run and another driver's
/// run of the same configuration, in every observable.
fn mesh_runs_identical(
    label: &str,
    leg: &str,
    policy: PlacementPolicy,
    lock: &MeshRunResult,
    got: &MeshRunResult,
) -> Result<(), CheckFailure> {
    let fail = |what: String| CheckFailure {
        kind: FailureKind::MeshDivergence,
        detail: format!(
            "{label}: {what} (lockstep vs {leg}, {CROSS_CHECK_NODES} nodes, {})",
            policy.label()
        ),
    };

    // Every observable, in roughly the order a divergence would be
    // easiest to diagnose from.
    if got.cycles != lock.cycles {
        return Err(fail(format!(
            "cycle count diverges: lockstep {}, {leg} {}",
            lock.cycles, got.cycles
        )));
    }
    if got.halt != lock.halt {
        return Err(fail(format!(
            "halt reason diverges: lockstep {:?}, {leg} {:?}",
            lock.halt, got.halt
        )));
    }
    if got.result != lock.result {
        return Err(fail("result words diverge".into()));
    }
    if got.arrays != lock.arrays {
        return Err(fail("final array state diverges".into()));
    }
    if got.stats != lock.stats {
        return Err(fail("per-node machine counters diverge".into()));
    }
    if got.counts != lock.counts {
        return Err(fail("per-node access counts diverge".into()));
    }
    if got.stall_cycles != lock.stall_cycles {
        return Err(fail(format!(
            "NI stall cycles diverge: lockstep {:?}, {leg} {:?}",
            lock.stall_cycles, got.stall_cycles
        )));
    }
    if got.net != lock.net {
        return Err(fail(format!(
            "fabric statistics diverge: lockstep {:?}, {leg} {:?}",
            lock.net, got.net
        )));
    }
    if got.deliver_stalls != lock.deliver_stalls {
        return Err(fail(format!(
            "per-node deliver stalls diverge: lockstep {:?}, {leg} {:?}",
            lock.deliver_stalls, got.deliver_stalls
        )));
    }
    if got.link_stats != lock.link_stats {
        return Err(fail("per-link telemetry diverges".into()));
    }
    if got.queue_words != lock.queue_words {
        return Err(fail(format!(
            "queue auto-sizing diverges: lockstep {:?}, {leg} {:?}",
            lock.queue_words, got.queue_words
        )));
    }
    if got.live_frames != lock.live_frames {
        return Err(fail("live-frame census diverges".into()));
    }
    if got.steals != lock.steals {
        return Err(fail(format!(
            "steal counts diverge: lockstep {:?}, {leg} {:?}",
            lock.steals, got.steals
        )));
    }
    if got.watchdog_trips != lock.watchdog_trips || got.backstop_rearms != lock.backstop_rearms {
        return Err(fail(format!(
            "watchdog/backstop counters diverge: lockstep {}/{}, {leg} {}/{}",
            lock.watchdog_trips, lock.backstop_rearms, got.watchdog_trips, got.backstop_rearms
        )));
    }
    for (n, (g, l)) in got.activity.iter().zip(&lock.activity).enumerate() {
        if g.spans != l.spans {
            return Err(fail(format!("activity timeline diverges on node {n}")));
        }
    }
    Ok(())
}

/// Termination, conservation, residue, and leak checks for one finished
/// run.
fn post_run_checks(
    program: &Program,
    impl_: Implementation,
    label: &str,
    mcfg: &MachineConfig,
    stats: &RunStats,
    machine: &Machine<'_>,
    checker: &InvariantChecker,
) -> Result<(), CheckFailure> {
    if !checker.is_clean() {
        return Err(CheckFailure {
            kind: FailureKind::InvariantViolation,
            detail: format!(
                "{label}: {} violation(s), first: {}",
                checker.total_violations, checker.violations[0]
            ),
        });
    }
    if stats.halt != HaltReason::Explicit {
        return Err(CheckFailure {
            kind: FailureKind::NoCompletion,
            detail: format!(
                "{label}: run quiesced without executing Halt (lost message or dead entry count)"
            ),
        });
    }

    // Shutdown residue (see module docs): AM strands the final ffree
    // behind the halting reply; MD drains it by priority.
    let queued: usize = Priority::ALL.iter().map(|&p| machine.queue(p).len()).sum();
    // The halting handler's own message was dispatched but never retired
    // (`Halt` stops the machine immediately), so it still occupies its
    // queue.
    let undispatched = queued.saturating_sub(1);
    let expected_undispatched = if impl_ == Implementation::Am { 1 } else { 0 };
    if undispatched != expected_undispatched {
        return Err(CheckFailure {
            kind: FailureKind::QueueResidue,
            detail: format!(
                "{label}: {undispatched} undispatched message(s) at halt, expected \
                 {expected_undispatched}"
            ),
        });
    }

    // Message conservation: enqueued = sends + 1 boot injection; each is
    // either dispatched or still queued-but-undispatched.
    let enqueued = stats.sends + 1;
    let dispatched = stats.dispatches[0] + stats.dispatches[1];
    if enqueued != dispatched + undispatched as u64 {
        return Err(CheckFailure {
            kind: FailureKind::SendRecvMismatch,
            detail: format!(
                "{label}: {enqueued} messages enqueued but {dispatched} dispatched + \
                 {undispatched} still queued"
            ),
        });
    }

    // Frame accounting: every word the bump allocator handed out must be
    // back on a free list, except main's frame under AM (its ffree is the
    // stranded message above).
    let layouts: Vec<FrameLayout> = program
        .codeblocks
        .iter()
        .map(|cb| FrameLayout::of(cb, impl_.is_am()))
        .collect();
    let globals = GlobalsMap::new(&mcfg.sys_layout(), program, &layouts);
    let bump = machine.mem.read(globals.frame_bump).as_addr();
    let allocated = (bump - mcfg.map.frame_base) / 4;
    let mut freed = 0u32;
    for (i, layout) in layouts.iter().enumerate() {
        let mut head = machine
            .mem
            .read(globals.freelist_base + 4 * i as u32)
            .as_addr();
        let mut guard = 0u32;
        while head != 0 {
            freed += layout.frame_words;
            head = machine.mem.read(head).as_addr();
            guard += 1;
            if guard > 1 << 20 {
                return Err(CheckFailure {
                    kind: FailureKind::LeakedFrames,
                    detail: format!("{label}: free list of codeblock {i} does not terminate"),
                });
            }
        }
    }
    let expected_leak = if impl_.is_am() {
        layouts[program.main.0 as usize].frame_words
    } else {
        0
    };
    if allocated != freed + expected_leak {
        return Err(CheckFailure {
            kind: FailureKind::LeakedFrames,
            detail: format!(
                "{label}: {allocated} frame words allocated, {freed} freed, expected leak \
                 {expected_leak}"
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamsim_tam::ops;
    use tamsim_tam::{Codeblock, CodeblockId, Inlet, SlotId, Thread, ThreadId, VReg, Value};

    fn tiny_program() -> Program {
        // main(x): return x + x.
        let r = VReg;
        Program {
            name: "tiny".into(),
            codeblocks: vec![Codeblock {
                name: "main".into(),
                n_slots: 1,
                threads: vec![Thread::new(
                    1,
                    vec![
                        ops::ld(r(0), SlotId(0)),
                        ops::alu(AluOp::Add, r(1), r(0), ops::reg(r(0))),
                        ops::ret(vec![r(1)]),
                    ],
                )],
                inlets: vec![Inlet {
                    ops: vec![
                        ops::ldmsg(r(0), 0),
                        ops::st(SlotId(0), r(0)),
                        ops::post(ThreadId(0)),
                    ],
                }],
            }],
            main: CodeblockId(0),
            main_args: vec![Value::Int(21)],
            arrays: vec![],
        }
    }

    #[test]
    fn tiny_program_passes_all_checks() {
        let pass = check_program(&tiny_program(), &CheckConfig::default()).expect("clean");
        assert_eq!(pass.per_impl.len(), 3);
        for r in &pass.per_impl {
            assert_eq!(r.result_bits, vec![42], "{}", r.label);
        }
        assert!(pass.trace_events > 0);
    }

    #[test]
    fn mesh_mode_confirms_1x1_identity() {
        let cfg = CheckConfig {
            mesh: true,
            ..CheckConfig::default()
        };
        let pass = check_program(&tiny_program(), &cfg).expect("1x1 mesh must be bit-identical");
        assert_eq!(pass.per_impl.len(), 3);
        for r in &pass.per_impl {
            assert_eq!(r.result_bits, vec![42], "{}", r.label);
        }
    }

    #[test]
    fn dispatch_cross_check_passes_on_all_backends() {
        // `dispatch` defaults on, so this exercises the baseline-vs-decoded
        // stream comparison for AM, AM-en, and MD in one pass.
        let cfg = CheckConfig::default();
        assert!(cfg.dispatch);
        check_program(&tiny_program(), &cfg).expect("dispatch paths must be bit-identical");
        // And directly, for each back-end.
        for (impl_, label) in IMPLS {
            dispatch_cross_check(&tiny_program(), impl_, label, cfg.queue_words, cfg.fuel)
                .expect("direct cross-check clean");
        }
    }

    #[test]
    fn mutation_flips_exactly_the_first_add() {
        let p = tiny_program();
        let m = mutate(&p, Mutation::FlipFirstAddToSub).expect("has an Add");
        let TOp::Alu { op, .. } = &m.codeblocks[0].threads[0].ops[1] else {
            panic!("unexpected shape");
        };
        assert_eq!(*op, AluOp::Sub);
        assert_eq!(p.static_ops(), m.static_ops());
    }

    #[test]
    fn mutation_is_caught_as_result_divergence() {
        let cfg = CheckConfig {
            mutation: Some(Mutation::FlipFirstAddToSub),
            ..CheckConfig::default()
        };
        let failure = check_program(&tiny_program(), &cfg).expect_err("must diverge");
        assert_eq!(failure.kind, FailureKind::ResultDivergence);
        assert!(failure.detail.contains("md"), "{}", failure.detail);
    }

    #[test]
    fn mutate_returns_none_without_a_site() {
        let mut p = tiny_program();
        p.codeblocks[0].threads[0].ops.remove(1);
        p.codeblocks[0].threads[0]
            .ops
            .insert(1, ops::mov(VReg(1), VReg(0)));
        assert!(mutate(&p, Mutation::FlipFirstAddToSub).is_none());
    }
}
