//! The TAM program generator: random-but-valid programs from a seed.
//!
//! # Grammar
//!
//! A generated program is a strict call DAG of 1–4 codeblocks (codeblock
//! *i* only calls codeblocks *j > i*), so every run terminates with a
//! statically bounded activation tree. Each codeblock follows the same
//! skeleton as the hand-written benchmarks (arg inlets → a synchronizing
//! work thread → a join thread that returns):
//!
//! * 1–3 **argument inlets**, each `ldmsg; st slot; post work`;
//! * a **work thread** (entry count = number of args) that loads its
//!   arguments, scrambles them through a random straight-line ALU
//!   sequence, stores the result, then optionally: issues 0–3 [`TOp::Call`]s
//!   to higher-numbered codeblocks (send fan-out), runs a split-phase heap
//!   chain ([`TOp::HAlloc`]/[`TOp::IStore`]/[`TOp::IFetch`] in either
//!   order, exercising deferred I-structure reads, or an initial-array
//!   fetch), and terminates by forking the join thread — directly or
//!   through a two-way [`TOp::ForkIfElse`] over occasionally-atomic branch
//!   threads;
//! * one **reply inlet per call** that accumulates the returned value into
//!   a frame slot with a commutative `Add` (so the final result is
//!   independent of reply arrival order, which legitimately differs
//!   between the back-ends) and posts the join thread;
//! * a **join thread** whose entry count is exactly one (the terminator)
//!   plus one per reply source, folding every written slot into the value
//!   it [`TOp::Return`]s. Main's join returns one or two words.
//!
//! Shapes are decided in a first pass (so a caller knows every callee's
//! arity — each [`TOp::Call`] passes *exactly* that many arguments, which
//! the work thread's entry count relies on for liveness), bodies in a
//! second. Everything the program reads — registers within a body, frame
//! slots across bodies — is written first by construction, so a divergence
//! between the AM, AM-enabled, and MD back-ends is a real scheduling or
//! lowering bug, never stale-state noise. All values are integers, making
//! cross-implementation comparison exact. Division is excluded (the
//! machine halts on division by zero); shifts take small immediate counts.

use crate::rng::SplitMix64;
use tamsim_tam::ops::{self, imm, reg};
use tamsim_tam::{
    AluOp, Codeblock, CodeblockId, InitArray, Inlet, InletId, Program, SlotId, TOp, Thread,
    ThreadId, VReg, Value,
};

/// Bounds on the generated program shapes.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum codeblocks per program (≥ 1; bounds the call-DAG depth).
    pub max_codeblocks: u16,
    /// Maximum argument inlets per codeblock.
    pub max_args: u16,
    /// Maximum calls issued by one work thread (send fan-out bound).
    pub max_calls: u16,
    /// Maximum random ALU instructions in one work thread.
    pub max_alu: u16,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_codeblocks: 4,
            max_args: 3,
            max_calls: 3,
            max_alu: 6,
        }
    }
}

/// ALU operations safe under any operand values (no division: the machine
/// halts on a zero divisor). Shifts are emitted separately with immediate
/// counts.
const SAFE_ALU: [AluOp; 14] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Eq,
    AluOp::Ne,
    AluOp::Lt,
    AluOp::Le,
    AluOp::Gt,
    AluOp::Ge,
    AluOp::Min,
    AluOp::Max,
];

/// The two thread slots every codeblock has (branch threads come after).
const T_WORK: ThreadId = ThreadId(0);
const T_DONE: ThreadId = ThreadId(1);

/// Which split-phase heap pattern the work thread exercises, if any.
#[derive(Clone, Copy, PartialEq)]
enum HeapChain {
    None,
    /// `HAlloc` a fresh cell, store, then fetch the now-present value.
    FreshStoreThenFetch,
    /// `HAlloc` a fresh cell, fetch *first* (the read defers), then store.
    FreshFetchThenStore,
    /// `IFetch` a present cell of initial array 0.
    ArrayCell {
        index: u64,
    },
}

impl HeapChain {
    fn is_some(self) -> bool {
        self != HeapChain::None
    }
}

/// Shape decisions for one codeblock, fixed before any body is emitted.
struct CbShape {
    n_args: u16,
    /// Callee ids, one per issued call (each strictly greater than the
    /// caller's id).
    calls: Vec<u16>,
    branching: bool,
    heap: HeapChain,
    n_alu: u16,
}

/// Generate a valid, deterministically terminating program from `seed`.
///
/// The same `(seed, cfg)` pair always yields the identical [`Program`];
/// the result passes [`Program::validate`] (asserted here, so a generator
/// bug fails fast rather than surfacing as a confusing link panic).
pub fn generate(seed: u64, cfg: &GenConfig) -> Program {
    let mut rng = SplitMix64::new(seed);
    let n_cbs = rng.range(1, cfg.max_codeblocks.max(1) as u64) as u16;

    // An optional initial array provides ArrayBase operands and present
    // I-structure cells to fetch.
    let arrays = if rng.one_in(2) {
        let len = rng.range(2, 5);
        let cells: Vec<Value> = (0..len)
            .map(|_| Value::Int(rng.range(0, 200) as i64 - 100))
            .collect();
        vec![InitArray::present("a0", cells)]
    } else {
        Vec::new()
    };
    let array_cells = arrays.first().map(|a| a.len() as u64);

    // Pass 1: shapes. Callers read callee arities from here in pass 2.
    let shapes: Vec<CbShape> = (0..n_cbs)
        .map(|i| {
            let can_call = i + 1 < n_cbs;
            let n_calls = if can_call {
                rng.range(0, cfg.max_calls as u64) as u16
            } else {
                0
            };
            CbShape {
                n_args: rng.range(1, cfg.max_args.max(1) as u64) as u16,
                calls: (0..n_calls)
                    .map(|_| rng.range(i as u64 + 1, n_cbs as u64 - 1) as u16)
                    .collect(),
                branching: rng.one_in(2),
                heap: match rng.below(6) {
                    0 => HeapChain::FreshStoreThenFetch,
                    1 => HeapChain::FreshFetchThenStore,
                    2 => match array_cells {
                        Some(cells) => HeapChain::ArrayCell {
                            index: rng.below(cells),
                        },
                        None => HeapChain::None,
                    },
                    _ => HeapChain::None,
                },
                n_alu: rng.range(1, cfg.max_alu.max(1) as u64) as u16,
            }
        })
        .collect();

    // Pass 2: bodies.
    let codeblocks: Vec<Codeblock> = (0..n_cbs)
        .map(|i| gen_codeblock(&mut rng, &shapes, i))
        .collect();

    let main_args: Vec<Value> = (0..shapes[0].n_args)
        .map(|_| Value::Int(rng.range(0, 200) as i64 - 100))
        .collect();

    let program = Program {
        name: format!("fuzz-{seed:016x}"),
        codeblocks,
        main: CodeblockId(0),
        main_args,
        arrays,
    };
    program
        .validate()
        .expect("generator produced an invalid program");
    program
}

fn gen_codeblock(rng: &mut SplitMix64, shapes: &[CbShape], index: u16) -> Codeblock {
    let shape = &shapes[index as usize];
    let is_main = index == 0;
    let n_calls = shape.calls.len() as u16;

    // Frame slot map: args first, then one slot per written source the
    // join thread folds.
    let s_arg = |i: u16| SlotId(i);
    let s_res = SlotId(shape.n_args);
    let s_acc = SlotId(shape.n_args + 1);
    let s_br = SlotId(shape.n_args + 2);
    let s_hp = SlotId(shape.n_args + 3);
    let n_slots = shape.n_args + 4;

    // Inlet map: arg inlets, then one reply inlet per call, then the heap
    // reply inlet.
    let reply_inlet = |j: u16| InletId(shape.n_args + j);
    let heap_inlet = InletId(shape.n_args + n_calls);

    let r = VReg;

    // Argument inlets: receive, bank, post.
    let mut inlets: Vec<Inlet> = (0..shape.n_args)
        .map(|i| Inlet {
            ops: vec![
                ops::ldmsg(r(0), 0),
                ops::st(s_arg(i), r(0)),
                ops::post(T_WORK),
            ],
        })
        .collect();

    // Reply inlets: accumulate commutatively, post the join thread.
    for _ in 0..n_calls {
        inlets.push(Inlet {
            ops: vec![
                ops::ldmsg(r(0), 0),
                ops::ld(r(1), s_acc),
                ops::alu(AluOp::Add, r(1), r(1), reg(r(0))),
                ops::st(s_acc, r(1)),
                ops::post(T_DONE),
            ],
        });
    }
    if shape.heap.is_some() {
        inlets.push(Inlet {
            ops: vec![ops::ldmsg(r(0), 0), ops::st(s_hp, r(0)), ops::post(T_DONE)],
        });
    }

    // Work thread: load args, scramble, store result, init accumulator,
    // heap chain, calls, terminator.
    let mut work: Vec<TOp> = Vec::new();
    let mut defined: Vec<VReg> = Vec::new();
    for i in 0..shape.n_args {
        work.push(ops::ld(r(i as u8), s_arg(i)));
        defined.push(r(i as u8));
    }
    let mut last = defined[defined.len() - 1];
    for _ in 0..shape.n_alu {
        // Destinations stay in r0..r5 so r6..r9 remain free for the fixed
        // accumulator/heap sequences below.
        let d = r(rng.below(6) as u8);
        let a = *rng.pick(&defined);
        let (op, b) = if rng.one_in(6) {
            let op = if rng.one_in(2) {
                AluOp::Shl
            } else {
                AluOp::Shr
            };
            (op, imm(rng.below(8) as i64))
        } else {
            let op = *rng.pick(&SAFE_ALU);
            let b = if rng.one_in(2) {
                imm(rng.range(0, 16) as i64 - 8)
            } else {
                reg(*rng.pick(&defined))
            };
            (op, b)
        };
        work.push(ops::alu(op, d, a, b));
        if !defined.contains(&d) {
            defined.push(d);
        }
        last = d;
    }
    work.push(ops::st(s_res, last));
    if n_calls > 0 {
        work.push(ops::movi(r(6), 0));
        work.push(ops::st(s_acc, r(6)));
    }
    match shape.heap {
        HeapChain::None => {}
        HeapChain::FreshStoreThenFetch | HeapChain::FreshFetchThenStore => {
            work.push(ops::halloc(r(7), imm(2))); // one [state, value] cell
            work.push(ops::movi(r(8), rng.range(0, 100) as i64)); // tag
            work.push(ops::movi(r(9), rng.range(0, 200) as i64 - 100)); // value
            let fetch = ops::ifetch(r(7), r(8), heap_inlet);
            let store = ops::istore(r(7), r(9));
            if shape.heap == HeapChain::FreshFetchThenStore {
                // Fetching the still-empty cell defers the read; the store
                // then satisfies it — the split-phase path the benchmarks
                // rarely stress.
                work.push(fetch);
                work.push(store);
            } else {
                work.push(store);
                work.push(fetch);
            }
        }
        HeapChain::ArrayCell { index } => {
            work.push(ops::movarr(r(7), 0));
            work.push(ops::alu(AluOp::Add, r(7), r(7), imm(8 * index as i64)));
            work.push(ops::movi(r(8), rng.range(0, 100) as i64));
            work.push(ops::ifetch(r(7), r(8), heap_inlet));
        }
    }
    for (j, &callee) in shape.calls.iter().enumerate() {
        // Pass exactly the callee's arity: its work thread's entry count
        // equals its arg count, so a short call would deadlock it.
        let args: Vec<VReg> = (0..shapes[callee as usize].n_args)
            .map(|_| *rng.pick(&defined))
            .collect();
        work.push(ops::call(CodeblockId(callee), args, reply_inlet(j as u16)));
    }
    if shape.branching {
        let cond = *rng.pick(&defined);
        work.push(ops::fork_if_else(cond, ThreadId(2), ThreadId(3)));
    } else {
        work.push(ops::fork(T_DONE));
    }

    // Join thread: fold every written slot into the return value.
    let mut done: Vec<TOp> = vec![ops::ld(r(0), s_res)];
    if n_calls > 0 {
        done.push(ops::ld(r(1), s_acc));
        done.push(ops::alu(AluOp::Add, r(0), r(0), reg(r(1))));
    }
    if shape.branching {
        done.push(ops::ld(r(2), s_br));
        done.push(ops::alu(AluOp::Xor, r(0), r(0), reg(r(2))));
    }
    if shape.heap.is_some() {
        done.push(ops::ld(r(3), s_hp));
        done.push(ops::alu(AluOp::Add, r(0), r(0), reg(r(3))));
    }
    if is_main && rng.one_in(2) {
        done.push(ops::alu(AluOp::Add, r(1), r(0), imm(1)));
        done.push(ops::ret(vec![r(0), r(1)]));
    } else {
        done.push(ops::ret(vec![r(0)]));
    }

    let done_entry = 1 + n_calls as u32 + u32::from(shape.heap.is_some());
    let mut threads = vec![
        Thread::new(shape.n_args as u32, work),
        Thread::new(done_entry, done),
    ];
    if shape.branching {
        for branch_const in [rng.range(0, 64) as i64, rng.range(64, 128) as i64] {
            let mut t = Thread::new(
                1,
                vec![
                    ops::movi(r(0), branch_const),
                    ops::st(s_br, r(0)),
                    ops::fork(T_DONE),
                ],
            );
            t.atomic = rng.one_in(8);
            threads.push(t);
        }
    }

    Codeblock {
        name: format!("cb{index}"),
        n_slots,
        threads,
        inlets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..32 {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg), "seed {seed}");
        }
    }

    #[test]
    fn generated_programs_validate() {
        // `generate` asserts validity itself; this exercises a wide seed
        // range so grammar regressions fail here, not mid-fuzz.
        let cfg = GenConfig::default();
        for seed in 0..256 {
            let p = generate(seed, &cfg);
            assert!(p.validate().is_ok(), "seed {seed}");
            assert!(!p.codeblocks.is_empty());
            assert!(p.static_ops() > 0);
        }
    }

    #[test]
    fn grammar_covers_calls_branches_and_heap_chains() {
        let cfg = GenConfig::default();
        let (mut calls, mut branches, mut heaps, mut two_word_mains) = (0, 0, 0, 0);
        for seed in 0..200 {
            let p = generate(seed, &cfg);
            for cb in &p.codeblocks {
                for t in &cb.threads {
                    for op in &t.ops {
                        match op {
                            TOp::Call { .. } => calls += 1,
                            TOp::ForkIfElse { .. } => branches += 1,
                            TOp::IFetch { .. } => heaps += 1,
                            TOp::Return { vals } if vals.len() == 2 => two_word_mains += 1,
                            _ => {}
                        }
                    }
                }
            }
        }
        assert!(calls > 0, "no Call coverage");
        assert!(branches > 0, "no ForkIfElse coverage");
        assert!(heaps > 0, "no IFetch coverage");
        assert!(two_word_mains > 0, "no multi-word Return coverage");
    }

    #[test]
    fn call_graph_is_a_strict_dag() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let p = generate(seed, &cfg);
            for (i, cb) in p.codeblocks.iter().enumerate() {
                for t in &cb.threads {
                    for op in &t.ops {
                        if let TOp::Call { cb: target, .. } = op {
                            assert!(
                                (target.0 as usize) > i,
                                "seed {seed}: cb{i} calls cb{}",
                                target.0
                            );
                        }
                    }
                }
            }
        }
    }
}
